"""Replay an MDP-optimal attack through the real BU substrate.

The solvers work on the paper's Table 1 abstraction; this example runs
the resulting optimal policy against actual Bitcoin Unlimited validity
rules (EB / acceptance depth / sticky gate) with Bob and Carol doing
genuine longest-valid-chain fork choice, and shows the two layers
agree -- plus the executable versions of the paper's Figures 1-3.

Run:  python examples/substrate_simulation.py
"""

import numpy as np

from repro import AttackConfig, solve_absolute_reward
from repro.analysis.formatting import format_table
from repro.sim import (
    PolicyStrategy,
    ThreeMinerScenario,
    figure1_sticky_gate,
    figure2_phase_forks,
    figure3_orphaning,
)

STEPS = 60_000


def validation_demo() -> None:
    print("=" * 64)
    print("MDP vs substrate simulation (setting 1, alpha = 10%, 1:1)")
    config = AttackConfig.from_ratio(0.10, (1, 1), setting=1)
    analysis = solve_absolute_reward(config)
    scenario = ThreeMinerScenario(config, PolicyStrategy(analysis.policy),
                                  rng=np.random.default_rng(2017))
    result = scenario.run(STEPS)
    acc = result.accounting
    rows = [[c, analysis.rates[c], acc.rates()[c]]
            for c in sorted(analysis.rates)]
    print(format_table(["channel", "exact MDP", f"sim ({STEPS} blocks)"],
                       rows))
    print(f"   u_A2: exact {analysis.utility:.4f} vs simulated "
          f"{acc.absolute_reward:.4f}")
    print(f"   races fought: {acc.races}; race length histogram: "
          f"{dict(sorted(acc.race_lengths.items()))}")


def figures_demo() -> None:
    print("=" * 64)
    print("Figure 1 (sticky gate):", figure1_sticky_gate())
    print("Figure 2 (phase splits):", figure2_phase_forks())
    print("Figure 3 (orphaning):", figure3_orphaning())


def main() -> None:
    validation_demo()
    figures_demo()


if __name__ == "__main__":
    main()
