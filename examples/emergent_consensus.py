"""Will emergent consensus emerge?  (The Section 5 story.)

Walks through the paper's two games:

1. The EB choosing game: consensus profiles are Nash equilibria when
   every miner is profitable with any EB (Analytical Result 4) -- this
   explains why all BU miners signaled EB = 1 MB in April 2017.
2. The block size increasing game: once miners have individual maximum
   profitable block sizes, large miners rationally force small miners
   out unless the groups form a stable set (Analytical Result 5); the
   paper's Figure 4 instance is played out move by move.

Finally, the Section 6.3 countermeasure shows a dynamic limit that
never abandons the prescribed BVC.

Run:  python examples/emergent_consensus.py
"""

from repro.analysis.formatting import format_table
from repro.countermeasure import (
    PreferenceVoter,
    VoteParams,
    VotingSimulation,
    equilibrium_limit,
)
from repro.games import (
    BlockSizeIncreasingGame,
    EBChoosingGame,
    EBProfile,
    MinerGroup,
)


def eb_choosing_demo() -> None:
    print("=" * 64)
    print("1. The EB choosing game (Section 5.1)")
    game = EBChoosingGame([0.3, 0.3, 0.4])
    for profile in game.consensus_profiles():
        assert game.is_nash_equilibrium(profile)
    print("   Consensus profiles are Nash equilibria:",
          [p.choices for p in game.consensus_profiles()])
    mixed = EBProfile((0, 1, 1))
    trajectory = game.best_response_dynamics(mixed)
    print(f"   Best-response dynamics from {mixed.choices}: "
          f"{[p.choices for p in trajectory]}")
    print("   -> miners herd onto one EB to avoid economic loss.")


def block_size_demo() -> None:
    print("=" * 64)
    print("2. The block size increasing game (Section 5.2, Figure 4)")
    game = BlockSizeIncreasingGame([
        MinerGroup(mpb=1.0, power=0.1, name="group 1"),
        MinerGroup(mpb=2.0, power=0.2, name="group 2"),
        MinerGroup(mpb=4.0, power=0.3, name="group 3"),
        MinerGroup(mpb=8.0, power=0.4, name="group 4"),
    ])
    played = game.play()
    for i, rnd in enumerate(played.rounds, start=1):
        outcome = ("passed, group "
                   f"{rnd.evicted + 1} forced out" if rnd.passed
                   else "failed, game over")
        print(f"   round {i}: raise MG to {rnd.proposed_mpb} MB -- "
              f"yes: {[g + 1 for g in rnd.yes_votes]} "
              f"({float(rnd.yes_power):.0%}), "
              f"no: {[g + 1 for g in rnd.no_votes]} -> {outcome}")
    print(f"   survivors: groups {[g + 1 for g in played.survivors]}, "
          f"final MG = {played.final_mg} MB")
    print("   -> the 10% group is squeezed out; the block size does "
          "NOT track network capacity, it tracks coalition power.")

    unstable = BlockSizeIncreasingGame([
        MinerGroup(mpb=1.0, power=0.1),
        MinerGroup(mpb=2.0, power=0.2),
        MinerGroup(mpb=16.0, power=0.7),
    ])
    played = unstable.play()
    print(f"   With a 70% whale: survivors = "
          f"{[g + 1 for g in played.survivors]}, "
          f"final MG = {played.final_mg} MB (everyone else evicted).")


def countermeasure_demo() -> None:
    print("=" * 64)
    print("3. The countermeasure (Section 6.3): vote in blocks, keep "
          "a prescribed BVC")
    params = VoteParams(period=2016, activation_delay=200, step=0.1,
                        up_threshold=0.75, veto_threshold=0.25)
    miners = [
        PreferenceVoter("small", power=0.2, preferred_size=1.0),
        PreferenceVoter("medium", power=0.3, preferred_size=2.0),
        PreferenceVoter("large", power=0.5, preferred_size=8.0),
    ]
    sim = VotingSimulation(miners, params)
    trace = sim.run(n_periods=40)
    rows = [[h, trace.limits[h]] for h in
            range(0, len(trace.limits), 8 * params.period)]
    print(format_table(["height", "limit (MB)"], rows, precision=1))
    print(f"   equilibrium limit: {equilibrium_limit(miners, params)} MB "
          f"(the 20% small-miner veto holds the line); "
          f"BVC holds at every height: {trace.bvc_holds()}")


def main() -> None:
    eb_choosing_demo()
    block_size_demo()
    countermeasure_demo()


if __name__ == "__main__":
    main()
