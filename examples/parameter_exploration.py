"""Ablations: how BU's knobs trade one risk for another (Section 6.2).

The paper argues that "adjusting the parameters only trades one risk
for another": a large AD lets an attacker keep the chain forked longer,
a small AD makes triggering sticky gates cheap.  This example sweeps
the acceptance depth and the two under-specified modeling knobs
(DESIGN.md) to quantify those claims.

Run:  python examples/parameter_exploration.py
"""

from repro import AttackConfig, IncentiveModel
from repro.analysis.formatting import format_table
from repro.analysis.sweeps import sweep_attack
from repro.core.solve import solve_absolute_reward, solve_orphan_rate


def ad_sweep() -> None:
    print("=" * 64)
    print("Acceptance depth sweep (non-profit-driven, alpha = 1%, 2:3)")
    base = AttackConfig.from_ratio(0.01, (2, 3), setting=1)
    sweep = sweep_attack(base, "ad", [2, 3, 4, 6, 8, 10, 12],
                         IncentiveModel.NON_PROFIT)
    print(format_table(["AD", "u_A3", "honest", "advantage"],
                       sweep.as_rows()))
    print("   -> longer acceptance depths mean longer forced forks: "
          "each attacker block destroys more compliant work.")


def modeling_knobs() -> None:
    print("=" * 64)
    print("Modeling-knob ablation (setting 2, alpha = 10%, 1:1)")
    rows = []
    for phase3 in ("phase1", "phase2_reset"):
        for countdown in ("locked_blocks", "l1"):
            config = AttackConfig.from_ratio(
                0.10, (1, 1), setting=2, phase3_return=phase3,
                gate_countdown=countdown)
            result = solve_absolute_reward(config)
            rows.append([phase3, countdown, result.utility])
    print(format_table(["phase3 return", "gate countdown", "u_A2"], rows))
    print("   -> the paper's under-specified details move the third "
          "decimal, not the conclusions.")


def sticky_gate_effect() -> None:
    print("=" * 64)
    print("Sticky gate on/off (u_A3, alpha = 1%)")
    rows = []
    for ratio in ((2, 1), (1, 1), (1, 2)):
        set1 = solve_orphan_rate(
            AttackConfig.from_ratio(0.01, ratio, setting=1))
        set2 = solve_orphan_rate(
            AttackConfig.from_ratio(0.01, ratio, setting=2))
        rows.append([f"{ratio[0]}:{ratio[1]}", set1.utility, set2.utility])
    print(format_table(["beta:gamma", "gate off (set 1)", "gate on (set 2)"],
                       rows))
    print("   -> removing the sticky gate (BUIP038) does not fix the "
          "vulnerability; the gate only adds a second attack phase.")


def main() -> None:
    ad_sweep()
    modeling_knobs()
    sticky_gate_effect()


if __name__ == "__main__":
    main()
