"""Anatomy of an optimal attack strategy.

Dissects the optimal policies behind Tables 2-4 with the tools the
library adds on top of the paper: policy maps over the (l1, l2) fork
grid, per-race absorbing-chain statistics, and the fee-market model
that grounds Section 5.2's assumption of heterogeneous maximum
profitable block sizes.

Run:  python examples/strategy_anatomy.py
"""

from repro import AttackConfig, solve_orphan_rate, solve_relative_revenue
from repro.analysis.formatting import format_table
from repro.analysis.policy_maps import action_census, policy_map
from repro.core.race_analysis import (
    pump_chain2,
    race_statistics,
    watch_only,
)
from repro.games.fee_market import (
    FeeMarketMiner,
    FeeMarketParams,
    max_profitable_block_size,
    optimal_block_size,
)


def policy_map_demo() -> None:
    print("=" * 64)
    print("Optimal relative-revenue policy, alpha=25%, 2:3 "
          "(1 = mine Chain 1, 2 = mine Chain 2, . = infeasible)")
    analysis = solve_relative_revenue(
        AttackConfig.from_ratio(0.25, (2, 3), setting=1))
    print(policy_map(analysis.policy, phase=1))
    print("census:", action_census(analysis.policy))
    print("\nNon-profit policy (alpha=1%, 2:3) -- W marks Wait:")
    orphan = solve_orphan_rate(
        AttackConfig.from_ratio(0.01, (2, 3), setting=1))
    print(policy_map(orphan.policy, phase=1))


def race_demo() -> None:
    print("=" * 64)
    print("Per-race statistics at alpha=10% (the anatomy of one fork)")
    rows = []
    for ratio in ((2, 1), (1, 1), (2, 3), (1, 2)):
        config = AttackConfig.from_ratio(0.10, ratio, setting=1)
        st = race_statistics(config, pump_chain2)
        rows.append([f"{ratio[0]}:{ratio[1]}", st.chain2_win_probability,
                     st.expected_length, st.expected_orphans,
                     st.expected_double_spend])
    print(format_table(
        ["beta:gamma", "P(chain2 wins)", "E[race len]", "E[orphans]",
         "E[DS income]"], rows))
    config = AttackConfig.from_ratio(0.01, (2, 3), setting=1,
                                     include_wait=True)
    st = race_statistics(config, watch_only)
    print(f"\nsplit-then-Wait at 1%, 2:3: {st.expected_others_orphans:.4f}"
          " compliant blocks orphaned per race -- Table 4's 1.77,"
          " re-derived per race.")


def fee_market_demo() -> None:
    print("=" * 64)
    print("Why miners have different maximum profitable block sizes")
    params = FeeMarketParams(fee_density=0.08, fee_decay=8.0)
    rows = []
    for name, bandwidth, cost in (("dsl", 0.001, 0.2),
                                  ("fiber", 0.01, 0.2),
                                  ("datacenter", 10.0, 0.2)):
        miner = FeeMarketMiner(name, power=1 / 3, bandwidth=bandwidth,
                               operating_cost=cost)
        rows.append([name, bandwidth,
                     optimal_block_size(miner, params),
                     max_profitable_block_size(miner, params)])
    print(format_table(
        ["miner", "bandwidth MB/s", "optimal size MB", "MPB MB"], rows,
        precision=3))
    print("-> heterogeneous MPBs are exactly what the block size "
          "increasing game (Section 5.2) consumes.")


def main() -> None:
    policy_map_demo()
    race_demo()
    fee_market_demo()


if __name__ == "__main__":
    main()
