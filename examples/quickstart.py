"""Quickstart: analyze one Bitcoin Unlimited attack scenario.

Solves the paper's three-miner strategy space for a 25% attacker
against an evenly split compliant network (beta : gamma = 2 : 3) under
all three incentive models of Section 3, and prints what the optimal
strategy does.

Run:  python examples/quickstart.py
"""

from repro import (
    AttackConfig,
    IncentiveModel,
    solve_absolute_reward,
    solve_orphan_rate,
    solve_relative_revenue,
)
from repro.analysis.formatting import format_table


def main() -> None:
    config = AttackConfig.from_ratio(0.25, (2, 3), setting=1)
    print("Scenario: alpha = 25%, beta : gamma = 2 : 3, AD = 6, "
          "sticky gate disabled\n")

    rows = []
    rel = solve_relative_revenue(config)
    rows.append(["relative revenue (u_A1)", rel.honest_utility,
                 rel.utility, rel.advantage])
    abs_reward = solve_absolute_reward(config)
    rows.append(["absolute reward (u_A2)", abs_reward.honest_utility,
                 abs_reward.utility, abs_reward.advantage])
    orphan = solve_orphan_rate(config)
    rows.append(["orphans per block (u_A3)", orphan.honest_utility,
                 orphan.utility, orphan.advantage])
    print(format_table(
        ["utility", "honest", "optimal attack", "advantage"], rows))

    print("\nBitcoin reference points: u_A1 = alpha (incentive "
          "compatible), u_A3 <= 1 (even for a 51% attacker).")

    print("\nWhat the optimal relative-revenue strategy does in the "
          "first few states:")
    interesting = [("base", 0), ("fork1", 0, 1, 0, 1),
                   ("fork1", 1, 1, 0, 1), ("fork1", 1, 2, 0, 2),
                   ("fork1", 4, 5, 0, 3)]
    print(rel.policy.describe(keys=interesting))

    print("\nChannel rates under that strategy (per mined block):")
    print(format_table(["channel", "rate"],
                       sorted(rel.rates.items())))
    assert rel.model is IncentiveModel.COMPLIANT_PROFIT


if __name__ == "__main__":
    main()
