"""Attacking the real April-2017 BU network distribution.

Section 2.2 reports what the field actually signaled: most miners
EB = 1 MB / AD = 6, BitClub with AD = 20, public nodes EB = 16 MB /
AD = 12.  This example replays the generalized EB-split attack of
Section 4.1.1 against that distribution with the N-node simulator,
under both sticky-gate regimes -- showing the Section 6.2 trade-off
("adjusting the parameters only trades one risk for another") at
network scale.

Run:  python examples/network_attack.py
"""

import numpy as np

from repro.analysis.formatting import format_table
from repro.protocol.params import BUParams
from repro.sim import NetworkMiner, NetworkSimulation, SplitAttacker

STEPS = 6000


def april_2017(attack_power: float):
    scale = 1.0 - attack_power
    return [
        NetworkMiner("miners_ad6", 0.55 * scale,
                     BUParams(mg=1.0, eb=1.0, ad=6)),
        NetworkMiner("bitclub_ad20", 0.15 * scale,
                     BUParams(mg=1.0, eb=1.0, ad=20)),
        NetworkMiner("large_eb", 0.30 * scale,
                     BUParams(mg=1.0, eb=16.0, ad=6)),
        NetworkMiner("public_nodes", 0.0,
                     BUParams(mg=1.0, eb=16.0, ad=12)),
    ]


def run(sticky: bool, seed: int = 2017):
    sim = NetworkSimulation(april_2017(attack_power=0.10),
                            attacker=SplitAttacker(split_size=8.0),
                            attacker_power=0.10, sticky=sticky,
                            rng=np.random.default_rng(seed))
    return sim.run(STEPS)


def main() -> None:
    print(f"EB-split attack (8 MB blocks, 10% attacker) against the "
          f"April 2017 distribution, {STEPS} blocks\n")
    rows = []
    for sticky in (True, False):
        result = run(sticky)
        rows.append([
            "enabled" if sticky else "removed (BUIP038)",
            result.disagreement_fraction,
            result.orphans,
            result.attacker_orphan_ratio,
            result.giant_blocks_on_chain,
            result.chain_share["attacker"],
        ])
    print(format_table(
        ["sticky gate", "disagree frac", "orphans",
         "orphans/att.block", "giant blocks", "attacker share"], rows))
    print(
        "\nReading: with the gate enabled the attacker quietly converts"
        "\nthe chain to giant blocks (phase-3 damage); with the gate"
        "\nremoved the network forks perpetually instead.  Either way"
        "\nthe absent prescribed BVC is the root cause -- Section 6.2.")


if __name__ == "__main__":
    main()
