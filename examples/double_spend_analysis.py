"""Double-spending: Bitcoin Unlimited vs Bitcoin (the Table 3 story).

For each attacker size, compares the optimal absolute reward of

- a BU attacker exploiting the absent block validity consensus
  (Section 4.3), against
- a Bitcoin attacker running the optimal combined selfish-mining +
  double-spending strategy, even when winning every tie.

The paper's headline: in BU "even a 1% miner can launch double-spending
attacks with non-negligible success rate", while in Bitcoin the attack
is unprofitable below roughly 10% of mining power.

Run:  python examples/double_spend_analysis.py
"""

from repro import AttackConfig, solve_absolute_reward
from repro.analysis.formatting import format_table
from repro.baselines import solve_selfish_mining_double_spend

ALPHAS = (0.01, 0.05, 0.10, 0.15, 0.25)


def main() -> None:
    rows = []
    for alpha in ALPHAS:
        bu = solve_absolute_reward(
            AttackConfig.from_ratio(alpha, (1, 1), setting=1))
        bitcoin = solve_selfish_mining_double_spend(alpha, tie_power=1.0)
        rows.append([
            f"{alpha:.0%}",
            alpha,                       # honest income per block
            bu.utility,
            bu.utility / alpha,          # profit multiple in BU
            bitcoin.absolute_reward,
            bitcoin.absolute_reward / alpha,
        ])
    print("Absolute reward per network block (block reward = 1, "
          "R_DS = 10, four confirmations)\n")
    print(format_table(
        ["alpha", "honest", "BU attack", "BU multiple",
         "Bitcoin attack", "BTC multiple"], rows))

    print("\nReading: the BU column beats honest income at every size; "
          "the Bitcoin column only separates from honest income near "
          "10-15% even with tie_power = 1.")

    bu_small = solve_absolute_reward(
        AttackConfig.from_ratio(0.01, (1, 1), setting=1))
    print(f"\nA 1% BU miner earns {bu_small.utility / 0.01:.1f}x its "
          "honest income; its double-spend rate alone is "
          f"{bu_small.rates['ds']:.4f} block rewards per block.")


if __name__ == "__main__":
    main()
