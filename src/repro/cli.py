"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``attack``    solve one attack configuration under one incentive model
``tables``    regenerate the paper's result tables
``figures``   replay the executable Figures 1-3
``games``     play the Section 5 games (including Figure 4)
``validate``  cross-check an MDP solve against a sampler (substrate
              simulator or vectorized rollouts; multi-seed CI report)
``latency``   measure natural fork rates under propagation delay
``race``      per-race statistics of one fork (absorbing-chain exact)
``deadline``  price a time-limited attack (finite horizon)
``report``    regenerate the paper-vs-measured markdown comparison
``serve``     answer solve requests from the policy atlas (batch JSON,
              a JSON-lines TCP front-end or an HTTP front-end; with
              ``--warm`` precompute the paper grids into the atlas,
              with ``--processes N`` fan batches over worker
              processes; see docs/robustness.md)
``chaos``     run the network simulation under an injected fault plan,
              or (``--serve``) the solver-service chaos harness
``bench``     run the pipeline benchmarks, emit BENCH_<name>.json
``qa``        run the cross-solver conformance matrix against the
              exact rational reference (see docs/correctness.md)
``trace``     summarize a JSONL trace captured with ``--trace``

``attack``, ``tables``, ``validate``, ``serve``, ``chaos``, ``bench``
and ``qa`` accept
``--trace FILE``: the run executes with telemetry enabled and writes
the span/counter/gauge registry as JSONL to FILE on the way out (see
:mod:`repro.runtime.telemetry` and docs/observability.md).

``attack``, ``tables``, ``validate``, ``serve``, ``bench`` and ``qa``
also accept ``--backend {numpy,numba,reference}``, selecting the
compute backend for the Bellman/rollout hot loops (see
:mod:`repro.mdp.backends` and docs/performance.md); the choice is
exported through ``REPRO_BACKEND`` so spawned worker processes inherit
it.  ``tables``, ``validate``, ``serve`` and ``qa`` accept
``--scheduler {serial,process,process:N,spec:FILE}``, overriding how
sweep cells are fanned out (:mod:`repro.runtime.parallel`).

``attack``, ``tables``, ``serve``, ``bench`` and ``qa`` accept
``--ratio-method
{dinkelbach,bisection,pto}``, selecting the ratio-objective method for
every relative-revenue/orphan-rate solve (see
:mod:`repro.mdp.ratio` and docs/mdp-methods.md); like ``--backend``
the choice is exported through ``REPRO_RATIO_METHOD`` so spawned
worker processes inherit it.

``attack``, ``tables`` and ``bench`` accept ``--engine
{exact,approx}``, selecting the average-reward solve engine:
``approx`` routes models with at least ``APPROX_MIN_STATES`` states
through the prioritized asynchronous value-iteration engine with
certified error bounds (smaller models, and any approx-stage failure
under a supervisor, fall back to the exact solvers; see
:mod:`repro.mdp.approx` and docs/mdp-methods.md).  Exported through
``REPRO_ENGINE`` for worker processes, like the other flags.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Tuple

import numpy as np

from repro.analysis.formatting import format_table
from repro.core.config import AttackConfig
from repro.core.incentives import IncentiveModel
from repro.core.solve import analyze
from repro.errors import ReproError

_MODELS = {
    "relative": IncentiveModel.COMPLIANT_PROFIT,
    "absolute": IncentiveModel.NONCOMPLIANT_PROFIT,
    "orphans": IncentiveModel.NON_PROFIT,
}

#: Mirror of :data:`repro.serve.warm.WARM_GRIDS` -- duplicated so the
#: parser builds without importing the (heavy) analysis stack; pinned
#: equal by a unit test.
_WARM_GRIDS = ("paper", "table2", "table3", "table4", "smoke")


def _parse_ratio(text: str) -> Tuple[int, int]:
    try:
        b, g = text.split(":")
        return int(b), int(g)
    except ValueError:
        raise ReproError(f"ratio must look like '2:3', got {text!r}")


def cmd_attack(args: argparse.Namespace) -> int:
    config = AttackConfig.from_ratio(args.alpha, _parse_ratio(args.ratio),
                                     setting=args.setting, ad=args.ad)
    model = _MODELS[args.model]
    if args.timeout is not None:
        from repro.runtime import Budget, SolverSupervisor
        supervisor = SolverSupervisor(budget=Budget(wall_clock=args.timeout))
        analysis = supervisor.analyze(config, model)
    else:
        analysis = analyze(config, model)
    print(f"model: {model.value}")
    print(f"alpha={config.alpha:.4f} beta={config.beta:.4f} "
          f"gamma={config.gamma:.4f} AD={config.ad} "
          f"setting={config.setting}")
    print(f"optimal utility: {analysis.utility:.6f} "
          f"(honest baseline {analysis.honest_utility:.6f}, "
          f"advantage {analysis.advantage:+.6f})")
    rows = sorted(analysis.rates.items())
    print(format_table(["channel", "rate per block"], rows, precision=6))
    return 0


def cmd_tables(args: argparse.Namespace) -> int:
    from repro.analysis import tables
    argv = [args.which]
    if args.fast:
        argv.append("--fast")
    if args.journal is not None:
        argv.extend(["--journal", args.journal])
    if args.workers != 1:
        argv.extend(["--workers", str(args.workers)])
    return tables._main(argv)


def cmd_figures(_args: argparse.Namespace) -> int:
    from repro.sim.figures import (
        figure1_sticky_gate,
        figure2_phase_forks,
        figure3_orphaning,
    )
    print("Figure 1:", figure1_sticky_gate())
    print("Figure 2:", figure2_phase_forks())
    print("Figure 3:", figure3_orphaning())
    return 0


def cmd_games(_args: argparse.Namespace) -> int:
    from repro.games import BlockSizeIncreasingGame, EBChoosingGame, \
        MinerGroup
    game = EBChoosingGame([0.3, 0.3, 0.4])
    print("EB choosing game: consensus equilibria ->",
          all(game.is_nash_equilibrium(p)
              for p in game.consensus_profiles()))
    fig4 = BlockSizeIncreasingGame([
        MinerGroup(mpb=1.0, power=0.1), MinerGroup(mpb=2.0, power=0.2),
        MinerGroup(mpb=4.0, power=0.3), MinerGroup(mpb=8.0, power=0.4)])
    played = fig4.play()
    print(f"Figure 4 game: survivors {played.survivors}, "
          f"final MG {played.final_mg} MB, "
          f"{len(played.rounds)} rounds")
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    from repro.analysis.validation import validate_against_sim
    config = AttackConfig.from_ratio(args.alpha, _parse_ratio(args.ratio),
                                     setting=args.setting)
    single = args.seeds == 1 and args.trajectories == 1 \
        and args.engine == "substrate"
    report = validate_against_sim(
        config, _MODELS[args.model], steps=args.steps,
        rng=np.random.default_rng(args.seed) if single else None,
        seeds=args.seeds, trajectories=args.trajectories,
        workers=args.workers, engine=args.engine, seed=args.seed,
        method=args.method)
    print(f"exact utility:     {report.analysis.utility:.6f}")
    print(f"simulated utility: {report.sim_utility:.6f} "
          f"({report.steps} blocks)")
    print(f"max channel-rate error: {report.max_rate_error():.6f}")
    multi = report.multi
    if multi is not None:
        print(f"samples: {multi.n} ({args.seeds} seeds x "
              f"{args.trajectories} trajectories, {args.engine} engine)")
        print(f"stderr:  {multi.stderr:.6f}")
        print(f"{multi.level:.0%} CI: [{multi.lo:.6f}, {multi.hi:.6f}]"
              f" ({'contains' if multi.contains_exact() else 'MISSES'}"
              " exact)")
        print(f"z-score: {multi.z_score:+.3f}")
        return 0 if multi.contains_exact() else 1
    return 0


def cmd_latency(args: argparse.Namespace) -> int:
    from repro.sim.latency import LatencyMiner, LatencySimulation
    miners = [LatencyMiner(f"m{i}", 1.0 / args.miners)
              for i in range(args.miners)]
    sim = LatencySimulation(miners, block_interval=args.interval,
                            delay=args.delay)
    result = sim.run(args.blocks, rng=np.random.default_rng(args.seed))
    print(f"blocks mined: {result.blocks_mined}, main chain: "
          f"{result.main_chain_length}, orphans: {result.orphans}")
    print(f"fork rate: {result.fork_rate:.4f}")
    return 0


def cmd_race(args: argparse.Namespace) -> int:
    from repro.core.race_analysis import (
        pump_chain2,
        race_statistics,
        watch_only,
    )
    strategies = {"pump": pump_chain2, "wait": watch_only}
    config = AttackConfig.from_ratio(
        args.alpha, _parse_ratio(args.ratio), setting=args.setting,
        include_wait=args.strategy == "wait")
    st = race_statistics(config, strategies[args.strategy])
    rows = [["P(chain 2 wins)", st.chain2_win_probability],
            ["expected race length", st.expected_length],
            ["expected orphans", st.expected_orphans],
            ["expected others' orphans", st.expected_others_orphans],
            ["expected double-spend income", st.expected_double_spend]]
    print(format_table(["statistic", "value"], rows))
    return 0


def cmd_deadline(args: argparse.Namespace) -> int:
    from repro.core.deadline import deadline_value
    config = AttackConfig.from_ratio(args.alpha, _parse_ratio(args.ratio),
                                     setting=args.setting)
    analysis = deadline_value(config, args.horizon)
    print(f"attack horizon: {analysis.horizon} blocks")
    print(f"total value:    {analysis.total_value:.4f} "
          f"(honest: {analysis.honest_total:.4f})")
    print(f"per block:      {analysis.per_block:.6f} "
          f"(perpetual rate: {analysis.perpetual_rate:.6f})")
    print(f"deadline efficiency: {analysis.deadline_efficiency:.2%}")
    return 0


def _read_request_objs(source: str) -> List:
    import json
    if source == "-":
        lines = sys.stdin.read().splitlines()
    else:
        with open(source) as fh:
            lines = fh.read().splitlines()
    return [json.loads(line) for line in lines if line.strip()]


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from repro.serve.atlas import PolicyAtlas
    from repro.serve.service import (
        RetryPolicy,
        SolverService,
        serve_batch,
        serve_batch_multiprocess,
        serve_tcp,
    )

    atlas = PolicyAtlas(args.atlas, cache_entries=args.cache_entries)
    # Startup scan: rebuild the in-memory index to exactly the on-disk
    # survivors (quarantining corrupt leftovers), so a kill-and-restart
    # resumes with nearest() queries index-only from the first request.
    atlas.scan()

    if args.warm is not None:
        from repro.serve.warm import warm_atlas
        report = warm_atlas(
            atlas, grid=args.warm, fast=args.fast,
            workers=args.processes,
            progress=lambda message: print(message, file=sys.stderr))
        print(f"warm[{report.grid}]: {report.cells} cells -> "
              f"{report.solved} solved, {report.restored} restored "
              f"from journal, {report.skipped} already present; "
              f"atlas now holds {report.entries} entries",
              file=sys.stderr)
        if args.requests is None and args.http is None:
            return 0

    if args.requests is not None and args.processes > 1:
        objs = _read_request_objs(args.requests)
        results = serve_batch_multiprocess(
            args.atlas, objs, args.processes,
            max_concurrency=args.workers,
            max_pending=args.max_pending,
            default_deadline_s=args.deadline,
            retry=RetryPolicy(max_attempts=args.retries + 1),
            seed=args.seed, backend=args.backend)
        for result in results:
            print(json.dumps(result))
        return 0

    async def run() -> int:
        service = SolverService(
            atlas,
            max_concurrency=args.workers,
            max_pending=args.max_pending,
            default_deadline_s=args.deadline,
            retry=RetryPolicy(max_attempts=args.retries + 1),
            seed=args.seed,
            backend=args.backend)
        try:
            if args.requests is not None:
                objs = _read_request_objs(args.requests)
                for result in await serve_batch(service, objs):
                    print(json.dumps(result))
            elif args.http is not None:
                from repro.serve.http import serve_http
                server = await serve_http(service, args.host, args.http)
                print(f"HTTP front-end on {args.host}:{args.http} "
                      f"(POST /solve, GET /health; atlas: {args.atlas}, "
                      f"{len(atlas)} entries); Ctrl-C to stop",
                      file=sys.stderr)
                async with server:
                    await server.serve_forever()
            else:
                server = await serve_tcp(service, args.host, args.port)
                print(f"serving on {args.host}:{args.port} "
                      f"(atlas: {args.atlas}, {len(atlas)} entries); "
                      f"Ctrl-C to stop", file=sys.stderr)
                async with server:
                    await server.serve_forever()
        finally:
            await service.close()
            stats = service.stats
            cache = atlas.stats
            print(f"requests: {stats.requests}, "
                  f"atlas hits: {stats.atlas_hits}, "
                  f"solves: {stats.solves}, "
                  f"coalesced: {stats.coalesced} "
                  f"(hit-rate {stats.coalesce_hit_rate():.2%}), "
                  f"degraded: {stats.degraded}, "
                  f"overloads: {stats.overloads}; "
                  f"cache hit-rate {cache.cache_hit_rate():.2%} "
                  f"({cache.disk_reads} disk reads)", file=sys.stderr)
        return 0

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:
        return 0


def _cmd_chaos_serve(args: argparse.Namespace) -> int:
    import os

    from repro.runtime.faults import ServiceFaultPlan
    from repro.serve.chaos import (
        check_cache_invariants,
        check_service_invariants,
        run_chaos_scenario,
    )
    plan = ServiceFaultPlan(hang_rate=args.hang,
                            hang_seconds=args.hang_seconds,
                            crash_rate=args.crash,
                            corrupt_rate=args.corrupt,
                            clock_skew_s=args.skew, seed=args.seed)
    if args.atlas is None:
        import tempfile
        scratch = tempfile.TemporaryDirectory(prefix="repro-chaos-")
        args.atlas = scratch.name
    report = run_chaos_scenario(plan, args.atlas,
                                requests=args.steps, seed=args.seed)
    summary = report.summary()
    print(f"requests answered: {summary['answered']} "
          f"(by source: {summary['by_source']})")
    print(f"typed errors: {summary['typed_errors']}")
    print(f"solve attempts: {summary['solve_attempts']}, "
          f"faults injected: {summary['injected']}")
    violations = check_service_invariants(report, args.atlas)
    # Cache-coherence suite in a sibling directory (it asserts exact
    # ownership of its atlas, so it must not mix with the chaos run's
    # entries).
    violations += check_cache_invariants(
        os.path.join(args.atlas, "cache-invariants"), seed=args.seed)
    if violations:
        for violation in violations:
            print(f"INVARIANT VIOLATED: {violation}", file=sys.stderr)
        return 1
    print("invariants: ok (service + cache coherence)")
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    if args.serve:
        return _cmd_chaos_serve(args)
    from repro.protocol.params import BUParams
    from repro.runtime import FaultPlan
    from repro.sim.network import NetworkMiner, NetworkSimulation
    plan = FaultPlan(loss_rate=args.loss, delay_rate=args.delay,
                     max_delay=args.max_delay, duplicate_rate=args.duplicate,
                     crash_rate=args.crash, recovery_rate=args.recovery,
                     seed=args.seed)
    miners = [NetworkMiner(f"m{i}", 1.0 / args.miners,
                           BUParams(mg=1.0, eb=1.0, ad=6))
              for i in range(args.miners)]
    sim = NetworkSimulation(miners, rng=np.random.default_rng(args.seed),
                            faults=plan)
    result = sim.run(args.steps)
    sim.check_invariants()
    stats = result.fault_stats
    print(f"steps: {args.steps}, blocks mined: {result.blocks_mined}, "
          f"consensus height: {result.consensus_height}, "
          f"orphans: {result.orphans}")
    print(f"disagreement fraction: {result.disagreement_fraction:.4f}")
    print(f"faults injected: lost={stats.lost} delayed={stats.delayed} "
          f"duplicated={stats.duplicated} withheld={stats.withheld} "
          f"crashes={stats.crashes} mining_skipped={stats.mining_skipped}")
    print("invariants: ok")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.experiments import main as report_main
    argv = []
    if args.fast:
        argv.append("--fast")
    argv.extend(["--output", args.output])
    return report_main(argv)


def cmd_qa(args: argparse.Namespace) -> int:
    from repro.qa.conformance import run_conformance
    report = run_conformance(
        classes=args.classes or None, checks=args.checks or None,
        seeds=args.seeds or None, fast=args.fast,
        workers=args.workers)
    print(report.format_matrix())
    print(f"\n{len(report.cells)} cells, "
          f"{len(report.failures)} failures")
    for cell in report.failures:
        print(f"FAIL {cell.check} on {cell.cls} (seed {cell.seed}): "
              f"error {cell.error:.3e} > tol {cell.tolerance:.3e}"
              f"{' -- ' + cell.detail if cell.detail else ''}")
    if args.report is not None:
        import os
        parent = os.path.dirname(args.report)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(args.report, "w") as fh:
            fh.write(report.to_json())
        print(f"report written to {args.report}", file=sys.stderr)
    return 0 if report.all_passed else 1


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.runtime.telemetry import load_trace, summarize_trace
    print(summarize_trace(load_trace(args.file)))
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.runtime.bench import main as bench_main
    argv = list(args.names)
    if args.fast:
        argv.append("--fast")
    argv.extend(["--output-dir", args.output_dir])
    if args.baseline is not None:
        argv.extend(["--baseline", args.baseline])
    argv.extend(["--max-regression", str(args.max_regression)])
    argv.extend(["--repeat", str(args.repeat)])
    if args.backend is not None:
        argv.extend(["--backend", args.backend])
    if args.min_speedup is not None:
        argv.extend(["--min-speedup", str(args.min_speedup)])
    return bench_main(argv)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Analyzing Bitcoin Unlimited "
                    "Mining Protocol' (CoNEXT 2017)")
    sub = parser.add_subparsers(dest="command", required=True)

    attack = sub.add_parser("attack", help="solve one attack scenario")
    attack.add_argument("--alpha", type=float, default=0.25)
    attack.add_argument("--ratio", default="2:3",
                        help="beta:gamma, e.g. 2:3")
    attack.add_argument("--setting", type=int, choices=(1, 2), default=1)
    attack.add_argument("--ad", type=int, default=6)
    attack.add_argument("--model", choices=sorted(_MODELS),
                        default="relative")
    attack.add_argument("--timeout", type=float, default=None,
                        help="wall-clock budget in seconds (supervised "
                             "solve with fallback chain)")
    _add_trace_flag(attack)
    _add_backend_flag(attack)
    _add_ratio_method_flag(attack)
    _add_engine_flag(attack)
    attack.set_defaults(func=cmd_attack)

    tables = sub.add_parser("tables", help="regenerate paper tables")
    tables.add_argument("which", nargs="?", default="all",
                        choices=("table2", "table3", "table4", "all"))
    tables.add_argument("--fast", action="store_true")
    tables.add_argument("--workers", type=int, default=1, metavar="N",
                        help="solve cells on N parallel processes")
    tables.add_argument("--journal", default=None, metavar="DIR",
                        help="checkpoint directory; an interrupted run "
                             "resumes from it without re-solving")
    _add_trace_flag(tables)
    _add_backend_flag(tables)
    _add_scheduler_flag(tables)
    _add_ratio_method_flag(tables)
    _add_engine_flag(tables)
    tables.set_defaults(func=cmd_tables)

    figures = sub.add_parser("figures", help="replay Figures 1-3")
    figures.set_defaults(func=cmd_figures)

    games = sub.add_parser("games", help="play the Section 5 games")
    games.set_defaults(func=cmd_games)

    validate = sub.add_parser("validate",
                              help="cross-check MDP vs simulator")
    validate.add_argument("--alpha", type=float, default=0.10)
    validate.add_argument("--ratio", default="1:1")
    validate.add_argument("--setting", type=int, choices=(1, 2), default=1)
    validate.add_argument("--model", choices=sorted(_MODELS),
                          default="absolute")
    validate.add_argument("--steps", type=int, default=50_000)
    validate.add_argument("--seed", type=int, default=0)
    validate.add_argument("--seeds", type=int, default=1, metavar="N",
                          help="independent seeds for a multi-seed "
                               "statistical report (default 1)")
    validate.add_argument("--trajectories", type=int, default=1,
                          metavar="B", help="trajectories per seed "
                          "(default 1)")
    validate.add_argument("--workers", type=int, default=1, metavar="N",
                          help="worker processes for the seed fan-out "
                               "(default 1; results are identical for "
                               "any worker count)")
    validate.add_argument("--engine", choices=("substrate", "rollout"),
                          default="substrate",
                          help="sampler: the BU substrate simulator or "
                               "the vectorized MDP rollout engine")
    validate.add_argument("--method", choices=("cdf", "alias"),
                          default="cdf",
                          help="rollout-engine sampling method: 'cdf' "
                               "(serial-identical) or 'alias' (O(1) "
                               "Walker/Vose draws; tables are built "
                               "once and shared across workers)")
    _add_trace_flag(validate)
    _add_backend_flag(validate)
    _add_scheduler_flag(validate)
    validate.set_defaults(func=cmd_validate)

    latency = sub.add_parser("latency", help="propagation-delay forks")
    latency.add_argument("--miners", type=int, default=5)
    latency.add_argument("--interval", type=float, default=600.0)
    latency.add_argument("--delay", type=float, default=30.0)
    latency.add_argument("--blocks", type=int, default=2000)
    latency.add_argument("--seed", type=int, default=0)
    latency.set_defaults(func=cmd_latency)

    race = sub.add_parser("race", help="per-race fork statistics")
    race.add_argument("--alpha", type=float, default=0.10)
    race.add_argument("--ratio", default="1:1")
    race.add_argument("--setting", type=int, choices=(1, 2), default=1)
    race.add_argument("--strategy", choices=("pump", "wait"),
                      default="pump")
    race.set_defaults(func=cmd_race)

    deadline = sub.add_parser("deadline", help="time-limited attack")
    deadline.add_argument("--alpha", type=float, default=0.25)
    deadline.add_argument("--ratio", default="2:3")
    deadline.add_argument("--setting", type=int, choices=(1, 2), default=1)
    deadline.add_argument("--horizon", type=int, default=144)
    deadline.set_defaults(func=cmd_deadline)

    report = sub.add_parser("report",
                            help="paper-vs-measured markdown report")
    report.add_argument("--fast", action="store_true")
    report.add_argument("--output", default="-")
    report.set_defaults(func=cmd_report)

    serve = sub.add_parser("serve",
                           help="answer solve requests from the "
                                "policy atlas")
    serve.add_argument("--atlas", required=True, metavar="DIR",
                       help="policy atlas directory (created on "
                            "demand)")
    serve.add_argument("--requests", default=None, metavar="FILE",
                       help="answer a batch of JSON-lines requests "
                            "from FILE ('-' for stdin) and exit; "
                            "omit to run the TCP front-end")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8787)
    serve.add_argument("--http", type=int, default=None, metavar="PORT",
                       help="run the HTTP front-end on PORT instead of "
                            "the JSON-lines TCP front-end (POST /solve, "
                            "GET /health)")
    serve.add_argument("--warm", nargs="?", const="paper", default=None,
                       choices=_WARM_GRIDS, metavar="GRID",
                       help="precompute a paper parameter grid into "
                            "the atlas first (journal-resumable; one "
                            f"of {', '.join(_WARM_GRIDS)}; default "
                            "'paper'), then exit unless --requests or "
                            "--http is also given")
    serve.add_argument("--fast", action="store_true",
                       help="with --warm: shrink the grid to "
                            "development/CI size")
    serve.add_argument("--processes", type=int, default=1, metavar="N",
                       help="worker processes sharing the atlas "
                            "directory (fans out --warm solves and "
                            "--requests batches; telemetry merges "
                            "worker-count independent)")
    serve.add_argument("--workers", type=int, default=2,
                       help="concurrent solves (per process)")
    serve.add_argument("--max-pending", type=int, default=16,
                       help="admission-control bound on in-flight "
                            "solves (excess requests get a typed 429)")
    serve.add_argument("--deadline", type=float, default=30.0,
                       help="default per-request deadline (seconds)")
    serve.add_argument("--retries", type=int, default=2,
                       help="retries after a transient solve failure")
    serve.add_argument("--cache-entries", type=int, default=256,
                       metavar="N",
                       help="bound on the in-memory LRU cache of hot "
                            "policy bodies (0 disables body caching)")
    serve.add_argument("--seed", type=int, default=0)
    _add_trace_flag(serve)
    _add_backend_flag(serve)
    _add_scheduler_flag(serve)
    _add_ratio_method_flag(serve)
    serve.set_defaults(func=cmd_serve)

    chaos = sub.add_parser("chaos",
                           help="fault-injected network simulation")
    chaos.add_argument("--miners", type=int, default=4)
    chaos.add_argument("--steps", type=int, default=5000)
    chaos.add_argument("--loss", type=float, default=0.05)
    chaos.add_argument("--delay", type=float, default=0.10)
    chaos.add_argument("--max-delay", type=int, default=3)
    chaos.add_argument("--duplicate", type=float, default=0.05)
    chaos.add_argument("--crash", type=float, default=0.01)
    chaos.add_argument("--recovery", type=float, default=0.5)
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--serve", action="store_true",
                       help="chaos-test the solver service instead of "
                            "the network simulation")
    chaos.add_argument("--atlas", default=None, metavar="DIR",
                       help="atlas directory for --serve (default: a "
                            "scratch directory)")
    chaos.add_argument("--hang", type=float, default=0.2,
                       help="--serve: per-attempt solver hang rate")
    chaos.add_argument("--hang-seconds", type=float, default=5.0,
                       help="--serve: injected hang duration")
    chaos.add_argument("--corrupt", type=float, default=0.2,
                       help="--serve: per-write artifact corruption "
                            "rate")
    chaos.add_argument("--skew", type=float, default=0.5,
                       help="--serve: service clock skew (seconds)")
    _add_trace_flag(chaos)
    chaos.set_defaults(func=cmd_chaos)

    bench = sub.add_parser("bench",
                           help="pipeline benchmarks -> BENCH_*.json")
    bench.add_argument("names", nargs="*",
                       help="benchmarks to run (default: all)")
    bench.add_argument("--fast", action="store_true",
                       help="shrink the MDPs for a CI smoke run")
    bench.add_argument("--output-dir", default=".", metavar="DIR")
    bench.add_argument("--baseline", default=None, metavar="DIR",
                       help="committed BENCH_*.json directory to gate "
                            "against")
    bench.add_argument("--max-regression", type=float, default=2.0,
                       metavar="X")
    bench.add_argument("--repeat", type=int, default=1, metavar="N")
    bench.add_argument("--min-speedup", type=float, default=None,
                       metavar="X",
                       help="with a non-numpy --backend: fail unless "
                            "each benchmark beats the numpy baseline "
                            "by a factor of X")
    _add_trace_flag(bench)
    _add_backend_flag(bench)
    _add_ratio_method_flag(bench)
    _add_engine_flag(bench)
    bench.set_defaults(func=cmd_bench)

    qa = sub.add_parser("qa",
                        help="cross-solver conformance vs exact "
                             "rational reference")
    qa.add_argument("--fast", action="store_true",
                    help="single-seed sample of the matrix (CI smoke)")
    qa.add_argument("--seeds", type=int, nargs="*", default=None,
                    metavar="S", help="explicit instance seeds "
                    "(default: 0 with --fast, 0 1 2 otherwise)")
    qa.add_argument("--classes", nargs="*", default=None, metavar="CLS",
                    help="instance classes to cover (default: all)")
    qa.add_argument("--checks", nargs="*", default=None, metavar="CHK",
                    help="checks to run (default: all)")
    qa.add_argument("--workers", type=int, default=1, metavar="N",
                    help="fan cells out over N worker processes")
    qa.add_argument("--report", default=None, metavar="FILE",
                    help="also write the full cell list as JSON")
    _add_trace_flag(qa)
    _add_backend_flag(qa)
    _add_scheduler_flag(qa)
    _add_ratio_method_flag(qa)
    qa.set_defaults(func=cmd_qa)

    trace = sub.add_parser("trace",
                           help="summarize a --trace JSONL file")
    trace.add_argument("file", help="trace file written by --trace")
    trace.set_defaults(func=cmd_trace)
    return parser


def _add_trace_flag(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--trace", default=None, metavar="FILE",
                     help="enable telemetry and write the trace as "
                          "JSONL to FILE (inspect with 'repro trace')")


def _add_backend_flag(sub: argparse.ArgumentParser) -> None:
    from repro.mdp.backends import BACKEND_NAMES
    sub.add_argument("--backend", default=None, choices=BACKEND_NAMES,
                     help="compute backend for the Bellman/rollout "
                          "kernels ('numba' degrades to numpy with a "
                          "warning when unavailable)")


def _add_engine_flag(sub: argparse.ArgumentParser) -> None:
    from repro.mdp.approx import ENGINE_NAMES
    sub.add_argument("--engine", default=None, choices=ENGINE_NAMES,
                     dest="solve_engine",
                     help="average-reward solve engine: 'exact' "
                          "(LU-backed policy iteration, the default) "
                          "or 'approx' (prioritized asynchronous VI "
                          "with certified a-posteriori bounds; only "
                          "models above the size threshold take the "
                          "approximate path)")


def _add_ratio_method_flag(sub: argparse.ArgumentParser) -> None:
    from repro.mdp.ratio import RATIO_METHODS
    sub.add_argument("--ratio-method", default=None,
                     choices=RATIO_METHODS, dest="ratio_method",
                     help="ratio-objective method for relative-revenue "
                          "and orphan-rate solves (default: dinkelbach; "
                          "'pto' uses the probabilistic-termination "
                          "reduction)")


def _add_scheduler_flag(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--scheduler", default=None, metavar="SPEC",
                     help="cell execution strategy: 'serial', "
                          "'process', 'process:N' or 'spec:FILE' "
                          "(default: a local process pool sized by "
                          "--workers)")


def _apply_runtime_flags(args: argparse.Namespace) -> None:
    """Install the ``--backend`` / ``--scheduler`` selections before
    dispatching a subcommand.

    The backend is both selected in-process and exported through
    ``REPRO_BACKEND`` so worker processes started with the ``spawn``
    method (which inherit no module globals) resolve to the same
    choice.
    """
    backend = getattr(args, "backend", None)
    if backend is not None:
        import os

        from repro.mdp import backends
        os.environ[backends.BACKEND_ENV] = backend
        backends.set_backend(backend)
    ratio_method = getattr(args, "ratio_method", None)
    if ratio_method is not None:
        import os

        from repro.mdp import ratio
        os.environ[ratio.RATIO_METHOD_ENV] = ratio_method
        ratio.set_ratio_method(ratio_method)
    engine = getattr(args, "solve_engine", None)
    if engine is not None:
        import os

        from repro.mdp import approx
        os.environ[approx.ENGINE_ENV] = engine
        approx.set_engine(engine)
    spec = getattr(args, "scheduler", None)
    if spec is not None:
        from repro.runtime.parallel import make_scheduler, \
            set_default_scheduler
        set_default_scheduler(make_scheduler(spec))


def _run_traced(args: argparse.Namespace) -> int:
    """Dispatch ``args.func``, wrapping it in a telemetry session when
    the subcommand was given ``--trace FILE``."""
    _apply_runtime_flags(args)
    trace_path = getattr(args, "trace", None)
    if trace_path is None:
        return args.func(args)
    from repro.runtime.telemetry import disable_tracing, enable_tracing
    tracer = enable_tracing()
    try:
        return args.func(args)
    finally:
        disable_tracing()
        tracer.write(trace_path)
        print(f"trace written to {trace_path}", file=sys.stderr)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _run_traced(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
