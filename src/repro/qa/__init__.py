"""Differential-testing and conformance tooling (``repro.qa``).

The paper's headline numbers rest on the agreement of five independent
solver paths (value iteration, policy iteration, relative value
iteration, the occupation-measure LP and the Dinkelbach/bisection ratio
solvers).  Nothing in the float solvers themselves can certify that
agreement -- a confidently-wrong solver produces finite, plausible
numbers.  This package closes that gap:

- :mod:`repro.qa.exact` -- ``fractions.Fraction`` reference
  implementations of policy evaluation (gain/bias), stationary
  distributions, Howard policy iteration, discounted solves and the
  Dinkelbach ratio iteration.  They terminate with exact rational
  certificates (``f(rho*) == 0``) instead of float tolerances.
- :mod:`repro.qa.generators` -- seeded adversarial MDP instance
  generators: unichain, multichain, periodic chains, near-degenerate
  probabilities (~1e-12 mass), duplicated actions and reward channels
  spanning ~8 orders of magnitude.  Probabilities and rewards are
  dyadic rationals, so ``Fraction(float)`` round-trips exactly and the
  exact solvers stay fast.
- :mod:`repro.qa.conformance` -- the differential runner: every float
  solver runs on the same instances and is checked against the exact
  reference within certified per-solver tolerances, producing a
  per-(solver, instance-class) matrix; metamorphic invariants (reward
  shift/scale equivariance, state-permutation invariance,
  duplicate-action no-op) ride along.

Entry points: the ``repro qa`` CLI command, the ``conformance`` pytest
marker, and :func:`repro.qa.conformance.run_conformance` for
programmatic use.  See ``docs/correctness.md``.
"""

from repro.qa.exact import (
    ExactAverageSolution,
    ExactDiscountedSolution,
    ExactRatioSolution,
    exact_channel_gains,
    exact_discounted_solve,
    exact_gain_bias,
    exact_policy_iteration,
    exact_ratio,
    exact_stationary,
)
from repro.qa.generators import (
    INSTANCE_CLASSES,
    QAInstance,
    make_instance,
    permute_mdp,
    with_duplicate_action,
)
from repro.qa.conformance import (
    CHECKS,
    ConformanceCell,
    ConformanceReport,
    run_cell,
    run_conformance,
)

__all__ = [
    "ExactAverageSolution",
    "ExactDiscountedSolution",
    "ExactRatioSolution",
    "exact_channel_gains",
    "exact_discounted_solve",
    "exact_gain_bias",
    "exact_policy_iteration",
    "exact_ratio",
    "exact_stationary",
    "INSTANCE_CLASSES",
    "QAInstance",
    "make_instance",
    "permute_mdp",
    "with_duplicate_action",
    "CHECKS",
    "ConformanceCell",
    "ConformanceReport",
    "run_cell",
    "run_conformance",
]
