"""Exact-arithmetic reference solvers over ``fractions.Fraction``.

Every float solver in :mod:`repro.mdp` stops at a tolerance; a solver
that is *confidently wrong* (singular system, scale-blind acceptance
test, silently-degenerate fallback) still returns finite numbers.  The
references here run the same mathematics over exact rationals, so they
terminate with certificates instead of tolerances:

- policy evaluation solves the pinned average-reward system exactly and
  *proves* singularity (a failed pivot) instead of returning round-off;
- Howard policy iteration terminates when no action improves under an
  exact comparison;
- the Dinkelbach ratio iteration terminates at an exact fixed point
  ``f(rho*) == 0`` -- a rational certificate of optimality.

Converting floats via ``Fraction(x)`` is exact (every finite binary
float is rational), so the reference solves *the float matrix the
production solvers saw*, not an idealized sibling.  Intended for the
small adversarial instances of :mod:`repro.qa.generators` (n <= ~10);
cost grows quickly with state count because rational entries widen
under elimination.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

from repro.errors import SolverError
from repro.mdp.model import MDP

ZERO = Fraction(0)
ONE = Fraction(1)


class ExactSingularError(SolverError):
    """An exact linear solve certified that the system is singular
    (e.g. a multichain policy's evaluation or stationary system)."""


# -- exact linear algebra ------------------------------------------------

def solve_linear_exact(a: List[List[Fraction]],
                       b: List[Fraction]) -> List[Fraction]:
    """Solve ``a x = b`` by Gaussian elimination over ``Fraction``.

    Raises :class:`ExactSingularError` when a pivot column is exactly
    zero -- unlike a float solve, this is a *proof* of singularity, not
    a tolerance call.
    """
    n = len(a)
    aug = [row[:] + [b[i]] for i, row in enumerate(a)]
    for col in range(n):
        pivot_row = None
        for r in range(col, n):
            if aug[r][col] != 0:
                pivot_row = r
                break
        if pivot_row is None:
            raise ExactSingularError(
                f"exact solve: singular system (pivot column {col} is "
                "zero)")
        if pivot_row != col:
            aug[col], aug[pivot_row] = aug[pivot_row], aug[col]
        pivot = aug[col][col]
        for r in range(col + 1, n):
            factor = aug[r][col]
            if factor == 0:
                continue
            factor /= pivot
            row_r, row_c = aug[r], aug[col]
            for c in range(col, n + 1):
                row_r[c] -= factor * row_c[c]
    x = [ZERO] * n
    for r in range(n - 1, -1, -1):
        acc = aug[r][n]
        row = aug[r]
        for c in range(r + 1, n):
            acc -= row[c] * x[c]
        x[r] = acc / row[r]
    return x


def _frac_rows(p: sparse.csr_matrix) -> List[Dict[int, Fraction]]:
    """Sparse rows of a CSR matrix as ``{col: Fraction}`` dicts."""
    p = sparse.csr_matrix(p)
    rows: List[Dict[int, Fraction]] = []
    for s in range(p.shape[0]):
        lo, hi = p.indptr[s], p.indptr[s + 1]
        rows.append({int(t): Fraction(float(v))
                     for t, v in zip(p.indices[lo:hi], p.data[lo:hi])
                     if v != 0.0})
    return rows


def _policy_rows(mdp: MDP,
                 policy: Sequence[int]) -> List[Dict[int, Fraction]]:
    """Rows of the policy-induced chain as Fraction dicts."""
    rows: List[Dict[int, Fraction]] = []
    for s, a in enumerate(policy):
        mat = mdp.transition[int(a)]
        lo, hi = mat.indptr[s], mat.indptr[s + 1]
        rows.append({int(t): Fraction(float(v))
                     for t, v in zip(mat.indices[lo:hi], mat.data[lo:hi])
                     if v != 0.0})
    return rows


def combined_reward_frac(mdp: MDP, weights: Mapping[str, Fraction]
                         ) -> List[List[Fraction]]:
    """Exact ``(A, N)`` reward table for a weighted channel combination
    (the rational analogue of :meth:`repro.mdp.model.MDP.combined_reward`)."""
    a, n = mdp.n_actions, mdp.n_states
    out = [[ZERO] * n for _ in range(a)]
    for name, w in weights.items():
        w = Fraction(w)
        if w == 0:
            continue
        channel = mdp.channel_reward(name)
        for ai in range(a):
            row = out[ai]
            crow = channel[ai]
            for s in range(n):
                v = crow[s]
                if v != 0.0:
                    row[s] += w * Fraction(float(v))
    return out


def _reward_table(mdp: MDP, reward) -> List[List[Fraction]]:
    """Normalize a reward spec (channel name, float ``(A, N)`` array or
    Fraction table) to an exact ``(A, N)`` Fraction table."""
    if isinstance(reward, str):
        return combined_reward_frac(mdp, {reward: ONE})
    if isinstance(reward, np.ndarray):
        return [[Fraction(float(v)) for v in row] for row in reward]
    return reward  # already a Fraction table


# -- chain structure ----------------------------------------------------

def _reachable(rows: List[Dict[int, Fraction]], start: int) -> List[int]:
    seen = {start}
    frontier = [start]
    while frontier:
        s = frontier.pop()
        for t in rows[s]:
            if t not in seen:
                seen.add(t)
                frontier.append(t)
    return sorted(seen)


def closed_classes(rows: List[Dict[int, Fraction]]) -> List[List[int]]:
    """Closed recurrent classes of a chain given as Fraction rows
    (Tarjan SCCs with no outgoing edges)."""
    n = len(rows)
    index = [0] * n
    low = [0] * n
    on_stack = [False] * n
    visited = [False] * n
    stack: List[int] = []
    sccs: List[List[int]] = []
    counter = [1]

    def strongconnect(root: int) -> None:
        work = [(root, iter(rows[root]))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        visited[root] = True
        stack.append(root)
        on_stack[root] = True
        while work:
            v, it = work[-1]
            advanced = False
            for w in it:
                if not visited[w]:
                    index[w] = low[w] = counter[0]
                    counter[0] += 1
                    visited[w] = True
                    stack.append(w)
                    on_stack[w] = True
                    work.append((w, iter(rows[w])))
                    advanced = True
                    break
                if on_stack[w]:
                    low[v] = min(low[v], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[v])
            if low[v] == index[v]:
                comp = []
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    comp.append(w)
                    if w == v:
                        break
                sccs.append(sorted(comp))

    for s in range(n):
        if not visited[s]:
            strongconnect(s)

    closed = []
    for comp in sccs:
        members = set(comp)
        if all(t in members for s in comp for t in rows[s]):
            closed.append(comp)
    return closed


# -- stationary distribution ---------------------------------------------

def _stationary_on_class(rows: List[Dict[int, Fraction]],
                         members: List[int]) -> List[Fraction]:
    """Exact stationary distribution restricted to one closed class."""
    pos = {s: i for i, s in enumerate(members)}
    m = len(members)
    # Columns of (P^T - I) restricted to the class, last row replaced
    # by the normalization -- the same construction the float path uses.
    a = [[ZERO] * m for _ in range(m)]
    for s in members:
        i = pos[s]
        for t, v in rows[s].items():
            a[pos[t]][i] += v
        a[i][i] -= ONE
    for j in range(m):
        a[m - 1][j] = ONE
    b = [ZERO] * m
    b[m - 1] = ONE
    pi = solve_linear_exact(a, b)
    if any(v < 0 for v in pi):
        # Round-off cannot occur in exact arithmetic; a negative mass
        # means the selected class was not actually closed.
        raise SolverError("exact stationary produced negative mass; the "
                          "selected class is not closed")
    return pi


def exact_stationary(p, start: Optional[int] = None) -> List[Fraction]:
    """Exact stationary distribution of a row-stochastic matrix.

    With ``start`` given, the distribution is taken over the unique
    closed recurrent class reachable from ``start`` (transient states
    get exact zero mass); if several closed classes are reachable the
    long-run distribution depends on the sample path and a
    :class:`~repro.errors.SolverError` is raised.  Without ``start``
    the chain must have a single closed class.
    """
    rows = _frac_rows(p) if not isinstance(p, list) else p
    n = len(rows)
    classes = closed_classes(rows)
    if start is not None:
        reach = set(_reachable(rows, int(start)))
        classes = [c for c in classes if set(c) <= reach]
        if len(classes) != 1:
            raise SolverError(
                f"start state {start} reaches {len(classes)} closed "
                "recurrent classes; the stationary distribution is not "
                "determined by the start state")
    elif len(classes) != 1:
        raise SolverError(
            f"chain has {len(classes)} closed recurrent classes; pass "
            "start= to select the one reachable from a start state")
    members = classes[0]
    pi_class = _stationary_on_class(rows, members)
    pi = [ZERO] * n
    for s, v in zip(members, pi_class):
        pi[s] = v
    return pi


# -- policy evaluation ----------------------------------------------------

@dataclass
class ExactAverageSolution:
    """Exact analogue of
    :class:`repro.mdp.policy_iteration.AverageRewardSolution`."""

    gain: Fraction
    bias: List[Fraction]
    policy: np.ndarray
    iterations: int


def exact_gain_bias(mdp: MDP, policy: Sequence[int],
                    reward) -> Tuple[Fraction, List[Fraction]]:
    """Exact gain and bias of ``policy`` (bias pinned to zero at the
    MDP's start state, matching the float evaluation system).

    ``reward`` may be a channel name, a float ``(A, N)`` array or an
    exact Fraction table.  Raises :class:`ExactSingularError` when the
    evaluation system is singular (a multichain policy) -- a certified
    failure, where the float path can return round-off garbage.
    """
    table = _reward_table(mdp, reward)
    rows = _policy_rows(mdp, policy)
    n = mdp.n_states
    # [[I - P_pi, 1], [e_start, 0]] [h; g] = [r_pi; 0]
    a = [[ZERO] * (n + 1) for _ in range(n + 1)]
    b = [ZERO] * (n + 1)
    for s in range(n):
        a[s][s] += ONE
        for t, v in rows[s].items():
            a[s][t] -= v
        a[s][n] = ONE
        b[s] = table[int(policy[s])][s]
    a[n][mdp.start] = ONE
    solution = solve_linear_exact(a, b)
    return solution[n], solution[:n]


def exact_channel_gains(mdp: MDP, policy: Sequence[int],
                        channels: Optional[Iterable[str]] = None
                        ) -> Dict[str, Fraction]:
    """Exact per-channel long-run rates ``pi . r_pi`` under ``policy``,
    with ``pi`` the stationary distribution of the recurrent class
    reachable from the MDP's start state."""
    rows = _policy_rows(mdp, policy)
    pi = exact_stationary(rows, start=mdp.start)
    names = list(channels) if channels is not None else mdp.channels
    out: Dict[str, Fraction] = {}
    for name in names:
        r = mdp.channel_reward(name)
        total = ZERO
        for s, mass in enumerate(pi):
            if mass != 0:
                v = r[int(policy[s]), s]
                if v != 0.0:
                    total += mass * Fraction(float(v))
        out[name] = total
    return out


# -- optimal control -------------------------------------------------------

def _default_policy(mdp: MDP) -> np.ndarray:
    return np.asarray(mdp.available.argmax(axis=0), dtype=int)


def _exact_q(mdp: MDP, table: List[List[Fraction]],
             values: List[Fraction],
             discount: Fraction) -> List[List[Optional[Fraction]]]:
    """Exact Q table; unavailable pairs are ``None``."""
    q: List[List[Optional[Fraction]]] = []
    for a in range(mdp.n_actions):
        mat = mdp.transition[a]
        row: List[Optional[Fraction]] = []
        for s in range(mdp.n_states):
            if not mdp.available[a, s]:
                row.append(None)
                continue
            lo, hi = mat.indptr[s], mat.indptr[s + 1]
            acc = ZERO
            for t, v in zip(mat.indices[lo:hi], mat.data[lo:hi]):
                if v != 0.0:
                    acc += Fraction(float(v)) * values[int(t)]
            row.append(table[a][s] + discount * acc)
        q.append(row)
    return q


def _greedy_improve(mdp: MDP, q: List[List[Optional[Fraction]]],
                    policy: np.ndarray) -> Tuple[np.ndarray, bool]:
    """One exact improvement step, ties broken for the incumbent."""
    new_policy = policy.copy()
    changed = False
    for s in range(mdp.n_states):
        incumbent = q[int(policy[s])][s]
        best_a, best_v = int(policy[s]), incumbent
        for a in range(mdp.n_actions):
            v = q[a][s]
            if v is not None and v > best_v:
                best_a, best_v = a, v
        if best_v > incumbent:
            new_policy[s] = best_a
            changed = True
    return new_policy, changed


def exact_policy_iteration(mdp: MDP, reward,
                           max_iter: int = 1000) -> ExactAverageSolution:
    """Howard policy iteration with exact evaluation and comparison.

    Terminates (finitely many policies, exact strict improvement) with
    the *exactly* optimal gain of a unichain average-reward MDP -- the
    certificate every float average-reward solver is checked against.
    """
    table = _reward_table(mdp, reward)
    policy = _default_policy(mdp)
    for it in range(1, max_iter + 1):
        gain, bias = exact_gain_bias(mdp, policy, table)
        q = _exact_q(mdp, table, bias, ONE)
        policy, changed = _greedy_improve(mdp, q, policy)
        if not changed:
            return ExactAverageSolution(gain=gain, bias=bias,
                                        policy=policy, iterations=it)
    raise SolverError(
        f"exact policy iteration did not converge in {max_iter} "
        "improvements")


@dataclass
class ExactDiscountedSolution:
    """Exact analogue of
    :class:`repro.mdp.value_iteration.DiscountedSolution`."""

    values: List[Fraction]
    policy: np.ndarray
    iterations: int


def _exact_discounted_values(mdp: MDP, table: List[List[Fraction]],
                             policy: Sequence[int],
                             discount: Fraction) -> List[Fraction]:
    rows = _policy_rows(mdp, policy)
    n = mdp.n_states
    a = [[ZERO] * n for _ in range(n)]
    b = [ZERO] * n
    for s in range(n):
        a[s][s] += ONE
        for t, v in rows[s].items():
            a[s][t] -= discount * v
        b[s] = table[int(policy[s])][s]
    return solve_linear_exact(a, b)


def exact_discounted_solve(mdp: MDP, reward, discount,
                           max_iter: int = 1000
                           ) -> ExactDiscountedSolution:
    """Exactly optimal discounted values/policy via policy iteration
    over Fractions (``(I - gamma P_pi) v = r_pi`` solved exactly).
    The reference for :func:`repro.mdp.value_iteration.value_iteration`."""
    # Fraction(float) is exact, so a float discount is solved at the
    # exact binary value the float solver used, not a prettier rational.
    discount = Fraction(discount)
    if not 0 < discount < 1:
        raise SolverError("discount must lie in (0, 1)")
    table = _reward_table(mdp, reward)
    policy = _default_policy(mdp)
    for it in range(1, max_iter + 1):
        values = _exact_discounted_values(mdp, table, policy, discount)
        q = _exact_q(mdp, table, values, discount)
        policy, changed = _greedy_improve(mdp, q, policy)
        if not changed:
            return ExactDiscountedSolution(values=values, policy=policy,
                                           iterations=it)
    raise SolverError(
        f"exact discounted solve did not converge in {max_iter} "
        "improvements")


# -- ratio objective --------------------------------------------------------

@dataclass
class ExactRatioSolution:
    """Exact analogue of :class:`repro.mdp.ratio.RatioSolution`.

    ``certificate`` is the exact optimal gain of the transformed
    problem at ``value`` -- zero iff ``value`` is exactly optimal
    (Dinkelbach's optimality condition ``f(rho*) == 0``).
    """

    value: Fraction
    policy: np.ndarray
    gain_num: Fraction
    gain_den: Fraction
    iterations: int
    certificate: Fraction


def exact_ratio(mdp: MDP, num: Mapping[str, float],
                den: Mapping[str, float],
                max_iter: int = 100) -> ExactRatioSolution:
    """Exact Dinkelbach iteration for ``gain(num) / gain(den)``.

    Every policy encountered must have a strictly positive denominator
    rate (the generators in :mod:`repro.qa.generators` guarantee this
    by keeping denominator rewards positive everywhere).  Terminates at
    an exact fixed point: the returned ``certificate`` is
    ``max_policy gain(num - value * den)`` and equals zero exactly.
    """
    num_frac = {c: Fraction(float(w)) for c, w in num.items()}
    den_frac = {c: Fraction(float(w)) for c, w in den.items()}
    num_table = combined_reward_frac(mdp, num_frac)
    den_table = combined_reward_frac(mdp, den_frac)

    def gains_of(policy: np.ndarray) -> Tuple[Fraction, Fraction]:
        channels = set(num_frac) | set(den_frac)
        g = exact_channel_gains(mdp, policy, channels)
        g_num = sum((w * g[c] for c, w in num_frac.items()), ZERO)
        g_den = sum((w * g[c] for c, w in den_frac.items()), ZERO)
        return g_num, g_den

    policy = _default_policy(mdp)
    g_num, g_den = gains_of(policy)
    if g_den == 0:
        raise SolverError("exact ratio: start policy has zero "
                          "denominator rate")
    rho = g_num / g_den
    a, n = mdp.n_actions, mdp.n_states
    for it in range(1, max_iter + 1):
        table = [[num_table[ai][s] - rho * den_table[ai][s]
                  for s in range(n)] for ai in range(a)]
        solution = exact_policy_iteration(mdp, table)
        if solution.gain == 0:
            return ExactRatioSolution(
                value=rho, policy=policy, gain_num=g_num, gain_den=g_den,
                iterations=it, certificate=solution.gain)
        if solution.gain < 0:
            raise SolverError(
                "exact ratio: transformed gain went negative "
                f"(f({rho}) = {solution.gain}); the iteration started "
                "above the optimum")
        policy = solution.policy
        g_num, g_den = gains_of(policy)
        if g_den == 0:
            raise SolverError("exact ratio: encountered a policy with "
                              "zero denominator rate")
        rho = g_num / g_den
    raise SolverError(
        f"exact ratio did not reach a fixed point in {max_iter} "
        "transformed solves")
