"""Cross-solver differential conformance runner.

Runs every float solver path on the same generated instances (see
:mod:`repro.qa.generators`) and checks each against the exact rational
reference (:mod:`repro.qa.exact`) within a certified per-solver
tolerance, producing a per-(check, instance-class) matrix.  Checks:

========================  ==============================================
``vi``                    discounted value iteration vs exact
                          discounted policy iteration
``pi``                    Howard policy iteration gain vs exact gain
``rvi``                   relative value iteration gain vs exact gain
``lp``                    occupation-measure LP gain vs exact gain
``ratio-dinkelbach``      Dinkelbach ratio solve vs exact fixed point
                          (and: must not silently fall back)
``ratio-bisection``       bisection ratio solve vs exact fixed point
``ratio-pto``             probabilistic-termination (PTO) ratio solve
                          vs exact fixed point (and: must not silently
                          fall back)
``approx``                prioritized asynchronous VI engine vs exact
                          gain: the certified a-posteriori bound must
                          contain the true optimum *and* the result
                          must be a genuine :class:`ApproxSolution`
                          (no silent fallback to an exact path)
``mc``                    batched Monte-Carlo rollout of the exact
                          optimal policy (statistical check)
``meta-shift``            gain(r + c) == gain(r) + c
``meta-scale``            gain(c * r) == c * gain(r)
``meta-permute``          gain invariant under state relabeling
``meta-dup``              duplicating an action is a no-op
========================  ==============================================

Every cell is a deterministic function of ``(cls, seed, check)``; a
failure is reproduced with ``run_cell(cls, seed, check)``.  The runner
fans cells out through :func:`repro.runtime.parallel.run_cells`
(``workers > 1``) and is telemetry-instrumented (``qa/*`` counters,
``--trace`` compatible).
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ReproError
from repro.mdp.approx import ApproxSolution, approx_average_reward
from repro.mdp.average_reward import relative_value_iteration
from repro.mdp.linear_programming import lp_average_reward
from repro.mdp.policy_iteration import policy_iteration
from repro.mdp.ratio import maximize_ratio
from repro.mdp.simulate import rollout_batch
from repro.mdp.value_iteration import value_iteration
from repro.qa.exact import (
    exact_discounted_solve,
    exact_policy_iteration,
    exact_ratio,
)
from repro.qa.generators import (
    INSTANCE_CLASSES,
    QAInstance,
    make_instance,
    permute_mdp,
    random_permutation,
    scale_reward,
    shift_reward,
    with_duplicate_action,
)
from repro.runtime.telemetry import counter_add, span

#: All conformance checks, in display order.
CHECKS = ("vi", "pi", "rvi", "lp", "ratio-dinkelbach",
          "ratio-bisection", "ratio-pto", "approx", "mc",
          "meta-shift", "meta-scale", "meta-permute", "meta-dup")

#: Certified relative tolerance per check (see docs/correctness.md for
#: the derivations).  ``mc`` is statistical: its per-cell tolerance is
#: ``max(5 * stderr, truncation bound)`` computed in the cell.
TOLERANCES: Dict[str, float] = {
    "vi": 1e-6,
    "pi": 1e-9,
    "rvi": 1e-6,
    "lp": 1e-6,
    "ratio-dinkelbach": 1e-6,
    "ratio-bisection": 1e-5,
    "ratio-pto": 1e-6,
    "approx": 1e-8,
    "meta-shift": 1e-9,
    "meta-scale": 1e-9,
    "meta-permute": 1e-9,
    "meta-dup": 1e-9,
}

#: Monte-Carlo cell parameters (kept small: the check is statistical,
#: not a throughput benchmark).
MC_TRAJECTORIES = 24
MC_STEPS = 1500
MC_SIGMA = 5.0

#: Default seeds: one for ``--fast`` sampling, three for a full run.
FAST_SEEDS = (0,)
FULL_SEEDS = (0, 1, 2)


@dataclass
class ConformanceCell:
    """Outcome of one (instance class, seed, check) cell.

    ``error`` is the achieved discrepancy and ``tolerance`` the
    certified acceptance threshold; ``passed`` is
    ``error <= tolerance`` (or False with ``detail`` set when the
    solver raised).
    """

    cls: str
    seed: int
    check: str
    passed: bool
    error: float
    tolerance: float
    detail: str = ""

    def as_payload(self) -> Dict:
        """JSON-compatible form (what a parallel worker ships back)."""
        return asdict(self)


def _rel_err(value: float, reference: float) -> float:
    return abs(value - reference) / max(1.0, abs(reference))


def _exact_gain(inst: QAInstance) -> Tuple[float, np.ndarray]:
    solution = exact_policy_iteration(inst.mdp, "num")
    return float(solution.gain), solution.policy


def _check_vi(inst: QAInstance) -> Tuple[float, float, str]:
    reward = inst.mdp.combined_reward(inst.num)
    scale = max(1.0, inst.reward_scale)
    exact = exact_discounted_solve(inst.mdp, "num", inst.discount)
    sol = value_iteration(inst.mdp, reward, inst.discount,
                          epsilon=1e-8 * scale)
    exact_values = np.array([float(v) for v in exact.values])
    err = float(np.abs(sol.values - exact_values).max()
                / max(1.0, float(np.abs(exact_values).max())))
    return err, TOLERANCES["vi"], f"{sol.iterations} sweeps"


def _check_pi(inst: QAInstance) -> Tuple[float, float, str]:
    reward = inst.mdp.combined_reward(inst.num)
    gain_exact, _ = _exact_gain(inst)
    sol = policy_iteration(inst.mdp, reward)
    return (_rel_err(sol.gain, gain_exact), TOLERANCES["pi"],
            f"{sol.iterations} improvements")


def _check_rvi(inst: QAInstance) -> Tuple[float, float, str]:
    reward = inst.mdp.combined_reward(inst.num)
    scale = max(1.0, inst.reward_scale)
    gain_exact, _ = _exact_gain(inst)
    sol = relative_value_iteration(inst.mdp, reward,
                                   epsilon=1e-9 * scale)
    return (_rel_err(sol.gain, gain_exact), TOLERANCES["rvi"],
            f"{sol.iterations} sweeps")


def _check_lp(inst: QAInstance) -> Tuple[float, float, str]:
    reward = inst.mdp.combined_reward(inst.num)
    gain_exact, _ = _exact_gain(inst)
    gain, _policy = lp_average_reward(inst.mdp, reward)
    return _rel_err(gain, gain_exact), TOLERANCES["lp"], ""


def _ratio_bracket(exact_value: float) -> Tuple[float, float]:
    return 0.0, 2.0 * abs(exact_value) + 1.0


def _check_ratio(inst: QAInstance, method: str) -> Tuple[float, float, str]:
    exact = exact_ratio(inst.mdp, inst.num, inst.den)
    lo, hi = _ratio_bracket(float(exact.value))
    sol = maximize_ratio(inst.mdp, inst.num, inst.den, lo=lo, hi=hi,
                         tol=1e-9, method=method)
    err = _rel_err(sol.value, float(exact.value))
    key = f"ratio-{method}"
    if method in ("dinkelbach", "pto") and sol.method != method:
        # A fall-back on a non-degenerate instance means the
        # denominator floor misclassified the problem's scale (for
        # PTO: the terminated system was wrongly deemed singular or
        # its start value fell below the degeneracy floor).
        return (float("inf"), TOLERANCES[key],
                f"fell back to {sol.method}")
    return err, TOLERANCES[key], f"method={sol.method}"


def _check_approx(inst: QAInstance) -> Tuple[float, float, str]:
    reward = inst.mdp.combined_reward(inst.num)
    scale = max(1.0, inst.reward_scale)
    gain_exact, _ = _exact_gain(inst)
    sol = approx_average_reward(inst.mdp, reward, epsilon=1e-9 * scale)
    if not isinstance(sol, ApproxSolution) or sol.sweeps < 1 \
            or not sol.certified:
        # The engine must actually have run its sweeps and certified
        # the answer; anything else is a silent fallback.
        return (float("inf"), TOLERANCES["approx"],
                f"fell back to {type(sol).__name__} "
                f"(sweeps={getattr(sol, 'sweeps', 0)})")
    # The certificate claims gain <= g* <= gain + bound.  Both sides
    # must hold against the exact rational reference (normalized like
    # the other gain checks; slack only for float LU noise).
    denom = max(1.0, abs(gain_exact))
    overshoot = max(0.0, (gain_exact - sol.gain) - sol.bound) / denom
    undershoot = max(0.0, sol.gain - gain_exact) / denom
    err = max(overshoot, undershoot)
    return (err, TOLERANCES["approx"],
            f"{sol.sweeps} sweeps, {sol.queue_pops} pops, "
            f"bound={sol.bound:.1e}")


def _check_mc(inst: QAInstance) -> Tuple[float, float, str]:
    gain_exact, policy = _exact_gain(inst)
    batch = rollout_batch(inst.mdp, policy, steps=MC_STEPS,
                          n_traj=MC_TRAJECTORIES, seed=inst.seed)
    rates = batch.rates("num")
    mean = float(rates.mean())
    stderr = (float(rates.std(ddof=1)) / math.sqrt(len(rates))
              if len(rates) > 1 else 0.0)
    # Deterministic (e.g. periodic) chains have zero variance; the
    # residual error is then the cycle-truncation bias O(n/steps).
    r_pi = inst.mdp.combined_reward(inst.num)[
        policy, np.arange(inst.mdp.n_states)]
    truncation = inst.mdp.n_states * float(np.abs(r_pi).max()) / MC_STEPS
    tolerance = max(MC_SIGMA * stderr, truncation)
    err = abs(mean - gain_exact)
    z = err / stderr if stderr > 0 else float("nan")
    return err, tolerance, f"z={z:.2f}" if stderr > 0 else "deterministic"


def _check_meta_shift(inst: QAInstance) -> Tuple[float, float, str]:
    reward = inst.mdp.combined_reward(inst.num)
    base = policy_iteration(inst.mdp, reward).gain
    delta = 0.375 * max(1.0, inst.reward_scale)
    shifted = shift_reward(inst.mdp, "num", delta)
    gain = policy_iteration(shifted,
                            shifted.combined_reward(inst.num)).gain
    return (_rel_err(gain, base + delta), TOLERANCES["meta-shift"],
            f"delta={delta!r}")


def _check_meta_scale(inst: QAInstance) -> Tuple[float, float, str]:
    reward = inst.mdp.combined_reward(inst.num)
    base = policy_iteration(inst.mdp, reward).gain
    factor = 512.0  # a power of two: scaling the rewards is exact
    scaled = scale_reward(inst.mdp, "num", factor)
    gain = policy_iteration(scaled,
                            scaled.combined_reward(inst.num)).gain
    return (_rel_err(gain, factor * base), TOLERANCES["meta-scale"],
            f"factor={factor}")


def _check_meta_permute(inst: QAInstance) -> Tuple[float, float, str]:
    reward = inst.mdp.combined_reward(inst.num)
    base = policy_iteration(inst.mdp, reward).gain
    perm = random_permutation(inst.seed, inst.mdp.n_states)
    permuted = permute_mdp(inst.mdp, perm)
    gain = policy_iteration(permuted,
                            permuted.combined_reward(inst.num)).gain
    return _rel_err(gain, base), TOLERANCES["meta-permute"], ""


def _check_meta_dup(inst: QAInstance) -> Tuple[float, float, str]:
    reward = inst.mdp.combined_reward(inst.num)
    base = policy_iteration(inst.mdp, reward).gain
    duped = with_duplicate_action(inst.mdp, inst.mdp.actions[0],
                                  alias="qa-dup")
    gain = policy_iteration(duped, duped.combined_reward(inst.num)).gain
    return _rel_err(gain, base), TOLERANCES["meta-dup"], ""


_CHECK_FNS: Dict[str, Callable[[QAInstance], Tuple[float, float, str]]] = {
    "vi": _check_vi,
    "pi": _check_pi,
    "rvi": _check_rvi,
    "lp": _check_lp,
    "ratio-dinkelbach": lambda i: _check_ratio(i, "dinkelbach"),
    "ratio-bisection": lambda i: _check_ratio(i, "bisection"),
    "ratio-pto": lambda i: _check_ratio(i, "pto"),
    "approx": _check_approx,
    "mc": _check_mc,
    "meta-shift": _check_meta_shift,
    "meta-scale": _check_meta_scale,
    "meta-permute": _check_meta_permute,
    "meta-dup": _check_meta_dup,
}


def run_cell(cls: str, seed: int, check: str) -> ConformanceCell:
    """Run one conformance cell; never raises on solver failure (the
    failure becomes a failed cell with the exception in ``detail``)."""
    fn = _CHECK_FNS.get(check)
    if fn is None:
        raise ReproError(f"unknown conformance check {check!r}; known: "
                         f"{list(CHECKS)}")
    inst = make_instance(cls, seed)
    counter_add("qa/cells")
    with span(f"qa/cell/{check}"):
        try:
            error, tolerance, detail = fn(inst)
        except Exception as exc:  # a raising solver is a failing cell
            counter_add("qa/failures")
            return ConformanceCell(
                cls=cls, seed=seed, check=check, passed=False,
                error=float("inf"), tolerance=TOLERANCES.get(check, 0.0),
                detail=f"{type(exc).__name__}: {exc}")
    passed = error <= tolerance
    if not passed:
        counter_add("qa/failures")
    return ConformanceCell(cls=cls, seed=seed, check=check,
                           passed=bool(passed), error=float(error),
                           tolerance=float(tolerance), detail=detail)


def run_cell_payload(cls: str, seed: int, check: str) -> Dict:
    """Worker-process entry point: one cell as a JSON payload."""
    return run_cell(cls, seed, check).as_payload()


class ConformanceReport:
    """All cells of one conformance run, with matrix aggregation."""

    def __init__(self, cells: Sequence[ConformanceCell]) -> None:
        self.cells: List[ConformanceCell] = list(cells)

    @property
    def all_passed(self) -> bool:
        return all(cell.passed for cell in self.cells)

    @property
    def failures(self) -> List[ConformanceCell]:
        return [cell for cell in self.cells if not cell.passed]

    def matrix(self) -> Dict[Tuple[str, str], ConformanceCell]:
        """Worst cell (by ``error / tolerance``) per (check, class)."""
        worst: Dict[Tuple[str, str], ConformanceCell] = {}
        for cell in self.cells:
            key = (cell.check, cell.cls)
            ratio = cell.error / cell.tolerance if cell.tolerance \
                else float("inf")
            incumbent = worst.get(key)
            if incumbent is None:
                worst[key] = cell
                continue
            inc_ratio = incumbent.error / incumbent.tolerance \
                if incumbent.tolerance else float("inf")
            if ratio > inc_ratio:
                worst[key] = cell
        return worst

    def format_matrix(self) -> str:
        """The per-(check, class) matrix as an aligned text table."""
        worst = self.matrix()
        classes = sorted({cls for _, cls in worst})
        checks = [c for c in CHECKS if any(k == c for k, _ in worst)]
        width = max(len(c) for c in ["check"] + list(checks))
        col_w = {cls: max(len(cls), 12) for cls in classes}
        header = "check".ljust(width) + "  " + "  ".join(
            cls.rjust(col_w[cls]) for cls in classes)
        lines = [header, "-" * len(header)]
        for check in checks:
            parts = [check.ljust(width)]
            for cls in classes:
                cell = worst.get((check, cls))
                if cell is None:
                    parts.append("-".rjust(col_w[cls]))
                elif cell.passed:
                    parts.append(f"ok {cell.error:.1e}".rjust(col_w[cls]))
                else:
                    parts.append(f"FAIL {cell.error:.1e}"
                                 .rjust(col_w[cls]))
            lines.append("  ".join(parts))
        return "\n".join(lines)

    def to_json(self) -> str:
        from repro.mdp import backends
        return json.dumps({
            "schema": 1,
            "all_passed": self.all_passed,
            "backend": backends.current_backend_name(),
            "n_cells": len(self.cells),
            "n_failures": len(self.failures),
            "cells": [cell.as_payload() for cell in self.cells],
        }, indent=2, sort_keys=True)


ProgressFn = Optional[Callable[[ConformanceCell], None]]


def run_conformance(classes: Optional[Iterable[str]] = None,
                    checks: Optional[Iterable[str]] = None,
                    seeds: Optional[Iterable[int]] = None,
                    fast: bool = False,
                    workers: int = 1,
                    progress: ProgressFn = None) -> ConformanceReport:
    """Run the conformance matrix and return the report.

    Parameters
    ----------
    classes, checks, seeds:
        Subsets of :data:`~repro.qa.generators.INSTANCE_CLASSES`,
        :data:`CHECKS` and the seed list; defaults cover everything
        (``fast=True`` shrinks seeds to :data:`FAST_SEEDS`).
    workers:
        ``> 1`` fans cells out over worker processes via
        :func:`repro.runtime.parallel.run_cells`; results are
        identical to a serial run.
    progress:
        Optional callback per completed cell.
    """
    classes = tuple(classes) if classes is not None else INSTANCE_CLASSES
    checks = tuple(checks) if checks is not None else CHECKS
    if seeds is None:
        seeds = FAST_SEEDS if fast else FULL_SEEDS
    seeds = tuple(int(s) for s in seeds)
    for cls in classes:
        make_instance(cls, 0)  # validate class names upfront
    unknown = [c for c in checks if c not in _CHECK_FNS]
    if unknown:
        raise ReproError(f"unknown conformance checks {unknown}; known: "
                         f"{list(CHECKS)}")

    from repro.runtime.parallel import SolveTask, run_cells
    tasks = [SolveTask(kind="qa_cell", key=("qa", cls, seed, check),
                       params=(("cls", cls), ("seed", seed),
                               ("check", check)))
             for cls in classes for seed in seeds for check in checks]
    with span("qa/conformance"):
        payloads = run_cells(
            tasks, workers=workers,
            progress=(lambda task, payload:
                      progress(ConformanceCell(**payload)))
            if progress is not None else None)
    report = ConformanceReport([ConformanceCell(**p) for p in payloads])
    counter_add("qa/runs")
    return report
