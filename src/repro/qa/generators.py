"""Seeded generators for adversarial MDP conformance instances.

Each generator produces a small instance designed to stress one known
failure mode of the float solvers:

- ``unichain``     -- the baseline: random dense-ish unichain models.
- ``periodic``     -- a deterministic cycle (period = n); value-style
  iterations oscillate without damping.
- ``near-degenerate`` -- transition mass of ``2**-40`` (~9.1e-13) to a
  rare state; exercises probability floors and stationary solves with
  ~12 orders of magnitude between masses.
- ``wide-scale``   -- reward channels scaled by powers of two spanning
  ~8 decimal orders of magnitude; exercises absolute tolerances
  (the scale-blind ratio acceptance bug) and denominator floors.
- ``duplicate-action`` -- an action duplicated under a second name; any
  tie-break or indexing slip changes the answer.
- ``multichain``   -- two recurrent classes (plus an optional
  transient start); the stationary system is singular, which a solver
  must *report*, not round through.

All probabilities and rewards are dyadic rationals (``k / 2**m`` with
the numerator within float precision), so ``Fraction(float)`` recovers
exactly the intended rational and the exact solvers in
:mod:`repro.qa.exact` stay fast.  Instances are deterministic functions
of ``(cls, seed)``: a failing conformance cell is reproduced by its
class and seed alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

from repro.errors import ReproError
from repro.mdp.builder import MDPBuilder
from repro.mdp.model import MDP

#: Instance classes the conformance runner iterates by default
#: (``multichain`` is deliberately excluded: average-reward solvers
#: assume unichain models, and the class exists to pin the singular
#: stationary-solve regression in targeted tests).
INSTANCE_CLASSES = ("unichain", "periodic", "near-degenerate",
                    "wide-scale", "duplicate-action")

#: Denominator of the dyadic probability grid.
_PROB_GRID = 64

#: The near-degenerate transition mass: dyadic, ~9.1e-13.
RARE_MASS = 2.0 ** -40


@dataclass
class QAInstance:
    """One generated conformance instance.

    Attributes
    ----------
    cls, seed:
        Identity; ``make_instance(cls, seed)`` reproduces the instance
        bit-for-bit.
    mdp:
        The model, with reward channels ``num`` (the average-reward
        test channel) and ``den`` (strictly positive everywhere, so
        every policy has a positive denominator rate and the ratio
        objective is non-degenerate).
    discount:
        Discount factor for the value-iteration check.
    reward_scale:
        ``max |r|`` across both channels -- what scale-aware
        tolerances normalize by.
    """

    cls: str
    seed: int
    mdp: MDP
    discount: float = 0.9
    notes: Dict[str, float] = field(default_factory=dict)

    @property
    def num(self) -> Dict[str, float]:
        return {"num": 1.0}

    @property
    def den(self) -> Dict[str, float]:
        return {"den": 1.0}

    @property
    def reward_scale(self) -> float:
        return max(float(np.abs(r).max())
                   for r in self.mdp.rewards.values())


def _dyadic_probs(rng: np.random.Generator, n: int,
                  ensure_start: bool = True) -> np.ndarray:
    """A random probability row on the ``k/64`` grid (exact in float),
    with a guaranteed path back to state 0 when ``ensure_start``."""
    weights = rng.multinomial(_PROB_GRID, np.full(n, 1.0 / n))
    if ensure_start and weights[0] < _PROB_GRID // 4:
        # Move mass onto the return-to-start edge so every policy's
        # chain is unichain with fast mixing.
        donor = int(np.argmax(weights[1:])) + 1
        move = min(_PROB_GRID // 4 - weights[0], weights[donor])
        weights[0] += move
        weights[donor] -= move
    return weights / _PROB_GRID


def _dyadic_reward(rng: np.random.Generator, lo: int = 0,
                   hi: int = _PROB_GRID) -> float:
    """A reward on the ``k/64`` grid within ``[lo/64, hi/64]``."""
    return int(rng.integers(lo, hi + 1)) / _PROB_GRID


def _random_unichain(rng: np.random.Generator, n_states: int,
                     n_actions: int, num_scale: float = 1.0,
                     den_scale: float = 1.0) -> MDPBuilder:
    """Shared skeleton: every (state, action) row returns to state 0
    with probability >= 1/4, so *every* policy is unichain and mixes
    fast (subdominant eigenvalue <= 3/4)."""
    b = MDPBuilder(actions=[f"a{i}" for i in range(n_actions)],
                   channels=["num", "den"])
    for s in range(n_states):
        for a in range(n_actions):
            probs = _dyadic_probs(rng, n_states)
            num = _dyadic_reward(rng) * num_scale
            # Denominator rewards stay in [1/2, 3/2] * den_scale:
            # strictly positive for every (state, action) pair.
            den = _dyadic_reward(rng, _PROB_GRID // 2,
                                 3 * _PROB_GRID // 2) * den_scale
            for t in range(n_states):
                if probs[t] > 0:
                    b.add(s, f"a{a}", t, float(probs[t]),
                          num=num, den=den)
    return b


def _make_unichain(seed: int) -> QAInstance:
    rng = np.random.default_rng(seed + 7000)
    b = _random_unichain(rng, n_states=6, n_actions=2)
    return QAInstance("unichain", seed, b.build(start=0))


def _make_periodic(seed: int) -> QAInstance:
    """A deterministic n-cycle: the chain has period n, so undamped
    value-style iterations oscillate forever.  Single action -- the
    point is numerical robustness on a periodic chain, not control."""
    rng = np.random.default_rng(seed + 7001)
    n = 5 + seed % 3
    b = MDPBuilder(actions=["cycle"], channels=["num", "den"])
    for s in range(n):
        b.add(s, "cycle", (s + 1) % n, 1.0,
              num=_dyadic_reward(rng),
              den=_dyadic_reward(rng, _PROB_GRID // 2,
                                 3 * _PROB_GRID // 2))
    return QAInstance("periodic", seed, b.build(start=0))


def _make_near_degenerate(seed: int) -> QAInstance:
    """Unichain core plus a rare state entered with probability
    ``2**-40`` from every (state, action) pair.  Stationary mass spans
    ~12 orders of magnitude; probability floors and residual checks
    that assume O(1) entries break here."""
    rng = np.random.default_rng(seed + 7002)
    n_core, n_actions = 5, 2
    rare = n_core  # index of the rare state
    b = MDPBuilder(actions=[f"a{i}" for i in range(n_actions)],
                   channels=["num", "den"])
    keep = 1.0 - RARE_MASS
    for s in range(n_core):
        for a in range(n_actions):
            probs = _dyadic_probs(rng, n_core)
            num = _dyadic_reward(rng)
            den = _dyadic_reward(rng, _PROB_GRID // 2,
                                 3 * _PROB_GRID // 2)
            for t in range(n_core):
                if probs[t] > 0:
                    # probs[t] is k/64 and keep is 1 - 2**-40, so the
                    # product is still exactly representable.
                    b.add(s, f"a{a}", t, float(probs[t] * keep),
                          num=num, den=den)
            b.add(s, f"a{a}", rare, RARE_MASS, num=num, den=den)
    for a in range(n_actions):
        # The rare state returns to the core deterministically: rare
        # transitions do not slow mixing, they only shrink mass.
        b.add(rare, f"a{a}", 0, 1.0, num=1.0, den=1.0)
    return QAInstance("near-degenerate", seed, b.build(start=0))


def _make_wide_scale(seed: int) -> QAInstance:
    """Reward channels scaled by powers of two spanning ~8 decimal
    orders of magnitude (2**-13 .. 2**13), with the denominator channel
    additionally shrunk by 2**-20 -- the configuration on which an
    absolute denominator floor or acceptance tolerance silently changes
    the solved accuracy."""
    rng = np.random.default_rng(seed + 7003)
    num_exp = int(rng.integers(-13, 14))
    den_exp = int(rng.integers(-13, 14)) - 20
    b = _random_unichain(rng, n_states=6, n_actions=2,
                         num_scale=2.0 ** num_exp,
                         den_scale=2.0 ** den_exp)
    inst = QAInstance("wide-scale", seed, b.build(start=0))
    inst.notes.update(num_exp=num_exp, den_exp=den_exp)
    return inst


def _make_duplicate_action(seed: int) -> QAInstance:
    rng = np.random.default_rng(seed + 7004)
    b = _random_unichain(rng, n_states=6, n_actions=2)
    mdp = b.build(start=0)
    return QAInstance("duplicate-action", seed,
                      with_duplicate_action(mdp, "a0"))


def _make_multichain(seed: int) -> QAInstance:
    """Two disjoint recurrent classes; chains induced by any policy
    are reducible, so global stationary systems are singular."""
    rng = np.random.default_rng(seed + 7005)
    n_class = 3
    b = MDPBuilder(actions=["a0"], channels=["num", "den"])
    for block, offset in enumerate((0, n_class)):
        for s in range(n_class):
            probs = _dyadic_probs(rng, n_class)
            num = _dyadic_reward(rng) + block  # classes earn differently
            for t in range(n_class):
                if probs[t] > 0:
                    b.add(offset + s, "a0", offset + t, float(probs[t]),
                          num=num, den=1.0)
    return QAInstance("multichain", seed, b.build(start=0))


_MAKERS = {
    "unichain": _make_unichain,
    "periodic": _make_periodic,
    "near-degenerate": _make_near_degenerate,
    "wide-scale": _make_wide_scale,
    "duplicate-action": _make_duplicate_action,
    "multichain": _make_multichain,
}


def make_instance(cls: str, seed: int) -> QAInstance:
    """Build the deterministic instance identified by ``(cls, seed)``."""
    maker = _MAKERS.get(cls)
    if maker is None:
        raise ReproError(
            f"unknown QA instance class {cls!r}; known: "
            f"{sorted(_MAKERS)}")
    return maker(int(seed))


# -- metamorphic transforms ------------------------------------------------

def permute_mdp(mdp: MDP, perm: Sequence[int]) -> MDP:
    """Relabel states by ``perm`` (state ``s`` becomes ``perm[s]``).

    Solver outputs must be equivariant: gains are invariant, value
    vectors and policies permute.  Used by the ``meta-permute``
    conformance check.
    """
    perm = np.asarray(perm, dtype=int)
    n = mdp.n_states
    if sorted(perm.tolist()) != list(range(n)):
        raise ReproError("perm must be a permutation of range(n_states)")
    # Permutation matrix Q with Q[perm[s], s] = 1: P' = Q P Q^T.
    q = sparse.csr_matrix((np.ones(n), (perm, np.arange(n))),
                          shape=(n, n))
    transition = [sparse.csr_matrix(q @ p @ q.T) for p in mdp.transition]
    # r'[a, perm[s]] = r[a, s]  <=>  r'[a, t] = r[a, inv[t]].
    inv = np.argsort(perm)
    rewards = {name: r[:, inv] for name, r in mdp.rewards.items()}
    available = mdp.available[:, inv]
    keys: List = [None] * n
    for s, key in enumerate(mdp.state_keys):
        keys[perm[s]] = key
    return MDP(state_keys=keys, actions=list(mdp.actions),
               transition=transition, rewards=rewards,
               available=available, start=int(perm[mdp.start]))


def with_duplicate_action(mdp: MDP, action: str,
                          alias: Optional[str] = None) -> MDP:
    """Append a copy of ``action`` under a new name.  A pure no-op for
    every solver output except the policy labels."""
    a = mdp.action_index(action)
    alias = alias if alias is not None else f"{action}-dup"
    if alias in mdp.actions:
        raise ReproError(f"alias {alias!r} already an action")
    transition = list(mdp.transition) + [mdp.transition[a].copy()]
    rewards = {name: np.vstack([r, r[a]])
               for name, r in mdp.rewards.items()}
    available = np.vstack([mdp.available, mdp.available[a]])
    return MDP(state_keys=list(mdp.state_keys),
               actions=list(mdp.actions) + [alias],
               transition=transition, rewards=rewards,
               available=available, start=mdp.start)


def shift_reward(mdp: MDP, channel: str, delta: float) -> MDP:
    """Add ``delta`` to every *available* (state, action) entry of one
    channel; average-reward gains must shift by exactly ``delta``."""
    rewards = {name: r.copy() for name, r in mdp.rewards.items()}
    rewards[channel] = np.where(mdp.available,
                                rewards[channel] + delta,
                                rewards[channel])
    return MDP(state_keys=list(mdp.state_keys), actions=list(mdp.actions),
               transition=list(mdp.transition), rewards=rewards,
               available=mdp.available, start=mdp.start)


def scale_reward(mdp: MDP, channel: str, factor: float) -> MDP:
    """Multiply one channel by ``factor``; gains scale by ``factor``."""
    rewards = {name: r.copy() for name, r in mdp.rewards.items()}
    rewards[channel] = rewards[channel] * factor
    return MDP(state_keys=list(mdp.state_keys), actions=list(mdp.actions),
               transition=list(mdp.transition), rewards=rewards,
               available=mdp.available, start=mdp.start)


def random_permutation(seed: int, n: int) -> Tuple[int, ...]:
    """A deterministic non-trivial permutation of ``range(n)``."""
    rng = np.random.default_rng(seed + 7100)
    while True:
        perm = rng.permutation(n)
        if n < 2 or not np.array_equal(perm, np.arange(n)):
            return tuple(int(p) for p in perm)
