"""Minimal stdlib/asyncio HTTP front-end for the solver service.

``repro serve --http PORT`` exposes two endpoints over HTTP/1.1:

- ``POST /solve`` -- body is one JSON request object (the same shape
  :func:`repro.serve.service.request_from_json` accepts); the response
  body is the typed JSON answer of
  :func:`repro.serve.service.answer_json`, with the HTTP status mapped
  from the error type (table below);
- ``GET /health`` -- liveness plus the numbers an operator scales on:
  atlas entry count, cache hit-rate/disk-read counters, and the
  service's request/coalesce/degraded stats.

The wire contract matches the TCP front-end: every request gets a
typed JSON body, never a silently dropped connection.  Status mapping:

========================  ======
error type                status
========================  ======
(success)                 200
malformed request/JSON    400
unknown path              404
method not allowed        405
``RequestTooLargeError``  413
``ServiceOverloadError``  429
solver failures           500
``ServiceShutdownError``  503
deadline/budget misses    504
========================  ======

This is deliberately not a web framework: the parser handles exactly
the HTTP/1.1 subset the service needs (request line, headers,
``Content-Length`` bodies, keep-alive), stays dependency-free, and
rides the same asyncio loop as the service so coalescing and admission
control see every front-end's traffic together.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional, Tuple

from repro.errors import RequestTooLargeError
from repro.serve.service import (
    MAX_REQUEST_BYTES,
    SolverService,
    answer_json,
)

#: Reason phrases for the statuses this front-end emits.
_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 413: "Payload Too Large",
            429: "Too Many Requests", 500: "Internal Server Error",
            503: "Service Unavailable", 504: "Gateway Timeout"}

#: Error-type name (as produced by ``answer_json``) -> HTTP status.
STATUS_BY_ERROR = {
    "ServiceOverloadError": 429,
    "ServiceShutdownError": 503,
    "RequestTooLargeError": 413,
    "SolveDeadlineError": 504,
    "SolverBudgetExceededError": 504,
    "JSONDecodeError": 400,
    "KeyError": 400,
    "TypeError": 400,
    "ValueError": 400,
    "ReproError": 400,
    "SolverInputError": 400,
}


def status_for(result: Dict) -> int:
    """HTTP status for one ``answer_json``-shaped result object."""
    if result.get("ok"):
        return 200
    return STATUS_BY_ERROR.get(str(result.get("error")), 500)


def health_payload(service: SolverService) -> Dict:
    """The ``GET /health`` body: atlas size, cache efficiency and the
    live service counters."""
    astats = service.atlas.stats
    sstats = service.stats
    return {
        "ok": True,
        "status": "closed" if service.closed else "serving",
        "atlas_entries": len(service.atlas),
        "cache": {
            "hits": astats.cache_hits,
            "misses": astats.cache_misses,
            "evictions": astats.cache_evictions,
            "hit_rate": round(astats.cache_hit_rate(), 4),
            "disk_reads": astats.disk_reads,
        },
        "service": {
            "requests": sstats.requests,
            "atlas_hits": sstats.atlas_hits,
            "coalesced": sstats.coalesced,
            "solves": sstats.solves,
            "degraded": sstats.degraded,
            "overloads": sstats.overloads,
        },
    }


def _response_bytes(status: int, payload: Dict,
                    keep_alive: bool = True) -> bytes:
    """Serialize one JSON response with correct framing headers."""
    body = (json.dumps(payload) + "\n").encode()
    head = (f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"\r\n")
    return head.encode("latin-1") + body


class _BadRequest(Exception):
    """Internal: a malformed frame, carrying the response to send."""

    def __init__(self, status: int, payload: Dict,
                 recoverable: bool = False) -> None:
        super().__init__(payload.get("message", "bad request"))
        self.status = status
        self.payload = payload
        #: Whether the stream position is still trustworthy (the frame
        #: was fully consumed) so keep-alive may continue.
        self.recoverable = recoverable


async def _read_request(reader: asyncio.StreamReader, max_body: int
                        ) -> Optional[Tuple[str, str, Dict[str, str],
                                            bytes]]:
    """Parse one request frame: ``(method, target, headers, body)``.

    Returns ``None`` on a clean EOF before a request line.  Raises
    :class:`_BadRequest` with the typed response on malformed framing
    or an oversized body (the body is then *not* read -- the
    connection must close, exactly like the TCP front-end's overrun
    path).
    """
    try:
        line = await reader.readline()
    except (asyncio.LimitOverrunError, ValueError) as exc:
        error = RequestTooLargeError(
            f"request line exceeds the stream limit ({exc})")
        raise _BadRequest(413, {
            "ok": False, "error": type(error).__name__,
            "message": str(error)}) from exc
    if not line or not line.strip():
        return None
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise _BadRequest(400, {
            "ok": False, "error": "BadRequestLine",
            "message": f"malformed request line: {line!r}"})
    method, target = parts[0].upper(), parts[1]
    headers: Dict[str, str] = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        name, sep, value = raw.decode("latin-1").partition(":")
        if not sep:
            continue
        name = name.strip().lower()
        value = value.strip()
        if name == "content-length" and name in headers \
                and headers[name] != value:
            # RFC 7230 3.3.2: conflicting duplicate Content-Length
            # values make the body length ambiguous -- request
            # smuggling territory.  Last-wins silently picked one.
            raise _BadRequest(400, {
                "ok": False, "error": "BadContentLength",
                "message": f"conflicting Content-Length values "
                           f"{headers[name]!r} and {value!r}"})
        headers[name] = value
    raw_length = headers.get("content-length")
    if raw_length is None or raw_length == "":
        length = 0
    elif raw_length.isascii() and raw_length.isdigit():
        # RFC 7230: Content-Length is 1*DIGIT.  ``int()`` alone is too
        # lenient -- it accepts "+5", " 5 ", "1_0" and unicode digits,
        # all of which a proxy in front of us may frame differently.
        length = int(raw_length)
    else:
        raise _BadRequest(400, {
            "ok": False, "error": "BadContentLength",
            "message": f"malformed Content-Length: {raw_length!r}"})
    if length > max_body:
        error = RequestTooLargeError(
            f"request body of {length} bytes exceeds the "
            f"{max_body}-byte limit")
        raise _BadRequest(413, {
            "ok": False, "error": type(error).__name__,
            "message": str(error)})
    body = await reader.readexactly(length) if length else b""
    return method, target, headers, body


async def serve_http(service: SolverService, host: str, port: int,
                     max_body: int = MAX_REQUEST_BYTES
                     ) -> asyncio.AbstractServer:
    """Start the HTTP front-end; returns the started server (caller
    owns its lifetime, like :func:`~repro.serve.service.serve_tcp`)."""

    async def handle(reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    frame = await _read_request(reader, max_body)
                except _BadRequest as exc:
                    writer.write(_response_bytes(
                        exc.status, exc.payload,
                        keep_alive=exc.recoverable))
                    await writer.drain()
                    if not exc.recoverable:
                        break
                    continue
                except asyncio.IncompleteReadError:
                    break  # peer hung up mid-frame; nothing to answer
                if frame is None:
                    break
                method, target, _headers, body = frame
                path = target.split("?", 1)[0]
                if path in ("/health", "/healthz"):
                    if method != "GET":
                        result, status = _method_not_allowed(method, path)
                    else:
                        result, status = health_payload(service), 200
                elif path == "/solve":
                    if method != "POST":
                        result, status = _method_not_allowed(method, path)
                    else:
                        try:
                            obj = json.loads(body.decode("utf-8"))
                        except (json.JSONDecodeError,
                                UnicodeDecodeError) as exc:
                            result = {"ok": False,
                                      "error": "JSONDecodeError",
                                      "message": f"malformed JSON "
                                                 f"body: {exc}"}
                            status = 400
                        else:
                            result = await answer_json(service, obj)
                            status = status_for(result)
                else:
                    result = {"ok": False, "error": "NotFound",
                              "message": f"unknown path {path!r} "
                                         f"(try POST /solve or "
                                         f"GET /health)"}
                    status = 404
                writer.write(_response_bytes(status, result))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass  # peer vanished; nothing left to answer
        finally:
            writer.close()

    def _method_not_allowed(method: str, path: str) -> Tuple[Dict, int]:
        return ({"ok": False, "error": "MethodNotAllowed",
                 "message": f"{method} not allowed on {path}"}, 405)

    # Stream limit sized to the body bound so the header phase can
    # never buffer more than one legitimate frame.
    return await asyncio.start_server(handle, host, port,
                                      limit=max(max_body, 1 << 16))
