"""Warm precompute of the paper's parameter grids into the atlas.

``repro serve --warm [GRID]`` makes the reproduction's own sweep cells
(the tables of the CoNEXT '17 paper) the seed working set of the
serving layer: every cell is solved through the shared
:func:`repro.runtime.parallel.run_cells` machinery -- so the work fans
out over the configured :class:`~repro.runtime.parallel.Scheduler`,
honours ``--backend`` / ``--ratio-method``, and checkpoints into a
journal under the atlas root -- and lands in the
:class:`~repro.serve.atlas.PolicyAtlas` as ordinary content-addressed
entries.

Warming is idempotent and resumable at two levels: cells whose key is
already in the atlas are skipped before any task is built, and cells
recorded in the journal by a killed run are restored (and re-``put``
into the atlas, which heals an atlas wiped after the journal survived)
without re-solving.  Two processes warming overlapping grids converge
on one consistent atlas because entries are content-addressed atomic
writes of identical content.

Tasks use the dedicated ``"warm"`` kind: the same solve as
``"analyze"``, but the payload stays a raw JSON dict end to end --
precompute must not pay the MDP-rebuilding cost of full analysis
reconstruction just to store the payload verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis.tables import (
    TABLE2_ALPHAS,
    TABLE2_RATIOS,
    TABLE3_ALPHAS,
    TABLE3_RATIOS,
    TABLE4_RATIOS,
    feasible,
)
from repro.core.config import AttackConfig
from repro.core.incentives import IncentiveModel
from repro.errors import ReproError
from repro.runtime import telemetry
from repro.serve.atlas import PolicyAtlas, atlas_key, key_digest

#: Grids ``--warm`` understands; ``"paper"`` is the union of the three
#: table grids, ``"smoke"`` a four-cell CI-sized sample.
WARM_GRIDS = ("paper", "table2", "table3", "table4", "smoke")


@dataclass(frozen=True)
class WarmCell:
    """One grid cell: a config plus the incentive model to solve."""

    config: AttackConfig
    model: IncentiveModel


@dataclass
class WarmReport:
    """Outcome of one :func:`warm_atlas` run."""

    grid: str
    cells: int
    skipped: int
    solved: int
    restored: int
    entries: int


def _ad_kwargs(fast: bool) -> Dict:
    """Fast grids shrink the lookahead to ad=2; full grids keep the
    paper's default."""
    return {"ad": 2} if fast else {}


def _table2_cells(fast: bool) -> List[WarmCell]:
    alphas = TABLE2_ALPHAS[:2] if fast else TABLE2_ALPHAS
    ratios = TABLE2_RATIOS[:3] if fast else TABLE2_RATIOS
    ad = _ad_kwargs(fast)
    cells = [WarmCell(AttackConfig.from_ratio(a, r, setting=1, **ad),
                      IncentiveModel.COMPLIANT_PROFIT)
             for r in ratios for a in alphas if feasible(a, r)]
    set2_ratios = TABLE2_RATIOS[:2] if fast else TABLE2_RATIOS[:4]
    cells += [WarmCell(AttackConfig.from_ratio(0.25, r, setting=2, **ad),
                       IncentiveModel.COMPLIANT_PROFIT)
              for r in set2_ratios if feasible(0.25, r)]
    return cells


def _table3_cells(fast: bool) -> List[WarmCell]:
    alphas = (0.01, 0.10) if fast else TABLE3_ALPHAS
    ratios = TABLE3_RATIOS[:3] if fast else TABLE3_RATIOS
    settings = (1,) if fast else (1, 2)
    ad = _ad_kwargs(fast)
    return [WarmCell(AttackConfig.from_ratio(a, r, setting=s, **ad),
                     IncentiveModel.NONCOMPLIANT_PROFIT)
            for s in settings for a in alphas for r in ratios
            if feasible(a, r)]


def _table4_cells(fast: bool) -> List[WarmCell]:
    ratios = TABLE4_RATIOS[:3] if fast else TABLE4_RATIOS
    settings = (1,) if fast else (1, 2)
    ad = _ad_kwargs(fast)
    return [WarmCell(AttackConfig.from_ratio(0.01, r, setting=s, **ad),
                     IncentiveModel.NON_PROFIT)
            for s in settings for r in ratios if feasible(0.01, r)]


def _smoke_cells(fast: bool) -> List[WarmCell]:
    del fast  # already minimal
    return [WarmCell(AttackConfig.from_ratio(a, r, setting=1, ad=2),
                     IncentiveModel.COMPLIANT_PROFIT)
            for a in (0.10, 0.15) for r in ((1, 1), (1, 2))
            if feasible(a, r)]


def grid_cells(grid: str = "paper", fast: bool = False) -> List[WarmCell]:
    """The deduplicated cell list of one named grid.

    ``fast`` shrinks every grid (fewer alphas/ratios, lookahead
    ``ad=2``) to development/CI size; the full grids use the paper's
    parameters (lookahead 6, both settings).
    """
    builders: Dict[str, Callable[[bool], List[WarmCell]]] = {
        "table2": _table2_cells, "table3": _table3_cells,
        "table4": _table4_cells, "smoke": _smoke_cells}
    if grid == "paper":
        cells = [cell for name in ("table2", "table3", "table4")
                 for cell in builders[name](fast)]
    elif grid in builders:
        cells = builders[grid](fast)
    else:
        raise ReproError(
            f"unknown warm grid {grid!r} (expected one of {WARM_GRIDS})")
    seen, unique = set(), []
    for cell in cells:
        digest = key_digest(atlas_key(cell.config, cell.model))
        if digest not in seen:
            seen.add(digest)
            unique.append(cell)
    return unique


def warm_atlas(atlas: PolicyAtlas, grid: str = "paper",
               fast: bool = False, workers: int = 1,
               journal_dir=None, scheduler=None,
               progress: Optional[Callable[[str], None]] = None
               ) -> WarmReport:
    """Precompute one grid into ``atlas`` (see module docstring).

    ``workers``/``scheduler`` are forwarded to
    :func:`~repro.runtime.parallel.run_cells`; the journal lives at
    ``journal_dir`` (default ``<atlas root>/warm/``) under the sweep
    name ``warm-<grid>``, so re-running after a kill restores finished
    cells instead of re-solving them.
    """
    from repro.runtime.journal import Journal
    from repro.runtime.parallel import SolveTask, run_cells
    from repro.runtime.sweeprunner import SweepRunner

    cells = grid_cells(grid, fast=fast)
    tasks: List[SolveTask] = []
    key_by_task: Dict[Tuple, Dict] = {}
    skipped = 0
    for cell in cells:
        key = atlas_key(cell.config, cell.model)
        if key in atlas:
            skipped += 1
            telemetry.counter_add("warm/skipped")
            continue
        task_key = ("warm", key_digest(key))
        key_by_task[task_key] = key
        tasks.append(SolveTask(kind="warm", key=task_key,
                               config=cell.config, model=cell.model))

    directory = Path(journal_dir) if journal_dir is not None \
        else atlas.root / "warm"
    directory.mkdir(parents=True, exist_ok=True)
    sweep = f"warm-{grid}"
    runner = SweepRunner(journal=Journal(directory / f"{sweep}.journal",
                                         sweep=sweep))

    def on_cell(task, payload) -> None:
        # Fresh and journal-restored cells alike land in the atlas, so
        # a wiped atlas heals from a surviving journal on re-warm.
        atlas.put(key_by_task[tuple(task.key)], payload)
        telemetry.counter_add("warm/stored")
        if progress is not None:
            progress(f"warm[{grid}] {task.key[1][:12]} stored")

    if tasks:
        run_cells(tasks, runner=runner, workers=workers,
                  progress=on_cell, scheduler=scheduler)
    telemetry.counter_add("warm/solved", runner.stats.solved)
    telemetry.counter_add("warm/restored", runner.stats.restored)
    return WarmReport(grid=grid, cells=len(cells), skipped=skipped,
                      solved=runner.stats.solved,
                      restored=runner.stats.restored,
                      entries=len(atlas))
