"""The resilient asyncio solver service.

:class:`SolverService` answers :class:`SolveRequest`\\ s from the
policy atlas, falling back to supervised solves with a resilience
layer a long-running deployment needs:

- **single-flight coalescing** -- N concurrent requests for one
  config-hash trigger exactly one supervised solve; waiters share the
  leader's result *or its typed error* (an error storm is coalesced
  too, not amplified);
- **deadline propagation** -- every request runs under a
  :class:`~repro.core.deadline.Deadline`; each retry attempt's solver
  budget is the *remaining* time, so a hung solve is cancelled at the
  deadline (cooperatively through
  :class:`~repro.runtime.budget.Budget` for in-thread solves, by
  ``asyncio.wait_for`` for async backends), not leaked;
- **retry with jittered exponential backoff** -- transient
  :class:`~repro.errors.SolverError`\\ s (worker crashes, numerical
  divergence) are retried under :class:`RetryPolicy`; input errors and
  expired deadlines are not (retrying cannot fix a bad bracket or
  refund spent time);
- **admission control** -- at most ``max_pending`` distinct solves may
  be in flight; excess cold requests fail fast with the typed
  :class:`~repro.errors.ServiceOverloadError` (a 429, not a hang),
  while atlas hits keep being served during overload;
- **graceful degradation** -- when the exact solve misses its deadline
  (or exhausts retries), the service can serve the nearest atlas
  neighbor or a reduced-lookahead solve, always flagged
  ``degraded: true`` with a reason -- never silently;
- **graceful shutdown** -- :meth:`SolverService.close` cancels
  in-flight solves and resolves every waiter with the typed
  :class:`~repro.errors.ServiceShutdownError`; no request is ever
  dropped without an answer.

Telemetry: ``serve/*`` counters (requests, atlas hits, coalesced
waiters, solve attempts, retries, degraded responses, overloads) and
one ``serve-request`` trace event per answered request, so a ``--trace``
run proves coalescing hit-rates and degraded-response counts end to
end.
"""

from __future__ import annotations

import asyncio
import dataclasses
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set

import numpy as np

from repro.core.config import AttackConfig
from repro.core.deadline import Deadline
from repro.core.incentives import IncentiveModel
from repro.errors import (
    ReproError,
    RequestTooLargeError,
    ServiceOverloadError,
    ServiceShutdownError,
    SolveDeadlineError,
    SolverBudgetExceededError,
    SolverError,
    SolverInputError,
)
from repro.runtime import telemetry
from repro.serve.atlas import PolicyAtlas, atlas_key, key_digest


@dataclass(frozen=True)
class RetryPolicy:
    """Jittered exponential backoff for transient solve failures.

    Attempt ``k`` (1-based) failing transiently waits
    ``base_backoff_s * backoff_factor**(k-1) * (1 + jitter * u)`` with
    ``u ~ U[0, 1)`` before attempt ``k + 1`` -- the jitter decorrelates
    retry storms from coalesced waiters that gave up and re-submitted.
    A backoff that would overrun the request deadline is not taken; the
    request moves straight to the degraded path.
    """

    max_attempts: int = 3
    base_backoff_s: float = 0.05
    backoff_factor: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ReproError(
                f"max_attempts must be >= 1, got {self.max_attempts!r}")
        if self.base_backoff_s < 0 or self.jitter < 0:
            raise ReproError("backoff and jitter cannot be negative")
        if self.backoff_factor < 1.0:
            raise ReproError(
                f"backoff_factor must be >= 1, got {self.backoff_factor!r}")

    def backoff(self, attempt: int, rng: np.random.Generator) -> float:
        """Seconds to wait after failed attempt number ``attempt``."""
        base = self.base_backoff_s * self.backoff_factor ** (attempt - 1)
        return base * (1.0 + self.jitter * float(rng.random()))


@dataclass(frozen=True)
class SolveRequest:
    """One query: a config + incentive model, with an optional
    per-request deadline (seconds, relative) and a flag allowing the
    degraded fallbacks."""

    config: AttackConfig
    model: IncentiveModel
    deadline_s: Optional[float] = None
    allow_degraded: bool = True


@dataclass
class ServeResponse:
    """One answered request.

    ``source`` is one of ``"atlas"`` (exact precomputed entry),
    ``"solve"`` (fresh supervised solve, now backfilled),
    ``"degraded-nearest"`` (closest atlas entry for a *different*
    config) or ``"degraded-reduced"`` (fresh solve of a
    reduced-lookahead config).  ``degraded`` is true iff the payload
    does not answer the exact requested config; ``degraded_reason``
    then says why and what was substituted.
    """

    key: str
    utility: float
    payload: Dict
    source: str
    degraded: bool = False
    degraded_reason: Optional[str] = None
    coalesced: bool = False
    attempts: int = 0
    elapsed_s: float = 0.0

    def to_json(self) -> Dict:
        """JSON-compatible summary (policy omitted -- it dominates the
        payload size; fetch it from the atlas by key if needed)."""
        return {"key": self.key, "utility": self.utility,
                "source": self.source, "degraded": self.degraded,
                "degraded_reason": self.degraded_reason,
                "coalesced": self.coalesced, "attempts": self.attempts,
                "elapsed_s": self.elapsed_s}


@dataclass
class ServiceStats:
    """Live counters of one :class:`SolverService`."""

    requests: int = 0
    atlas_hits: int = 0
    coalesced: int = 0
    solves: int = 0
    solve_attempts: int = 0
    retries: int = 0
    degraded: int = 0
    overloads: int = 0
    deadline_misses: int = 0
    shutdown_cancelled: int = 0

    def coalesce_hit_rate(self) -> float:
        """Fraction of requests answered by piggybacking on an
        in-flight identical solve."""
        if not self.requests:
            return 0.0
        return self.coalesced / self.requests


@dataclass
class _Inflight:
    """One in-flight single-flight solve and its shared future."""

    future: asyncio.Future
    task: Optional[asyncio.Task] = None
    waiters: int = 1


def default_solve_backend(request: SolveRequest, deadline: Deadline,
                          backend: Optional[str] = None):
    """Solve one request synchronously under the remaining deadline.

    Runs in a worker thread (see :meth:`SolverService._attempt`);
    reuses the shared :class:`~repro.runtime.parallel.SolveTask` layer,
    so the budget/fallback/validation path is identical to sweep cells
    -- including the typed :class:`~repro.errors.SolveDeadlineError` /
    :class:`~repro.errors.SolverBudgetExceededError` when the
    cooperative budget expires.  ``backend`` optionally names the
    compute backend (:mod:`repro.mdp.backends`) the solve selects.
    """
    from repro.runtime.parallel import SolveTask, execute_task
    budget = deadline.budget()  # raises typed error when expired
    task = SolveTask(kind="analyze", key=("serve",),
                     config=request.config, model=request.model,
                     params=(("wall_clock", budget.wall_clock),),
                     backend=backend)
    return execute_task(task)


class SolverService:
    """The long-running solver service (see module docstring).

    Parameters
    ----------
    atlas:
        The persistent :class:`~repro.serve.atlas.PolicyAtlas`.
    solve_fn:
        Backend computing one attempt: ``solve_fn(request, deadline)``
        returning an analysis payload dict.  A plain callable runs in
        a worker thread under ``asyncio.wait_for``; an async callable
        is awaited directly (and genuinely cancelled at the deadline).
        Defaults to :func:`default_solve_backend`.
    max_concurrency:
        Solver parallelism (semaphore over actual solve work).
    max_pending:
        Admission-control bound on distinct in-flight solves
        (queued + running); excess cold requests raise
        :class:`~repro.errors.ServiceOverloadError`.
    default_deadline_s:
        Deadline applied to requests that do not carry their own.
    retry:
        The :class:`RetryPolicy` for transient failures.
    degraded_ad:
        Lookahead (acceptance depth) used by reduced-lookahead
        degraded solves.
    degraded_grace_s:
        Extra wall-clock grace granted to the degraded fallbacks after
        the exact solve missed its deadline (a degraded answer a
        moment late beats a typed timeout for most clients).
    nearest_max_distance:
        Maximum L1 power-split distance a nearest-neighbor substitute
        may have.
    clock:
        Injectable monotonic clock (chaos tests skew it).
    seed:
        Seed of the private backoff-jitter RNG.
    backend:
        Optional compute-backend name (:mod:`repro.mdp.backends`)
        forwarded to :func:`default_solve_backend` -- how ``repro
        serve --backend numba`` reaches the worker-thread solves.
        Ignored when a custom ``solve_fn`` is supplied.
    """

    def __init__(self, atlas: PolicyAtlas,
                 solve_fn: Optional[Callable] = None,
                 max_concurrency: int = 2,
                 max_pending: int = 16,
                 default_deadline_s: float = 30.0,
                 retry: RetryPolicy = RetryPolicy(),
                 degraded_ad: int = 2,
                 degraded_grace_s: float = 5.0,
                 nearest_max_distance: float = float("inf"),
                 clock: Callable[[], float] = time.monotonic,
                 seed: Optional[int] = None,
                 backend: Optional[str] = None) -> None:
        if max_concurrency < 1:
            raise ReproError(
                f"max_concurrency must be >= 1, got {max_concurrency!r}")
        if max_pending < 1:
            raise ReproError(
                f"max_pending must be >= 1, got {max_pending!r}")
        if default_deadline_s <= 0:
            raise ReproError("default_deadline_s must be positive")
        self.atlas = atlas
        if solve_fn is not None:
            self.solve_fn = solve_fn
        elif backend is not None:
            import functools
            self.solve_fn = functools.partial(default_solve_backend,
                                              backend=backend)
        else:
            self.solve_fn = default_solve_backend
        self.max_pending = max_pending
        self.default_deadline_s = default_deadline_s
        self.retry = retry
        self.degraded_ad = degraded_ad
        self.degraded_grace_s = degraded_grace_s
        self.nearest_max_distance = nearest_max_distance
        self.clock = clock
        self.stats = ServiceStats()
        self._rng = np.random.default_rng(seed)
        self._sem = asyncio.Semaphore(max_concurrency)
        self._inflight: Dict[str, _Inflight] = {}
        self._tasks: Set[asyncio.Task] = set()
        self._closed = False

    # -- lifecycle -----------------------------------------------------

    async def __aenter__(self) -> "SolverService":
        return self

    async def __aexit__(self, *_exc) -> bool:
        await self.close()
        return False

    @property
    def closed(self) -> bool:
        """Whether the service has been shut down."""
        return self._closed

    async def close(self) -> None:
        """Graceful shutdown: cancel in-flight solves, resolving every
        waiter with :class:`~repro.errors.ServiceShutdownError` -- no
        in-flight request is ever silently dropped."""
        self._closed = True
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        # Belt-and-braces: resolve any future a died task left behind.
        for inflight in list(self._inflight.values()):
            if not inflight.future.done():
                inflight.future.set_exception(ServiceShutdownError(
                    "service shut down with the solve in flight"))
        self._inflight.clear()

    # -- the public entry point ----------------------------------------

    async def submit(self, request: SolveRequest) -> ServeResponse:
        """Answer one request (see module docstring for the flow).

        Raises
        ------
        ServiceShutdownError
            When the service is closed (or closes mid-flight).
        ServiceOverloadError
            When admission control rejects a cold request.
        SolverError
            Typed solve failures (deadline, input, exhausted chains)
            when no degraded answer is allowed or available.
        """
        if self._closed:
            raise ServiceShutdownError("service is closed")
        started = self.clock()
        self.stats.requests += 1
        telemetry.counter_add("serve/requests")
        key = atlas_key(request.config, request.model)
        digest = key_digest(key)

        # 1. Atlas fast path -- served even under full admission.
        body = self.atlas.get(key)
        if body is not None:
            self.stats.atlas_hits += 1
            telemetry.counter_add("serve/atlas_hits")
            return self._respond(request, digest, body, source="atlas",
                                 started=started)

        # 2. Single-flight coalescing.
        inflight = self._inflight.get(digest)
        if inflight is not None:
            inflight.waiters += 1
            self.stats.coalesced += 1
            telemetry.counter_add("serve/coalesced")
            response = await asyncio.shield(inflight.future)
            return dataclasses.replace(
                response, coalesced=True,
                elapsed_s=self.clock() - started)

        # 3. Admission control for a fresh solve.
        if len(self._inflight) >= self.max_pending:
            self.stats.overloads += 1
            telemetry.counter_add("serve/overloads")
            raise ServiceOverloadError(
                f"{len(self._inflight)} solves already in flight "
                f"(max_pending={self.max_pending}); retry with backoff")

        # 4. Become the single-flight leader.
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._inflight[digest] = _Inflight(future=future)
        task = loop.create_task(
            self._lead_solve(digest, key, request, started))
        self._inflight[digest].task = task
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return await asyncio.shield(future)

    # -- single-flight leader ------------------------------------------

    async def _lead_solve(self, digest: str, key: Dict,
                          request: SolveRequest, started: float) -> None:
        """Run the resilient solve and resolve the shared future with
        a :class:`ServeResponse` or a typed error."""
        inflight = self._inflight[digest]
        try:
            response = await self._solve_resilient(
                digest, key, request, started)
            if not inflight.future.done():
                inflight.future.set_result(response)
        except asyncio.CancelledError:
            self.stats.shutdown_cancelled += 1
            telemetry.counter_add("serve/shutdown_cancelled")
            if not inflight.future.done():
                inflight.future.set_exception(ServiceShutdownError(
                    "solve cancelled by service shutdown"))
        except BaseException as exc:  # typed errors included
            if not inflight.future.done():
                inflight.future.set_exception(exc)
            else:  # pragma: no cover - defensive
                raise
        finally:
            self._inflight.pop(digest, None)
            # A future nobody awaited yet must not warn on teardown.
            if inflight.future.done() and \
                    inflight.future.exception() is not None:
                inflight.future.exception()

    async def _solve_resilient(self, digest: str, key: Dict,
                               request: SolveRequest,
                               started: float) -> ServeResponse:
        """Deadline + retry + degradation around the solve backend."""
        deadline = Deadline.after(
            request.deadline_s if request.deadline_s is not None
            else self.default_deadline_s, clock=self.clock)
        attempts = 0
        last_error: Optional[SolverError] = None
        payload: Optional[Dict] = None
        async with self._sem:
            while True:
                attempts += 1
                self.stats.solve_attempts += 1
                telemetry.counter_add("serve/solve_attempts")
                try:
                    payload = await self._attempt(request, deadline)
                    break
                except (SolveDeadlineError, asyncio.TimeoutError) as exc:
                    self.stats.deadline_misses += 1
                    telemetry.counter_add("serve/deadline_misses")
                    last_error = exc if isinstance(exc, SolverError) \
                        else SolveDeadlineError(
                            f"solve exceeded its "
                            f"{deadline.remaining():.3f}s-remaining "
                            f"deadline (attempt {attempts})")
                    break
                except SolverInputError:
                    raise  # not retryable, not degradable: caller bug
                except SolverBudgetExceededError as exc:
                    # The budget *is* the deadline here; no time left.
                    self.stats.deadline_misses += 1
                    telemetry.counter_add("serve/deadline_misses")
                    last_error = exc
                    break
                except SolverError as exc:
                    last_error = exc
                    if attempts >= self.retry.max_attempts:
                        break
                    backoff = self.retry.backoff(attempts, self._rng)
                    if backoff >= deadline.remaining():
                        break
                    self.stats.retries += 1
                    telemetry.counter_add("serve/retries")
                    await asyncio.sleep(backoff)
            if payload is not None:
                self.atlas.put(key, payload)
                self.stats.solves += 1
                telemetry.counter_add("serve/solves")
                return self._respond(request, digest, payload,
                                     source="solve", started=started,
                                     attempts=attempts)
            return await self._degrade(digest, key, request, started,
                                       attempts, last_error)

    async def _attempt(self, request: SolveRequest,
                       deadline: Deadline) -> Dict:
        """One solve attempt under the remaining deadline.

        Async backends are awaited under ``asyncio.wait_for`` and
        genuinely cancelled at the deadline; sync backends run in a
        worker thread and are cancelled cooperatively through the
        wall-clock budget the backend derives from ``deadline`` (the
        ``wait_for`` is a backstop with a small grace so the thread's
        own typed error normally wins the race).
        """
        remaining = deadline.remaining()
        if remaining <= 0:
            raise SolveDeadlineError(
                "deadline expired before the attempt could start")
        if asyncio.iscoroutinefunction(self.solve_fn):
            return await asyncio.wait_for(
                self.solve_fn(request, deadline), timeout=remaining)
        loop = asyncio.get_running_loop()
        return await asyncio.wait_for(
            loop.run_in_executor(
                None, lambda: self.solve_fn(request, deadline)),
            timeout=remaining + 0.25)

    # -- degraded modes ------------------------------------------------

    async def _degrade(self, digest: str, key: Dict,
                       request: SolveRequest, started: float,
                       attempts: int,
                       last_error: Optional[SolverError]) -> ServeResponse:
        """Serve a flagged substitute, or re-raise the typed error."""
        error = last_error if last_error is not None else \
            SolveDeadlineError("solve failed with no recorded error")
        if not request.allow_degraded:
            raise error

        # (a) nearest-neighbor atlas entry for a different power split.
        found = self.atlas.nearest(
            key, max_distance=self.nearest_max_distance)
        if found is not None:
            _nkey, body, distance = found
            self.stats.degraded += 1
            telemetry.counter_add("serve/degraded_nearest")
            return self._respond(
                request, digest, body, source="degraded-nearest",
                started=started, attempts=attempts, degraded=True,
                reason=f"served nearest atlas entry (power-split "
                       f"distance {distance:.4f}) after "
                       f"{type(error).__name__}: {error}")

        # (b) reduced-lookahead solve under the grace budget.
        if request.config.ad > self.degraded_ad:
            reduced_config = dataclasses.replace(
                request.config, ad=self.degraded_ad,
                ad_carol=None if request.config.ad_carol is None
                else min(request.config.ad_carol, self.degraded_ad))
            reduced = SolveRequest(config=reduced_config,
                                   model=request.model)
            grace = Deadline.after(self.degraded_grace_s,
                                   clock=self.clock)
            try:
                payload = await self._attempt(reduced, grace)
            except (SolverError, asyncio.TimeoutError):
                raise error from None
            # Exact for the *reduced* config: backfill under its own
            # key (never under the requested key -- that would turn a
            # degraded answer into a future "exact" atlas hit).
            self.atlas.put(atlas_key(reduced_config, request.model),
                           payload)
            self.stats.degraded += 1
            telemetry.counter_add("serve/degraded_reduced")
            return self._respond(
                request, digest, payload, source="degraded-reduced",
                started=started, attempts=attempts, degraded=True,
                reason=f"served reduced-lookahead solve "
                       f"(AD {request.config.ad} -> {self.degraded_ad}) "
                       f"after {type(error).__name__}: {error}")
        raise error

    # -- response assembly ---------------------------------------------

    def _respond(self, request: SolveRequest, digest: str, body: Dict,
                 source: str, started: float, attempts: int = 0,
                 degraded: bool = False,
                 reason: Optional[str] = None) -> ServeResponse:
        elapsed = self.clock() - started
        utility = float(body.get("utility", float("nan")))
        if degraded:
            telemetry.counter_add("serve/degraded")
        telemetry.event("serve-request", key=digest[:16], source=source,
                        degraded=degraded, coalesced=False,
                        attempts=attempts, elapsed_s=elapsed)
        return ServeResponse(key=digest, utility=utility, payload=body,
                             source=source, degraded=degraded,
                             degraded_reason=reason, attempts=attempts,
                             elapsed_s=elapsed)


# -- batch/network front-ends ------------------------------------------

def request_from_json(obj: Dict) -> SolveRequest:
    """Build a :class:`SolveRequest` from a JSON request object.

    Accepts either ``{"alpha": .., "ratio": "2:3", ...}`` (the CLI's
    ``from_ratio`` notation) or explicit ``beta``/``gamma`` shares,
    plus ``model`` (``relative``/``absolute``/``orphans`` or the full
    enum value), ``setting``, ``ad``, ``deadline_s`` and
    ``allow_degraded``.
    """
    short = {"relative": IncentiveModel.COMPLIANT_PROFIT,
             "absolute": IncentiveModel.NONCOMPLIANT_PROFIT,
             "orphans": IncentiveModel.NON_PROFIT}
    if not isinstance(obj, dict):
        raise ReproError(f"request must be a JSON object, got {obj!r}")
    raw_model = obj.get("model", "relative")
    model = short.get(raw_model)
    if model is None:
        model = IncentiveModel(raw_model)
    kwargs = {}
    for name in ("setting", "ad", "ad_carol", "rds", "confirmations"):
        if name in obj:
            kwargs[name] = obj[name]
    if "ratio" in obj:
        try:
            b, g = str(obj["ratio"]).split(":")
            split = (int(b), int(g))
        except ValueError:
            raise ReproError(f"ratio must look like '2:3', "
                             f"got {obj['ratio']!r}")
        config = AttackConfig.from_ratio(float(obj["alpha"]), split,
                                         **kwargs)
    else:
        config = AttackConfig(alpha=float(obj["alpha"]),
                              beta=float(obj["beta"]),
                              gamma=float(obj["gamma"]), **kwargs)
    return SolveRequest(config=config, model=model,
                        deadline_s=obj.get("deadline_s"),
                        allow_degraded=bool(obj.get("allow_degraded",
                                                    True)))


async def answer_json(service: SolverService, obj: Dict) -> Dict:
    """Answer one JSON request; errors become typed JSON, never an
    exception (the wire contract of both front-ends)."""
    try:
        response = await service.submit(request_from_json(obj))
    except ReproError as exc:
        return {"ok": False, "error": type(exc).__name__,
                "message": str(exc)}
    except (KeyError, TypeError, ValueError) as exc:
        return {"ok": False, "error": type(exc).__name__,
                "message": f"malformed request: {exc}"}
    result = response.to_json()
    result["ok"] = True
    return result


async def serve_batch(service: SolverService,
                      requests: List[Dict]) -> List[Dict]:
    """Answer a batch of JSON requests concurrently, preserving input
    order (the ``repro serve --requests`` mode)."""
    return list(await asyncio.gather(
        *(answer_json(service, obj) for obj in requests)))


#: Default byte limit on one front-end request frame (a TCP request
#: line, or an HTTP body in :mod:`repro.serve.http`).  Far above any
#: legitimate request, far below a memory hazard.
MAX_REQUEST_BYTES = 1 << 20


async def serve_tcp(service: SolverService, host: str, port: int,
                    limit: int = MAX_REQUEST_BYTES
                    ) -> asyncio.AbstractServer:
    """Start a JSON-lines TCP front-end.

    One request object per line in, one response object per line out;
    malformed JSON gets an ``{"ok": false}`` response rather than a
    dropped connection.  Returns the started server (caller owns its
    lifetime).

    A request line longer than ``limit`` bytes is answered with a
    typed :class:`~repro.errors.RequestTooLargeError` JSON object and
    the connection is then closed -- the stream position past an
    overrun line is unrecoverable, but the "typed error objects, never
    dropped connections" contract still holds.  (The previous
    implementation let the StreamReader's default 64 KiB limit raise
    straight through ``readline()``, dropping the connection with no
    response at all.)
    """
    import json

    async def handle(reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except asyncio.IncompleteReadError as exc:
                    # EOF mid-line: answer what arrived (defensive --
                    # readline() normally folds this into a return).
                    line = exc.partial
                except (asyncio.LimitOverrunError, ValueError) as exc:
                    # StreamReader.readline re-raises LimitOverrunError
                    # as ValueError; either spelling means the line
                    # exceeded ``limit``.
                    error = RequestTooLargeError(
                        f"request line exceeds the {limit}-byte limit; "
                        f"split or shrink the request")
                    result = {"ok": False, "error": type(error).__name__,
                              "message": f"{error} ({exc})"}
                    writer.write((json.dumps(result) + "\n").encode())
                    await writer.drain()
                    break
                if not line:
                    break
                try:
                    obj = json.loads(line)
                except json.JSONDecodeError as exc:
                    result = {"ok": False, "error": "JSONDecodeError",
                              "message": str(exc)}
                else:
                    result = await answer_json(service, obj)
                writer.write((json.dumps(result) + "\n").encode())
                await writer.drain()
        finally:
            writer.close()

    return await asyncio.start_server(handle, host, port, limit=limit)


# -- multi-process workers ---------------------------------------------

def _serve_worker(atlas_root: str, requests: List[Dict],
                  service_kwargs: Dict, traced: bool):
    """Worker-process entry point for :func:`serve_batch_multiprocess`.

    Builds a private :class:`~repro.serve.atlas.PolicyAtlas` handle and
    :class:`SolverService` over the shared atlas directory, answers its
    slice of the batch under a worker-local tracer, and ships the
    telemetry snapshot back for the parent to merge -- the same
    worker-count-independent scheme sweep cells use
    (:func:`repro.runtime.parallel.execute_task_traced`).
    """
    async def run() -> List[Dict]:
        service = SolverService(PolicyAtlas(atlas_root), **service_kwargs)
        try:
            return await serve_batch(service, requests)
        finally:
            await service.close()

    if not traced:
        return asyncio.run(run()), None
    tracer = telemetry.Tracer()
    with telemetry.use_tracer(tracer):
        results = asyncio.run(run())
    return results, tracer.snapshot()


def serve_batch_multiprocess(atlas_root, requests: List[Dict],
                             processes: int,
                             **service_kwargs) -> List[Dict]:
    """Answer a batch of JSON requests across worker processes sharing
    one atlas directory, preserving input order.

    Each worker owns a full :class:`SolverService` (its own event loop,
    admission control and single-flight table); the shared state is the
    atlas directory, which is multi-writer-safe by construction
    (content-addressed filenames + atomic same-content writes), so two
    workers cold-solving the same cell converge on one entry.  Against
    a warmed atlas the merged ``serve/*`` and ``atlas/*`` counters are
    worker-count independent; on cold overlapping requests duplicate
    solves *across* processes are possible (single-flight is
    per-process) and only cost time, never consistency.

    ``service_kwargs`` are forwarded to each worker's
    :class:`SolverService` and must be picklable (no ``solve_fn`` /
    ``clock`` injection here -- workers use the default backend).
    """
    if processes < 1:
        raise ReproError(f"processes must be >= 1, got {processes!r}")
    root = str(atlas_root)
    if processes == 1:
        return _serve_worker(root, requests, service_kwargs,
                             traced=False)[0]
    from concurrent.futures import ProcessPoolExecutor, as_completed
    traced = telemetry.tracing_enabled()
    results: List[Optional[Dict]] = [None] * len(requests)
    slices = {i: requests[i::processes] for i in range(processes)}
    with ProcessPoolExecutor(max_workers=processes) as pool:
        futures = {
            pool.submit(_serve_worker, root, chunk, service_kwargs,
                        traced): i
            for i, chunk in slices.items() if chunk}
        for future in as_completed(futures):
            offset = futures[future]
            worker_results, snapshot = future.result()
            if snapshot is not None and telemetry.tracing_enabled():
                telemetry.current_tracer().merge_snapshot(snapshot)
            for j, result in zip(range(offset, len(requests), processes),
                                 worker_results):
                results[j] = result
    return results  # type: ignore[return-value]
