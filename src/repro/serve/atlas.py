"""The persistent policy atlas: a crash-safe, content-addressed store
of solved analyses.

Solving a setting-2 cell takes seconds to minutes; serving millions of
queries means most traffic must hit precomputed artifacts (following
the cache-the-solved-ratios lesson of Bar-Zur, Eyal & Tamar,
arXiv:2007.05614).  The atlas is that artifact store, hardened for a
long-running service:

- **content-addressed**: an entry's filename is the SHA-256 digest of
  its canonical key (config + incentive model), so lookups are one
  ``stat`` and two processes backfilling the same cell converge on the
  same file (writes are atomic ``os.replace``\\ s of identical
  content);
- **checksummed**: every entry embeds the SHA-256 of its canonical
  ``key`` + ``body`` JSON; a flipped bit or a truncated write is
  detected on load, never served;
- **validated**: bodies are checked against the
  :mod:`repro.analysis.store` analysis schema on load, so a
  wrong-schema or hand-edited file surfaces as the typed
  :class:`~repro.errors.ArtifactCorruptError`;
- **quarantine-and-resolve**: a corrupt entry is moved into
  ``quarantine/`` (with a ``.reason`` sidecar) and reported as a miss,
  so the service re-solves and backfills instead of crashing -- a
  kill-and-restart therefore resumes serving with zero corrupt
  entries loaded.

The atlas also answers *nearest-neighbor* queries (same model/setting,
closest power split) used by the service's degraded mode when an exact
solve misses its deadline.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple, Union

from repro.core.config import AttackConfig
from repro.core.incentives import IncentiveModel
from repro.errors import ArtifactCorruptError
from repro.runtime.journal import atomic_write_text
from repro.runtime.telemetry import counter_add

PathLike = Union[str, Path]

#: Format version of atlas entry files; bump on breaking changes.
ATLAS_SCHEMA = 1

#: Continuous config fields the nearest-neighbor distance may vary
#: over; every other key field must match exactly.
_NEAREST_FIELDS = ("alpha", "beta", "gamma")


def canonical_json(obj) -> str:
    """Canonical (sorted, compact) JSON text of ``obj``."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def atlas_key(config: AttackConfig, model: IncentiveModel) -> Dict:
    """The canonical JSON-compatible identity of one solved cell."""
    return {"config": dataclasses.asdict(config), "model": model.value}


def key_digest(key: Dict) -> str:
    """SHA-256 hex digest of a canonical atlas key."""
    return hashlib.sha256(canonical_json(key).encode()).hexdigest()


def _entry_checksum(key: Dict, body: Dict) -> str:
    """Checksum covering both the key and the body of one entry."""
    return hashlib.sha256(
        canonical_json({"key": key, "body": body}).encode()).hexdigest()


@dataclass
class AtlasStats:
    """Counters over one :class:`PolicyAtlas` instance's lifetime."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    quarantined: int = 0


class PolicyAtlas:
    """Content-addressed, checksummed store of solved analyses.

    Parameters
    ----------
    root:
        Directory holding ``entries/`` and ``quarantine/`` (created on
        demand).
    validate_bodies:
        When true (the default), loaded bodies are additionally run
        through the :mod:`repro.analysis.store` schema decoder; a body
        that is valid JSON with a valid checksum but the wrong shape
        is still quarantined.
    """

    def __init__(self, root: PathLike,
                 validate_bodies: bool = True) -> None:
        self.root = Path(root)
        self.entries_dir = self.root / "entries"
        self.quarantine_dir = self.root / "quarantine"
        self.entries_dir.mkdir(parents=True, exist_ok=True)
        self.validate_bodies = validate_bodies
        self.stats = AtlasStats()

    # -- paths ---------------------------------------------------------

    def path_for(self, digest: str) -> Path:
        """On-disk location of the entry with ``digest``."""
        return self.entries_dir / f"{digest}.json"

    def __len__(self) -> int:
        return sum(1 for _ in self.entries_dir.glob("*.json"))

    # -- writing -------------------------------------------------------

    def put(self, key: Dict, body: Dict) -> Path:
        """Store ``body`` under ``key``; returns the entry path.

        The write is atomic and durable (temp file + ``os.replace`` +
        directory fsync via :func:`atomic_write_text`), so a crash
        mid-backfill can never leave a truncated entry -- only the old
        content, the new content, or no file.
        """
        digest = key_digest(key)
        entry = {"schema": ATLAS_SCHEMA, "kind": "atlas-entry",
                 "key": key, "body": body,
                 "sha256": _entry_checksum(key, body)}
        path = self.path_for(digest)
        atomic_write_text(path, json.dumps(entry, indent=1))
        self.stats.writes += 1
        counter_add("atlas/writes")
        return path

    def put_analysis(self, analysis) -> Path:
        """Store one solved :class:`~repro.core.solve.AttackAnalysis`."""
        from repro.analysis.store import analysis_to_payload
        return self.put(atlas_key(analysis.config, analysis.model),
                        analysis_to_payload(analysis))

    # -- loading -------------------------------------------------------

    def _load_entry(self, path: Path) -> Tuple[Dict, Dict]:
        """Load and fully validate one entry file.

        Returns ``(key, body)``; raises
        :class:`~repro.errors.ArtifactCorruptError` on malformed JSON,
        wrong kind/schema, missing fields, checksum mismatch, or (with
        ``validate_bodies``) a body violating the analysis schema.
        """
        try:
            raw = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ArtifactCorruptError(
                path, f"malformed JSON: {exc}") from exc
        except UnicodeDecodeError as exc:
            raise ArtifactCorruptError(
                path, f"not valid UTF-8: {exc}") from exc
        if not isinstance(raw, dict):
            raise ArtifactCorruptError(
                path, f"expected a JSON object, got {type(raw).__name__}")
        if raw.get("kind") != "atlas-entry":
            raise ArtifactCorruptError(
                path, f"not an atlas entry (kind={raw.get('kind')!r})")
        if raw.get("schema") != ATLAS_SCHEMA:
            raise ArtifactCorruptError(
                path, f"unsupported schema {raw.get('schema')!r} "
                      f"(expected {ATLAS_SCHEMA})")
        key, body = raw.get("key"), raw.get("body")
        if not isinstance(key, dict) or not isinstance(body, dict):
            raise ArtifactCorruptError(path, "missing key or body")
        recorded = raw.get("sha256")
        actual = _entry_checksum(key, body)
        if recorded != actual:
            raise ArtifactCorruptError(
                path, f"checksum mismatch (recorded {recorded!r}, "
                      f"actual {actual!r})")
        expected = f"{key_digest(key)}.json"
        if path.name != expected:
            raise ArtifactCorruptError(
                path, f"content address mismatch (key hashes to "
                      f"{expected!r})")
        if self.validate_bodies:
            from repro.analysis.store import validate_analysis_payload
            validate_analysis_payload(body, source=str(path))
            for field_name in ("config", "model"):
                if body.get(field_name) != key.get(field_name):
                    raise ArtifactCorruptError(
                        path, f"body {field_name} does not match the "
                              f"entry key (an answer stored under the "
                              f"wrong cell)")
        return key, body

    def quarantine(self, path: Path, reason: str) -> Path:
        """Move a corrupt entry aside (with a ``.reason`` sidecar) and
        return its quarantine location.  Never raises on a lost race
        -- another process may have quarantined the file first."""
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        target = self.quarantine_dir / path.name
        try:
            os.replace(path, target)
        except OSError:
            return target
        atomic_write_text(target.with_suffix(".reason"), reason + "\n")
        self.stats.quarantined += 1
        counter_add("atlas/quarantined")
        return target

    def get(self, key: Dict) -> Optional[Dict]:
        """The stored body for ``key``, or ``None`` on a miss.

        A corrupt entry is quarantined and reported as a miss -- the
        resolve half of quarantine-and-resolve is the caller's solve
        path backfilling via :meth:`put`.
        """
        path = self.path_for(key_digest(key))
        if not path.exists():
            self.stats.misses += 1
            counter_add("atlas/misses")
            return None
        try:
            _key, body = self._load_entry(path)
        except ArtifactCorruptError as exc:
            self.quarantine(path, exc.reason)
            self.stats.misses += 1
            counter_add("atlas/misses")
            return None
        self.stats.hits += 1
        counter_add("atlas/hits")
        return body

    def __contains__(self, key: Dict) -> bool:
        return self.path_for(key_digest(key)).exists()

    # -- scanning and nearest-neighbor queries -------------------------

    def scan(self) -> Dict[str, Dict]:
        """Load every entry, quarantining corrupt ones.

        Returns ``digest -> key`` for the entries that survived -- what
        a restarted service resumes from.  After a scan, every
        remaining entry on disk has passed checksum and schema
        validation (the "zero corrupt entries loaded" guarantee).
        """
        index: Dict[str, Dict] = {}
        for path in sorted(self.entries_dir.glob("*.json")):
            try:
                key, _body = self._load_entry(path)
            except ArtifactCorruptError as exc:
                self.quarantine(path, exc.reason)
                continue
            index[path.stem] = key
        return index

    def iter_entries(self) -> Iterator[Tuple[Dict, Dict]]:
        """Iterate ``(key, body)`` over valid entries, quarantining
        corrupt ones as they are encountered."""
        for path in sorted(self.entries_dir.glob("*.json")):
            try:
                yield self._load_entry(path)
            except ArtifactCorruptError as exc:
                self.quarantine(path, exc.reason)

    def nearest(self, key: Dict,
                max_distance: float = float("inf")
                ) -> Optional[Tuple[Dict, Dict, float]]:
        """The closest stored entry usable as a degraded substitute.

        Candidates must match ``key`` exactly on every config field
        except the continuous power split (``alpha``/``beta``/
        ``gamma``) and on the incentive model; distance is the L1
        distance over the power split.  Returns ``(key, body,
        distance)`` or ``None`` when nothing qualifies within
        ``max_distance``.
        """
        want_config = dict(key.get("config", {}))
        want_model = key.get("model")
        want_discrete = {k: v for k, v in want_config.items()
                         if k not in _NEAREST_FIELDS}
        best: Optional[Tuple[Dict, Dict, float]] = None
        for cand_key, body in self.iter_entries():
            if cand_key.get("model") != want_model:
                continue
            cand_config = dict(cand_key.get("config", {}))
            discrete = {k: v for k, v in cand_config.items()
                        if k not in _NEAREST_FIELDS}
            if discrete != want_discrete:
                continue
            try:
                distance = sum(
                    abs(float(cand_config[f]) - float(want_config[f]))
                    for f in _NEAREST_FIELDS)
            except (KeyError, TypeError, ValueError):
                continue
            if distance <= max_distance and \
                    (best is None or distance < best[2]):
                best = (cand_key, body, distance)
        return best
