"""The persistent policy atlas: a crash-safe, content-addressed store
of solved analyses.

Solving a setting-2 cell takes seconds to minutes; serving millions of
queries means most traffic must hit precomputed artifacts (following
the cache-the-solved-ratios lesson of Bar-Zur, Eyal & Tamar,
arXiv:2007.05614).  The atlas is that artifact store, hardened for a
long-running service:

- **content-addressed**: an entry's filename is the SHA-256 digest of
  its canonical key (config + incentive model), so lookups are one
  ``stat`` and two processes backfilling the same cell converge on the
  same file (writes are atomic ``os.replace``\\ s of identical
  content);
- **checksummed**: every entry embeds the SHA-256 of its canonical
  ``key`` + ``body`` JSON; a flipped bit or a truncated write is
  detected on load, never served;
- **validated**: bodies are checked against the
  :mod:`repro.analysis.store` analysis schema on load, so a
  wrong-schema or hand-edited file surfaces as the typed
  :class:`~repro.errors.ArtifactCorruptError`;
- **quarantine-and-resolve**: a corrupt entry is moved into
  ``quarantine/`` (with a ``.reason`` sidecar) and reported as a miss,
  so the service re-solves and backfills instead of crashing -- a
  kill-and-restart therefore resumes serving with zero corrupt
  entries loaded;
- **indexed and cached**: an in-memory ``digest -> key`` index (built
  by :meth:`scan`, kept coherent by :meth:`put`, :meth:`get` and
  :meth:`quarantine`) plus a bounded LRU cache of hot policy bodies
  make repeat :meth:`get`\\ s and :meth:`nearest` queries run with
  zero disk reads.  The cache is strictly read-through: bodies enter
  it only after surviving a fully validated disk load, so on-disk
  corruption is still detected the first time an entry is read, and
  :meth:`put` only invalidates (never populates) the cached body.

Multi-writer safety: several processes may share one atlas directory.
The index is therefore advisory for *presence* -- a digest absent from
the index may still have been written by another process, so a miss is
only declared after falling through to disk -- while an index *hit*
still reads (and validates) the body from disk unless it is already
cached.

The atlas also answers *nearest-neighbor* queries (same model/setting,
closest power split) used by the service's degraded mode when an exact
solve misses its deadline.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple, Union

from repro.core.config import AttackConfig
from repro.core.incentives import IncentiveModel
from repro.errors import ArtifactCorruptError, AtlasQuarantineError
from repro.runtime.journal import atomic_write_text
from repro.runtime.telemetry import counter_add

PathLike = Union[str, Path]

#: Format version of atlas entry files; bump on breaking changes.
ATLAS_SCHEMA = 1

#: Default bound on the number of policy bodies kept hot in memory.
DEFAULT_CACHE_ENTRIES = 256

#: Continuous config fields the nearest-neighbor distance may vary
#: over; every other key field must match exactly.
_NEAREST_FIELDS = ("alpha", "beta", "gamma")


def canonical_json(obj) -> str:
    """Canonical (sorted, compact) JSON text of ``obj``."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def atlas_key(config: AttackConfig, model: IncentiveModel) -> Dict:
    """The canonical JSON-compatible identity of one solved cell."""
    return {"config": dataclasses.asdict(config), "model": model.value}


def key_digest(key: Dict) -> str:
    """SHA-256 hex digest of a canonical atlas key."""
    return hashlib.sha256(canonical_json(key).encode()).hexdigest()


def _entry_checksum(key: Dict, body: Dict) -> str:
    """Checksum covering both the key and the body of one entry."""
    return hashlib.sha256(
        canonical_json({"key": key, "body": body}).encode()).hexdigest()


@dataclass
class AtlasStats:
    """Counters over one :class:`PolicyAtlas` instance's lifetime."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    quarantined: int = 0
    #: Quarantine attempts that lost the race to another process (the
    #: source entry was already gone) -- counted separately from real
    #: quarantines so a swallowed failure can't masquerade as one.
    quarantine_races: int = 0
    #: ``get()`` calls answered straight from the in-memory LRU cache.
    cache_hits: int = 0
    #: ``get()`` calls that had to go past the cache (to the index
    #: and/or disk), whether or not they ultimately hit.
    cache_misses: int = 0
    #: Bodies dropped from the LRU cache to respect the bound.
    cache_evictions: int = 0
    #: Entry files read and validated from disk.  The serve-smoke
    #: benchmark asserts this stays flat across the hot phase.
    disk_reads: int = 0

    def cache_hit_rate(self) -> float:
        """Fraction of ``get()`` calls served from memory."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


class PolicyAtlas:
    """Content-addressed, checksummed store of solved analyses.

    Parameters
    ----------
    root:
        Directory holding ``entries/`` and ``quarantine/`` (created on
        demand).
    validate_bodies:
        When true (the default), loaded bodies are additionally run
        through the :mod:`repro.analysis.store` schema decoder; a body
        that is valid JSON with a valid checksum but the wrong shape
        is still quarantined.
    cache_entries:
        Bound on the in-memory LRU cache of hot policy bodies; ``0``
        disables body caching (the digest -> key index is always
        maintained).
    """

    def __init__(self, root: PathLike,
                 validate_bodies: bool = True,
                 cache_entries: int = DEFAULT_CACHE_ENTRIES) -> None:
        self.root = Path(root)
        self.entries_dir = self.root / "entries"
        self.quarantine_dir = self.root / "quarantine"
        self.entries_dir.mkdir(parents=True, exist_ok=True)
        self.validate_bodies = validate_bodies
        self.cache_entries = int(cache_entries)
        self.stats = AtlasStats()
        #: In-memory ``digest -> key`` of entries known valid: built by
        #: :meth:`scan`, extended by :meth:`put` and validated loads,
        #: pruned by :meth:`quarantine` and vanished-file discoveries.
        self._index: Dict[str, Dict] = {}
        #: True once :meth:`scan` has walked the whole directory, so
        #: :meth:`nearest` can trust the index as the candidate set.
        self._index_complete = False
        #: LRU of ``digest -> body`` for validated, disk-loaded
        #: entries only (read-through; :meth:`put` never populates it).
        self._cache: "OrderedDict[str, Dict]" = OrderedDict()

    # -- paths ---------------------------------------------------------

    def path_for(self, digest: str) -> Path:
        """On-disk location of the entry with ``digest``."""
        return self.entries_dir / f"{digest}.json"

    def __len__(self) -> int:
        return sum(1 for _ in self.entries_dir.glob("*.json"))

    # -- index / cache maintenance -------------------------------------

    def _admit(self, digest: str, key: Dict, body: Dict) -> None:
        """Record a disk-validated entry in the index and LRU cache."""
        self._index[digest] = key
        if self.cache_entries <= 0:
            return
        self._cache[digest] = body
        self._cache.move_to_end(digest)
        while len(self._cache) > self.cache_entries:
            self._cache.popitem(last=False)
            self.stats.cache_evictions += 1
            counter_add("atlas/cache_evictions")

    def _forget(self, digest: str) -> None:
        """Drop an entry from the index and cache (quarantined, or its
        file vanished under another process's quarantine)."""
        self._index.pop(digest, None)
        self._cache.pop(digest, None)

    def _ensure_index(self) -> None:
        """Make the index a complete picture of the entries directory
        (one full :meth:`scan` on first need)."""
        if not self._index_complete:
            self.scan()

    # -- writing -------------------------------------------------------

    def put(self, key: Dict, body: Dict) -> Path:
        """Store ``body`` under ``key``; returns the entry path.

        The write is atomic and durable (temp file + ``os.replace`` +
        directory fsync via :func:`atomic_write_text`), so a crash
        mid-backfill can never leave a truncated entry -- only the old
        content, the new content, or no file.

        The in-memory index learns the new digest immediately; any
        cached body for the same key is invalidated (not replaced), so
        the next read revalidates what actually landed on disk.
        """
        digest = key_digest(key)
        entry = {"schema": ATLAS_SCHEMA, "kind": "atlas-entry",
                 "key": key, "body": body,
                 "sha256": _entry_checksum(key, body)}
        path = self.path_for(digest)
        atomic_write_text(path, json.dumps(entry, indent=1))
        self._index[digest] = key
        self._cache.pop(digest, None)
        self.stats.writes += 1
        counter_add("atlas/writes")
        return path

    def put_analysis(self, analysis) -> Path:
        """Store one solved :class:`~repro.core.solve.AttackAnalysis`."""
        from repro.analysis.store import analysis_to_payload
        return self.put(atlas_key(analysis.config, analysis.model),
                        analysis_to_payload(analysis))

    # -- loading -------------------------------------------------------

    def _load_entry(self, path: Path) -> Tuple[Dict, Dict]:
        """Load and fully validate one entry file.

        Returns ``(key, body)``; raises
        :class:`~repro.errors.ArtifactCorruptError` on malformed JSON,
        wrong kind/schema, missing fields, checksum mismatch, or (with
        ``validate_bodies``) a body violating the analysis schema.
        """
        self.stats.disk_reads += 1
        counter_add("atlas/disk_reads")
        try:
            raw = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ArtifactCorruptError(
                path, f"malformed JSON: {exc}") from exc
        except UnicodeDecodeError as exc:
            raise ArtifactCorruptError(
                path, f"not valid UTF-8: {exc}") from exc
        if not isinstance(raw, dict):
            raise ArtifactCorruptError(
                path, f"expected a JSON object, got {type(raw).__name__}")
        if raw.get("kind") != "atlas-entry":
            raise ArtifactCorruptError(
                path, f"not an atlas entry (kind={raw.get('kind')!r})")
        if raw.get("schema") != ATLAS_SCHEMA:
            raise ArtifactCorruptError(
                path, f"unsupported schema {raw.get('schema')!r} "
                      f"(expected {ATLAS_SCHEMA})")
        key, body = raw.get("key"), raw.get("body")
        if not isinstance(key, dict) or not isinstance(body, dict):
            raise ArtifactCorruptError(path, "missing key or body")
        recorded = raw.get("sha256")
        actual = _entry_checksum(key, body)
        if recorded != actual:
            raise ArtifactCorruptError(
                path, f"checksum mismatch (recorded {recorded!r}, "
                      f"actual {actual!r})")
        expected = f"{key_digest(key)}.json"
        if path.name != expected:
            raise ArtifactCorruptError(
                path, f"content address mismatch (key hashes to "
                      f"{expected!r})")
        if self.validate_bodies:
            from repro.analysis.store import validate_analysis_payload
            validate_analysis_payload(body, source=str(path))
            for field_name in ("config", "model"):
                if body.get(field_name) != key.get(field_name):
                    raise ArtifactCorruptError(
                        path, f"body {field_name} does not match the "
                              f"entry key (an answer stored under the "
                              f"wrong cell)")
        return key, body

    def quarantine(self, path: Path, reason: str) -> Path:
        """Move a corrupt entry aside (with a ``.reason`` sidecar) and
        return its quarantine location.

        Losing the race to another process (the source entry is already
        gone) is fine and counted as :attr:`AtlasStats.quarantine_races`;
        any *other* failure to move the file -- permissions, an
        unwritable quarantine directory -- raises the typed
        :class:`~repro.errors.AtlasQuarantineError` instead of silently
        leaving the corrupt entry in place to be re-served forever.
        """
        digest = path.stem
        self._forget(digest)
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        target = self.quarantine_dir / path.name
        try:
            os.replace(path, target)
        except OSError as exc:
            if isinstance(exc, FileNotFoundError) or not path.exists():
                self.stats.quarantine_races += 1
                counter_add("atlas/quarantine_races")
                return target
            raise AtlasQuarantineError(
                f"cannot quarantine corrupt entry {path}: {exc}") from exc
        atomic_write_text(target.with_suffix(".reason"), reason + "\n")
        self.stats.quarantined += 1
        counter_add("atlas/quarantined")
        return target

    def get(self, key: Dict) -> Optional[Dict]:
        """The stored body for ``key``, or ``None`` on a miss.

        Hot path: a body already in the LRU cache is returned with zero
        disk access.  Otherwise one disk read loads and validates the
        entry (admitting it to the cache); a corrupt entry is
        quarantined and reported as a miss -- the resolve half of
        quarantine-and-resolve is the caller's solve path backfilling
        via :meth:`put`.  A digest absent from the index still falls
        through to disk before being declared a miss, preserving
        multi-writer safety.
        """
        digest = key_digest(key)
        cached = self._cache.get(digest)
        if cached is not None:
            self._cache.move_to_end(digest)
            self.stats.cache_hits += 1
            self.stats.hits += 1
            counter_add("atlas/cache_hits")
            counter_add("atlas/hits")
            return cached
        self.stats.cache_misses += 1
        counter_add("atlas/cache_misses")
        path = self.path_for(digest)
        if not path.exists():
            # Another process may have quarantined what we indexed.
            self._forget(digest)
            self.stats.misses += 1
            counter_add("atlas/misses")
            return None
        try:
            entry_key, body = self._load_entry(path)
        except FileNotFoundError:
            self._forget(digest)
            self.stats.misses += 1
            counter_add("atlas/misses")
            return None
        except ArtifactCorruptError as exc:
            self.quarantine(path, exc.reason)
            self.stats.misses += 1
            counter_add("atlas/misses")
            return None
        self._admit(digest, entry_key, body)
        self.stats.hits += 1
        counter_add("atlas/hits")
        return body

    def __contains__(self, key: Dict) -> bool:
        """Membership consistent with :meth:`get`: only entries that
        have passed (or, per the index, previously passed) validation
        count, never a merely-existing corrupt file.

        An index hit is answered without touching disk -- indexed
        entries were validated when admitted (external tampering behind
        a built index is, as for :meth:`get`'s cache, discovered on the
        next disk read or :meth:`scan`).  An index miss falls through
        to a fully validated disk load, quarantining a corrupt file and
        returning ``False`` exactly where :meth:`get` would miss.
        """
        digest = key_digest(key)
        if digest in self._index:
            return True
        path = self.path_for(digest)
        if not path.exists():
            return False
        try:
            entry_key, body = self._load_entry(path)
        except FileNotFoundError:
            return False
        except ArtifactCorruptError as exc:
            self.quarantine(path, exc.reason)
            return False
        self._admit(digest, entry_key, body)
        return True

    # -- scanning and nearest-neighbor queries -------------------------

    def scan(self) -> Dict[str, Dict]:
        """Load every entry, quarantining corrupt ones, and (re)build
        the in-memory index.

        Returns ``digest -> key`` for the entries that survived -- what
        a restarted service resumes from.  After a scan, every
        remaining entry on disk has passed checksum and schema
        validation (the "zero corrupt entries loaded" guarantee), the
        index is exactly the on-disk survivor set, and cached bodies
        whose entries did not survive have been dropped.
        """
        index: Dict[str, Dict] = {}
        for path in sorted(self.entries_dir.glob("*.json")):
            try:
                key, _body = self._load_entry(path)
            except FileNotFoundError:
                continue
            except ArtifactCorruptError as exc:
                self.quarantine(path, exc.reason)
                continue
            index[path.stem] = key
        self._index = dict(index)
        self._index_complete = True
        for digest in [d for d in self._cache if d not in self._index]:
            self._cache.pop(digest, None)
        return index

    def iter_entries(self) -> Iterator[Tuple[Dict, Dict]]:
        """Iterate ``(key, body)`` over valid entries, quarantining
        corrupt ones as they are encountered."""
        for path in sorted(self.entries_dir.glob("*.json")):
            try:
                yield self._load_entry(path)
            except FileNotFoundError:
                continue
            except ArtifactCorruptError as exc:
                self.quarantine(path, exc.reason)

    def nearest(self, key: Dict,
                max_distance: float = float("inf")
                ) -> Optional[Tuple[Dict, Dict, float]]:
        """The closest stored entry usable as a degraded substitute.

        Candidates must match ``key`` exactly on every config field
        except the continuous power split (``alpha``/``beta``/
        ``gamma``) and on the incentive model; distance is the L1
        distance over the power split.  Returns ``(key, body,
        distance)`` or ``None`` when nothing qualifies within
        ``max_distance``.

        The candidate search walks the in-memory index (one full
        :meth:`scan` on first use, O(index) afterwards); only the
        winning entry's body is fetched, via :meth:`get`, so a repeat
        query against a warm cache does zero disk reads.  Should the
        winner turn out corrupt or vanished at fetch time it is
        dropped from the index and the search repeats without it.
        """
        self._ensure_index()
        want_config = dict(key.get("config", {}))
        want_model = key.get("model")
        want_discrete = {k: v for k, v in want_config.items()
                         if k not in _NEAREST_FIELDS}
        while True:
            best: Optional[Tuple[str, Dict, float]] = None
            for digest, cand_key in self._index.items():
                if cand_key.get("model") != want_model:
                    continue
                cand_config = dict(cand_key.get("config", {}))
                discrete = {k: v for k, v in cand_config.items()
                            if k not in _NEAREST_FIELDS}
                if discrete != want_discrete:
                    continue
                try:
                    distance = sum(
                        abs(float(cand_config[f]) - float(want_config[f]))
                        for f in _NEAREST_FIELDS)
                except (KeyError, TypeError, ValueError):
                    continue
                if distance <= max_distance and \
                        (best is None or distance < best[2]):
                    best = (digest, cand_key, distance)
            if best is None:
                return None
            digest, cand_key, distance = best
            body = self.get(cand_key)
            if body is not None:
                return cand_key, body, distance
            # get() already dropped the corrupt/vanished digest from
            # the index; re-run the search over what remains.
