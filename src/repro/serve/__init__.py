"""Solver-as-a-service: the resilient serving layer.

``repro serve`` answers policy/utility queries for arbitrary
``(incentive model, MG/EB/AD, alpha, gamma, lookahead)`` configurations
from a persistent, content-addressed policy atlas, with a full
resilience layer in front of the solvers:

- :mod:`repro.serve.atlas` -- :class:`PolicyAtlas`, the crash-safe
  artifact store (per-entry SHA-256 checksums, schema validation on
  load, quarantine-and-resolve for corrupt entries), fronted by an
  in-memory digest index plus a bounded LRU cache of hot policy
  bodies so repeat ``get``/``nearest`` queries do zero disk reads;
- :mod:`repro.serve.service` -- :class:`SolverService`, the asyncio
  service: single-flight request coalescing, admission control with
  explicit backpressure, deadline propagation with jittered
  exponential-backoff retries, and graceful degradation (flagged
  nearest-neighbor atlas entries or reduced-lookahead solves); plus
  the JSON-lines TCP front-end and multi-process batch workers
  sharing one atlas directory;
- :mod:`repro.serve.http` -- the stdlib/asyncio HTTP front-end
  (``POST /solve``, ``GET /health``) with typed JSON error bodies and
  an error-type -> status mapping (429/503/413/...);
- :mod:`repro.serve.warm` -- ``repro serve --warm``: journal-resumable
  precompute of the paper's parameter grids into the atlas through
  the shared cell scheduler;
- :mod:`repro.serve.chaos` -- the chaos harness injecting solver
  hangs, worker crashes, artifact corruption and clock skew into a
  running service, plus the resilience and cache-coherence invariant
  checks.

See ``docs/robustness.md`` ("Serving and degraded modes", "Serving at
scale") for the semantics and the README for a quickstart.
"""

from repro.serve.atlas import PolicyAtlas, atlas_key, key_digest
from repro.serve.http import serve_http
from repro.serve.service import (
    RetryPolicy,
    ServeResponse,
    SolveRequest,
    SolverService,
    serve_batch_multiprocess,
    serve_tcp,
)
from repro.serve.warm import WarmReport, warm_atlas

__all__ = [
    "PolicyAtlas",
    "RetryPolicy",
    "ServeResponse",
    "SolveRequest",
    "SolverService",
    "WarmReport",
    "atlas_key",
    "key_digest",
    "serve_batch_multiprocess",
    "serve_http",
    "serve_tcp",
    "warm_atlas",
]
