"""Solver-as-a-service: the resilient serving layer.

``repro serve`` answers policy/utility queries for arbitrary
``(incentive model, MG/EB/AD, alpha, gamma, lookahead)`` configurations
from a persistent, content-addressed policy atlas, with a full
resilience layer in front of the solvers:

- :mod:`repro.serve.atlas` -- :class:`PolicyAtlas`, the crash-safe
  artifact store (per-entry SHA-256 checksums, schema validation on
  load, quarantine-and-resolve for corrupt entries);
- :mod:`repro.serve.service` -- :class:`SolverService`, the asyncio
  service: single-flight request coalescing, admission control with
  explicit backpressure, deadline propagation with jittered
  exponential-backoff retries, and graceful degradation (flagged
  nearest-neighbor atlas entries or reduced-lookahead solves);
- :mod:`repro.serve.chaos` -- the chaos harness injecting solver
  hangs, worker crashes, artifact corruption and clock skew into a
  running service, plus the resilience invariant checks.

See ``docs/robustness.md`` ("Serving and degraded modes") for the
semantics and the README for a quickstart.
"""

from repro.serve.atlas import PolicyAtlas, atlas_key, key_digest
from repro.serve.service import (
    RetryPolicy,
    ServeResponse,
    SolveRequest,
    SolverService,
)

__all__ = [
    "PolicyAtlas",
    "RetryPolicy",
    "ServeResponse",
    "SolveRequest",
    "SolverService",
    "atlas_key",
    "key_digest",
]
