"""Chaos harness for the solver service.

Runs a :class:`~repro.serve.service.SolverService` under injected
faults -- solver hangs, worker crashes, on-disk artifact corruption,
and clock-skewed deadlines (all drawn from a seeded
:class:`~repro.runtime.faults.ServiceFaultInjector`) -- while recording
every outcome, then checks the resilience invariants the service
guarantees:

- **typed errors only**: every failed request raised a
  :class:`~repro.errors.ReproError` subclass (429s, shutdowns,
  deadline misses) -- never a raw ``KeyError`` or garbage payload;
- **no stale without a flag**: every response whose payload does not
  answer the exact requested config carries ``degraded: true`` plus a
  reason;
- **no duplicate concurrent solves**: at no point did two solves for
  the same config-hash run concurrently (single-flight held under
  fault-induced retries);
- **no lost in-flight requests on shutdown**: every request submitted
  before :meth:`~repro.serve.service.SolverService.close` got an
  answer or the typed shutdown error;
- **clean restart**: re-opening the atlas after the chaos run loads
  zero corrupt entries (corrupted writes were quarantined, not
  served), and the rebuilt in-memory index is exactly the on-disk
  survivor set;
- **cache coherence** (:func:`check_cache_invariants`): the LRU bound
  is enforced, no stale cached body is served after its entry is
  quarantined, membership and ``get`` agree on quarantined entries,
  and a kill-and-restart rebuilds the index to exactly the on-disk
  survivors with survivor bodies byte-identical.

``repro chaos --serve`` drives this harness from the CLI; the chaos
test tier runs it with aggressive rates on every commit.
"""

from __future__ import annotations

import asyncio
import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.core.config import AttackConfig
from repro.core.incentives import IncentiveModel
from repro.errors import ReproError, SolverError
from repro.runtime.faults import ServiceFaultInjector, ServiceFaultPlan
from repro.serve.atlas import PolicyAtlas, key_digest
from repro.serve.service import (
    ServeResponse,
    SolveRequest,
    SolverService,
    atlas_key,
)


class InjectedCrashError(SolverError):
    """A worker crash injected by the chaos harness (transient, so the
    service's retry path is exercised)."""


class CorruptingAtlas(PolicyAtlas):
    """A :class:`PolicyAtlas` whose writes are sometimes corrupted.

    After a normal (atomic, durable) :meth:`put`, the injector may
    flip the file's tail bytes -- simulating bit rot or a hostile
    editor rather than a torn write, which the atomic write path
    already rules out.  The service must never serve such an entry.
    """

    def __init__(self, root, injector: ServiceFaultInjector,
                 **kwargs) -> None:
        super().__init__(root, **kwargs)
        self.injector = injector

    def put(self, key: Dict, body: Dict):
        path = super().put(key, body)
        if self.injector.draw_corruption():
            data = path.read_bytes()
            path.write_bytes(data[:-16] + b"\xffGARBAGE-BYTES\xff\xff")
        return path


@dataclass
class SingleFlightProbe:
    """Records solve-attempt concurrency per config digest.

    The chaos solve backend calls :meth:`enter` / :meth:`leave` around
    every attempt; two concurrent attempts for one digest is a
    single-flight violation and is recorded (never raised -- the
    invariant check reports it after the run).
    """

    active: Set[str] = field(default_factory=set)
    violations: List[str] = field(default_factory=list)
    attempts: int = 0

    def enter(self, digest: str) -> None:
        self.attempts += 1
        if digest in self.active:
            self.violations.append(digest)
        self.active.add(digest)

    def leave(self, digest: str) -> None:
        self.active.discard(digest)


def chaos_solve_fn(injector: ServiceFaultInjector,
                   probe: SingleFlightProbe,
                   utilities: Optional[Dict[str, float]] = None):
    """An async solve backend with injected hangs and crashes.

    Healthy attempts return a schema-valid analysis payload whose
    utility is deterministic in the config digest, so a response served
    from a *different* cell's payload (a would-be stale-data bug) is
    detectable.  Hangs honour cancellation (``asyncio.sleep``), so the
    service's deadline enforcement -- not the hang ending -- must be
    what unblocks the request.
    """
    from repro.analysis.store import SCHEMA_VERSION

    async def solve(request: SolveRequest, deadline) -> Dict:
        digest = key_digest(atlas_key(request.config, request.model))
        probe.enter(digest)
        try:
            hang = injector.draw_hang()
            if hang is not None:
                await asyncio.sleep(hang)
            if injector.draw_crash():
                raise InjectedCrashError(
                    f"injected worker crash (digest {digest[:12]})")
            await asyncio.sleep(0.001)
            utility = (utilities or {}).get(
                digest, int(digest[:8], 16) / 0xFFFFFFFF)
            return {"schema": SCHEMA_VERSION, "kind": "attack-analysis",
                    "config": dataclasses.asdict(request.config),
                    "model": request.model.value,
                    "utility": utility, "honest_utility": 0.0,
                    "rates": {}, "policy": {}}
        finally:
            probe.leave(digest)

    return solve


@dataclass
class ChaosReport:
    """Outcome of one chaos run, consumed by the invariant checks."""

    responses: List[ServeResponse] = field(default_factory=list)
    typed_errors: List[ReproError] = field(default_factory=list)
    untyped_errors: List[BaseException] = field(default_factory=list)
    unanswered: int = 0
    probe: SingleFlightProbe = field(default_factory=SingleFlightProbe)
    injected: Dict[str, int] = field(default_factory=dict)
    stats: Optional[object] = None  # the service's ServiceStats

    def summary(self) -> Dict:
        """JSON-compatible run summary (the CLI prints this)."""
        by_source: Dict[str, int] = {}
        for response in self.responses:
            by_source[response.source] = \
                by_source.get(response.source, 0) + 1
        by_error: Dict[str, int] = {}
        for exc in self.typed_errors:
            name = type(exc).__name__
            by_error[name] = by_error.get(name, 0) + 1
        return {"answered": len(self.responses),
                "by_source": by_source,
                "typed_errors": by_error,
                "untyped_errors": len(self.untyped_errors),
                "unanswered": self.unanswered,
                "solve_attempts": self.probe.attempts,
                "single_flight_violations": len(self.probe.violations),
                "injected": dict(self.injected)}


def check_service_invariants(report: ChaosReport,
                             atlas_root) -> List[str]:
    """Check the resilience invariants; returns violation messages
    (empty list = chaos run passed)."""
    violations: List[str] = []
    if report.untyped_errors:
        kinds = sorted({type(e).__name__
                        for e in report.untyped_errors})
        violations.append(
            f"{len(report.untyped_errors)} request(s) failed with "
            f"untyped errors: {kinds}")
    if report.unanswered:
        violations.append(
            f"{report.unanswered} in-flight request(s) lost on "
            f"shutdown (neither answered nor given a typed error)")
    if report.probe.violations:
        violations.append(
            f"duplicate concurrent solves for digest(s) "
            f"{sorted(set(report.probe.violations))}")
    for response in report.responses:
        if response.source.startswith("degraded") and \
                not response.degraded:
            violations.append(
                f"stale data served without flag: source="
                f"{response.source} but degraded is false")
        if response.degraded and not response.degraded_reason:
            violations.append(
                "degraded response carries no degraded_reason")
    # Kill-and-restart: a fresh atlas over the same directory must
    # load with zero corrupt entries (corrupt ones quarantined), and
    # its rebuilt index must be exactly the on-disk survivor set.
    fresh = PolicyAtlas(atlas_root)
    index = fresh.scan()
    on_disk = {p.stem for p in fresh.entries_dir.glob("*.json")}
    if set(index) != on_disk:
        violations.append(
            f"restart index does not match on-disk survivors "
            f"(index {len(index)}, on disk {len(on_disk)})")
    for path in fresh.entries_dir.glob("*.json"):
        try:
            fresh._load_entry(path)
        except ReproError as exc:
            violations.append(
                f"corrupt entry survived restart scan: {exc}")
    return violations


def _cell_payload(config: AttackConfig, model: IncentiveModel,
                  utility: float) -> Dict:
    """A minimal schema-valid analysis payload for one cell."""
    from repro.analysis.store import SCHEMA_VERSION
    return {"schema": SCHEMA_VERSION, "kind": "attack-analysis",
            "config": dataclasses.asdict(config), "model": model.value,
            "utility": utility, "honest_utility": 0.0,
            "rates": {}, "policy": {}}


def check_cache_invariants(atlas_root, entries: int = 12,
                           cache_entries: int = 8,
                           seed: int = 0) -> List[str]:
    """Deterministic cache-coherence scenario over one atlas directory.

    Builds ``entries`` valid entries (more than the ``cache_entries``
    LRU bound, so eviction is exercised), reads them all hot, corrupts
    a seeded subset on disk, rescans, and checks:

    - the LRU bound was enforced (evictions happened);
    - no stale cached body is served after its entry was quarantined
      by the rescan, and membership agrees with ``get`` on it;
    - survivors still serve their original bodies;
    - a kill-and-restart (fresh instance) rebuilds the index to
      exactly the on-disk survivor set -- which is exactly the
      non-corrupted entries -- with byte-identical bodies.

    Returns violation messages (empty list = invariants hold).
    """
    import numpy as np

    violations: List[str] = []
    atlas = PolicyAtlas(atlas_root, cache_entries=cache_entries)
    model = IncentiveModel.COMPLIANT_PROFIT
    keys: List[Dict] = []
    for i in range(entries):
        alpha = round(0.05 + 0.40 * i / max(entries - 1, 1), 4)
        config = AttackConfig.from_ratio(alpha, (1, 1), setting=1, ad=2)
        key = atlas_key(config, model)
        atlas.put(key, _cell_payload(config, model,
                                     utility=i / max(entries, 1)))
        keys.append(key)
    bodies = {key_digest(key): atlas.get(key) for key in keys}
    if entries > cache_entries and atlas.stats.cache_evictions == 0:
        violations.append(
            f"LRU bound not enforced: {entries} entries read through "
            f"a {cache_entries}-entry cache with zero evictions")

    rng = np.random.default_rng(seed)
    digests = sorted(bodies)
    corrupt = {str(d) for d in rng.choice(
        digests, size=max(1, entries // 3), replace=False)}
    for digest in corrupt:
        path = atlas.path_for(digest)
        data = path.read_bytes()
        path.write_bytes(data[:-16] + b"\xffGARBAGE-BYTES\xff\xff")

    # The rescan must quarantine every corrupt entry *and* invalidate
    # any cached body for it: no stale body served after quarantine.
    index = atlas.scan()
    for key in keys:
        digest = key_digest(key)
        if digest in corrupt:
            if digest in index:
                violations.append(
                    f"rescan index still lists quarantined entry "
                    f"{digest[:12]}")
            if atlas.get(key) is not None:
                violations.append(
                    f"stale body served after quarantine of "
                    f"{digest[:12]}")
            if key in atlas:
                violations.append(
                    f"membership true for quarantined entry "
                    f"{digest[:12]}")
        else:
            if atlas.get(key) != bodies[digest]:
                violations.append(
                    f"survivor body changed after rescan "
                    f"({digest[:12]})")

    # Kill-and-restart: the rebuilt index is exactly the on-disk
    # survivor set, which is exactly the non-corrupted entries.
    fresh = PolicyAtlas(atlas_root, cache_entries=cache_entries)
    rebuilt = fresh.scan()
    on_disk = {p.stem for p in fresh.entries_dir.glob("*.json")}
    if set(rebuilt) != on_disk:
        violations.append(
            f"restart index does not match on-disk survivors "
            f"(index {len(rebuilt)}, on disk {len(on_disk)})")
    expected = set(bodies) - corrupt
    if set(rebuilt) != expected:
        violations.append(
            f"restart index is not the non-corrupt entry set "
            f"(got {len(rebuilt)}, expected {len(expected)})")
    for key in keys:
        digest = key_digest(key)
        got = fresh.get(key)
        if digest in corrupt and got is not None:
            violations.append(
                f"quarantined entry {digest[:12]} served after "
                f"restart")
        if digest not in corrupt and got != bodies[digest]:
            violations.append(
                f"survivor {digest[:12]} not byte-identical after "
                f"restart")
    return violations


async def run_chaos(plan: ServiceFaultPlan, atlas_root,
                    requests: int = 60, configs: int = 4,
                    deadline_s: float = 0.25,
                    max_concurrency: int = 4, max_pending: int = 8,
                    seed: int = 0,
                    kill_midway: bool = True) -> ChaosReport:
    """Run one chaos scenario and return its :class:`ChaosReport`.

    ``requests`` queries are drawn (with heavy repetition, to exercise
    coalescing) over ``configs`` distinct setting-1 configs and fired
    concurrently at a service whose clock is skewed and whose solve
    backend hangs/crashes per ``plan``.  With ``kill_midway``, the
    service is closed while the second half of the workload is still
    in flight -- those requests must resolve with the typed shutdown
    error, not vanish.
    """
    import numpy as np

    injector = ServiceFaultInjector(plan)
    probe = SingleFlightProbe()
    atlas = CorruptingAtlas(atlas_root, injector)
    rng = np.random.default_rng(seed)
    pool = [AttackConfig(alpha=0.2 + 0.05 * i,
                         beta=0.5 - 0.05 * i, gamma=0.3, setting=1)
            for i in range(configs)]
    report = ChaosReport(probe=probe)
    service = SolverService(
        atlas, solve_fn=chaos_solve_fn(injector, probe),
        max_concurrency=max_concurrency, max_pending=max_pending,
        default_deadline_s=deadline_s,
        nearest_max_distance=1.0,
        clock=injector.skewed_clock(), seed=seed)

    async def one(config: AttackConfig) -> None:
        try:
            response = await service.submit(SolveRequest(
                config=config, model=IncentiveModel.COMPLIANT_PROFIT))
            report.responses.append(response)
        except ReproError as exc:
            report.typed_errors.append(exc)
        except asyncio.CancelledError:
            report.unanswered += 1
        except BaseException as exc:
            report.untyped_errors.append(exc)

    first = [asyncio.ensure_future(one(pool[rng.integers(len(pool))]))
             for _ in range(requests // 2)]
    await asyncio.gather(*first)
    second = [asyncio.ensure_future(one(pool[rng.integers(len(pool))]))
              for _ in range(requests - requests // 2)]
    await asyncio.sleep(0.01)
    if kill_midway:
        await service.close()
    await asyncio.gather(*second)
    if not kill_midway:
        await service.close()
    report.stats = service.stats
    report.injected = {"hangs": injector.stats.hangs,
                       "crashes": injector.stats.crashes,
                       "corruptions": injector.stats.corruptions}
    return report


def run_chaos_scenario(plan: ServiceFaultPlan, atlas_root,
                       **kwargs) -> ChaosReport:
    """Synchronous wrapper around :func:`run_chaos` (CLI + tests)."""
    return asyncio.run(run_chaos(plan, atlas_root, **kwargs))


__all__ = [
    "ChaosReport",
    "CorruptingAtlas",
    "InjectedCrashError",
    "SingleFlightProbe",
    "chaos_solve_fn",
    "check_cache_invariants",
    "check_service_invariants",
    "run_chaos",
    "run_chaos_scenario",
]
