"""The block size increasing game (Section 5.2).

Miner groups are ordered by increasing *maximum profitable block size*
(MPB).  All miners start mining at the smallest MPB; in each round the
remaining groups vote on raising the generation size MG to the next
MPB.  If at least half of the remaining power votes yes, the size rises
and the lowest group -- now unprofitable -- leaves the business.  The
game ends when more than half of the remaining power votes no, i.e.
exactly when the remaining groups form a *stable set*
(:mod:`repro.games.stability`).

Voting is strategic: a group votes yes iff it survives in the terminal
set of the continuation game (backward induction).  Figure 4's example
(10/20/30/40% groups) is reproduced in the tests and benches.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Sequence, Tuple

from repro.errors import GameError, InvalidPowerVectorError
from repro.games.stability import is_stable_suffix, terminal_suffix_start

_POWER_TOL = Fraction(1, 10**9)


@dataclass(frozen=True)
class MinerGroup:
    """A group of miners sharing an MPB.

    Attributes
    ----------
    mpb:
        Maximum profitable block size (megabytes).
    power:
        The group's mining power share.
    name:
        Optional label used in reports.
    """

    mpb: float
    power: float
    name: str = ""

    def __post_init__(self) -> None:
        if self.mpb <= 0:
            raise GameError("MPB must be positive")
        if self.power <= 0:
            raise GameError("group power must be positive")


@dataclass(frozen=True)
class GameRound:
    """One voting round.

    Attributes
    ----------
    proposed_mpb:
        The MPB voted on (the next group's maximum).
    yes_votes, no_votes:
        Group indices voting each way.
    yes_power:
        Total power voting yes.
    passed:
        Whether the size increase passed (yes power >= half).
    evicted:
        Index of the group forced out (or ``None``).
    """

    proposed_mpb: float
    yes_votes: Tuple[int, ...]
    no_votes: Tuple[int, ...]
    yes_power: Fraction
    passed: bool
    evicted: object


@dataclass
class PlayedGame:
    """Full play-out of the block size increasing game.

    Attributes
    ----------
    rounds:
        The voting rounds in order.
    survivors:
        Indices of the groups remaining at termination.
    final_mg:
        The generation size when the game ends.
    utilities:
        Per-group utility: power-proportional share among survivors,
        zero for evicted groups.
    """

    rounds: List[GameRound]
    survivors: Tuple[int, ...]
    final_mg: float
    utilities: List[Fraction]


class BlockSizeIncreasingGame:
    """The Section 5.2 game over an ordered list of miner groups."""

    def __init__(self, groups: Sequence[MinerGroup]) -> None:
        if len(groups) < 1:
            raise GameError("need at least one miner group")
        mpbs = [g.mpb for g in groups]
        if sorted(mpbs) != mpbs or len(set(mpbs)) != len(mpbs):
            raise GameError("groups must have strictly increasing MPBs")
        self.groups = list(groups)
        self.powers: List[Fraction] = [
            Fraction(g.power).limit_denominator(10**9) for g in groups]
        if abs(sum(self.powers) - 1) > _POWER_TOL:
            raise InvalidPowerVectorError("group powers must sum to 1")

    @property
    def n_groups(self) -> int:
        """Number of miner groups."""
        return len(self.groups)

    # -- analytics -----------------------------------------------------

    def is_stable(self, j: int = 0) -> bool:
        """Whether the suffix of groups starting at ``j`` is stable."""
        return is_stable_suffix(self.powers, j)

    def terminal_set(self, j: int = 0) -> Tuple[int, ...]:
        """Indices of the groups remaining when the game (started at
        suffix ``j``) terminates."""
        start = terminal_suffix_start(self.powers, j)
        return tuple(range(start, self.n_groups))

    def predicted_final_mg(self) -> float:
        """The generation size the analysis predicts at termination:
        the smallest surviving group's MPB."""
        return self.groups[self.terminal_set()[0]].mpb

    # -- play-out ------------------------------------------------------

    def _votes(self, j: int) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """Strategic votes in the round where suffix ``j`` considers
        raising MG to ``groups[j + 1].mpb``: group ``j`` votes no, every
        other group votes yes iff it survives the continuation game."""
        survivors_if_raised = set(self.terminal_set(j + 1))
        yes = tuple(g for g in range(j + 1, self.n_groups)
                    if g in survivors_if_raised)
        no = tuple(g for g in range(j, self.n_groups)
                   if g not in survivors_if_raised)
        return yes, no

    def play(self) -> PlayedGame:
        """Play the game round by round with strategic voters and
        return the full transcript.

        The outcome provably coincides with :meth:`terminal_set`
        (property-tested), but the transcript shows the votes, as in
        the paper's Figure 4.
        """
        rounds: List[GameRound] = []
        j = 0
        while j < self.n_groups - 1:
            yes, no = self._votes(j)
            yes_power = sum(self.powers[g] for g in yes)
            remaining_power = sum(self.powers[j:])
            passed = 2 * yes_power >= remaining_power
            rounds.append(GameRound(
                proposed_mpb=self.groups[j + 1].mpb,
                yes_votes=yes, no_votes=no, yes_power=yes_power,
                passed=passed, evicted=j if passed else None))
            if not passed:
                break
            j += 1
        survivors = tuple(range(j, self.n_groups))
        total = sum(self.powers[g] for g in survivors)
        utilities = [self.powers[g] / total if g in survivors
                     else Fraction(0) for g in range(self.n_groups)]
        return PlayedGame(rounds=rounds, survivors=survivors,
                          final_mg=self.groups[j].mpb,
                          utilities=utilities)
