"""The EB choosing game (Section 5.1).

``n`` miners with positive power shares each pick one of two EB values
and mine blocks of exactly that size.  The side chosen by more mining
power wins the block races; its members split the rewards in proportion
to power, the other side earns nothing, and an exact power tie leaves
everyone with nothing (the paper's "unpredictable, bad for all"
simplification).

Analytical Result 4: every profile in which all miners choose the same
EB is a Nash equilibrium -- a deviator becomes a strict minority (each
miner holds < 50%) and earns zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.errors import GameError, InvalidPowerVectorError

_POWER_TOL = Fraction(1, 10**9)


@dataclass(frozen=True)
class EBProfile:
    """A strategy profile: one EB choice (by index) per miner."""

    choices: Tuple[int, ...]

    def __post_init__(self) -> None:
        if any(c not in (0, 1) for c in self.choices):
            raise GameError("choices must index one of the two EB values")


class EBChoosingGame:
    """The two-value EB choosing game.

    Parameters
    ----------
    powers:
        Positive mining power shares summing to one; every miner must
        hold strictly less than 50% (the paper's threat model).
    eb_values:
        The two EB values on offer (labels only; utilities depend just
        on which side holds more power).
    """

    def __init__(self, powers: Sequence[float],
                 eb_values: Tuple[float, float] = (1.0, 2.0)) -> None:
        self.powers: List[Fraction] = [
            p if isinstance(p, Fraction)
            else Fraction(p).limit_denominator(10**9) for p in powers]
        if len(self.powers) < 2:
            raise InvalidPowerVectorError("need at least two miners")
        if any(p <= 0 for p in self.powers):
            raise InvalidPowerVectorError("powers must be positive")
        if abs(sum(self.powers) - 1) > _POWER_TOL:
            raise InvalidPowerVectorError("powers must sum to 1")
        if any(p >= Fraction(1, 2) for p in self.powers):
            raise InvalidPowerVectorError(
                "every miner must hold strictly less than 50%")
        if eb_values[0] == eb_values[1]:
            raise GameError("the two EB values must differ")
        self.eb_values = eb_values

    @property
    def n_miners(self) -> int:
        """Number of miners."""
        return len(self.powers)

    def side_powers(self, profile: EBProfile) -> Tuple[Fraction, Fraction]:
        """Total power choosing each EB value."""
        self._check(profile)
        m0 = sum(p for p, c in zip(self.powers, profile.choices) if c == 0)
        m1 = sum(self.powers) - m0
        return m0, m1

    def winning_side(self, profile: EBProfile) -> Optional[int]:
        """Index of the EB value chosen by strictly more power, or
        ``None`` on an exact tie."""
        m0, m1 = self.side_powers(profile)
        if m0 == m1:
            return None
        return 0 if m0 > m1 else 1

    def utilities(self, profile: EBProfile) -> List[Fraction]:
        """Per-miner utility: power-proportional share of the rewards on
        the winning side, zero elsewhere (Section 5.1.1)."""
        winner = self.winning_side(profile)
        if winner is None:
            return [Fraction(0)] * self.n_miners
        total = sum(p for p, c in zip(self.powers, profile.choices)
                    if c == winner)
        return [p / total if c == winner else Fraction(0)
                for p, c in zip(self.powers, profile.choices)]

    def best_response(self, profile: EBProfile, miner: int) -> int:
        """The miner's utility-maximizing choice against the others'
        fixed choices (ties keep the current choice)."""
        self._check(profile)
        current = profile.choices[miner]
        alternative = 1 - current
        u_now = self.utilities(profile)[miner]
        flipped = EBProfile(tuple(
            alternative if i == miner else c
            for i, c in enumerate(profile.choices)))
        u_alt = self.utilities(flipped)[miner]
        return alternative if u_alt > u_now else current

    def is_nash_equilibrium(self, profile: EBProfile) -> bool:
        """Whether no miner can strictly gain by switching EB."""
        return all(self.best_response(profile, i) == profile.choices[i]
                   for i in range(self.n_miners))

    def consensus_profiles(self) -> Iterator[EBProfile]:
        """The two all-same profiles (Analytical Result 4 equilibria)."""
        yield EBProfile((0,) * self.n_miners)
        yield EBProfile((1,) * self.n_miners)

    def all_profiles(self) -> Iterator[EBProfile]:
        """Enumerate every strategy profile (2^n; small games only)."""
        if self.n_miners > 20:
            raise GameError("profile enumeration limited to 20 miners")
        for mask in range(2 ** self.n_miners):
            yield EBProfile(tuple((mask >> i) & 1
                                  for i in range(self.n_miners)))

    def nash_equilibria(self) -> List[EBProfile]:
        """All pure Nash equilibria (exhaustive; small games only)."""
        return [p for p in self.all_profiles() if self.is_nash_equilibrium(p)]

    def best_response_dynamics(self, start: EBProfile,
                               max_rounds: int = 100) -> List[EBProfile]:
        """Iterate sequential best responses until a fixed point;
        returns the trajectory (ending in an equilibrium if reached)."""
        trajectory = [start]
        profile = start
        for _ in range(max_rounds):
            changed = False
            choices = list(profile.choices)
            for miner in range(self.n_miners):
                response = self.best_response(EBProfile(tuple(choices)),
                                              miner)
                if response != choices[miner]:
                    choices[miner] = response
                    changed = True
            profile = EBProfile(tuple(choices))
            trajectory.append(profile)
            if not changed:
                return trajectory
        return trajectory

    def _check(self, profile: EBProfile) -> None:
        if len(profile.choices) != self.n_miners:
            raise GameError("profile size does not match miner count")
