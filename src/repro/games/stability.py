"""Stable sets of miner groups (Section 5.2.3).

Miner groups are ordered by increasing maximum profitable block size
(MPB); the game state is always a *suffix* ``{j, ..., n-1}`` of that
order (smaller-MPB groups get evicted first).  The paper's definition,
restated over suffix start indices:

A suffix starting at ``j`` is **stable** iff

1. it contains a single group (``j == n - 1``), or
2. letting ``k`` be the start of its largest *proper* stable suffix,
   the "front" groups ``j..k-1`` jointly out-power the stable tail
   (``sum(m[j:k]) > sum(m[k:])``) while the front *without group j*
   does not (``sum(m[j+1:k]) <= sum(m[k:])``).

The rationale: the tail ``k..`` can only evict the front if it holds a
power majority; condition (2) says the front can hold the line as long
as group ``j`` is present, and that every front group knows it would be
next in line if ``j`` were evicted -- so all of them vote against
larger blocks.

All arithmetic uses :class:`fractions.Fraction` to make ties exact.
"""

from __future__ import annotations

from fractions import Fraction
from functools import lru_cache
from typing import Sequence, Tuple

from repro.errors import GameError


def _as_fractions(powers: Sequence) -> Tuple[Fraction, ...]:
    out = tuple(Fraction(p).limit_denominator(10**9) if not
                isinstance(p, Fraction) else p for p in powers)
    if any(p <= 0 for p in out):
        raise GameError("all group powers must be positive")
    return out


def is_stable_suffix(powers: Sequence, j: int) -> bool:
    """Whether the suffix of ``powers`` starting at index ``j`` is a
    stable set."""
    m = _as_fractions(powers)
    n = len(m)
    if not 0 <= j < n:
        raise GameError(f"suffix start {j} out of range")
    return _stable(m, j)


@lru_cache(maxsize=4096)
def _stable_cached(m: Tuple[Fraction, ...], j: int) -> bool:
    n = len(m)
    if j == n - 1:
        return True
    # Largest proper stable suffix = smallest k > j that is stable.
    k = j + 1
    while not _stable_cached(m, k):
        k += 1
    front = sum(m[j:k])
    tail = sum(m[k:])
    front_without_j = front - m[j]
    return front > tail and front_without_j <= tail


def _stable(m: Tuple[Fraction, ...], j: int) -> bool:
    return _stable_cached(m, j)


def terminal_suffix_start(powers: Sequence, j: int = 0) -> int:
    """Return the start index of the suffix at which the block size
    increasing game terminates, starting from suffix ``j``.

    The game evicts the lowest-MPB remaining group until the remaining
    groups form a stable set (the paper's termination theorem).
    """
    m = _as_fractions(powers)
    n = len(m)
    if not 0 <= j < n:
        raise GameError(f"suffix start {j} out of range")
    while not _stable(m, j):
        j += 1
    return j
