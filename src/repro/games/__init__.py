"""Game-theoretic analysis of emergent consensus (Section 5).

- :mod:`repro.games.eb_choosing` -- the EB choosing game (Section 5.1):
  when every miner is profitable with any EB, choosing a common EB is a
  Nash equilibrium (Analytical Result 4);
- :mod:`repro.games.block_size` -- the block size increasing game
  (Section 5.2): with per-miner maximum profitable block sizes, large
  miners form coalitions to force small miners out unless the groups
  form a *stable set* (Analytical Result 5, Figure 4);
- :mod:`repro.games.stability` -- the stable-set recursion shared by
  the analytic and play-out views of the block size game.
"""

from repro.games.eb_choosing import EBChoosingGame, EBProfile
from repro.games.multi_eb_choosing import MultiEBChoosingGame
from repro.games.block_size import (
    BlockSizeIncreasingGame,
    GameRound,
    MinerGroup,
    PlayedGame,
)
from repro.games.stability import is_stable_suffix, terminal_suffix_start
from repro.games.fee_market import (
    FeeMarketMiner,
    FeeMarketParams,
    max_profitable_block_size,
    miner_groups_from_market,
    optimal_block_size,
)

__all__ = [
    "EBChoosingGame",
    "EBProfile",
    "MultiEBChoosingGame",
    "MinerGroup",
    "BlockSizeIncreasingGame",
    "GameRound",
    "PlayedGame",
    "is_stable_suffix",
    "terminal_suffix_start",
    "FeeMarketMiner",
    "FeeMarketParams",
    "optimal_block_size",
    "max_profitable_block_size",
    "miner_groups_from_market",
]
