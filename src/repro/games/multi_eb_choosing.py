"""The EB choosing game with more than two values.

Section 5.1 analyzes two EB values and remarks that "when more EB
values are in the market, the same equilibrium holds".  This module
generalizes the game to ``k`` values: the EB backed by a strict
plurality of mining power wins the block races; its backers split the
rewards by power; everyone else (and everyone, on a plurality tie)
earns nothing.  The consensus-is-Nash result carries over and is
property-tested.
"""

from __future__ import annotations

from fractions import Fraction
from itertools import product
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.errors import GameError, InvalidPowerVectorError

_POWER_TOL = Fraction(1, 10**9)


class MultiEBChoosingGame:
    """The k-value EB choosing game."""

    def __init__(self, powers: Sequence[float],
                 eb_values: Sequence[float]) -> None:
        self.powers: List[Fraction] = [
            p if isinstance(p, Fraction)
            else Fraction(p).limit_denominator(10**9) for p in powers]
        if len(self.powers) < 2:
            raise InvalidPowerVectorError("need at least two miners")
        if any(p <= 0 for p in self.powers):
            raise InvalidPowerVectorError("powers must be positive")
        if abs(sum(self.powers) - 1) > _POWER_TOL:
            raise InvalidPowerVectorError("powers must sum to 1")
        if any(p >= Fraction(1, 2) for p in self.powers):
            raise InvalidPowerVectorError(
                "every miner must hold strictly less than 50%")
        if len(set(eb_values)) != len(eb_values) or len(eb_values) < 2:
            raise GameError("need at least two distinct EB values")
        self.eb_values = list(eb_values)

    @property
    def n_miners(self) -> int:
        """Number of miners."""
        return len(self.powers)

    @property
    def n_values(self) -> int:
        """Number of EB values on offer."""
        return len(self.eb_values)

    def _check(self, profile: Tuple[int, ...]) -> None:
        if len(profile) != self.n_miners:
            raise GameError("profile size does not match miner count")
        if any(not 0 <= c < self.n_values for c in profile):
            raise GameError("choice index out of range")

    def side_power(self, profile: Tuple[int, ...], value: int) -> Fraction:
        """Total power choosing EB index ``value``."""
        self._check(profile)
        return sum((p for p, c in zip(self.powers, profile) if c == value),
                   Fraction(0))

    def winning_value(self, profile: Tuple[int, ...]) -> Optional[int]:
        """The EB index with a strict power plurality, or ``None``."""
        self._check(profile)
        totals = [self.side_power(profile, v)
                  for v in range(self.n_values)]
        best = max(totals)
        winners = [v for v, t in enumerate(totals) if t == best]
        return winners[0] if len(winners) == 1 else None

    def utilities(self, profile: Tuple[int, ...]) -> List[Fraction]:
        """Power-proportional shares on the plurality side, zero
        elsewhere (and everywhere on a plurality tie)."""
        winner = self.winning_value(profile)
        if winner is None:
            return [Fraction(0)] * self.n_miners
        total = self.side_power(profile, winner)
        return [p / total if c == winner else Fraction(0)
                for p, c in zip(self.powers, profile)]

    def is_nash_equilibrium(self, profile: Tuple[int, ...]) -> bool:
        """Whether no miner can strictly gain by switching its EB."""
        base = self.utilities(profile)
        for i in range(self.n_miners):
            for alt in range(self.n_values):
                if alt == profile[i]:
                    continue
                flipped = tuple(alt if j == i else c
                                for j, c in enumerate(profile))
                if self.utilities(flipped)[i] > base[i]:
                    return False
        return True

    def consensus_profiles(self) -> Iterator[Tuple[int, ...]]:
        """The k all-same profiles."""
        for v in range(self.n_values):
            yield (v,) * self.n_miners

    def nash_equilibria(self) -> List[Tuple[int, ...]]:
        """All pure equilibria by enumeration (small games only)."""
        if self.n_values ** self.n_miners > 100_000:
            raise GameError("enumeration too large")
        return [p for p in product(range(self.n_values),
                                   repeat=self.n_miners)
                if self.is_nash_equilibrium(p)]
