"""Rizun's fee market: optimal block sizes without a limit (Section 2.3).

The paper builds Section 5.2's Assumption 2 ("every miner has a maximum
profitable block size") on Rizun's observation that, absent any limit,
a rational miner's block size trades higher transaction fees against a
higher orphan risk.  This module makes that trade-off concrete:

- a block of size ``q`` takes ``tau(q) = tau0 + q / bandwidth`` seconds
  to propagate, during which a rival block appears with probability
  ``1 - exp(-tau/T)`` (T = 600 s), orphaning the block if any of the
  other ``1 - h`` mining power found it;
- ordering mempool transactions by fee rate gives diminishing fee
  returns ``fees(q) = fee_density * q0 * (1 - exp(-q / q0))``;
- the miner maximizes expected value per solved block,
  ``V(q) = (R + fees(q)) * (1 - p_orphan(q))``.

Different bandwidths yield different optimal sizes and different
*maximum profitable block sizes* (the network block size beyond which a
miner's expected income no longer covers its operating cost) --
exactly the heterogeneity the block size increasing game consumes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import GameError
from repro.games.block_size import MinerGroup
from repro.protocol.params import MESSAGE_LIMIT_MB


@dataclass(frozen=True)
class FeeMarketMiner:
    """A miner in the fee-market model.

    Attributes
    ----------
    name:
        Label.
    power:
        Hash power share ``h``.
    bandwidth:
        Effective propagation bandwidth in MB/s (covers both upload
        and peers' validation).
    operating_cost:
        Cost per block interval, in block-reward units.
    """

    name: str
    power: float
    bandwidth: float
    operating_cost: float = 0.0

    def __post_init__(self) -> None:
        if not 0 < self.power < 1:
            raise GameError("power must lie in (0, 1)")
        if self.bandwidth <= 0:
            raise GameError("bandwidth must be positive")
        if self.operating_cost < 0:
            raise GameError("operating cost cannot be negative")


@dataclass(frozen=True)
class FeeMarketParams:
    """Market-wide constants.

    Attributes
    ----------
    block_reward:
        Fixed reward R per block (units: block rewards, so 1.0).
    fee_density:
        Fee rate of the best mempool transactions (reward units / MB).
    fee_decay:
        Mempool depth scale ``q0``: fees decay as ``exp(-q / q0)``.
    base_delay:
        Size-independent propagation delay ``tau0`` (seconds).
    block_interval:
        Mean block interval T (seconds).
    """

    block_reward: float = 1.0
    fee_density: float = 0.1
    fee_decay: float = 4.0
    base_delay: float = 2.0
    block_interval: float = 600.0

    def __post_init__(self) -> None:
        if min(self.block_reward, self.fee_density, self.fee_decay,
               self.block_interval) <= 0:
            raise GameError("market parameters must be positive")
        if self.base_delay < 0:
            raise GameError("base delay cannot be negative")


def fees(q: float, params: FeeMarketParams) -> float:
    """Total fees collected by a block of size ``q`` MB."""
    if q < 0:
        raise GameError("block size cannot be negative")
    return params.fee_density * params.fee_decay * (
        1.0 - math.exp(-q / params.fee_decay))


def orphan_probability(q: float, miner: FeeMarketMiner,
                       params: FeeMarketParams) -> float:
    """Probability a block of size ``q`` mined by ``miner`` is orphaned:
    a rival appears during propagation and belongs to the other
    ``1 - h`` of the power."""
    tau = params.base_delay + q / miner.bandwidth
    race = 1.0 - math.exp(-tau / params.block_interval)
    return (1.0 - miner.power) * race


def expected_block_value(q: float, miner: FeeMarketMiner,
                         params: FeeMarketParams) -> float:
    """Expected reward of a solved block of size ``q`` (Rizun's V)."""
    return (params.block_reward + fees(q, params)) * (
        1.0 - orphan_probability(q, miner, params))


def optimal_block_size(miner: FeeMarketMiner, params: FeeMarketParams,
                       upper: float = MESSAGE_LIMIT_MB,
                       tol: float = 1e-6, grid: int = 2048) -> float:
    """The size maximizing :func:`expected_block_value` on [0, upper].

    V(q) is smooth but not unimodal (for slow miners the boundary
    q = 0 dominates while fees still climb near the cap), so the search
    scans a dense grid and then refines the best bracket by
    golden-section."""
    step = float(upper) / grid
    values = [expected_block_value(i * step, miner, params)
              for i in range(grid + 1)]
    best = max(range(grid + 1), key=values.__getitem__)
    lo = max(0.0, (best - 1) * step)
    hi = min(float(upper), (best + 1) * step)
    phi = (math.sqrt(5.0) - 1.0) / 2.0
    c = hi - phi * (hi - lo)
    d = lo + phi * (hi - lo)
    fc = expected_block_value(c, miner, params)
    fd = expected_block_value(d, miner, params)
    while hi - lo > tol:
        if fc >= fd:
            hi, d, fd = d, c, fc
            c = hi - phi * (hi - lo)
            fc = expected_block_value(c, miner, params)
        else:
            lo, c, fc = c, d, fd
            d = lo + phi * (hi - lo)
            fd = expected_block_value(d, miner, params)
    return 0.5 * (lo + hi)


def profit_rate(network_size: float, miner: FeeMarketMiner,
                params: FeeMarketParams) -> float:
    """Expected income per block interval when the whole network mines
    blocks of ``network_size`` MB, minus operating cost.

    The miner wins ``h`` of the blocks and keeps each with the same
    size-dependent survival probability (its own bandwidth sets how
    fast its blocks spread)."""
    if network_size < 0:
        raise GameError("network size cannot be negative")
    value = expected_block_value(network_size, miner, params)
    return miner.power * value - miner.operating_cost


def max_profitable_block_size(miner: FeeMarketMiner,
                              params: FeeMarketParams,
                              upper: float = MESSAGE_LIMIT_MB,
                              tol: float = 1e-6) -> float:
    """The miner's MPB: the largest network block size at which its
    profit rate stays non-negative (Assumption 2).

    Returns 0 when the miner is unprofitable even with empty blocks and
    ``upper`` when it stays profitable at the message cap.
    """
    if profit_rate(0.0, miner, params) < 0:
        return 0.0
    if profit_rate(upper, miner, params) >= 0:
        return float(upper)
    # Profit is not monotone in the network size (fees climb while the
    # orphan factor saturates), so locate the largest non-negative grid
    # point before refining the boundary.
    grid = 2048
    step = float(upper) / grid
    last_ok = 0
    for i in range(grid + 1):
        if profit_rate(i * step, miner, params) >= 0:
            last_ok = i
    lo = last_ok * step
    hi = min(float(upper), (last_ok + 1) * step)
    while hi - lo > tol:
        mid = 0.5 * (lo + hi)
        if profit_rate(mid, miner, params) >= 0:
            lo = mid
        else:
            hi = mid
    return lo


def miner_groups_from_market(miners: Sequence[FeeMarketMiner],
                             params: FeeMarketParams
                             ) -> List[MinerGroup]:
    """Derive block-size-increasing-game groups from fee-market miners:
    each miner's group carries its MPB and power.  Miners sharing an
    MPB (to 1e-6) merge; groups come out MPB-sorted, ready for
    :class:`repro.games.block_size.BlockSizeIncreasingGame`."""
    if not miners:
        raise GameError("need at least one miner")
    merged = {}
    for miner in miners:
        mpb = round(max_profitable_block_size(miner, params), 6)
        if mpb <= 0:
            continue  # already out of business
        merged[mpb] = merged.get(mpb, 0.0) + miner.power
    if not merged:
        raise GameError("no miner is profitable at any block size")
    total = sum(merged.values())
    return [MinerGroup(mpb=mpb, power=power / total,
                       name=f"mpb={mpb:g}")
            for mpb, power in sorted(merged.items())]
