"""Double-spending bonus logic (Section 4.3).

A transaction to a merchant is embedded in the first block of a fork
branch; the merchant delivers after ``confirmations`` blocks (the paper
uses four instead of Bitcoin's customary six, to enable the Bitcoin
comparison).  If the branch carrying a delivered transaction is
orphaned, the attacker collects the double-spent funds.  The paper
models this as a bonus of ``(k - (confirmations - 1)) * rds`` whenever a
resolved race orphans ``k >= confirmations`` blocks, with ``rds`` worth
ten block rewards.  Failed attempts carry no punishment.
"""

from __future__ import annotations

from repro.errors import ReproError

#: Default double-spend value, in block rewards (Section 4.3).
DEFAULT_RDS = 10.0

#: Default merchant confirmation count (Section 4.3 uses four).
DEFAULT_CONFIRMATIONS = 4


def double_spend_bonus(orphaned: int, rds: float = DEFAULT_RDS,
                       confirmations: int = DEFAULT_CONFIRMATIONS) -> float:
    """Return the double-spend reward for a race that orphaned
    ``orphaned`` blocks.

    >>> double_spend_bonus(5)
    20.0
    >>> double_spend_bonus(3)
    0.0
    """
    if orphaned < 0:
        raise ReproError("orphaned block count cannot be negative")
    if confirmations < 1:
        raise ReproError("confirmations must be at least 1")
    excess = orphaned - (confirmations - 1)
    return float(excess) * rds if excess > 0 else 0.0
