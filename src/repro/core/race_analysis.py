"""Per-race statistics of attack strategies (Section 4's narrative).

The long-run MDP gains say who profits; these absorbing-chain analyses
say *how*: when Alice opens a fork, how likely is each resolution, how
long does the race run, and how many blocks does it destroy.  The
numbers also explain Table 2's boundary (Chain 2's win probability
exceeds Chain 1's exactly when alpha + gamma > beta) and Table 4's peak
near balanced splits (races last longest when neither side dominates).

Implementation: the race is re-encoded as an absorbing Markov chain
over the phase-1 fork states, with two sinks -- ``("won", "chain1")``
and ``("won", "chain2")`` -- so the two resolution types stay
distinguishable even though the full MDP sends both back to the same
base state.  Which sink a resolving transition targets follows from
which chain the resolving block extended.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.actions import ON_CHAIN_1, ON_CHAIN_2, WAIT
from repro.core.config import AttackConfig
from repro.core.states import fork1_state
from repro.core.transitions import CHANNELS, _fork_events
from repro.errors import ReproError
from repro.mdp.absorbing import absorbing_analysis
from repro.mdp.builder import MDPBuilder

CHAIN1_SINK = ("won", "chain1")
CHAIN2_SINK = ("won", "chain2")

#: A fork-state -> action-name callable.
ForkStrategy = Callable[[tuple], str]


def pump_chain2(_state: tuple) -> str:
    """The Cryptoconomy attack: always extend the excessive chain."""
    return ON_CHAIN_2


def support_leader(state: tuple) -> str:
    """Extend whichever chain currently leads (ties go to Chain 2,
    which Alice started)."""
    _tag, l1, l2 = state[0], state[1], state[2]
    return ON_CHAIN_1 if l1 > l2 else ON_CHAIN_2


def watch_only(_state: tuple) -> str:
    """Idle during the race (non-profit-driven Wait)."""
    return WAIT


@dataclass
class RaceStatistics:
    """Statistics of one phase-1 race, from the split block (included)
    to resolution.

    Attributes
    ----------
    chain2_win_probability:
        Probability the excessive-block chain reaches AD first.
    expected_length:
        Expected blocks mined during the race (split block included).
    expected_orphans:
        Expected blocks orphaned per race (all miners).
    expected_others_orphans:
        Expected compliant blocks orphaned per race.
    expected_alice_locked:
        Expected Alice blocks ending in the blockchain per race.
    expected_double_spend:
        Expected double-spend income per race.
    """

    chain2_win_probability: float
    expected_length: float
    expected_orphans: float
    expected_others_orphans: float
    expected_alice_locked: float
    expected_double_spend: float


def race_statistics(config: AttackConfig,
                    fork_strategy: Optional[ForkStrategy] = None
                    ) -> RaceStatistics:
    """Analyze one phase-1 race under ``fork_strategy`` (default:
    :func:`pump_chain2`)."""
    strategy = fork_strategy or pump_chain2
    include_wait = config.include_wait
    builder = MDPBuilder(actions=["race"], channels=list(CHANNELS))
    start = fork1_state(0, 1, 0, 1)
    seen = {start}
    frontier = [start]
    while frontier:
        state = frontier.pop()
        action = strategy(state)
        if action == WAIT and not include_wait:
            raise ReproError(
                "Wait strategy requires include_wait in the config")
        for event, prob, is_alice, nxt, rewards in _fork_events(config,
                                                                state):
            if action == WAIT:
                if is_alice:
                    continue
                prob = prob / (config.beta + config.gamma)
            elif is_alice and ((event == "c1") != (action == ON_CHAIN_1)):
                continue  # Alice's block lands on the chain she mines
            if nxt[0] == "base":
                nxt = CHAIN1_SINK if event == "c1" else CHAIN2_SINK
            builder.add(state, "race", nxt, prob, **rewards)
            if nxt not in seen and nxt not in (CHAIN1_SINK, CHAIN2_SINK):
                seen.add(nxt)
                frontier.append(nxt)
    for sink in (CHAIN1_SINK, CHAIN2_SINK):
        builder.add(sink, "race", sink, 1.0)
    mdp = builder.build(start=start)

    import numpy as np
    policy = np.zeros(mdp.n_states, dtype=int)
    result = absorbing_analysis(mdp, policy,
                                absorbing=[CHAIN1_SINK, CHAIN2_SINK],
                                start=start)
    rewards = result.expected_rewards
    # Every race block (the split block included) is eventually locked
    # or orphaned exactly once, so the four channels sum to the length.
    length = (rewards["alice"] + rewards["others"]
              + rewards["alice_orphans"] + rewards["others_orphans"])
    return RaceStatistics(
        chain2_win_probability=result.absorption_probability[CHAIN2_SINK],
        expected_length=float(length),
        expected_orphans=float(rewards["alice_orphans"]
                               + rewards["others_orphans"]),
        expected_others_orphans=float(rewards["others_orphans"]),
        expected_alice_locked=float(rewards["alice"]),
        expected_double_spend=float(rewards["ds"]))
