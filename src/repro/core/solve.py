"""Optimal-strategy solvers for the three incentive models.

Each solver builds (or accepts) the attack MDP for a configuration and
returns an :class:`AttackAnalysis` carrying the utility value, the
optimal policy and the exact per-channel rates under that policy.

- :func:`solve_relative_revenue` -- ``u_A1`` (Eq. 1), reproduced in
  Table 2; compare against Alice's power share ``alpha`` (Bitcoin's
  incentive-compatible value).
- :func:`solve_absolute_reward` -- ``u_A2`` (Eq. 2), reproduced in
  Table 3; compare against ``alpha`` (honest mining's per-step income).
- :func:`solve_orphan_rate` -- ``u_A3`` (Eq. 3), reproduced in
  Table 4; compare against 1 (a 51% attacker's value in Bitcoin).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

import numpy as np

from repro.core.attack_mdp import build_attack_mdp
from repro.core.config import AttackConfig
from repro.core.incentives import IncentiveModel
from repro.errors import ReproError
from repro.mdp.approx import approx_average_reward, approx_average_solver, \
    engine_prefers_approx
from repro.mdp.model import MDP
from repro.mdp.policy import Policy
from repro.mdp.policy_iteration import policy_iteration
from repro.mdp.ratio import maximize_ratio
from repro.mdp.stationary import policy_gains
from repro.runtime.telemetry import counter_add, span


@dataclass
class AttackAnalysis:
    """Result of solving one attack configuration under one incentive
    model.

    Attributes
    ----------
    config:
        The analyzed configuration.
    model:
        The incentive model.
    utility:
        The optimal utility value (u_A1, u_A2 or u_A3).
    honest_utility:
        The utility of never attacking (the comparison baseline).
    policy:
        The optimal policy, keyed by state tuples.
    rates:
        Exact per-step rate of every reward channel under the optimal
        policy.
    solver:
        Provenance of the solve: ``{"method", "iterations",
        "transformed_solves", "engine"}`` (the ratio method or
        average-reward stage that produced the answer, what it cost,
        and whether the exact or the approximate engine ran it).
        ``None`` on analyses loaded from artifacts that predate this
        field.
    """

    config: AttackConfig
    model: IncentiveModel
    utility: float
    honest_utility: float
    policy: Policy
    rates: Dict[str, float]
    solver: Optional[Dict[str, object]] = None

    @property
    def advantage(self) -> float:
        """Utility gained over the honest baseline."""
        return self.utility - self.honest_utility

    @property
    def profitable(self) -> bool:
        """Whether attacking beats the honest baseline (1e-6 slack)."""
        return self.advantage > 1e-6


def _prepare(config: AttackConfig, model: IncentiveModel,
             mdp: Optional[MDP]) -> tuple:
    wanted_wait = model.uses_wait
    if config.include_wait != wanted_wait:
        config = replace(config, include_wait=wanted_wait)
        mdp = None
    if mdp is None:
        mdp = build_attack_mdp(config)
    return config, mdp


def _ratio_solver_info(solution,
                       engine: str = "exact") -> Dict[str, object]:
    return {"method": solution.method,
            "iterations": solution.iterations,
            "transformed_solves": solution.transformed_solves,
            "engine": engine}


def solve_relative_revenue(config: AttackConfig,
                           mdp: Optional[MDP] = None,
                           tol: float = 1e-7,
                           supervisor=None,
                           ratio_method: Optional[str] = None,
                           initial_policy: Optional[np.ndarray] = None
                           ) -> AttackAnalysis:
    """Maximize Alice's relative revenue u_A1 (Eq. 1).

    ``supervisor`` optionally routes the solve through a
    :class:`repro.runtime.supervisor.SolverSupervisor` (budgets,
    validation and the fallback chain).  ``ratio_method`` selects the
    ratio-objective method for this solve (``None`` defers to the
    process-global default); ``initial_policy`` warm-starts the first
    transformed solve (e.g. with the optimum of an adjacent sweep
    cell).
    """
    with span("solve/relative"):
        counter_add("solve/relative")
        config, mdp = _prepare(config, IncentiveModel.COMPLIANT_PROFIT,
                               mdp)
        num, den = IncentiveModel.COMPLIANT_PROFIT.utility_channels()
        approx = engine_prefers_approx(mdp)
        if supervisor is not None:
            solution = supervisor.solve_ratio(
                mdp, num, den, lo=0.0, hi=1.0, tol=tol,
                initial_policy=initial_policy, method=ratio_method)
            approx = supervisor.last_stage == "approx"
        else:
            solution = maximize_ratio(
                mdp, num, den, lo=0.0, hi=1.0, tol=tol,
                method=ratio_method, initial_policy=initial_policy,
                solver=approx_average_solver() if approx else None)
        policy = Policy(mdp, solution.policy)
        rates = policy_gains(mdp, solution.policy)
    return AttackAnalysis(config=config,
                          model=IncentiveModel.COMPLIANT_PROFIT,
                          utility=solution.value,
                          honest_utility=config.alpha,
                          policy=policy, rates=rates,
                          solver=_ratio_solver_info(
                              solution,
                              engine="approx" if approx else "exact"))


def solve_absolute_reward(config: AttackConfig,
                          mdp: Optional[MDP] = None,
                          supervisor=None,
                          initial_policy: Optional[np.ndarray] = None
                          ) -> AttackAnalysis:
    """Maximize Alice's absolute per-block reward u_A2 (Eq. 2).

    Each MDP step mines exactly one block, so ``t`` in Eq. 2 equals the
    step count and u_A2 is a plain average reward.
    """
    with span("solve/absolute"):
        counter_add("solve/absolute")
        config, mdp = _prepare(config, IncentiveModel.NONCOMPLIANT_PROFIT,
                               mdp)
        num, _den = IncentiveModel.NONCOMPLIANT_PROFIT.utility_channels()
        if supervisor is not None:
            solution = supervisor.solve_average(
                mdp, mdp.combined_reward(dict(num)),
                initial_policy=initial_policy)
            method = supervisor.last_stage or "policy-iteration"
        elif engine_prefers_approx(mdp):
            solution = approx_average_reward(
                mdp, mdp.combined_reward(dict(num)))
            method = "approx"
        else:
            solution = policy_iteration(mdp,
                                        mdp.combined_reward(dict(num)),
                                        initial_policy=initial_policy)
            method = "policy-iteration"
        policy = Policy(mdp, solution.policy)
        rates = policy_gains(mdp, solution.policy)
    return AttackAnalysis(config=config,
                          model=IncentiveModel.NONCOMPLIANT_PROFIT,
                          utility=solution.gain,
                          honest_utility=config.alpha,
                          policy=policy, rates=rates,
                          solver={"method": method,
                                  "iterations": solution.iterations,
                                  "transformed_solves": 0})


def solve_orphan_rate(config: AttackConfig,
                      mdp: Optional[MDP] = None,
                      tol: float = 1e-6,
                      supervisor=None,
                      ratio_method: Optional[str] = None,
                      initial_policy: Optional[np.ndarray] = None
                      ) -> AttackAnalysis:
    """Maximize others' blocks orphaned per Alice block, u_A3 (Eq. 3)."""
    with span("solve/orphans"):
        counter_add("solve/orphans")
        config, mdp = _prepare(config, IncentiveModel.NON_PROFIT, mdp)
        num, den = IncentiveModel.NON_PROFIT.utility_channels()
        approx = engine_prefers_approx(mdp)
        if supervisor is not None:
            solution = supervisor.solve_ratio(
                mdp, num, den, lo=0.0, hi=float(config.ad), tol=tol,
                initial_policy=initial_policy, method=ratio_method)
            approx = supervisor.last_stage == "approx"
        else:
            solution = maximize_ratio(
                mdp, num, den, lo=0.0, hi=float(config.ad), tol=tol,
                method=ratio_method, initial_policy=initial_policy,
                solver=approx_average_solver() if approx else None)
        policy = Policy(mdp, solution.policy)
        rates = policy_gains(mdp, solution.policy)
    return AttackAnalysis(config=config, model=IncentiveModel.NON_PROFIT,
                          utility=solution.value,
                          honest_utility=0.0,
                          policy=policy, rates=rates,
                          solver=_ratio_solver_info(
                              solution,
                              engine="approx" if approx else "exact"))


def analyze(config: AttackConfig, model: IncentiveModel,
            mdp: Optional[MDP] = None, supervisor=None,
            ratio_method: Optional[str] = None,
            initial_policy: Optional[np.ndarray] = None
            ) -> AttackAnalysis:
    """Dispatch to the solver matching ``model``.

    Passing a :class:`repro.runtime.supervisor.SolverSupervisor` as
    ``supervisor`` runs the solve under budgets, input/output
    validation and the fallback chain.  ``ratio_method`` selects the
    ratio-objective method (ignored by the average-reward model);
    ``initial_policy`` warm-starts the solve.
    """
    if model is IncentiveModel.COMPLIANT_PROFIT:
        return solve_relative_revenue(config, mdp, supervisor=supervisor,
                                      ratio_method=ratio_method,
                                      initial_policy=initial_policy)
    if model is IncentiveModel.NONCOMPLIANT_PROFIT:
        return solve_absolute_reward(config, mdp, supervisor=supervisor,
                                     initial_policy=initial_policy)
    if model is IncentiveModel.NON_PROFIT:
        return solve_orphan_rate(config, mdp, supervisor=supervisor,
                                 ratio_method=ratio_method,
                                 initial_policy=initial_policy)
    raise ReproError(f"unknown incentive model {model!r}")


def utility_of_policy(mdp: MDP, policy: np.ndarray,
                      model: IncentiveModel) -> float:
    """Exactly evaluate a given policy's utility under ``model``."""
    num, den = model.utility_channels()
    gains = policy_gains(mdp, policy)
    num_rate = sum(w * gains[c] for c, w in num.items())
    if not den:
        return num_rate
    den_rate = sum(w * gains[c] for c, w in den.items())
    if den_rate <= 0:
        return 0.0
    return num_rate / den_rate
