"""The paper's core contribution: the Bitcoin Unlimited attack MDP.

This package encodes the Section 4 strategy space -- a strategic miner
(Alice) splitting two compliant miner groups (Bob with a small EB,
Carol with a large EB) by exploiting the absence of a block validity
consensus -- as a Markov decision process, and solves it under the
three incentive models of Section 3.

- :mod:`repro.core.config` -- the attack scenario configuration;
- :mod:`repro.core.states` -- the state encoding ``(l1, l2, a1, a2, r)``
  and its invariants;
- :mod:`repro.core.actions` -- OnChain1 / OnChain2 / Wait;
- :mod:`repro.core.double_spend` -- double-spending bonus logic;
- :mod:`repro.core.transitions` -- Table 1's transition/reward function
  (setting 1) and the phase-2 extension (setting 2);
- :mod:`repro.core.attack_mdp` -- MDP assembly;
- :mod:`repro.core.incentives` -- the three incentive models;
- :mod:`repro.core.solve` -- optimal-strategy solvers for the three
  utilities u_A1 (Eq. 1), u_A2 (Eq. 2) and u_A3 (Eq. 3).
"""

from repro.core.actions import ON_CHAIN_1, ON_CHAIN_2, WAIT
from repro.core.config import AttackConfig
from repro.core.states import (
    base1_state,
    base2_state,
    enumerate_states,
    fork1_state,
    fork2_state,
    is_base,
    state_phase,
)
from repro.core.double_spend import double_spend_bonus
from repro.core.incentives import IncentiveModel
from repro.core.attack_mdp import build_attack_mdp
from repro.core.solve import (
    AttackAnalysis,
    analyze,
    solve_absolute_reward,
    solve_orphan_rate,
    solve_relative_revenue,
)
from repro.core.multi_eb import EBGroup, analyze_splits, best_split

__all__ = [
    "ON_CHAIN_1",
    "ON_CHAIN_2",
    "WAIT",
    "AttackConfig",
    "base1_state",
    "base2_state",
    "fork1_state",
    "fork2_state",
    "enumerate_states",
    "is_base",
    "state_phase",
    "double_spend_bonus",
    "IncentiveModel",
    "build_attack_mdp",
    "AttackAnalysis",
    "analyze",
    "solve_relative_revenue",
    "solve_absolute_reward",
    "solve_orphan_rate",
    "EBGroup",
    "analyze_splits",
    "best_split",
]
