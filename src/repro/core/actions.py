"""Actions of the strategic miner in the Section 4 strategy space.

At the base state, *OnChain2* means "try to mine a block that splits
Bob's and Carol's mining power" (size ``EB_C`` in phase 1, size just
above ``EB_C`` in phase 2); *OnChain1* means mining a compliant block.
During a fork the two actions select which chain Alice extends.  *Wait*
(non-profit-driven model only) idles Alice's mining power, so the next
block is found by Bob or Carol.
"""

from __future__ import annotations

from typing import List

ON_CHAIN_1 = "OnChain1"
ON_CHAIN_2 = "OnChain2"
WAIT = "Wait"


def action_names(include_wait: bool) -> List[str]:
    """Return the action list for the strategy space."""
    names = [ON_CHAIN_1, ON_CHAIN_2]
    if include_wait:
        names.append(WAIT)
    return names
