"""Time-limited attacks (finite-horizon analysis).

The Table 3 figures assume a perpetual attack; in practice attacks end
-- merchants raise confirmation requirements, exchanges halt deposits,
clients patch.  This module prices an attack that must stop after a
fixed number of blocks, via backward induction over the attack MDP, and
quantifies the deadline effect: how much of the per-block profit
survives when the attacker has only, say, a day (144 blocks).

Restricted to the absolute-reward utility (Eq. 2): total income over a
horizon is a channel sum, which finite-horizon dynamic programming
prices exactly.  Ratio utilities over a finite horizon are a different
(and ill-conditioned) object the paper does not use.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.attack_mdp import build_attack_mdp
from repro.core.config import AttackConfig
from repro.core.solve import solve_absolute_reward
from repro.errors import ReproError
from repro.mdp.finite_horizon import backward_induction


@dataclass
class DeadlineAnalysis:
    """Value of an attack that must stop after ``horizon`` blocks.

    Attributes
    ----------
    config:
        The attack configuration.
    horizon:
        Attack duration in blocks.
    total_value:
        Optimal total income (block rewards + double-spends) over the
        horizon.
    per_block:
        ``total_value / horizon``.
    perpetual_rate:
        The unconstrained u_A2 for comparison.
    honest_total:
        What honest mining earns over the same horizon.
    """

    config: AttackConfig
    horizon: int
    total_value: float
    per_block: float
    perpetual_rate: float
    honest_total: float

    @property
    def deadline_efficiency(self) -> float:
        """Fraction of the perpetual per-block profit margin retained
        under the deadline (1 for long horizons, lower for short
        ones)."""
        perpetual_margin = self.perpetual_rate - self.config.alpha
        if perpetual_margin <= 0:
            return 1.0
        finite_margin = self.per_block - self.config.alpha
        return max(finite_margin, 0.0) / perpetual_margin


def deadline_value(config: AttackConfig, horizon: int) -> DeadlineAnalysis:
    """Price a time-limited non-compliant attack."""
    if horizon < 1:
        raise ReproError("horizon must be at least 1")
    config = config.with_wait(False)
    mdp = build_attack_mdp(config)
    reward = mdp.combined_reward({"alice": 1.0, "ds": 1.0})
    solution = backward_induction(mdp, reward, horizon)
    perpetual = solve_absolute_reward(config, mdp)
    total = solution.start_value
    return DeadlineAnalysis(config=config, horizon=horizon,
                            total_value=total,
                            per_block=total / horizon,
                            perpetual_rate=perpetual.utility,
                            honest_total=config.alpha * horizon)
