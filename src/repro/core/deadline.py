"""Deadlines: time-limited attacks and wall-clock solve deadlines.

Two distinct notions of "deadline" live here:

- **attack horizons** (:func:`deadline_value`): the Table 3 figures
  assume a perpetual attack; in practice attacks end -- merchants
  raise confirmation requirements, exchanges halt deposits, clients
  patch.  :func:`deadline_value` prices an attack that must stop after
  a fixed number of blocks, via backward induction over the attack
  MDP, and quantifies the deadline effect: how much of the per-block
  profit survives when the attacker has only, say, a day (144 blocks).
  Restricted to the absolute-reward utility (Eq. 2): total income over
  a horizon is a channel sum, which finite-horizon dynamic programming
  prices exactly.

- **wall-clock deadlines** (:class:`Deadline`): an absolute point on
  the monotonic clock by which a *solve* must finish.  The serving
  layer (:mod:`repro.serve`) attaches one to every request and
  propagates the *remaining* time -- not the original timeout -- into
  each retry attempt's :class:`~repro.runtime.budget.Budget`, so a
  request that burned half its time on a failed attempt gives the next
  attempt only the other half.  An expired deadline converts to a
  typed :class:`~repro.errors.SolveDeadlineError`, never a fresh
  budget.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.attack_mdp import build_attack_mdp
from repro.core.config import AttackConfig
from repro.core.solve import solve_absolute_reward
from repro.errors import ReproError, SolveDeadlineError
from repro.mdp.finite_horizon import backward_induction
from repro.runtime.budget import Budget


@dataclass(frozen=True)
class Deadline:
    """An absolute wall-clock deadline on an injectable monotonic
    clock.

    The clock is injectable so fault-injection tests can skew it (see
    :mod:`repro.serve.chaos`); production callers use
    :func:`time.monotonic`.

    Attributes
    ----------
    expires_at:
        Absolute expiry instant in the clock's own timebase.
    clock:
        Zero-argument callable returning the current monotonic time.
    """

    expires_at: float
    clock: Callable[[], float] = field(default=time.monotonic,
                                       repr=False, compare=False)

    @classmethod
    def after(cls, seconds: float,
              clock: Callable[[], float] = time.monotonic) -> "Deadline":
        """A deadline ``seconds`` from now on ``clock``."""
        if seconds <= 0:
            raise ReproError(
                f"deadline must be a positive number of seconds, "
                f"got {seconds!r}")
        return cls(expires_at=clock() + seconds, clock=clock)

    def remaining(self) -> float:
        """Seconds left before expiry (never negative)."""
        return max(0.0, self.expires_at - self.clock())

    @property
    def expired(self) -> bool:
        """Whether the deadline has passed."""
        return self.clock() >= self.expires_at

    def budget(self, max_ticks: Optional[int] = None) -> Budget:
        """The remaining time as a solver :class:`Budget`.

        Raises
        ------
        SolveDeadlineError
            When the deadline already expired -- an expired deadline
            must surface as the typed timeout error, never as a
            zero-second budget (which :class:`Budget` rejects as
            malformed input, a misleading diagnosis).
        """
        left = self.remaining()
        if left <= 0:
            raise SolveDeadlineError(
                f"deadline expired {self.clock() - self.expires_at:.3f}s "
                f"ago; refusing to start a solve")
        return Budget(wall_clock=left, max_ticks=max_ticks)


@dataclass
class DeadlineAnalysis:
    """Value of an attack that must stop after ``horizon`` blocks.

    Attributes
    ----------
    config:
        The attack configuration.
    horizon:
        Attack duration in blocks.
    total_value:
        Optimal total income (block rewards + double-spends) over the
        horizon.
    per_block:
        ``total_value / horizon``.
    perpetual_rate:
        The unconstrained u_A2 for comparison.
    honest_total:
        What honest mining earns over the same horizon.
    """

    config: AttackConfig
    horizon: int
    total_value: float
    per_block: float
    perpetual_rate: float
    honest_total: float

    @property
    def deadline_efficiency(self) -> float:
        """Fraction of the perpetual per-block profit margin retained
        under the deadline (1 for long horizons, lower for short
        ones)."""
        perpetual_margin = self.perpetual_rate - self.config.alpha
        if perpetual_margin <= 0:
            return 1.0
        finite_margin = self.per_block - self.config.alpha
        return max(finite_margin, 0.0) / perpetual_margin


def deadline_value(config: AttackConfig, horizon: int) -> DeadlineAnalysis:
    """Price a time-limited non-compliant attack."""
    if horizon < 1:
        raise ReproError("horizon must be at least 1")
    config = config.with_wait(False)
    mdp = build_attack_mdp(config)
    reward = mdp.combined_reward({"alice": 1.0, "ds": 1.0})
    solution = backward_induction(mdp, reward, horizon)
    perpetual = solve_absolute_reward(config, mdp)
    total = solution.start_value
    return DeadlineAnalysis(config=config, horizon=horizon,
                            total_value=total,
                            per_block=total / horizon,
                            perpetual_rate=perpetual.utility,
                            honest_total=config.alpha * horizon)
