"""Transition and reward function of the attack MDP.

Implements Table 1 of the paper (setting 1: phase 1 only) and its
phase-2 extension (setting 2: sticky gate enabled), generalized with
the reward channels needed by all three incentive models:

- ``alice`` / ``others``: block rewards locked into the blockchain
  (Table 1's ``(R_A, R_others)`` pair);
- ``alice_orphans`` / ``others_orphans``: blocks orphaned when a race
  resolves (Section 4.4's non-profit-driven utility);
- ``ds``: double-spending bonuses (Section 4.3).

Every resolved race conserves rewards: the winning chain's length
equals ``alice + others`` and the losing chain's length equals
``alice_orphans + others_orphans``.  (Two cells of the paper's Table 1
violate this by one block; we treat those as transcription typos --
see DESIGN.md.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Tuple

from repro.core.actions import ON_CHAIN_1, ON_CHAIN_2, WAIT, action_names
from repro.core.config import AttackConfig
from repro.core.double_spend import double_spend_bonus
from repro.core.states import State, base1_state, base2_state
from repro.errors import ReproError


@dataclass(frozen=True)
class Transition:
    """One (state, action) outcome.

    Attributes
    ----------
    state, action, next_state:
        Source state, Alice's action, destination state.
    prob:
        Probability of this outcome.
    rewards:
        Channel name -> reward issued if this outcome happens.
    """

    state: State
    action: str
    next_state: State
    prob: float
    rewards: Dict[str, float] = field(default_factory=dict)


#: Names of the reward channels emitted by the transition function.
CHANNELS = ("alice", "others", "alice_orphans", "others_orphans", "ds")


def _chain1_win_rewards(config: AttackConfig, l1_final: int, a1_final: int,
                        l2: int, a2: int) -> Dict[str, float]:
    """Rewards when Chain 1 outgrows Chain 2: the ``l1_final`` Chain-1
    blocks lock, the ``l2`` Chain-2 blocks are orphaned."""
    return {
        "alice": float(a1_final),
        "others": float(l1_final - a1_final),
        "alice_orphans": float(a2),
        "others_orphans": float(l2 - a2),
        "ds": double_spend_bonus(l2, config.rds, config.confirmations),
    }


def _chain2_win_rewards(config: AttackConfig, l2_final: int, a2_final: int,
                        l1: int, a1: int) -> Dict[str, float]:
    """Rewards when Chain 2 reaches AD: its blocks lock, the ``l1``
    Chain-1 blocks are orphaned."""
    return {
        "alice": float(a2_final),
        "others": float(l2_final - a2_final),
        "alice_orphans": float(a1),
        "others_orphans": float(l1 - a1),
        "ds": double_spend_bonus(l1, config.rds, config.confirmations),
    }


def _next_base(config: AttackConfig, r: int, locked: int) -> State:
    """Base state after ``locked`` non-excessive blocks lock while the
    gate counter stands at ``r`` (``r = 0`` means phase 1)."""
    if r == 0:
        return base1_state()
    r_next = max(r - locked, 0)
    return base1_state() if r_next == 0 else base2_state(r_next)


def _phase3_state(config: AttackConfig) -> State:
    """State after Carol's sticky gate opens (transient phase 3)."""
    if config.phase3_return == "phase1":
        return base1_state()
    return base2_state(config.gate_window)


def _gate_decrement(config: AttackConfig, l1_final: int) -> int:
    """Blocks subtracted from the gate counter by a Chain-1 win."""
    return l1_final if config.gate_countdown == "locked_blocks" \
        else max(l1_final - 1, 0)


#: Raw transition tuple ``(state, action, next_state, prob, rewards)``
#: -- the allocation-free representation used by the build fast path.
RawTransition = Tuple[State, str, State, float, Dict[str, float]]


def _base_raw(config: AttackConfig, r: int) -> Iterator[RawTransition]:
    """Raw transitions out of a base state (phase 1 when ``r = 0``)."""
    state = base1_state() if r == 0 else base2_state(r)
    others = config.beta + config.gamma
    one_locked = _next_base(config, r, 1)
    fork = (("fork1", 0, 1, 0, 1) if r == 0
            else ("fork2", 0, 1, 0, 1, r))
    yield (state, ON_CHAIN_1, one_locked, config.alpha, {"alice": 1.0})
    yield (state, ON_CHAIN_1, one_locked, others, {"others": 1.0})
    if r == 0 or config.phase2_attack:
        yield (state, ON_CHAIN_2, fork, config.alpha, {})
        yield (state, ON_CHAIN_2, one_locked, others, {"others": 1.0})
    if config.include_wait:
        yield (state, WAIT, one_locked, 1.0, {"others": 1.0})


def _fork_events(
        config: AttackConfig, state: State
) -> Iterator[Tuple[str, float, bool, State, Dict[str, float]]]:
    """Yield ``(event, prob, is_alice_choice, next_state, rewards)`` for
    every miner-block event in a fork state, *per chain extended*.

    ``event`` is ``"c1"`` or ``"c2"`` (which chain the block extends);
    ``is_alice_choice`` marks the attacker's block (which only happens
    under the matching action).
    """
    tag = state[0]
    if tag == "fork1":
        l1, l2, a1, a2 = state[1:]
        r = 0
        compliant_c1, compliant_c2 = config.beta, config.gamma
        lock_depth = config.ad_bob
    elif tag == "fork2":
        l1, l2, a1, a2, r = state[1:]
        compliant_c1, compliant_c2 = config.gamma, config.beta
        lock_depth = config.effective_ad_carol
    else:  # pragma: no cover - guarded by callers
        raise ReproError(f"not a fork state: {state!r}")

    fork1 = tag == "fork1"
    l1_new = l1 + 1
    if l1_new > l2:  # Chain 1 outgrows Chain 2: race resolved.
        nxt1 = _next_base(config, r, _gate_decrement(config, l1_new)) \
            if r > 0 else base1_state()
        nxt1_a = nxt1_c = nxt1
        rew1_a = _chain1_win_rewards(config, l1_new, a1 + 1, l2, a2)
        rew1_c = _chain1_win_rewards(config, l1_new, a1, l2, a2)
    else:
        nxt1_a = (tag, l1_new, l2, a1 + 1, a2) if fork1 \
            else (tag, l1_new, l2, a1 + 1, a2, r)
        nxt1_c = (tag, l1_new, l2, a1, a2) if fork1 \
            else (tag, l1_new, l2, a1, a2, r)
        rew1_a = {}
        rew1_c = {}
    l2_new = l2 + 1
    if l2_new == lock_depth:  # Chain 2 reaches AD: locked.
        if fork1:
            nxt2 = (base2_state(config.gate_window) if config.setting == 2
                    else base1_state())
        else:  # Carol's gate opens -> transient phase 3.
            nxt2 = _phase3_state(config)
        nxt2_a = nxt2_c = nxt2
        rew2_a = _chain2_win_rewards(config, l2_new, a2 + 1, l1, a1)
        rew2_c = _chain2_win_rewards(config, l2_new, a2, l1, a1)
    else:
        nxt2_a = (tag, l1, l2_new, a1, a2 + 1) if fork1 \
            else (tag, l1, l2_new, a1, a2 + 1, r)
        nxt2_c = (tag, l1, l2_new, a1, a2) if fork1 \
            else (tag, l1, l2_new, a1, a2, r)
        rew2_a = {}
        rew2_c = {}
    yield ("c1", config.alpha, True, nxt1_a, rew1_a)
    yield ("c2", config.alpha, True, nxt2_a, rew2_a)
    yield ("c1", compliant_c1, False, nxt1_c, rew1_c)
    yield ("c2", compliant_c2, False, nxt2_c, rew2_c)


def _fork_raw(config: AttackConfig,
              state: State) -> Iterator[RawTransition]:
    """Raw transitions out of a fork state, for every action.

    :func:`_fork_events` yields exactly four events in a fixed order
    (Alice on chain 1, Alice on chain 2, compliant on chain 1,
    compliant on chain 2); they are unpacked positionally here to keep
    the hot BFS loop free of intermediate containers.
    """
    (_, ap1, _, anxt1, arew1), (_, ap2, _, anxt2, arew2), \
        (_, cp1, _, cnxt1, crew1), (_, cp2, _, cnxt2, crew2) = \
        _fork_events(config, state)
    yield (state, ON_CHAIN_1, anxt1, ap1, arew1)
    yield (state, ON_CHAIN_1, cnxt1, cp1, crew1)
    yield (state, ON_CHAIN_1, cnxt2, cp2, crew2)
    yield (state, ON_CHAIN_2, anxt2, ap2, arew2)
    yield (state, ON_CHAIN_2, cnxt1, cp1, crew1)
    yield (state, ON_CHAIN_2, cnxt2, cp2, crew2)
    if config.include_wait:
        total = cp1 + cp2
        yield (state, WAIT, cnxt1, cp1 / total, crew1)
        yield (state, WAIT, cnxt2, cp2 / total, crew2)


def generate_raw_transitions(config: AttackConfig
                             ) -> Iterator[RawTransition]:
    """Yield every transition of the attack MDP as raw ``(state,
    action, next_state, prob, rewards)`` tuples, discovering states by
    breadth-first search from the phase-1 base state.

    This is the allocation-free fast path used by the MDP build;
    :func:`generate_transitions` wraps the same stream in
    :class:`Transition` records for inspection and tests.
    """
    start = base1_state()
    seen = {start}
    frontier = [start]
    while frontier:
        state = frontier.pop()
        if state[0] == "base":
            produced = _base_raw(config, state[1])
        else:
            produced = _fork_raw(config, state)
        for tr in produced:
            yield tr
            nxt = tr[2]
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)


def generate_transitions(config: AttackConfig) -> Iterator[Transition]:
    """Yield every transition of the attack MDP, discovering states by
    breadth-first search from the phase-1 base state."""
    for state, action, nxt, prob, rewards in \
            generate_raw_transitions(config):
        yield Transition(state, action, nxt, prob, rewards)


def actions_for(config: AttackConfig):
    """Action names available in this configuration."""
    return action_names(config.include_wait)
