"""Transition and reward function of the attack MDP.

Implements Table 1 of the paper (setting 1: phase 1 only) and its
phase-2 extension (setting 2: sticky gate enabled), generalized with
the reward channels needed by all three incentive models:

- ``alice`` / ``others``: block rewards locked into the blockchain
  (Table 1's ``(R_A, R_others)`` pair);
- ``alice_orphans`` / ``others_orphans``: blocks orphaned when a race
  resolves (Section 4.4's non-profit-driven utility);
- ``ds``: double-spending bonuses (Section 4.3).

Every resolved race conserves rewards: the winning chain's length
equals ``alice + others`` and the losing chain's length equals
``alice_orphans + others_orphans``.  (Two cells of the paper's Table 1
violate this by one block; we treat those as transcription typos --
see DESIGN.md.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Tuple

from repro.core.actions import ON_CHAIN_1, ON_CHAIN_2, WAIT, action_names
from repro.core.config import AttackConfig
from repro.core.double_spend import double_spend_bonus
from repro.core.states import State, base1_state, base2_state
from repro.errors import ReproError


@dataclass(frozen=True)
class Transition:
    """One (state, action) outcome.

    Attributes
    ----------
    state, action, next_state:
        Source state, Alice's action, destination state.
    prob:
        Probability of this outcome.
    rewards:
        Channel name -> reward issued if this outcome happens.
    """

    state: State
    action: str
    next_state: State
    prob: float
    rewards: Dict[str, float] = field(default_factory=dict)


#: Names of the reward channels emitted by the transition function.
CHANNELS = ("alice", "others", "alice_orphans", "others_orphans", "ds")


def _chain1_win_rewards(config: AttackConfig, l1_final: int, a1_final: int,
                        l2: int, a2: int) -> Dict[str, float]:
    """Rewards when Chain 1 outgrows Chain 2: the ``l1_final`` Chain-1
    blocks lock, the ``l2`` Chain-2 blocks are orphaned."""
    return {
        "alice": float(a1_final),
        "others": float(l1_final - a1_final),
        "alice_orphans": float(a2),
        "others_orphans": float(l2 - a2),
        "ds": double_spend_bonus(l2, config.rds, config.confirmations),
    }


def _chain2_win_rewards(config: AttackConfig, l2_final: int, a2_final: int,
                        l1: int, a1: int) -> Dict[str, float]:
    """Rewards when Chain 2 reaches AD: its blocks lock, the ``l1``
    Chain-1 blocks are orphaned."""
    return {
        "alice": float(a2_final),
        "others": float(l2_final - a2_final),
        "alice_orphans": float(a1),
        "others_orphans": float(l1 - a1),
        "ds": double_spend_bonus(l1, config.rds, config.confirmations),
    }


def _next_base(config: AttackConfig, r: int, locked: int) -> State:
    """Base state after ``locked`` non-excessive blocks lock while the
    gate counter stands at ``r`` (``r = 0`` means phase 1)."""
    if r == 0:
        return base1_state()
    r_next = max(r - locked, 0)
    return base1_state() if r_next == 0 else base2_state(r_next)


def _phase3_state(config: AttackConfig) -> State:
    """State after Carol's sticky gate opens (transient phase 3)."""
    if config.phase3_return == "phase1":
        return base1_state()
    return base2_state(config.gate_window)


def _gate_decrement(config: AttackConfig, l1_final: int) -> int:
    """Blocks subtracted from the gate counter by a Chain-1 win."""
    return l1_final if config.gate_countdown == "locked_blocks" \
        else max(l1_final - 1, 0)


def _base_transitions(config: AttackConfig, r: int) -> Iterator[Transition]:
    """Transitions out of a base state (phase 1 when ``r = 0``)."""
    state = base1_state() if r == 0 else base2_state(r)
    others = config.beta + config.gamma
    one_locked = _next_base(config, r, 1)
    fork = (("fork1", 0, 1, 0, 1) if r == 0
            else ("fork2", 0, 1, 0, 1, r))
    yield Transition(state, ON_CHAIN_1, one_locked, config.alpha,
                     {"alice": 1.0})
    yield Transition(state, ON_CHAIN_1, one_locked, others,
                     {"others": 1.0})
    if r == 0 or config.phase2_attack:
        yield Transition(state, ON_CHAIN_2, fork, config.alpha, {})
        yield Transition(state, ON_CHAIN_2, one_locked, others,
                         {"others": 1.0})
    if config.include_wait:
        yield Transition(state, WAIT, one_locked, 1.0, {"others": 1.0})


def _fork_events(config: AttackConfig, state: State
                 ) -> Iterator[Tuple[str, float, bool, State, Dict[str, float]]]:
    """Yield ``(event, prob, is_alice_choice, next_state, rewards)`` for
    every miner-block event in a fork state, *per chain extended*.

    ``event`` is ``"c1"`` or ``"c2"`` (which chain the block extends);
    ``is_alice_choice`` marks the attacker's block (which only happens
    under the matching action).
    """
    tag = state[0]
    if tag == "fork1":
        l1, l2, a1, a2 = state[1:]
        r = 0
        compliant_c1, compliant_c2 = config.beta, config.gamma
        lock_depth = config.ad_bob
    elif tag == "fork2":
        l1, l2, a1, a2, r = state[1:]
        compliant_c1, compliant_c2 = config.gamma, config.beta
        lock_depth = config.effective_ad_carol
    else:  # pragma: no cover - guarded by callers
        raise ReproError(f"not a fork state: {state!r}")

    def on_chain1(delta_a: int) -> Tuple[State, Dict[str, float]]:
        l1_new, a1_new = l1 + 1, a1 + delta_a
        if l1_new > l2:  # Chain 1 outgrows Chain 2: race resolved.
            rewards = _chain1_win_rewards(config, l1_new, a1_new, l2, a2)
            nxt = _next_base(config, r, _gate_decrement(config, l1_new)) \
                if r > 0 else base1_state()
            return nxt, rewards
        return (tag,) + ((l1_new, l2, a1_new, a2) if tag == "fork1"
                         else (l1_new, l2, a1_new, a2, r)), {}

    def on_chain2(delta_a: int) -> Tuple[State, Dict[str, float]]:
        l2_new, a2_new = l2 + 1, a2 + delta_a
        if l2_new == lock_depth:  # Chain 2 reaches AD: locked.
            rewards = _chain2_win_rewards(config, l2_new, a2_new, l1, a1)
            if tag == "fork1":
                nxt = (base2_state(config.gate_window) if config.setting == 2
                       else base1_state())
            else:  # Carol's gate opens -> transient phase 3.
                nxt = _phase3_state(config)
            return nxt, rewards
        return (tag,) + ((l1, l2_new, a1, a2_new) if tag == "fork1"
                         else (l1, l2_new, a1, a2_new, r)), {}

    nxt, rewards = on_chain1(1)
    yield ("c1", config.alpha, True, nxt, rewards)
    nxt, rewards = on_chain2(1)
    yield ("c2", config.alpha, True, nxt, rewards)
    nxt, rewards = on_chain1(0)
    yield ("c1", compliant_c1, False, nxt, rewards)
    nxt, rewards = on_chain2(0)
    yield ("c2", compliant_c2, False, nxt, rewards)


def _fork_transitions(config: AttackConfig,
                      state: State) -> Iterator[Transition]:
    """Transitions out of a fork state, for every action."""
    events = list(_fork_events(config, state))
    compliant = [(e, p, nxt, rew) for e, p, alice, nxt, rew in events
                 if not alice]
    alice_events = {e: (p, nxt, rew) for e, p, alice, nxt, rew in events
                    if alice}
    for action, event in ((ON_CHAIN_1, "c1"), (ON_CHAIN_2, "c2")):
        p, nxt, rew = alice_events[event]
        yield Transition(state, action, nxt, p, rew)
        for _e, cp, cnxt, crew in compliant:
            yield Transition(state, action, cnxt, cp, crew)
    if config.include_wait:
        total = sum(cp for _e, cp, _n, _r in compliant)
        for _e, cp, cnxt, crew in compliant:
            yield Transition(state, WAIT, cnxt, cp / total, crew)


def generate_transitions(config: AttackConfig) -> Iterator[Transition]:
    """Yield every transition of the attack MDP, discovering states by
    breadth-first search from the phase-1 base state."""
    start = base1_state()
    seen = {start}
    frontier = [start]
    while frontier:
        state = frontier.pop()
        if state[0] == "base":
            produced = _base_transitions(config, state[1])
        else:
            produced = _fork_transitions(config, state)
        for tr in produced:
            yield tr
            if tr.next_state not in seen:
                seen.add(tr.next_state)
                frontier.append(tr.next_state)


def actions_for(config: AttackConfig):
    """Action names available in this configuration."""
    return action_names(config.include_wait)
