"""The three miner incentive models of Section 3.

Each model fixes a utility function for the strategic miner:

- :attr:`IncentiveModel.COMPLIANT_PROFIT` -- compliant and
  profit-driven; utility is *relative revenue* (Eq. 1), the share of
  blockchain blocks that are Alice's.
- :attr:`IncentiveModel.NONCOMPLIANT_PROFIT` -- non-compliant and
  profit-driven; utility is *absolute reward* (Eq. 2), Alice's
  time-averaged income (block rewards + double-spends) per network
  block.
- :attr:`IncentiveModel.NON_PROFIT` -- non-profit-driven; utility is
  the number of other miners' blocks orphaned per Alice block (Eq. 3).
"""

from __future__ import annotations

import enum
from typing import Dict, Mapping, Tuple


class IncentiveModel(enum.Enum):
    """Attacker incentive models (Section 3)."""

    COMPLIANT_PROFIT = "compliant-profit-driven"
    NONCOMPLIANT_PROFIT = "non-compliant-profit-driven"
    NON_PROFIT = "non-profit-driven"

    @property
    def uses_wait(self) -> bool:
        """Whether the strategy space includes the Wait action
        (Section 4.4 adds it for the non-profit-driven model only)."""
        return self is IncentiveModel.NON_PROFIT

    @property
    def uses_double_spend(self) -> bool:
        """Whether the utility counts double-spend income."""
        return self is IncentiveModel.NONCOMPLIANT_PROFIT

    def utility_channels(self) -> Tuple[Mapping[str, float],
                                        Mapping[str, float]]:
        """Return ``(numerator, denominator)`` channel weights of the
        model's utility.  A denominator of ``{}`` marks a plain
        per-step average (Eq. 2, where each MDP step mines one block).
        """
        if self is IncentiveModel.COMPLIANT_PROFIT:
            return {"alice": 1.0}, {"alice": 1.0, "others": 1.0}
        if self is IncentiveModel.NONCOMPLIANT_PROFIT:
            return {"alice": 1.0, "ds": 1.0}, {}
        num: Dict[str, float] = {"others_orphans": 1.0}
        den: Dict[str, float] = {"alice": 1.0, "alice_orphans": 1.0}
        return num, den
