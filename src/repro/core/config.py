"""Configuration of the Section 4 attack scenario.

Three miners share the network: strategic Alice (power ``alpha``) and
two compliant groups -- Bob (power ``beta``) with the smaller EB and
Carol (power ``gamma``) with the larger EB.  Bob and Carol share the
same MG and AD.  ``setting`` selects the paper's two MDP settings:

- setting 1: sticky gate disabled (only phase 1 exists);
- setting 2: sticky gate enabled (phases 1 and 2).

Two under-specified details of the paper are exposed as knobs (see
DESIGN.md, "Fidelity notes"):

- ``phase3_return``: state after Chain 2 locks in phase 2 (Carol's gate
  opens, phase 3 is transient) -- ``"phase1"`` returns to the phase-1
  base state, ``"phase2_reset"`` to a fresh phase-2 base;
- ``gate_countdown``: how many blocks a phase-2 Chain-1 win subtracts
  from the sticky-gate counter -- ``"locked_blocks"`` (the ``l1 + 1``
  blocks actually locked) or ``"l1"`` (the paper's literal text).

``phase2_attack=False`` gives the paper's *other* reading of setting 1
("the attacker is only allowed to launch the attack at phase 1"): the
sticky-gate dynamics stay on but OnChain2 is unavailable while the gate
is open.  By a strategy-inclusion argument this variant is dominated by
the full setting 2, which is exactly why EXPERIMENTS.md rules it out as
the explanation of the paper's Table 3 setting-1 column.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from fractions import Fraction
from typing import Optional, Tuple

from repro.core.double_spend import DEFAULT_CONFIRMATIONS, DEFAULT_RDS
from repro.errors import ReproError
from repro.protocol.params import STICKY_GATE_WINDOW

_POWER_TOL = 1e-9


@dataclass(frozen=True)
class AttackConfig:
    """Parameters of one attack-analysis run."""

    alpha: float
    beta: float
    gamma: float
    ad: int = 6
    ad_carol: Optional[int] = None
    setting: int = 1
    include_wait: bool = False
    rds: float = DEFAULT_RDS
    confirmations: int = DEFAULT_CONFIRMATIONS
    gate_window: int = STICKY_GATE_WINDOW
    phase3_return: str = "phase1"
    gate_countdown: str = "locked_blocks"
    phase2_attack: bool = True

    def __post_init__(self) -> None:
        for name, value in (("alpha", self.alpha), ("beta", self.beta),
                            ("gamma", self.gamma)):
            if value <= 0:
                raise ReproError(f"{name} must be positive, got {value}")
        if abs(self.alpha + self.beta + self.gamma - 1.0) > _POWER_TOL:
            raise ReproError("mining power shares must sum to 1")
        if self.alpha >= 0.5:
            raise ReproError("the threat model requires alpha < 50%")
        if self.ad < 2:
            raise ReproError("AD must be at least 2 for a fork to exist")
        if self.ad_carol is not None and self.ad_carol < 2:
            raise ReproError("Carol's AD must be at least 2")
        if self.setting not in (1, 2):
            raise ReproError("setting must be 1 or 2")
        if self.gate_window < 1:
            raise ReproError("gate_window must be at least 1")
        if self.rds < 0:
            raise ReproError("rds cannot be negative")
        if self.confirmations < 1:
            raise ReproError("confirmations must be at least 1")
        if self.phase3_return not in ("phase1", "phase2_reset"):
            raise ReproError(
                f"unknown phase3_return {self.phase3_return!r}")
        if self.gate_countdown not in ("locked_blocks", "l1"):
            raise ReproError(
                f"unknown gate_countdown {self.gate_countdown!r}")

    @property
    def compliant_power(self) -> float:
        """Combined power of Bob and Carol."""
        return self.beta + self.gamma

    @property
    def ad_bob(self) -> int:
        """Bob's acceptance depth (governs phase-1 Chain-2 locks)."""
        return self.ad

    @property
    def effective_ad_carol(self) -> int:
        """Carol's acceptance depth (governs phase-2 Chain-2 locks);
        defaults to the shared ``ad`` as in the paper's model.  The
        paper notes real participants signaled heterogeneous ADs
        (AD = 6 miners, AD = 20 BitClub, AD = 12 public nodes)."""
        return self.ad if self.ad_carol is None else self.ad_carol

    def with_wait(self, include_wait: bool = True) -> "AttackConfig":
        """Return a copy with the Wait action toggled."""
        return replace(self, include_wait=include_wait)

    @staticmethod
    def from_ratio(alpha: float, beta_to_gamma: Tuple[int, int],
                   **kwargs) -> "AttackConfig":
        """Build a config from Alice's share and the paper's ``beta :
        gamma`` ratio notation, e.g. ``from_ratio(0.1, (2, 3))``.

        The remaining power ``1 - alpha`` is split exactly in the given
        ratio using rational arithmetic, so power shares always sum to
        one.
        """
        b, g = beta_to_gamma
        if b <= 0 or g <= 0:
            raise ReproError("ratio parts must be positive")
        alpha_frac = Fraction(alpha).limit_denominator(10**6)
        rest = Fraction(1) - alpha_frac
        beta = rest * Fraction(b, b + g)
        gamma = rest - beta
        return AttackConfig(alpha=float(alpha_frac), beta=float(beta),
                            gamma=float(gamma), **kwargs)
