"""Attacking a network with many distinct EB values (Section 4.1.1).

The paper's two-group setup (Bob / Carol) is "the weakest form of the
attack": with signaled values ``EB_1 < EB_2 < ... < EB_k``, the
attacker picks any split index ``d`` and treats the groups with
``EB <= EB_d`` as Bob and the rest as Carol, by mining phase-1 fork
blocks of size ``EB_{d+1}`` and phase-2 blocks just above ``EB_k``.
More EBs therefore only give Alice more options.

:func:`best_split` solves the chosen incentive model for every split
and returns the attacker-optimal one -- the quantitative version of
the paper's remark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.config import AttackConfig
from repro.core.incentives import IncentiveModel
from repro.core.solve import AttackAnalysis, analyze
from repro.errors import ReproError
from repro.protocol.signals import EBSplit


@dataclass(frozen=True)
class EBGroup:
    """One compliant miner group, by signaled EB."""

    eb: float
    power: float

    def __post_init__(self) -> None:
        if self.eb <= 0:
            raise ReproError("EB must be positive")
        if self.power <= 0:
            raise ReproError("group power must be positive")


@dataclass
class SplitAnalysis:
    """One candidate split and its solved attack value.

    Attributes
    ----------
    split:
        The induced Bob/Carol partition (fork block sizes included).
    config:
        The two-group attack configuration it maps to.
    analysis:
        The solved incentive-model result.
    """

    split: EBSplit
    config: AttackConfig
    analysis: AttackAnalysis

    @property
    def utility(self) -> float:
        """The attacker's optimal utility under this split."""
        return self.analysis.utility


def enumerate_splits(groups: Sequence[EBGroup],
                     alpha: float) -> List[EBSplit]:
    """Enumerate the k-1 Bob/Carol partitions of a k-EB network."""
    if not groups:
        raise ReproError("need at least one compliant group")
    merged = {}
    for g in groups:
        merged[g.eb] = merged.get(g.eb, 0.0) + g.power
    ebs = sorted(merged)
    total = sum(merged.values())
    if abs(total + alpha - 1.0) > 1e-9:
        raise ReproError("alpha plus group powers must sum to 1")
    out: List[EBSplit] = []
    for d in range(len(ebs) - 1):
        beta = sum(merged[e] for e in ebs[: d + 1])
        gamma = total - beta
        out.append(EBSplit(split_eb=ebs[d], fork_block_size=ebs[d + 1],
                           oversize_block_size=ebs[-1] + 1e-6,
                           beta=beta, gamma=gamma))
    return out


def analyze_splits(groups: Sequence[EBGroup], alpha: float,
                   model: IncentiveModel,
                   setting: int = 1, **config_kwargs
                   ) -> List[SplitAnalysis]:
    """Solve ``model`` for every candidate split, in EB order."""
    out: List[SplitAnalysis] = []
    for split in enumerate_splits(groups, alpha):
        config = AttackConfig(alpha=alpha, beta=split.beta,
                              gamma=split.gamma, setting=setting,
                              **config_kwargs)
        out.append(SplitAnalysis(split=split, config=config,
                                 analysis=analyze(config, model)))
    return out


def best_split(groups: Sequence[EBGroup], alpha: float,
               model: IncentiveModel, setting: int = 1,
               **config_kwargs) -> Optional[SplitAnalysis]:
    """Return the attacker-optimal split, or ``None`` when the network
    already shares one EB (no split exists -- the April 2017 status
    quo the paper's Section 6.1 explains)."""
    splits = analyze_splits(groups, alpha, model, setting,
                            **config_kwargs)
    if not splits:
        return None
    return max(splits, key=lambda s: s.utility)


def merge_adjacent(groups: Sequence[EBGroup],
                   boundary: float) -> Tuple[float, float]:
    """Helper: total power at or below / above an EB boundary."""
    below = sum(g.power for g in groups if g.eb <= boundary)
    above = sum(g.power for g in groups if g.eb > boundary)
    return below, above
