"""State encoding of the Section 4 attack MDP.

A state is the 5-tuple ``(l1, l2, a1, a2, r)`` of the paper, encoded as
tagged tuples so base and fork states are unambiguous:

- ``("base", r)`` -- no ongoing fork.  ``r = 0`` is the phase-1 base
  state (both sticky gates closed); ``1 <= r <= gate_window`` is a
  phase-2 base state (Bob's gate open, ``r`` locked blocks left until
  it closes).
- ``("fork1", l1, l2, a1, a2)`` -- a phase-1 fork: Chain 2 starts with
  Alice's size-``EB_C`` block (accepted by Carol, excessive for Bob).
- ``("fork2", l1, l2, a1, a2, r)`` -- a phase-2 fork: Chain 2 starts
  with Alice's oversize block (accepted by Bob through his open gate,
  excessive for Carol).

Invariants (checked by :func:`validate_state`):

- ``0 <= l1 <= l2 <= AD - 1`` and ``l2 >= 1`` (Chain 1 winning is
  resolved immediately, Chain 2 reaching AD locks it);
- ``0 <= a1 <= l1`` and ``1 <= a2 <= l2`` (Chain 2 opens with Alice's
  block);
- fork2 carries the gate counter ``r`` frozen at its fork-start value.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.core.config import AttackConfig
from repro.errors import ReproError

State = Tuple


def base1_state() -> State:
    """The phase-1 base state (the MDP's start state)."""
    return ("base", 0)


def base2_state(r: int) -> State:
    """A phase-2 base state with ``r`` blocks left on the gate counter."""
    if r < 1:
        raise ReproError("phase-2 base requires r >= 1")
    return ("base", r)


def fork1_state(l1: int, l2: int, a1: int, a2: int) -> State:
    """A phase-1 fork state."""
    return ("fork1", l1, l2, a1, a2)


def fork2_state(l1: int, l2: int, a1: int, a2: int, r: int) -> State:
    """A phase-2 fork state."""
    return ("fork2", l1, l2, a1, a2, r)


def is_base(state: State) -> bool:
    """Whether ``state`` is a base (un-forked) state."""
    return state[0] == "base"


def state_phase(state: State) -> int:
    """Return the phase (1 or 2) of a state."""
    if state[0] == "base":
        return 1 if state[1] == 0 else 2
    return 1 if state[0] == "fork1" else 2


def validate_state(state: State, config: AttackConfig) -> None:
    """Raise :class:`ReproError` if ``state`` violates an invariant."""
    tag = state[0]
    if tag == "base":
        r = state[1]
        if not 0 <= r <= config.gate_window:
            raise ReproError(f"base state r={r} out of range")
        if r > 0 and config.setting == 1:
            raise ReproError("phase-2 base state in setting 1")
        return
    if tag == "fork1":
        l1, l2, a1, a2 = state[1:]
        ad = config.ad_bob
    elif tag == "fork2":
        l1, l2, a1, a2, r = state[1:]
        ad = config.effective_ad_carol
        if config.setting == 1:
            raise ReproError("phase-2 fork state in setting 1")
        if not 1 <= r <= config.gate_window:
            raise ReproError(f"fork2 state r={r} out of range")
    else:
        raise ReproError(f"unknown state tag {tag!r}")
    if not 1 <= l2 <= ad - 1:
        raise ReproError(f"l2={l2} out of range for AD={ad}")
    if not 0 <= l1 <= l2:
        raise ReproError(f"l1={l1} violates 0 <= l1 <= l2={l2}")
    if not 0 <= a1 <= l1:
        raise ReproError(f"a1={a1} violates 0 <= a1 <= l1={l1}")
    if not 1 <= a2 <= l2:
        raise ReproError(f"a2={a2} violates 1 <= a2 <= l2={l2}")


def enumerate_fork_shapes(ad: int) -> Iterator[Tuple[int, int, int, int]]:
    """Yield every feasible ``(l1, l2, a1, a2)`` fork shape for ``ad``."""
    for l2 in range(1, ad):
        for l1 in range(0, l2 + 1):
            for a1 in range(0, l1 + 1):
                for a2 in range(1, l2 + 1):
                    yield (l1, l2, a1, a2)


def enumerate_states(config: AttackConfig) -> Iterator[State]:
    """Yield the full state space of a configuration.

    This is the *closed-form* enumeration; the MDP builder reaches the
    same set by BFS from the base state (tested for equality).
    """
    yield base1_state()
    for shape in enumerate_fork_shapes(config.ad_bob):
        yield ("fork1",) + shape
    if config.setting == 2:
        for r in range(1, config.gate_window + 1):
            yield base2_state(r)
        if config.phase2_attack:
            for r in range(1, config.gate_window + 1):
                for shape in enumerate_fork_shapes(
                        config.effective_ad_carol):
                    yield ("fork2",) + shape + (r,)


def count_states(config: AttackConfig) -> int:
    """Closed-form size of the state space."""
    shapes1 = sum(1 for _ in enumerate_fork_shapes(config.ad_bob))
    if config.setting == 1:
        return 1 + shapes1
    if not config.phase2_attack:
        return 1 + shapes1 + config.gate_window
    shapes2 = sum(1 for _ in
                  enumerate_fork_shapes(config.effective_ad_carol))
    return 1 + shapes1 + config.gate_window * (1 + shapes2)
