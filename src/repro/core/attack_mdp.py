"""Assembly of the attack MDP from the transition function, with a
structure-keyed build cache.

Building the setting-2 sticky-gate model (30,595 states) costs ~1s of
pure-Python BFS, so rebuilding it per sweep cell dominates sweeps whose
cells share a transition structure.  Two cache levels avoid that:

- **full hit**: the exact same :class:`AttackConfig` returns the same
  (immutable) :class:`~repro.mdp.model.MDP` instance, so its stacked
  Bellman kernel and policy-evaluation cache carry over between the
  three incentive-model solves of one cell;
- **structure hit**: configs that differ only in the *reward-only*
  fields ``rds`` / ``confirmations`` (the double-spend sensitivity
  sweeps) share the transition matrices, state keys, kernel and the
  reward-independent half of the evaluation cache; only the ``ds``
  reward channel is recomputed, from per-(state, action) orphan-count
  histograms recorded at first build.  The histogram trick works
  because the double-spend bonus of a resolved race depends only on
  how many blocks it orphaned: ``ds[a, s] = sum_k bonus(k) * P(race
  from (s, a) orphans k blocks)``.

The cache is per-process (parallel sweep workers each hold their own)
and guarded by a lock for thread safety.  See ``docs/performance.md``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import AttackConfig
from repro.core.double_spend import double_spend_bonus
from repro.core.states import base1_state
from repro.core.transitions import (CHANNELS, _base_raw, _fork_raw,
                                    actions_for, generate_raw_transitions)
from repro.mdp.builder import MDPBuilder, assemble_mdp
from repro.mdp.model import MDP
from repro.runtime.telemetry import counter_add, span

#: Config fields that affect only reward channels, not the transition
#: structure (both feed exclusively into the ``ds`` channel).
REWARD_ONLY_FIELDS = ("rds", "confirmations")

#: Number of transition structures kept in the per-process cache.
ATTACK_MDP_CACHE_SIZE = 4

_ORPH_PREFIX = "_orph"


@dataclass
class AttackMDPCacheStats:
    """Counters of the attack-MDP build cache.

    Attributes
    ----------
    hits:
        Exact-config hits (MDP instance returned as-is).
    reward_rebuilds:
        Structure hits where only the ``ds`` channel was recomputed.
    misses:
        Full builds (BFS + matrix assembly).
    """

    hits: int = 0
    reward_rebuilds: int = 0
    misses: int = 0


@dataclass
class _StructureEntry:
    """One cached transition structure and its reward variants."""

    base: MDP
    histograms: Dict[int, np.ndarray]
    variants: "OrderedDict[Tuple[float, int], MDP]" = field(
        default_factory=OrderedDict)


_lock = threading.Lock()
_cache: "OrderedDict[AttackConfig, _StructureEntry]" = OrderedDict()
_stats = AttackMDPCacheStats()


def attack_mdp_cache_stats() -> AttackMDPCacheStats:
    """The per-process build-cache counters."""
    return _stats


def clear_attack_mdp_cache() -> None:
    """Drop every cached structure and reset the counters."""
    global _stats
    with _lock:
        _cache.clear()
        _stats = AttackMDPCacheStats()


def _structure_key(config: AttackConfig) -> AttackConfig:
    """The config with reward-only fields canonicalized away."""
    return replace(config, rds=0.0, confirmations=1)


def _max_orphanable(config: AttackConfig) -> int:
    """Upper bound on blocks a single resolved race can orphan: the
    losing chain is always shorter than the winning lock depth."""
    return max(config.ad_bob, config.effective_ad_carol)


def _tag_orphan_histograms(raw):
    """Annotate a raw transition stream with ``_orph<k>`` indicator
    channels recording how many blocks each resolved race orphaned."""
    for tr in raw:
        rewards = tr[4]
        # Only race resolutions carry multi-channel rewards (all five
        # channels at once); everything else has 0 or 1 entries.
        if len(rewards) > 1:
            orphaned = int(rewards.get("alice_orphans", 0.0)
                           + rewards.get("others_orphans", 0.0))
            if orphaned:
                rewards = dict(rewards)
                rewards[f"{_ORPH_PREFIX}{orphaned}"] = 1.0
                yield tr[0], tr[1], tr[2], tr[3], rewards
                continue
        yield tr


def _channel_names(config: AttackConfig, with_histograms: bool
                   ) -> Tuple[List[str], List[str]]:
    channels: List[str] = list(CHANNELS)
    hist_names: List[str] = []
    if with_histograms:
        hist_names = [f"{_ORPH_PREFIX}{k}"
                      for k in range(1, _max_orphanable(config) + 1)]
        channels += hist_names
    return channels, hist_names


def _pop_histograms(mdp: MDP,
                    hist_names: List[str]) -> Dict[int, np.ndarray]:
    histograms: Dict[int, np.ndarray] = {}
    for name in hist_names:
        arr = mdp.rewards.pop(name)
        if arr.any():
            histograms[int(name[len(_ORPH_PREFIX):])] = arr
    return histograms


def _build_generic(config: AttackConfig, validate: bool,
                   with_histograms: bool
                   ) -> Tuple[MDP, Dict[int, np.ndarray]]:
    """Reference build: BFS over every state via the raw transition
    stream."""
    channels, hist_names = _channel_names(config, with_histograms)
    builder = MDPBuilder(actions=actions_for(config), channels=channels)
    raw = generate_raw_transitions(config)
    if with_histograms:
        raw = _tag_orphan_histograms(raw)
    builder.extend(raw)
    mdp = builder.build(start=base1_state(), validate=validate)
    return mdp, _pop_histograms(mdp, hist_names)


def _build_fast(config: AttackConfig, validate: bool,
                with_histograms: bool
                ) -> Tuple[MDP, Dict[int, np.ndarray]]:
    """Vectorized build for setting-2 phase-2-attack configs.

    The phase-2 fork blocks at different gate-counter values ``r`` are
    isomorphic: fork growth, probabilities and rewards depend only on
    the fork shape ``(l1, l2, a1, a2)``, and ``r`` enters solely
    through the Chain-1-win exit target ``base(max(r - dec, 0))``.  So
    instead of BFS-ing all ``gate_window`` copies in Python (~30k
    states with the paper's Table 2 parameters), this path generates
    the phase-1 states, the phase-2 base spine and ONE fork-block
    template per-state, then replicates the template across ``r`` with
    numpy index arithmetic.  Equality with :func:`_build_generic` (up
    to state relabeling) is covered by tests.
    """
    gw = config.gate_window
    actions = actions_for(config)
    action_index = {a: i for i, a in enumerate(actions)}
    channels, hist_names = _channel_names(config, with_histograms)

    # ---- small per-state part: phase 1 and the phase-2 base spine ----
    start = base1_state()
    small: list = []
    seen = {start}
    frontier = [start]
    while frontier:
        state = frontier.pop()
        produced = (_base_raw(config, state[1]) if state[0] == "base"
                    else _fork_raw(config, state))
        for tr in produced:
            small.append(tr)
            nxt = tr[2]
            # Expand only phase-1 fork states here; phase-2 targets
            # are handled by the spine / template below.
            if nxt[0] == "fork1" and nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    for r in range(1, gw + 1):
        small.extend(_base_raw(config, r))
    if with_histograms:
        small = list(_tag_orphan_histograms(small))

    # ---- fork-block template at a symbolic gate counter ----
    # r0 exceeds every possible gate decrement, so a Chain-1-win exit
    # target ("base", r0 - dec) encodes dec without clamping at 0.
    r0 = config.effective_ad_carol + 1
    # Chain extended by each _fork_raw yield position, in order:
    # ON_CHAIN_1 gets (alice c1, compliant c1, compliant c2),
    # ON_CHAIN_2 gets (alice c2, compliant c1, compliant c2),
    # WAIT gets (compliant c1, compliant c2).
    chain_of_pos = (1, 1, 2, 2, 1, 2) + \
        ((1, 2) if config.include_wait else ())
    entry = (0, 1, 0, 1)
    tshapes: list = [entry]
    tshape_index = {entry: 0}
    # Per template transition: source shape id, action id, probability,
    # exit kind and its payload, rewards dict.
    t_rows: list = []
    stack = [entry]
    while stack:
        shape = stack.pop()
        sid = tshape_index[shape]
        rows = list(_fork_raw(config, ("fork2",) + shape + (r0,)))
        for chain, (_s, action, dst, p, rew) in zip(chain_of_pos, rows):
            if p == 0:
                continue
            if with_histograms and len(rew) > 1:
                orphaned = int(rew.get("alice_orphans", 0.0)
                               + rew.get("others_orphans", 0.0))
                if orphaned:
                    rew = dict(rew)
                    rew[f"{_ORPH_PREFIX}{orphaned}"] = 1.0
            if dst[0] == "fork2":
                dshape = dst[1:5]
                did = tshape_index.get(dshape)
                if did is None:
                    did = len(tshapes)
                    tshape_index[dshape] = did
                    tshapes.append(dshape)
                    stack.append(dshape)
                t_rows.append((sid, action_index[action], p,
                               "internal", did, rew))
            elif chain == 1:
                # Chain-1 win: target base(max(r - dec, 0)).
                t_rows.append((sid, action_index[action], p,
                               "base", r0 - dst[1], rew))
            else:
                # Chain-2 win: r-independent phase-3 target.
                t_rows.append((sid, action_index[action], p,
                               "const", dst, rew))
    # ---- state indexing ----
    keys: list = []
    index: Dict = {}

    def intern(key) -> int:
        idx = index.get(key)
        if idx is None:
            idx = len(keys)
            index[key] = idx
            keys.append(key)
        return idx

    intern(start)
    deferred: list = []  # (row_no, fork2 key) to resolve after offset
    s_src: list = []
    s_act: list = []
    s_dst: list = []
    s_prob: list = []
    s_rew: Dict[str, Tuple[list, list, list]] = {
        c: ([], [], []) for c in channels}
    for state, action, nxt, p, rewards in small:
        if p == 0:
            continue
        a = action_index[action]
        s = intern(state)
        if nxt[0] == "fork2":
            deferred.append((len(s_dst), nxt))
            t = -1
        else:
            t = intern(nxt)
        s_src.append(s)
        s_act.append(a)
        s_dst.append(t)
        s_prob.append(p)
        for name, value in rewards.items():
            if value != 0.0:
                lists = s_rew[name]
                lists[0].append(s)
                lists[1].append(a)
                lists[2].append(p * value)

    n_small = len(keys)
    n_shapes = len(tshapes)
    for r in range(1, gw + 1):
        for shape in tshapes:
            keys.append(("fork2",) + shape + (r,))

    def fork2_index(shape, r: int) -> int:
        return n_small + (r - 1) * n_shapes + tshape_index[shape]

    src_small = np.asarray(s_src, dtype=np.intp)
    act_small = np.asarray(s_act, dtype=np.intp)
    dst_small = np.asarray(s_dst, dtype=np.intp)
    prob_small = np.asarray(s_prob, dtype=float)
    for row_no, nxt in deferred:
        dst_small[row_no] = fork2_index(nxt[1:5], nxt[5])

    # ---- replicate the template across the gate counter ----
    t_src = np.array([row[0] for row in t_rows], dtype=np.intp)
    t_act = np.array([row[1] for row in t_rows], dtype=np.intp)
    t_prob = np.array([row[2] for row in t_rows], dtype=float)
    kinds = np.array([{"internal": 0, "base": 1, "const": 2}[row[3]]
                      for row in t_rows], dtype=np.intp)
    internal_mask = kinds == 0
    base_mask = kinds == 1
    const_mask = kinds == 2
    t_internal = np.array([row[4] if row[3] == "internal" else 0
                           for row in t_rows], dtype=np.intp)
    t_dec = np.array([row[4] if row[3] == "base" else 0
                      for row in t_rows], dtype=np.intp)
    t_const = np.array([index[row[4]] if row[3] == "const" else 0
                        for row in t_rows], dtype=np.intp)
    base_index = np.array([index[("base", rr)] for rr in range(gw + 1)],
                          dtype=np.intp)
    # Per-channel template reward scatter: (row index, value).
    t_rew: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
    for c in channels:
        rows_c = [(j, row[5][c]) for j, row in enumerate(t_rows)
                  if row[5].get(c, 0.0) != 0.0]
        if rows_c:
            jj = np.array([j for j, _ in rows_c], dtype=np.intp)
            vv = np.array([t_rows[j][2] * v for j, v in rows_c])
            t_rew[c] = (jj, vv)

    n_t = len(t_rows)
    src_parts = [src_small]
    act_parts = [act_small]
    dst_parts = [dst_small]
    prob_parts = [prob_small]
    rew_parts: Dict[str, Tuple[list, list, list]] = {
        c: ([np.asarray(sr[0], dtype=np.intp)],
            [np.asarray(sr[1], dtype=np.intp)],
            [np.asarray(sr[2], dtype=float)])
        for c, sr in s_rew.items()}
    for r in range(1, gw + 1):
        offset = n_small + (r - 1) * n_shapes
        src_r = offset + t_src
        dst_r = np.empty(n_t, dtype=np.intp)
        dst_r[internal_mask] = offset + t_internal[internal_mask]
        dst_r[base_mask] = base_index[
            np.maximum(r - t_dec[base_mask], 0)]
        dst_r[const_mask] = t_const[const_mask]
        src_parts.append(src_r)
        act_parts.append(t_act)
        dst_parts.append(dst_r)
        prob_parts.append(t_prob)
        for c, (jj, vv) in t_rew.items():
            lists = rew_parts[c]
            lists[0].append(src_r[jj])
            lists[1].append(t_act[jj])
            lists[2].append(vv)

    src = np.concatenate(src_parts)
    act = np.concatenate(act_parts)
    dst = np.concatenate(dst_parts)
    prob = np.concatenate(prob_parts)
    rew_scatter = {c: (np.concatenate(lists[0]),
                       np.concatenate(lists[1]),
                       np.concatenate(lists[2]))
                   for c, lists in rew_parts.items()}
    mdp = assemble_mdp(keys, actions, src, act, dst, prob, rew_scatter,
                       index[start], validate=validate)
    return mdp, _pop_histograms(mdp, hist_names)


def _build_fresh(config: AttackConfig, validate: bool,
                 with_histograms: bool = False,
                 fast: Optional[bool] = None
                 ) -> Tuple[MDP, Dict[int, np.ndarray]]:
    """Build an attack MDP; optionally record orphan-count histograms
    for the reward-rebuild path.

    ``fast=None`` auto-selects the vectorized template-replication
    path for the configs where it applies (setting 2 with the phase-2
    attack enabled, where the state space is dominated by isomorphic
    fork blocks); ``fast=True``/``False`` force a path (for tests).
    """
    if fast is None:
        fast = (config.setting == 2 and config.phase2_attack
                and config.gate_window >= 1)
    with span("build/attack-mdp"):
        if fast:
            return _build_fast(config, validate, with_histograms)
        return _build_generic(config, validate, with_histograms)


def _ds_channel(config: AttackConfig,
                histograms: Dict[int, np.ndarray],
                shape: Tuple[int, int]) -> np.ndarray:
    """Recompute the ``ds`` reward channel for new reward-only fields
    from the cached orphan-count histograms."""
    ds = np.zeros(shape)
    for orphaned, hist in histograms.items():
        bonus = double_spend_bonus(orphaned, config.rds,
                                   config.confirmations)
        if bonus != 0.0:
            ds += bonus * hist
    return ds


def _reward_variant(entry: _StructureEntry, config: AttackConfig) -> MDP:
    """A new MDP sharing ``entry``'s transition structure with only the
    ``ds`` channel rebuilt for ``config``'s reward-only fields."""
    base = entry.base
    rewards = {name: base.rewards[name] for name in CHANNELS if name != "ds"}
    rewards["ds"] = _ds_channel(config, entry.histograms,
                                (base.n_actions, base.n_states))
    mdp = MDP(state_keys=base.state_keys, actions=base.actions,
              transition=base.transition, rewards=rewards,
              available=base.available, start=base.start, validate=False)
    # Share the reward-independent performance caches: the Bellman
    # stack as-is, the evaluation cache through a structure view (LU
    # factorizations and stationary distributions carry over, reward
    # memos start empty).
    mdp._kernel = base.kernel()
    mdp._eval_cache = base.eval_cache().structure_view(mdp)
    return mdp


def build_attack_mdp(config: AttackConfig, validate: bool = True,
                     cache: bool = True) -> MDP:
    """Build the Section 4 strategy-space MDP for ``config``.

    The state space is discovered by BFS from the phase-1 base state;
    with the paper's parameters (AD = 6) this yields 211 states in
    setting 1 and 30,595 states in setting 2.

    With ``cache=True`` (the default) builds go through the
    per-process structure cache: the exact same config returns the
    same MDP instance, and configs differing only in ``rds`` /
    ``confirmations`` reuse the cached transition structure with only
    the ``ds`` reward channel recomputed.  Cached MDPs must be treated
    as immutable; pass ``cache=False`` for a private instance.
    """
    if not cache:
        mdp, _ = _build_fresh(config, validate)
        return mdp
    skey = _structure_key(config)
    rkey = (config.rds, config.confirmations)
    with _lock:
        entry: Optional[_StructureEntry] = _cache.get(skey)
        if entry is not None:
            _cache.move_to_end(skey)
            variant = entry.variants.get(rkey)
            if variant is not None:
                _stats.hits += 1
                counter_add("build_cache/hits")
                entry.variants.move_to_end(rkey)
                return variant
    # Build outside the lock; worst case two threads race on the same
    # structure and the loser's build is discarded.
    if entry is None:
        mdp, histograms = _build_fresh(config, validate=True,
                                       with_histograms=True)
        with _lock:
            existing = _cache.get(skey)
            if existing is not None:
                entry = existing
            else:
                _stats.misses += 1
                counter_add("build_cache/misses")
                entry = _StructureEntry(base=mdp, histograms=histograms)
                entry.variants[rkey] = mdp
                _cache[skey] = entry
                while len(_cache) > ATTACK_MDP_CACHE_SIZE:
                    _cache.popitem(last=False)
                return mdp
    variant = _reward_variant(entry, config)
    with _lock:
        _stats.reward_rebuilds += 1
        counter_add("build_cache/reward_rebuilds")
        entry.variants[rkey] = variant
        while len(entry.variants) > ATTACK_MDP_CACHE_SIZE:
            entry.variants.popitem(last=False)
    return variant
