"""Assembly of the attack MDP from the transition function."""

from __future__ import annotations

from repro.core.config import AttackConfig
from repro.core.states import base1_state
from repro.core.transitions import CHANNELS, actions_for, generate_transitions
from repro.mdp.builder import MDPBuilder
from repro.mdp.model import MDP


def build_attack_mdp(config: AttackConfig, validate: bool = True) -> MDP:
    """Build the Section 4 strategy-space MDP for ``config``.

    The state space is discovered by BFS from the phase-1 base state;
    with the paper's parameters (AD = 6) this yields 211 states in
    setting 1 and 30,595 states in setting 2.
    """
    builder = MDPBuilder(actions=actions_for(config), channels=list(CHANNELS))
    for tr in generate_transitions(config):
        builder.add(tr.state, tr.action, tr.next_state, tr.prob,
                    **tr.rewards)
    return builder.build(start=base1_state(), validate=validate)
