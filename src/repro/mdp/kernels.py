"""Stacked Bellman kernels and cross-solve policy-evaluation caching.

This module is the performance layer under every MDP solver in the
library.  Two observations drive it:

1. **The Q-backup is a single sparse matmul.**  All dynamic-programming
   solvers (discounted and relative value iteration, policy iteration,
   finite-horizon backward induction) repeat the same inner step::

       q[a] = reward[a] + discount * P_a . values     for every action a

   Stacking the per-action transition matrices once into one
   ``(A * N, N)`` CSR matrix turns the per-action Python loop into one
   ``stack @ values`` followed by a reshape, and lets the policy-induced
   matrix ``P_pi`` be extracted by fancy row slicing
   (``rows = policy * N + arange(N)``) instead of a
   ``diags(mask) @ P_a`` product per action.

2. **One LU factorization serves every evaluation of a policy.**  The
   average-reward evaluation system

   .. code-block:: text

       A = [ I - P_pi   1 ]        A [h; g] = [r_pi; 0]
           [ e_start^T  0 ]

   depends only on the *policy*, not on the reward, so its sparse LU
   factorization can be reused across the dozens of transformed rewards
   that a Dinkelbach/bisection ratio solve evaluates.  Better still, the
   stationary distribution of ``P_pi`` is the solution of the
   *transposed* system with right-hand side ``e_{n}`` (writing
   ``A^T [y; c] = e_n`` gives ``(I - P_pi)^T y = -c e_start`` and
   ``sum(y) = 1``; multiplying the first block by the all-ones vector
   forces ``c = 0`` because ``(I - P_pi) 1 = 0`` for a row-stochastic
   ``P_pi``, hence ``y`` *is* the stationary distribution).  SuperLU
   solves transposed systems from the same factorization, so gain, bias,
   stationary distribution and every per-channel rate of a policy cost
   one factorization total.

:class:`PolicyEvalCache` memoizes both facts per policy (keyed by
``policy.tobytes()``) on behalf of
:func:`repro.mdp.policy_iteration.evaluate_policy` and
:func:`repro.mdp.stationary.policy_gains`; see ``docs/performance.md``
for the cache-key and invalidation rules.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

import numpy as np
from scipy import sparse
from scipy.sparse import linalg as sla

from repro.errors import MDPError, SolverError
from repro.mdp import backends
from repro.runtime.telemetry import counter_add

#: Per-policy memo size for (reward -> gain/bias) results; Dinkelbach
#: revisits at most a handful of transformed rewards per policy.
EVAL_MEMO_SIZE = 8

#: Default number of policies kept per cache (LRU).
POLICY_CACHE_SIZE = 32


class BellmanKernel:
    """Precomputed ``(A * N, N)`` CSR stack of an MDP's transitions.

    The stack's row ``a * N + s`` is the transition row of action ``a``
    in state ``s``; it is built once per MDP (lazily, via
    ``MDP.kernel()``) and shared by every solver touching that MDP.
    """

    def __init__(self, mdp) -> None:
        self.n_states = mdp.n_states
        self.n_actions = mdp.n_actions
        self.stack = sparse.vstack(mdp.transition, format="csr")
        self.available = mdp.available
        self._all_available = bool(mdp.available.all())
        self._rows = np.arange(mdp.n_states)

    def q_values(self, reward: np.ndarray, values: np.ndarray,
                 discount: float = 1.0) -> np.ndarray:
        """Return the ``(A, N)`` action-value array
        ``q[a, s] = reward[a, s] + discount * P_a[s] . values`` with
        unavailable (state, action) pairs masked to ``-inf``.

        Dispatches through the active compute backend
        (:mod:`repro.mdp.backends`); every backend is bit-identical.
        """
        return backends.active().q_backup(self, reward, values,
                                          discount)

    def policy_rows(self, policy: np.ndarray) -> np.ndarray:
        """Stack row indices selected by ``policy`` (one per state)."""
        policy = np.asarray(policy, dtype=np.intp)
        if policy.shape != (self.n_states,):
            raise MDPError("policy must assign one action per state")
        if policy.size and (policy.min() < 0
                            or policy.max() >= self.n_actions):
            raise MDPError("policy contains out-of-range action indices")
        return policy * self.n_states + self._rows

    def policy_matrix(self, policy: np.ndarray) -> sparse.csr_matrix:
        """The ``(N, N)`` transition matrix induced by ``policy``,
        extracted by row slicing of the stack (through the active
        compute backend)."""
        return backends.active().policy_matrix(
            self, self.policy_rows(policy))


def q_backup(mdp, reward: np.ndarray, values: np.ndarray,
             discount: float = 1.0) -> np.ndarray:
    """Shared Q-backup used by every dynamic-programming solver.

    The ``kernel/q_backups`` telemetry counter is *not* bumped here:
    solvers accumulate their backup count locally and flush it once
    per solve via :func:`note_q_backups` (merged totals are identical
    to per-call counting, without a registry dict lookup in the inner
    loop).
    """
    return mdp.kernel().q_values(reward, values, discount=discount)


def q_backup_max(mdp, reward: np.ndarray, values: np.ndarray,
                 discount: float = 1.0) -> Tuple[np.ndarray, np.ndarray]:
    """Fused Q-backup returning ``(q.max(axis=0), q.argmax(axis=0))``
    without materializing ``q`` on compiled backends -- the sweep shape
    of value-style iterations (VI, RVI, backward induction)."""
    return backends.active().q_backup_max(mdp.kernel(), reward, values,
                                          discount)


def q_backup_greedy(mdp, reward: np.ndarray, values: np.ndarray,
                    discount: float = 1.0
                    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Fused Q-backup returning ``(q, best, greedy_policy)`` in one
    kernel pass -- the improvement shape of Howard policy iteration,
    which also needs the incumbent's action values."""
    return backends.active().q_backup_greedy(mdp.kernel(), reward,
                                             values, discount)


def q_backup_states(mdp, reward: np.ndarray, values: np.ndarray,
                    states: np.ndarray, discount: float = 1.0
                    ) -> Tuple[np.ndarray, np.ndarray]:
    """Fused Q-backup over a *subset* of states: ``(best, policy)``
    arrays of length ``len(states)``, bit-identical to slicing
    :func:`q_backup_max`'s result at ``states``.  The sweep shape of
    the prioritized asynchronous engine (:mod:`repro.mdp.approx`),
    which backs up only the states popped off its residual queue."""
    return backends.active().q_backup_states(
        mdp.kernel(), reward, values,
        np.asarray(states, dtype=np.int64), discount)


def note_q_backups(count: int) -> None:
    """Flush a solver's locally-accumulated backup count into the
    ``kernel/q_backups`` counter (and the per-backend detail) once per
    solve.  Counters stay worker-merge-safe and value-identical to the
    historical per-call bumps."""
    if count:
        counter_add("kernel/q_backups", count)
        counter_add(f"backend/{backends.active().name}/q_backups",
                    count)


def greedy_policy_from_q(q: np.ndarray) -> np.ndarray:
    """Greedy action indices of a masked ``(A, N)`` Q array (first
    maximizer on ties -- the tie-break every backend's fused argmax
    reproduces)."""
    return np.asarray(q.argmax(axis=0), dtype=int)


@dataclass
class EvalCacheStats:
    """Hit/miss counters of a :class:`PolicyEvalCache`.

    ``factorizations`` counts actual sparse LU factorizations -- the
    expensive operation the cache exists to avoid.
    """

    policy_hits: int = 0
    policy_misses: int = 0
    eval_hits: int = 0
    eval_misses: int = 0
    gain_hits: int = 0
    gain_misses: int = 0
    stationary_hits: int = 0
    stationary_misses: int = 0
    factorizations: int = 0

    def bump(self, name: str, value: int = 1) -> None:
        """Increment one counter, mirroring it into the telemetry
        registry (``eval_cache/<name>``) so traces always agree with
        the stats object."""
        setattr(self, name, getattr(self, name) + value)
        counter_add(f"eval_cache/{name}", value)

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


class _PolicyStructure:
    """Reward-independent artifacts of one policy: the induced matrix,
    its evaluation-system LU factorization and the stationary
    distribution.  Shareable between MDPs that differ only in reward
    channels."""

    __slots__ = ("policy", "p_pi", "start", "_lu", "_pi")

    def __init__(self, policy: np.ndarray, p_pi: sparse.csr_matrix,
                 start: int) -> None:
        self.policy = policy
        self.p_pi = p_pi
        self.start = start
        self._lu = None
        self._pi: Optional[np.ndarray] = None

    def lu(self, stats: EvalCacheStats):
        if self._lu is None:
            n = self.p_pi.shape[0]
            eye = sparse.identity(n, format="csr")
            ones = sparse.csr_matrix(np.ones((n, 1)))
            pin = sparse.csr_matrix(
                (np.ones(1), (np.zeros(1, dtype=int),
                              np.array([self.start]))), shape=(1, n))
            top = sparse.hstack([eye - self.p_pi, ones], format="csr")
            bottom = sparse.hstack([pin, sparse.csr_matrix((1, 1))],
                                   format="csr")
            system = sparse.vstack([top, bottom], format="csc")
            try:
                # COLAMD ordering factors the 30k-state evaluation
                # systems ~1.7x faster than SuperLU's default.
                self._lu = sla.splu(system, permc_spec="COLAMD")
            except Exception as exc:
                raise SolverError(
                    f"policy evaluation failed: {exc}") from exc
            stats.bump("factorizations")
        return self._lu

    def gain_bias(self, r_pi: np.ndarray,
                  stats: EvalCacheStats) -> Tuple[float, np.ndarray]:
        n = self.p_pi.shape[0]
        rhs = np.concatenate([r_pi, [0.0]])
        solution = self.lu(stats).solve(rhs)
        if not np.all(np.isfinite(solution)):
            raise SolverError(
                "policy evaluation produced non-finite values; the policy "
                "is likely multichain (start state unreachable)")
        return float(solution[n]), solution[:n]

    def stationary(self, stats: EvalCacheStats) -> np.ndarray:
        if self._pi is None:
            stats.bump("stationary_misses")
            n = self.p_pi.shape[0]
            rhs = np.zeros(n + 1)
            rhs[n] = 1.0
            solution = self.lu(stats).solve(rhs, trans="T")
            # Verify the residual of the normalized solution: an LU of
            # a (near-)singular evaluation system -- a multichain
            # policy -- can return finite garbage that `isfinite`
            # alone would accept.
            from repro.mdp.stationary import _check_stationary_residual
            self._pi = _check_stationary_residual(
                solution[:n], self.p_pi,
                f"policy stationary (start={self.start})")
        else:
            stats.bump("stationary_hits")
        return self._pi


class _PolicyEntry:
    """Cache record for one policy: shared structure plus the
    reward-dependent memos (channel gains, transformed-reward
    evaluations)."""

    __slots__ = ("structure", "gains", "evals")

    def __init__(self, structure: _PolicyStructure) -> None:
        self.structure = structure
        self.gains: Dict[str, float] = {}
        self.evals: "OrderedDict[bytes, Tuple[float, np.ndarray]]" = \
            OrderedDict()


class PolicyEvalCache:
    """Per-MDP memoization of policy evaluations, keyed by
    ``policy.tobytes()``.

    Cached per policy:

    - the induced transition matrix ``P_pi`` (row-sliced off the
      Bellman stack) and the LU factorization of the average-reward
      evaluation system -- *reward-independent*;
    - the stationary distribution (one transposed triangular solve on
      the same factorization) -- *reward-independent*;
    - per-channel gains ``pi . r_pi`` and (gain, bias) pairs per
      transformed reward -- *reward-dependent*, dropped by
      :meth:`invalidate_rewards`.

    The reward-dependent memos key transformed rewards by a digest of
    the combined ``(A, N)`` array, which is what makes Dinkelbach's
    re-evaluation of the incumbent policy at the converged ``rho`` (and
    the final ``policy_gains`` reporting pass) hit instead of
    re-factorizing.
    """

    def __init__(self, mdp, max_policies: int = POLICY_CACHE_SIZE) -> None:
        self._mdp = mdp
        self._max = int(max_policies)
        self._entries: "OrderedDict[bytes, _PolicyEntry]" = OrderedDict()
        self.stats = EvalCacheStats()

    # -- entry management ---------------------------------------------

    def _entry(self, policy: np.ndarray) -> _PolicyEntry:
        policy = np.asarray(policy, dtype=int)
        key = policy.tobytes()
        entry = self._entries.get(key)
        if entry is not None:
            self.stats.bump("policy_hits")
            self._entries.move_to_end(key)
            return entry
        self.stats.bump("policy_misses")
        p_pi = self._mdp.kernel().policy_matrix(policy)
        entry = _PolicyEntry(_PolicyStructure(policy.copy(), p_pi,
                                              self._mdp.start))
        self._entries[key] = entry
        while len(self._entries) > self._max:
            self._entries.popitem(last=False)
        return entry

    def __len__(self) -> int:
        return len(self._entries)

    # -- evaluations --------------------------------------------------

    def evaluate(self, policy: np.ndarray,
                 reward: np.ndarray) -> Tuple[float, np.ndarray]:
        """Gain and bias of ``policy`` under a precombined ``(A, N)``
        reward array (the cached engine behind
        :func:`repro.mdp.policy_iteration.evaluate_policy`)."""
        entry = self._entry(policy)
        reward = np.asarray(reward, dtype=float)
        memo_key = reward.tobytes()
        hit = entry.evals.get(memo_key)
        if hit is not None:
            self.stats.bump("eval_hits")
            entry.evals.move_to_end(memo_key)
            gain, bias = hit
            return gain, bias.copy()
        self.stats.bump("eval_misses")
        r_pi = reward[entry.structure.policy,
                      np.arange(self._mdp.n_states)]
        gain, bias = entry.structure.gain_bias(r_pi, self.stats)
        entry.evals[memo_key] = (gain, bias)
        while len(entry.evals) > EVAL_MEMO_SIZE:
            entry.evals.popitem(last=False)
        return gain, bias.copy()

    def stationary(self, policy: np.ndarray) -> np.ndarray:
        """Stationary distribution of the policy-induced chain."""
        return self._entry(policy).structure.stationary(self.stats)

    def channel_gains(self, policy: np.ndarray,
                      channels: Optional[Iterable[str]] = None
                      ) -> Dict[str, float]:
        """Long-run per-step rate of each reward channel under
        ``policy`` (the cached engine behind
        :func:`repro.mdp.stationary.policy_gains`)."""
        entry = self._entry(policy)
        names = list(channels) if channels is not None \
            else self._mdp.channels
        missing = [n for n in names if n not in entry.gains]
        if missing:
            self.stats.bump("gain_misses", len(missing))
            pi = entry.structure.stationary(self.stats)
            states = np.arange(self._mdp.n_states)
            rows = entry.structure.policy, states
            for name in missing:
                r_pi = self._mdp.channel_reward(name)[rows]
                entry.gains[name] = float(pi.dot(r_pi))
        self.stats.bump("gain_hits", len(names) - len(missing))
        return {name: entry.gains[name] for name in names}

    # -- invalidation -------------------------------------------------

    def invalidate_rewards(self) -> None:
        """Drop every reward-dependent memo (channel gains and
        transformed-reward evaluations) while keeping the expensive
        reward-independent structure (``P_pi``, LU factorizations,
        stationary distributions).

        Call this if an MDP's reward channels are replaced in place;
        the reward-channel rebuild path of
        :func:`repro.core.attack_mdp.build_attack_mdp` uses
        :meth:`structure_view` instead, which achieves the same on a
        fresh MDP instance without mutating the source cache.
        """
        for entry in self._entries.values():
            entry.gains.clear()
            entry.evals.clear()

    def clear(self) -> None:
        """Drop everything."""
        self._entries.clear()

    def structure_view(self, mdp) -> "PolicyEvalCache":
        """A new cache for ``mdp`` (same transition structure,
        different reward channels) that shares this cache's per-policy
        structure artifacts but starts with empty reward memos."""
        view = PolicyEvalCache(mdp, max_policies=self._max)
        for key, entry in self._entries.items():
            view._entries[key] = _PolicyEntry(entry.structure)
        return view
