"""Howard policy iteration for undiscounted average-reward MDPs.

This is the library's workhorse solver.  All of the paper's models are
*unichain*: every stationary policy drives the system back to the base
state (block races always resolve), so a policy's gain is
state-independent and can be computed exactly from one sparse linear
solve of the evaluation equations::

    h = r_pi - g * 1 + P_pi h,     h[ref] = 0

Improvement picks ``argmax_a r(s, a) + P(s, a) . h`` with ties broken in
favour of the incumbent action, which guarantees termination.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

from repro.errors import SolverError
from repro.mdp.kernels import note_q_backups, q_backup_greedy
from repro.mdp.model import MDP
from repro.runtime.telemetry import counter_add, span

#: Improvement tolerance: an action must beat the incumbent by more than
#: this to trigger a policy change.
IMPROVE_TOL = 1e-11


@dataclass
class AverageRewardSolution:
    """Result of an average-reward solve.

    Attributes
    ----------
    gain:
        Optimal long-run average reward per step.
    bias:
        Bias (relative value) vector, normalized to 0 at the start state.
    policy:
        Optimal action index per state.
    iterations:
        Number of policy improvements (or value-iteration sweeps).
    """

    gain: float
    bias: np.ndarray
    policy: np.ndarray
    iterations: int


def evaluate_policy(mdp: MDP, policy: np.ndarray,
                    reward: np.ndarray) -> Tuple[float, np.ndarray]:
    """Exactly evaluate the gain and bias of ``policy`` for a
    precombined ``(A, N)`` reward array.

    Solves the (N+1)-dimensional linear system of the average-reward
    evaluation equations with the bias pinned to zero at the MDP's
    start state.  Assumes the policy is unichain.

    The solve runs through the MDP's
    :class:`~repro.mdp.kernels.PolicyEvalCache`: the system's LU
    factorization depends only on the policy, so re-evaluating the same
    policy under a different (e.g. Dinkelbach-transformed) reward costs
    two triangular solves instead of a fresh factorization.
    """
    policy = np.asarray(policy, dtype=int)
    return mdp.eval_cache().evaluate(policy, reward)


def _default_policy(mdp: MDP) -> np.ndarray:
    """First available action in each state."""
    return np.asarray(mdp.available.argmax(axis=0), dtype=int)


def policy_iteration(mdp: MDP, reward: np.ndarray,
                     initial_policy: Optional[np.ndarray] = None,
                     max_iter: int = 1000,
                     on_iter: Optional[Callable[[int], None]] = None
                     ) -> AverageRewardSolution:
    """Solve an average-reward MDP exactly by Howard policy iteration.

    ``on_iter`` (if given) is called with the iteration number before
    each evaluation/improvement round; a budget supervisor can raise
    from it to abort a runaway solve (see :mod:`repro.runtime.budget`).
    """
    reward = np.asarray(reward, dtype=float)
    if initial_policy is None:
        policy = _default_policy(mdp)
    else:
        policy = np.asarray(initial_policy, dtype=int).copy()
        if not mdp.valid_policy(policy):
            raise SolverError("initial policy selects unavailable actions")
    states = np.arange(mdp.n_states)
    backups = 0
    iterations = 0
    try:
        with span("solve/average/policy-iteration"):
            for it in range(1, max_iter + 1):
                if on_iter is not None:
                    on_iter(it)
                iterations = it
                gain, bias = evaluate_policy(mdp, policy, reward)
                backups += 1
                q, best, greedy = q_backup_greedy(mdp, reward, bias)
                incumbent = q[policy, states]
                improvable = best > incumbent + IMPROVE_TOL
                if not improvable.any():
                    counter_add("solver/pi/solves")
                    return AverageRewardSolution(gain=gain, bias=bias,
                                                 policy=policy,
                                                 iterations=it)
                policy = policy.copy()
                policy[improvable] = greedy[improvable]
    finally:
        # One flush per solve instead of two bumps per improvement
        # round: merged totals are identical, the inner loop loses the
        # registry lookups.
        counter_add("solver/pi/iterations", iterations)
        note_q_backups(backups)
    raise SolverError(f"policy iteration did not converge in {max_iter} "
                      "improvements")
