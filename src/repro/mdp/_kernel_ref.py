"""Loop-style reference kernels behind the compiled compute backend.

Every function here is written in the restricted "array in, array out"
style that ``numba.njit`` compiles directly: plain Python loops over
raw CSR arrays, no objects, no dicts, no fancy indexing.  The same
source serves two backends (see :mod:`repro.mdp.backends`):

- the ``numba`` backend JIT-compiles these functions on first use
  (``fastmath`` stays **off** -- bit-identical results are a contract,
  not a goal);
- the ``reference`` backend runs them uncompiled, which is what lets
  the differential test suite prove bit-identity against the vectorized
  numpy implementations even on machines without numba installed.

Bit-identity holds by construction, not luck: each loop performs the
same floating-point operations in the same order as its numpy twin.

- ``q_values`` / ``q_backup_max`` / ``q_backup_greedy`` accumulate each
  CSR row dot-product left to right -- exactly the order scipy's
  ``csr_matvec`` uses -- then apply ``discount`` and add the reward in
  the same sequence as ``q *= discount; q += reward``.
- ``argmax`` resolves ties to the first maximizer, like
  ``np.argmax(axis=0)``.  Values are assumed NaN-free (the solvers
  mask unavailable pairs to ``-inf``, never NaN).
- ``advance_cdf`` counts cumulative entries ``<= u``; because the
  capped cumulative rows are nondecreasing it may stop at the first
  entry ``> u`` without changing the count.
- ``advance_alias`` reproduces the vectorized draw scalar for scalar:
  ``x = u * K``, slot ``floor(x)``, accept coin ``x - floor(x)``.
"""

from __future__ import annotations

import numpy as np

#: Names of the kernels a backend implementation must provide, in the
#: order :func:`repro.mdp._numba_backend.load_kernels` compiles them.
KERNEL_NAMES = ("q_values", "q_backup_max", "q_backup_greedy",
                "q_backup_states", "extract_rows", "advance_cdf",
                "advance_alias")


def q_values(indptr, indices, data, reward, values, discount,
             available):
    """The ``(A, N)`` action-value array of one Bellman backup.

    ``q[a, s] = reward[a, s] + discount * P_a[s] . values`` with
    unavailable pairs masked to ``-inf``; row ``a * N + s`` of the CSR
    stack is the transition row of ``(s, a)``.
    """
    n_actions, n_states = reward.shape
    q = np.empty((n_actions, n_states))
    for a in range(n_actions):
        base = a * n_states
        for s in range(n_states):
            if not available[a, s]:
                q[a, s] = -np.inf
                continue
            acc = 0.0
            for jj in range(indptr[base + s], indptr[base + s + 1]):
                acc += data[jj] * values[indices[jj]]
            if discount != 1.0:
                acc *= discount
            q[a, s] = acc + reward[a, s]
    return q


def q_backup_max(indptr, indices, data, reward, values, discount,
                 available):
    """Fused backup + column max + first-maximizer argmax.

    Returns ``(best, policy)`` equal bit-for-bit to
    ``(q.max(axis=0), q.argmax(axis=0))`` of :func:`q_values`, without
    materializing the ``(A, N)`` intermediate.
    """
    n_actions, n_states = reward.shape
    best = np.empty(n_states)
    policy = np.zeros(n_states, dtype=np.int64)
    for s in range(n_states):
        top = -np.inf
        top_a = 0
        for a in range(n_actions):
            if available[a, s]:
                acc = 0.0
                row = a * n_states + s
                for jj in range(indptr[row], indptr[row + 1]):
                    acc += data[jj] * values[indices[jj]]
                if discount != 1.0:
                    acc *= discount
                v = acc + reward[a, s]
            else:
                v = -np.inf
            if v > top:
                top = v
                top_a = a
        best[s] = top
        policy[s] = top_a
    return best, policy


def q_backup_greedy(indptr, indices, data, reward, values, discount,
                    available):
    """Fused backup returning ``(q, best, policy)`` in one pass.

    The full ``(A, N)`` array is materialized (policy iteration needs
    the incumbent's action values) but max and argmax ride along for
    free instead of costing two extra passes.
    """
    n_actions, n_states = reward.shape
    q = np.empty((n_actions, n_states))
    best = np.empty(n_states)
    policy = np.zeros(n_states, dtype=np.int64)
    for s in range(n_states):
        top = -np.inf
        top_a = 0
        for a in range(n_actions):
            if available[a, s]:
                acc = 0.0
                row = a * n_states + s
                for jj in range(indptr[row], indptr[row + 1]):
                    acc += data[jj] * values[indices[jj]]
                if discount != 1.0:
                    acc *= discount
                v = acc + reward[a, s]
            else:
                v = -np.inf
            q[a, s] = v
            if v > top:
                top = v
                top_a = a
        best[s] = top
        policy[s] = top_a
    return q, best, policy


def q_backup_states(indptr, indices, data, reward, values, states,
                    discount, available):
    """Subset variant of :func:`q_backup_max`: fused backup + max +
    first-maximizer argmax over the given ``states`` only.

    Returns ``(best, policy)`` arrays of length ``len(states)``, equal
    bit-for-bit to ``q_backup_max(...)`` sliced at ``states`` -- same
    left-to-right row accumulation, same discount-then-reward order,
    same tie-break.  This is the prioritized-sweeping kernel: the
    asynchronous engine backs up only the high-residual states it
    popped off the priority queue.
    """
    n_actions, n_states = reward.shape
    k = states.shape[0]
    best = np.empty(k)
    policy = np.zeros(k, dtype=np.int64)
    for i in range(k):
        s = states[i]
        top = -np.inf
        top_a = 0
        for a in range(n_actions):
            if available[a, s]:
                acc = 0.0
                row = a * n_states + s
                for jj in range(indptr[row], indptr[row + 1]):
                    acc += data[jj] * values[indices[jj]]
                if discount != 1.0:
                    acc *= discount
                v = acc + reward[a, s]
            else:
                v = -np.inf
            if v > top:
                top = v
                top_a = a
        best[i] = top
        policy[i] = top_a
    return best, policy


def extract_rows(indptr, indices, data, rows):
    """Row-sliced CSR arrays: ``(out_indptr, out_indices, out_data)``
    of ``stack[rows]``, copying each selected row's slice verbatim
    (data values, index order and dtypes all preserved)."""
    n_rows = rows.shape[0]
    out_indptr = np.zeros(n_rows + 1, dtype=indptr.dtype)
    total = 0
    for i in range(n_rows):
        total += indptr[rows[i] + 1] - indptr[rows[i]]
        out_indptr[i + 1] = total
    out_indices = np.empty(total, dtype=indices.dtype)
    out_data = np.empty(total, dtype=data.dtype)
    pos = 0
    for i in range(n_rows):
        for jj in range(indptr[rows[i]], indptr[rows[i] + 1]):
            out_indices[pos] = indices[jj]
            out_data[pos] = data[jj]
            pos += 1
    return out_indptr, out_indices, out_data


def advance_cdf(cum_capped, cols, states, uniforms, history, m):
    """Advance all trajectories ``m`` steps in place (``"cdf"`` draw),
    recording pre-transition states in ``history``.

    The successor slot is the count of capped cumulative entries
    ``<= u`` -- identical to the vectorized
    ``(cum_capped[states] <= u).sum(axis=1)``; the rows are
    nondecreasing, so the scan stops at the first entry ``> u``.
    """
    n_traj = states.shape[0]
    width = cum_capped.shape[1]
    for i in range(m):
        for b in range(n_traj):
            s = states[b]
            history[i, b] = s
            u = uniforms[i, b]
            j = 0
            while j < width and cum_capped[s, j] <= u:
                j += 1
            states[b] = cols[s, j]


def advance_alias(accept, accept_col, alias_col, states, uniforms,
                  history, m):
    """Advance all trajectories ``m`` steps in place (``"alias"``
    draw), recording pre-transition states in ``history``.

    One uniform per step: ``x = u * K`` picks slot ``floor(x)`` and
    reuses the fractional part as the accept/redirect coin -- the same
    scalar expressions as the vectorized
    :func:`repro.mdp.simulate.advance_states`.
    """
    n_traj = states.shape[0]
    width = accept.shape[1]
    for i in range(m):
        for b in range(n_traj):
            s = states[b]
            history[i, b] = s
            x = uniforms[i, b] * width
            j = int(x)
            frac = x - j
            if frac < accept[s, j]:
                states[b] = accept_col[s, j]
            else:
                states[b] = alias_col[s, j]
