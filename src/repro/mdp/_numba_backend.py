"""Import-guarded numba JIT layer of the compiled compute backend.

This module is the only place that imports numba, and the import is
wrapped: machines without numba (the base CI jobs, minimal installs)
still import everything else unchanged, and
:func:`repro.mdp.backends.set_backend` degrades to the numpy backend
with a warning instead of failing.

:func:`load_kernels` compiles the reference kernels of
:mod:`repro.mdp._kernel_ref` with ``numba.njit`` -- ``fastmath`` off
and ``nogil`` on, so compiled results stay bit-identical to the numpy
path while releasing the GIL inside the hot loops.  Compilation is
lazy (first backend use) and cached per process; a compilation failure
is reported as :class:`BackendUnavailable` so the caller can fall back
gracefully rather than crash a sweep mid-flight.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

try:  # pragma: no cover - exercised only where numba is installed
    import numba
    NUMBA_VERSION: Optional[str] = numba.__version__
except ImportError:  # pragma: no cover - the default in bare installs
    numba = None
    NUMBA_VERSION = None


class BackendUnavailable(RuntimeError):
    """Raised when the numba backend cannot be constructed (numba
    missing or JIT compilation failed); callers degrade to numpy."""


_KERNELS: Optional[Dict[str, Callable]] = None
_COMPILE_SECONDS: float = 0.0


def numba_available() -> bool:
    """Whether the numba package imported successfully."""
    return numba is not None


def compile_seconds() -> float:
    """Wall time spent JIT-compiling kernels in this process."""
    return _COMPILE_SECONDS


def load_kernels() -> Dict[str, Callable]:
    """Compile (once per process) and return the jitted kernels.

    Returns a name -> callable mapping over
    :data:`repro.mdp._kernel_ref.KERNEL_NAMES`.  Raises
    :class:`BackendUnavailable` when numba is missing or ``njit``
    rejects a kernel (e.g. an unsupported numba/numpy pairing).
    """
    global _KERNELS, _COMPILE_SECONDS
    if _KERNELS is not None:
        return _KERNELS
    if numba is None:
        raise BackendUnavailable(
            "numba is not installed; install numba or use the numpy "
            "backend")
    from repro.mdp import _kernel_ref as ref
    started = time.perf_counter()
    try:
        jit = numba.njit(cache=False, fastmath=False, nogil=True)
        _KERNELS = {name: jit(getattr(ref, name))
                    for name in ref.KERNEL_NAMES}
    except Exception as exc:  # pragma: no cover - env-specific
        raise BackendUnavailable(
            f"numba JIT compilation failed: {exc}") from exc
    _COMPILE_SECONDS = time.perf_counter() - started
    return _KERNELS
