"""Finite-horizon backward induction.

The average-reward solvers answer "what does a perpetual attack earn
per block?"; backward induction answers "what does an attack lasting T
blocks earn in total?" -- relevant because real attacks end (merchants
raise confirmation counts, clients patch, the paper's Section 6.1
discussion of attack likelihood).  Rewards are undiscounted and the
policy is time-dependent (an optimal attacker behaves differently near
the deadline: no point opening a race it cannot finish).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SolverError
from repro.mdp.kernels import note_q_backups, q_backup_max
from repro.mdp.model import MDP


@dataclass
class FiniteHorizonSolution:
    """Result of a backward-induction solve.

    Attributes
    ----------
    horizon:
        Number of steps solved.
    values:
        ``(horizon + 1, N)`` array: ``values[t, s]`` is the optimal
        total reward collectable in the remaining ``t`` steps from
        state ``s``.
    policies:
        ``(horizon, N)`` int array: ``policies[t]`` is the optimal
        action with ``t + 1`` steps remaining.
    """

    horizon: int
    values: np.ndarray
    policies: np.ndarray
    start_index: int

    @property
    def start_value(self) -> float:
        """Optimal total reward from the MDP's start state -- callers
        divide by the horizon for a per-block figure."""
        return float(self.values[self.horizon, self.start_index])

    def value_from(self, mdp: MDP, state_key) -> float:
        """Optimal total reward from a given start state."""
        return float(self.values[self.horizon, mdp.state_index(state_key)])


def backward_induction(mdp: MDP, reward: np.ndarray,
                       horizon: int) -> FiniteHorizonSolution:
    """Solve the undiscounted finite-horizon problem exactly.

    Note the returned ``values`` are indexed by *steps remaining*, and
    ``values[t, mdp.start]`` is at index ``[horizon, start]`` for the
    full-horizon answer (exposed as :attr:`FiniteHorizonSolution.start_value`).
    """
    if horizon < 1:
        raise SolverError("horizon must be at least 1")
    reward = np.asarray(reward, dtype=float)
    n = mdp.n_states
    values = np.zeros((horizon + 1, n))
    policies = np.zeros((horizon, n), dtype=int)
    for t in range(1, horizon + 1):
        best, greedy = q_backup_max(mdp, reward, values[t - 1])
        values[t] = best
        policies[t - 1] = greedy
    note_q_backups(horizon)
    return FiniteHorizonSolution(horizon=horizon, values=values,
                                 policies=policies, start_index=mdp.start)
