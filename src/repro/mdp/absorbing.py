"""Absorbing-chain analysis of a fixed policy.

Given a policy and a set of *absorbing* states, this module computes --
exactly, via the fundamental matrix ``N = (I - Q)^-1`` of the transient
block -- the absorption probabilities, the expected number of steps to
absorption, and the expected reward accumulated per channel on the way.

The attack analysis uses it to answer per-race questions the long-run
gains cannot: "when Alice opens a fork, how likely is Chain 2 to win,
and how many blocks does the race burn?" (Section 4's narrative,
:mod:`repro.core.race_analysis`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Sequence

import numpy as np
from scipy import sparse
from scipy.sparse import linalg as sla

from repro.errors import SolverError
from repro.mdp.model import MDP


@dataclass
class AbsorptionResult:
    """Absorbing-chain statistics from one start state.

    Attributes
    ----------
    absorption_probability:
        Absorbing state key -> probability of being absorbed there.
    expected_steps:
        Expected transitions until absorption.
    expected_rewards:
        Channel name -> expected accumulated reward until absorption
        (including the reward of the absorbing transition).
    """

    absorption_probability: Dict[Hashable, float]
    expected_steps: float
    expected_rewards: Dict[str, float]


def absorbing_analysis(mdp: MDP, policy: np.ndarray,
                       absorbing: Sequence[Hashable],
                       start: Hashable) -> AbsorptionResult:
    """Analyze ``policy`` with the given states made absorbing.

    ``start`` must be a transient (non-absorbing) state; rewards earned
    on transitions *into* absorbing states are counted.
    """
    policy = np.asarray(policy, dtype=int)
    absorbing_idx = {mdp.state_index(k) for k in absorbing}
    start_idx = mdp.state_index(start)
    if start_idx in absorbing_idx:
        raise SolverError("start state must be transient")

    transient = np.array([i for i in range(mdp.n_states)
                          if i not in absorbing_idx], dtype=int)
    pos = {int(s): j for j, s in enumerate(transient)}
    p_pi = mdp.policy_matrix(policy).tocsr()

    q = p_pi[transient][:, transient]
    r_to_abs = p_pi[transient][:, sorted(absorbing_idx)]
    n_t = len(transient)
    eye = sparse.identity(n_t, format="csc")
    try:
        lu = sla.splu(sparse.csc_matrix(eye - q))
    except Exception as exc:  # pragma: no cover - singular only if the
        raise SolverError(                 # chain cannot be absorbed
            f"transient block is singular (absorption not certain): "
            f"{exc}") from exc

    e_start = np.zeros(n_t)
    e_start[pos[start_idx]] = 1.0
    # Expected visits to each transient state starting from `start`:
    # row of N = e_start^T (I - Q)^-1, via the transposed solve.
    visits = lu.solve(e_start, trans="T")
    if visits.min() < -1e-9:
        raise SolverError("negative expected visits; inputs inconsistent")

    expected_steps = float(visits.sum())
    abs_keys = [mdp.state_keys[i] for i in sorted(absorbing_idx)]
    abs_probs = visits @ r_to_abs
    absorption = {k: float(p) for k, p in zip(abs_keys, abs_probs)}

    rewards = {}
    for name in mdp.channels:
        r_pi = mdp.policy_reward(policy, mdp.channel_reward(name))
        rewards[name] = float(visits @ r_pi[transient])
    return AbsorptionResult(absorption_probability=absorption,
                            expected_steps=expected_steps,
                            expected_rewards=rewards)
