"""Monte-Carlo rollouts of a fixed policy on an MDP.

Used to cross-validate the exact solvers: sampling the induced Markov
chain and averaging each reward channel must agree with the stationary
gains within sampling error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.errors import SimulationError
from repro.mdp.model import MDP


@dataclass
class RolloutResult:
    """Accumulated channel totals from a rollout.

    Attributes
    ----------
    steps:
        Number of transitions sampled.
    totals:
        Channel name -> accumulated reward.
    visits:
        State visit counts (post-transition).
    """

    steps: int
    totals: Dict[str, float]
    visits: np.ndarray = field(repr=False)

    def rate(self, channel: str) -> float:
        """Average per-step rate of a channel."""
        return self.totals[channel] / self.steps

    def ratio(self, num: str, den: str) -> float:
        """Ratio of two channel totals."""
        if self.totals[den] == 0:
            raise SimulationError(f"channel {den!r} accumulated zero")
        return self.totals[num] / self.totals[den]


def rollout(mdp: MDP, policy: np.ndarray, steps: int,
            rng: Optional[np.random.Generator] = None,
            start: Optional[int] = None) -> RolloutResult:
    """Sample ``steps`` transitions following ``policy``.

    Rewards are accrued as the *expected* per-(state, action) channel
    rewards (the randomness sampled is the state trajectory), which is
    unbiased for long-run rates and lowers variance.
    """
    if rng is None:
        rng = np.random.default_rng()
    policy = np.asarray(policy, dtype=int)
    if not mdp.valid_policy(policy):
        raise SimulationError("policy selects unavailable actions")
    state = mdp.start if start is None else int(start)

    # Pre-extract row structure for fast sampling.
    rows = []
    for s in range(mdp.n_states):
        a = policy[s]
        mat = mdp.transition[a]
        lo, hi = mat.indptr[s], mat.indptr[s + 1]
        cols = mat.indices[lo:hi]
        probs = mat.data[lo:hi]
        rows.append((cols, np.cumsum(probs / probs.sum())))
    channel_rewards = {name: mdp.rewards[name][policy,
                                               np.arange(mdp.n_states)]
                       for name in mdp.channels}

    visits = np.zeros(mdp.n_states, dtype=np.int64)
    uniforms = rng.random(steps)
    for i in range(steps):
        visits[state] += 1
        cols, cum = rows[state]
        if len(cols) == 1:
            state = int(cols[0])
        else:
            j = int(np.searchsorted(cum, uniforms[i], side="right"))
            state = int(cols[min(j, len(cols) - 1)])
    totals = {name: float(visits.dot(channel_rewards[name]))
              for name in mdp.channels}
    return RolloutResult(steps=steps, totals=totals, visits=visits)
