"""Monte-Carlo rollouts of a fixed policy on an MDP.

Used to cross-validate the exact solvers: sampling the induced Markov
chain and averaging each reward channel must agree with the stationary
gains within sampling error.  Two samplers share one set of
per-state sampling tables (:class:`PolicyTables`, row-sliced off the
stacked Bellman kernel):

- :func:`rollout` -- the serial reference sampler, one trajectory,
  one Python-level step at a time.
- :func:`rollout_batch` -- the high-throughput engine: ``B``
  independent trajectories advance simultaneously with vectorized
  numpy gather/compare ops, consuming per-trajectory uniform streams
  in chunks.  With the default ``"cdf"`` method a batched trajectory
  is *bit-identical* to a serial one driven by the same generator;
  the ``"alias"`` method trades that equivalence for O(1) draws per
  step (Walker/Vose alias tables).

Memory is O(``n_traj * n_states``) regardless of step count: only
visit counts are accumulated, never trajectories.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.mdp import backends
from repro.mdp.model import MDP
from repro.runtime.telemetry import counter_add, gauge_set, span

#: Steps advanced per uniform-draw chunk in :func:`rollout_batch`.
#: Chunking only batches the random draws and the visit-count
#: scatter; it never changes the sampled trajectories.
DEFAULT_CHUNK = 4096

#: Sampling methods understood by :func:`rollout_batch`.
METHODS = ("cdf", "alias")


class PolicyTables:
    """Padded per-state sampling tables of a policy-induced chain.

    Rows come from :meth:`repro.mdp.kernels.BellmanKernel.policy_matrix`
    (the same fancy row slicing every solver uses), so probabilities
    are taken as-is from the validated MDP -- rows already sum to one
    and are *not* renormalized here.

    Attributes
    ----------
    cols:
        ``(N, K)`` successor state ids, zero-padded past ``nnz[s]``.
    cum:
        ``(N, K)`` inclusive cumulative probabilities; padding slots
        hold ``2.0`` so vectorized ``cum <= u`` counts only real
        entries.  The first ``nnz[s]`` entries of row ``s`` are
        float-identical to ``np.cumsum`` of the CSR row data.
    probs:
        ``(N, K)`` raw probabilities (padding 0), kept for alias-table
        construction and statistical tests.
    nnz:
        ``(N,)`` number of real successors per state.
    """

    def __init__(self, mdp: MDP, policy: np.ndarray) -> None:
        policy = np.asarray(policy, dtype=int)
        if not mdp.valid_policy(policy):
            raise SimulationError("policy selects unavailable actions")
        p_pi = mdp.kernel().policy_matrix(policy)
        n = mdp.n_states
        nnz = np.diff(p_pi.indptr)
        if (nnz == 0).any():
            s = int(np.flatnonzero(nnz == 0)[0])
            raise SimulationError(
                f"state {mdp.state_keys[s]!r} has no outgoing "
                "transitions under the policy")
        k = int(nnz.max())
        mask = np.arange(k)[None, :] < nnz[:, None]
        cols = np.zeros((n, k), dtype=np.intp)
        probs = np.zeros((n, k), dtype=float)
        cols[mask] = p_pi.indices
        probs[mask] = p_pi.data
        cum = np.cumsum(probs, axis=1)
        cum[~mask] = 2.0
        # Batched draws use a variant whose *last real* slot is also
        # capped to the sentinel: counting entries <= u then can never
        # exceed nnz - 1, so the per-step clamp disappears.  (The
        # count stays equal to the serial sampler's clamped
        # searchsorted because cum is nondecreasing: the last real
        # entry is <= u only when every earlier one is.)
        capped = cum.copy()
        capped[np.arange(n), nnz - 1] = 2.0
        self.policy = policy
        self.n_states = n
        self.width = k
        self.nnz = nnz
        self.cols = cols
        self.probs = probs
        self.cum = cum
        self.cum_capped = capped
        self._alias: Optional[tuple] = None
        # Per-state reward of each channel under the policy (what the
        # visit counts are dotted with).
        states = np.arange(n)
        self.channel_rewards: Dict[str, np.ndarray] = {
            name: mdp.rewards[name][policy, states]
            for name in mdp.channels}

    # -- alias tables (built on first use) ----------------------------

    def alias_tables(self):
        """Walker/Vose alias tables: ``(accept_prob, accept_col,
        alias_col)``, each ``(N, K)``.

        A draw takes one uniform: ``x = u * K`` selects slot
        ``j = floor(x)`` and reuses the fractional part ``x - j``
        (independent of ``j`` and itself uniform) as the
        accept/redirect coin.
        """
        if self._alias is None:
            n, k = self.probs.shape
            accept = np.ones((n, k), dtype=float)
            alias_slot = np.tile(np.arange(k, dtype=np.intp), (n, 1))
            scaled = self.probs * k
            for s in range(n):
                # Classic two-stack construction; zero-probability
                # padding slots enter `small` and always redirect.
                row = scaled[s].copy()
                small: List[int] = [i for i in range(k) if row[i] < 1.0]
                large: List[int] = [i for i in range(k) if row[i] >= 1.0]
                while small and large:
                    lo = small.pop()
                    hi = large.pop()
                    accept[s, lo] = row[lo]
                    alias_slot[s, lo] = hi
                    row[hi] -= 1.0 - row[lo]
                    (small if row[hi] < 1.0 else large).append(hi)
                for i in large + small:
                    accept[s, i] = 1.0
            rows = np.arange(n)[:, None]
            self._alias = (accept, self.cols.copy(),
                           self.cols[rows, alias_slot])
        return self._alias

    # -- worker shipping ----------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Everything needed to reconstruct these tables without the
        MDP, as plain arrays.

        Building tables is cheap; building *alias* tables is the O(N*K)
        Python loop above.  A parent process that will fan a rollout
        out to worker processes builds once, ships this dict through
        the task payload, and every worker rehydrates via
        :meth:`from_state` -- skipping both the model rebuild and the
        alias construction.  Alias tables are included only when
        already built (call :meth:`alias_tables` first to force them).
        """
        state = {
            "policy": self.policy,
            "n_states": self.n_states,
            "width": self.width,
            "nnz": self.nnz,
            "cols": self.cols,
            "probs": self.probs,
            "cum": self.cum,
            "cum_capped": self.cum_capped,
            "alias": self._alias,
            "channel_rewards": dict(self.channel_rewards),
        }
        return state

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "PolicyTables":
        """Rehydrate tables shipped by :meth:`state_dict` (bypasses
        ``__init__`` -- no MDP, no validation, no rebuild)."""
        tables = cls.__new__(cls)
        tables.policy = state["policy"]
        tables.n_states = state["n_states"]
        tables.width = state["width"]
        tables.nnz = state["nnz"]
        tables.cols = state["cols"]
        tables.probs = state["probs"]
        tables.cum = state["cum"]
        tables.cum_capped = state["cum_capped"]
        tables._alias = state["alias"]
        tables.channel_rewards = dict(state["channel_rewards"])
        return tables


def build_policy_tables(mdp: MDP, policy: np.ndarray) -> PolicyTables:
    """Build (or reuse via caller-side caching) the sampling tables of
    ``policy`` on ``mdp``."""
    return PolicyTables(mdp, policy)


def advance_states(tables: PolicyTables, states: np.ndarray,
                   uniforms: np.ndarray, method: str = "cdf"
                   ) -> np.ndarray:
    """Advance a vector of states by one transition each.

    ``uniforms`` supplies one draw per trajectory.  ``"cdf"``
    reproduces the serial sampler exactly (count of cumulative
    probabilities ``<= u``, clamped to the last real successor);
    ``"alias"`` does an O(1) alias-table draw per trajectory.
    """
    if method == "cdf":
        j = (tables.cum_capped[states] <= uniforms[:, None]).sum(axis=1)
        return tables.cols[states, j]
    if method == "alias":
        accept, accept_col, alias_col = tables.alias_tables()
        x = uniforms * tables.width
        j = x.astype(np.intp)
        frac = x - j
        take = frac < accept[states, j]
        return np.where(take, accept_col[states, j], alias_col[states, j])
    raise SimulationError(
        f"unknown sampling method {method!r}; expected one of {METHODS}")


@dataclass
class RolloutResult:
    """Accumulated channel totals from a rollout.

    Attributes
    ----------
    steps:
        Number of transitions sampled.
    totals:
        Channel name -> accumulated reward.
    visits:
        Pre-transition state occupancy counts: ``visits[s]`` is the
        number of steps that *started* in ``s`` (the start state is
        counted at step 0; the final post-transition state is not).
        This is the occupancy the reward dot-product needs, since
        rewards accrue per (state, action) pair at departure.
    """

    steps: int
    totals: Dict[str, float]
    visits: np.ndarray = field(repr=False)

    def rate(self, channel: str) -> float:
        """Average per-step rate of a channel."""
        return self.totals[channel] / self.steps

    def ratio(self, num: str, den: str) -> float:
        """Ratio of two channel totals."""
        if self.totals[den] == 0:
            raise SimulationError(f"channel {den!r} accumulated zero")
        return self.totals[num] / self.totals[den]


@dataclass
class BatchRolloutResult:
    """Accumulated per-trajectory channel totals from a batched
    rollout.

    Attributes
    ----------
    steps:
        Transitions sampled *per trajectory*.
    n_traj:
        Number of independent trajectories.
    totals:
        Channel name -> ``(n_traj,)`` accumulated reward per
        trajectory.
    visits:
        ``(n_traj, N)`` pre-transition occupancy counts (same
        semantics as :attr:`RolloutResult.visits`, per trajectory).
    """

    steps: int
    n_traj: int
    totals: Dict[str, np.ndarray]
    visits: np.ndarray = field(repr=False)

    @property
    def total_steps(self) -> int:
        """Total transitions sampled across all trajectories."""
        return self.steps * self.n_traj

    def rates(self, channel: str) -> np.ndarray:
        """Per-trajectory per-step rates of a channel."""
        return self.totals[channel] / self.steps

    def rate(self, channel: str) -> float:
        """Pooled per-step rate of a channel over all trajectories."""
        return float(self.totals[channel].sum()) / self.total_steps

    def trajectory(self, b: int) -> RolloutResult:
        """The ``b``-th trajectory repackaged as a serial result."""
        totals = {name: float(vals[b]) for name, vals in
                  self.totals.items()}
        return RolloutResult(steps=self.steps, totals=totals,
                             visits=self.visits[b])


def _spawn_rngs(n_traj: int, seed) -> List[np.random.Generator]:
    """One independent child generator per trajectory."""
    seq = seed if isinstance(seed, np.random.SeedSequence) \
        else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(n_traj)]


def _channel_total(visits: np.ndarray, r_pi: np.ndarray) -> float:
    """Channel total of one trajectory: visit counts dotted with the
    per-state policy rewards.  Serial and batched results both route
    through this exact expression (a float64 BLAS dot; the cast is
    exact for any realistic step count), which is what keeps them
    bit-identical given identical visit counts."""
    return float(visits.astype(np.float64).dot(r_pi))


def rollout(mdp: MDP, policy: np.ndarray, steps: int,
            rng: Optional[np.random.Generator] = None,
            start: Optional[int] = None,
            tables: Optional[PolicyTables] = None) -> RolloutResult:
    """Sample ``steps`` transitions following ``policy`` (serial
    reference sampler).

    Rewards are accrued as the *expected* per-(state, action) channel
    rewards (the randomness sampled is the state trajectory), which is
    unbiased for long-run rates and lowers variance.  Rows of a
    validated MDP already sum to one, so the sampling tables use the
    CSR probabilities as-is (no per-row renormalization).
    """
    if rng is None:
        rng = np.random.default_rng()
    if steps <= 0:
        raise SimulationError(f"steps must be positive, got {steps!r}")
    if tables is None:
        tables = PolicyTables(mdp, policy)
    state = mdp.start if start is None else int(start)

    # Unpack the padded tables into per-state (cols, cum) pairs once;
    # the per-step loop then only touches small 1-D arrays.
    rows = [(tables.cols[s, :tables.nnz[s]],
             tables.cum[s, :tables.nnz[s]])
            for s in range(tables.n_states)]

    visits = np.zeros(mdp.n_states, dtype=np.int64)
    uniforms = rng.random(steps)
    started = time.monotonic()
    with span("sim/rollout"):
        for i in range(steps):
            visits[state] += 1
            cols, cum = rows[state]
            if len(cols) == 1:
                state = int(cols[0])
            else:
                j = int(np.searchsorted(cum, uniforms[i], side="right"))
                state = int(cols[min(j, len(cols) - 1)])
    _note_steps(steps, time.monotonic() - started)
    totals = {name: _channel_total(visits, tables.channel_rewards[name])
              for name in mdp.channels}
    return RolloutResult(steps=steps, totals=totals, visits=visits)


def _note_steps(total_steps: int, elapsed: float) -> None:
    """Record sampler throughput telemetry (no-op when tracing is
    disabled; called once per rollout, never per step)."""
    counter_add("sim/rollout_steps", total_steps)
    if elapsed > 0:
        gauge_set("sim/steps_per_s", total_steps / elapsed)


def _advance_chunk(tables: PolicyTables, states: np.ndarray,
                   uniforms: np.ndarray, history: np.ndarray,
                   m: int, method: str) -> np.ndarray:
    """Advance all trajectories ``m`` steps, recording pre-transition
    states; returns the (possibly replaced) state buffer.

    Dispatches to the active compute backend
    (:mod:`repro.mdp.backends`).  Every backend samples identical
    states given identical uniforms -- chunking and backend choice
    affect speed only, never the trajectories (tested against repeated
    :func:`advance_states` calls).
    """
    backend = backends.active()
    if method == "cdf":
        return backend.advance_chunk_cdf(tables, states, uniforms,
                                         history, m)
    if method == "alias":
        return backend.advance_chunk_alias(tables, states, uniforms,
                                           history, m)
    raise SimulationError(
        f"unknown sampling method {method!r}; expected one of {METHODS}")


def _sample_visits(tables: PolicyTables, steps: int,
                   rngs: Sequence[np.random.Generator], first: int,
                   chunk: int, method: str, pooled: bool) -> np.ndarray:
    """Run the chunked batch sampler and return visit counts:
    ``(n_traj, N)`` per trajectory, or ``(N,)`` summed over
    trajectories when ``pooled`` (O(N) memory however long the run).
    """
    n = tables.n_states
    n_traj = len(rngs)
    states = np.full(n_traj, first, dtype=np.intp)
    size = n if pooled else n_traj * n
    visits_flat = np.zeros(size, dtype=np.int64)
    offsets = np.arange(n_traj, dtype=np.intp) * n

    done = 0
    uniforms = np.empty((chunk, n_traj), dtype=float)
    history = np.empty((chunk, n_traj), dtype=np.intp)
    while done < steps:
        m = min(chunk, steps - done)
        for b, gen in enumerate(rngs):
            uniforms[:m, b] = gen.random(m)
        states = _advance_chunk(tables, states, uniforms, history, m,
                                method)
        if pooled:
            flat = history[:m].reshape(-1)
        else:
            flat = (history[:m] + offsets[None, :]).reshape(-1)
        if 50 * m * n_traj >= size:
            # Dense chunk: one bincount over the whole table.
            visits_flat += np.bincount(flat, minlength=size)
        else:
            # Sparse chunk: scattering the samples one by one beats
            # allocating and summing a histogram of the full table.
            np.add.at(visits_flat, flat, 1)
        done += m
    return visits_flat if pooled else visits_flat.reshape(n_traj, n)


def _batch_args(mdp: MDP, policy: np.ndarray, steps: int, n_traj: int,
                seed, rngs, start, chunk: int, method: str,
                tables: Optional[PolicyTables]):
    """Shared argument validation of the batched entry points."""
    if steps <= 0:
        raise SimulationError(f"steps must be positive, got {steps!r}")
    if chunk <= 0:
        raise SimulationError(f"chunk must be positive, got {chunk!r}")
    if method not in METHODS:
        raise SimulationError(
            f"unknown sampling method {method!r}; expected one of "
            f"{METHODS}")
    if rngs is not None:
        n_traj = len(rngs)
    if n_traj <= 0:
        raise SimulationError(f"n_traj must be positive, got {n_traj!r}")
    if rngs is None:
        rngs = _spawn_rngs(n_traj, seed)
    if tables is None:
        tables = PolicyTables(mdp, policy)
    first = mdp.start if start is None else int(start)
    return rngs, tables, first


def rollout_batch(mdp: MDP, policy: np.ndarray, steps: int,
                  n_traj: int = 32, seed=0,
                  rngs: Optional[Sequence[np.random.Generator]] = None,
                  start: Optional[int] = None,
                  chunk: int = DEFAULT_CHUNK, method: str = "cdf",
                  tables: Optional[PolicyTables] = None
                  ) -> BatchRolloutResult:
    """Sample ``n_traj`` independent ``steps``-long trajectories
    simultaneously, keeping per-trajectory channel totals.

    Every trajectory owns a generator (``rngs``, or children spawned
    from ``seed``) and consumes one uniform per step from it -- the
    same stream a serial :func:`rollout` with that generator would
    consume, so with ``method="cdf"`` trajectory ``b`` is
    bit-identical to ``rollout(..., rng=rngs[b])``.  Uniform draws,
    transitions and visit-count scatters all happen in chunks of
    ``chunk`` steps with vectorized numpy ops; chunk size affects
    speed only, never the sampled states.

    Memory is O(``n_traj * n_states``); for throughput runs that only
    need pooled rates, :func:`rollout_pooled` drops that to
    O(``n_states``).
    """
    rngs, tables, first = _batch_args(mdp, policy, steps, n_traj, seed,
                                      rngs, start, chunk, method, tables)
    started = time.monotonic()
    with span("sim/rollout-batch"):
        visits = _sample_visits(tables, steps, rngs, first, chunk,
                                method, pooled=False)
    _note_steps(steps * len(rngs), time.monotonic() - started)
    n_traj = len(rngs)
    # One cast for the whole matrix; each row dot is then the same
    # BLAS call `_channel_total` makes for the serial sampler.
    visits_f = visits.astype(np.float64)
    totals = {name: np.array([float(visits_f[b].dot(r_pi))
                              for b in range(n_traj)])
              for name, r_pi in tables.channel_rewards.items()}
    return BatchRolloutResult(steps=steps, n_traj=n_traj, totals=totals,
                              visits=visits)


def rollout_pooled(mdp: MDP, policy: np.ndarray, steps: int,
                   n_traj: int = 32, seed=0,
                   rngs: Optional[Sequence[np.random.Generator]] = None,
                   start: Optional[int] = None,
                   chunk: int = DEFAULT_CHUNK, method: str = "cdf",
                   tables: Optional[PolicyTables] = None
                   ) -> RolloutResult:
    """Like :func:`rollout_batch` but pooling all trajectories into
    one :class:`RolloutResult` (``steps * n_traj`` total transitions).

    Trajectories are sampled identically to :func:`rollout_batch`
    (same seeds => same visit counts); only per-trajectory totals are
    dropped, so memory stays O(``n_states``) and very large batches
    (thousands of trajectories) become practical for pure-throughput
    work such as the ``sim-rollout`` benchmark.
    """
    rngs, tables, first = _batch_args(mdp, policy, steps, n_traj, seed,
                                      rngs, start, chunk, method, tables)
    started = time.monotonic()
    with span("sim/rollout-pooled"):
        visits = _sample_visits(tables, steps, rngs, first, chunk,
                                method, pooled=True)
    _note_steps(steps * len(rngs), time.monotonic() - started)
    totals = {name: _channel_total(visits, r_pi)
              for name, r_pi in tables.channel_rewards.items()}
    return RolloutResult(steps=steps * len(rngs), totals=totals,
                         visits=visits)
