"""Policy wrapper mapping state keys to action names."""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Tuple

import numpy as np

from repro.errors import MDPError
from repro.mdp.model import MDP


class Policy:
    """A deterministic stationary policy over a specific MDP."""

    def __init__(self, mdp: MDP, action_indices: np.ndarray) -> None:
        action_indices = np.asarray(action_indices, dtype=int)
        if action_indices.shape != (mdp.n_states,):
            raise MDPError("policy must assign one action per state")
        if (action_indices < 0).any() or \
                (action_indices >= mdp.n_actions).any():
            raise MDPError("action index out of range")
        if not mdp.valid_policy(action_indices):
            raise MDPError("policy selects an unavailable action")
        self.mdp = mdp
        self.action_indices = action_indices

    def action_for(self, key: Hashable) -> str:
        """Return the action name chosen in the state with ``key``."""
        return self.mdp.actions[self.action_indices[self.mdp.state_index(key)]]

    def as_dict(self) -> Dict[Hashable, str]:
        """Return the full state-key -> action-name mapping."""
        return {k: self.mdp.actions[a]
                for k, a in zip(self.mdp.state_keys, self.action_indices)}

    def differences(self, other: "Policy") -> List[Hashable]:
        """Return state keys where the two policies disagree."""
        if other.mdp is not self.mdp:
            raise MDPError("policies belong to different MDPs")
        mask = self.action_indices != other.action_indices
        return [self.mdp.state_keys[i] for i in np.flatnonzero(mask)]

    def describe(self, keys: Optional[Iterable[Hashable]] = None,
                 limit: int = 20) -> str:
        """Render a readable summary (first ``limit`` states by default)."""
        rows: List[Tuple[Hashable, str]] = []
        if keys is None:
            for k, a in zip(self.mdp.state_keys, self.action_indices):
                rows.append((k, self.mdp.actions[a]))
                if len(rows) >= limit:
                    break
        else:
            for k in keys:
                rows.append((k, self.action_for(k)))
        return "\n".join(f"{k!r}: {a}" for k, a in rows)
