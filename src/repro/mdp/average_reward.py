"""Relative value iteration for undiscounted average-reward MDPs.

This is the simple reference solver: iterate the Bellman operator and
renormalize by the value of a reference state; the gain is bracketed by
the min/max one-step change and the iteration stops when that bracket's
span falls below ``epsilon``.  An aperiodicity transformation (damping
factor ``tau``) guards against periodic chains.

For production solves prefer :func:`repro.mdp.policy_iteration.policy_iteration`,
which computes exact gains via sparse linear solves and converges in a
handful of iterations.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.errors import SolverError, SolverInputError
from repro.mdp.kernels import note_q_backups, q_backup_max
from repro.mdp.model import MDP
from repro.mdp.policy_iteration import AverageRewardSolution
from repro.runtime.telemetry import counter_add, gauge_set, span


def relative_value_iteration(mdp: MDP, reward: np.ndarray,
                             epsilon: float = 1e-9,
                             max_iter: int = 500_000,
                             tau: float = 0.9,
                             on_iter: Optional[Callable[[int], None]] = None,
                             v0: Optional[np.ndarray] = None
                             ) -> AverageRewardSolution:
    """Solve an average-reward MDP by relative value iteration.

    Parameters
    ----------
    mdp, reward:
        The model and a precombined ``(A, N)`` reward array.
    epsilon:
        Convergence threshold on the span of the one-step change (which
        brackets the optimal gain).
    tau:
        Damping factor of the aperiodicity transformation:
        ``h' = (1 - tau) * h + tau * T(h)``.  The transformed problem
        has gain ``tau * g``; the returned gain is rescaled.
    on_iter:
        Optional per-sweep hook for budget supervision.
    v0:
        Optional warm-start bias vector (e.g. the previous Dinkelbach
        iterate's bias); it is re-pinned at the reference state, so any
        additive offset is harmless.  Defaults to zeros.
    """
    if not 0 < tau <= 1:
        raise SolverError("tau must lie in (0, 1]")
    reward = np.asarray(reward, dtype=float)
    ref = mdp.start
    if v0 is None:
        h = np.zeros(mdp.n_states)
    else:
        h = np.asarray(v0, dtype=float)
        if h.shape != (mdp.n_states,):
            raise SolverInputError(
                f"v0 has shape {h.shape}, expected ({mdp.n_states},)")
        if not np.all(np.isfinite(h)):
            raise SolverInputError("v0 contains non-finite entries")
        h = h - h[ref]
        counter_add("solver/rvi/warm_starts")
    backups = 0
    try:
        with span("solve/average/rvi"):
            for it in range(1, max_iter + 1):
                if on_iter is not None:
                    on_iter(it)
                backups += 1
                t_h, greedy = q_backup_max(mdp, reward, h)
                new_h = (1.0 - tau) * h + tau * t_h
                diff = new_h - h
                width = diff.max() - diff.min()
                gain = diff[ref] / tau
                h = new_h - new_h[ref]
                if width < epsilon * tau:
                    policy = np.asarray(greedy, dtype=int)
                    counter_add("solver/rvi/sweeps", it)
                    counter_add("solver/rvi/solves")
                    gauge_set("solver/rvi/final_span", float(width))
                    return AverageRewardSolution(gain=float(gain),
                                                 bias=h, policy=policy,
                                                 iterations=it)
    finally:
        note_q_backups(backups)
    raise SolverError(
        f"relative value iteration did not converge in {max_iter} sweeps")
