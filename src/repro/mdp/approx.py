"""Approximate large-state engine: prioritized asynchronous value
iteration with certified a-posteriori error bounds.

The exact solvers (:mod:`repro.mdp.policy_iteration`, the LP) factorize
an ``(N+1)``-dimensional linear system per candidate policy, which caps
the lookahead/fork-length truncation of the paper's attack MDPs.  This
module trades per-iteration exactness for scalability while staying
*provably honest*: every :class:`ApproxSolution` carries a certified
suboptimality bound derived from quantities the solve already computed.

Algorithm
---------
A damped (aperiodicity-transformed) asynchronous value iteration over
the stacked CSR kernel:

1. **Full sweeps** apply the damped Bellman operator
   ``T_tau(h) = (1 - tau) h + tau T(h)`` to every state, refresh the
   per-state Bellman residuals ``|T_tau(h) - h|`` and test convergence
   on the residual span (exactly like
   :func:`repro.mdp.average_reward.relative_value_iteration`).
2. **Prioritized rounds** between full sweeps pop the highest-residual
   states off a Bellman-residual priority queue and back up only those
   (the ``q_backup_states`` subset kernel), updating values in place so
   later pops see earlier results -- the classic prioritized-sweeping
   acceleration restricted to the states that still matter.

The prioritized rounds are a heuristic acceleration with no
average-reward convergence guarantee, so the engine self-monitors:
pure damped sweeps are span-nonexpansive, hence a residual span that
*grew* between two full sweeps can only have been caused by the
asynchronous rounds in between.  On the first such regression the
engine rolls back to the last full-sweep iterate and degrades to plain
damped RVI (counted in ``solver/approx/degraded``), which does
converge -- the acceleration can cost sweeps, never correctness.

A-posteriori bound
------------------
For *any* value vector ``h``, the one-step change
``d = T_tau(h) - h = tau (T(h) - h)`` brackets the optimal gain of a
weakly-communicating MDP: ``min(d)/tau <= g* <= max(d)/tau``.  On
termination the engine exactly evaluates the final greedy policy
``pi`` through the LU-backed :class:`~repro.mdp.kernels.PolicyEvalCache`
(one factorization, reward-independent and cached), giving an
achievable gain ``g_pi <= g*``.  Hence

    ``0 <= g* - g_pi <= max(d)/tau - g_pi =: bound``

is a certificate computed entirely a posteriori: the reported ``gain``
is *exact for the returned policy* and the true optimum exceeds it by
at most ``bound``.  With ``certify=False`` the engine skips the exact
evaluation and reports the RVI-style gain estimate ``d[ref]/tau`` with
the (still rigorous, but wider) bracket width ``span(d)/tau`` as the
bound.

State aggregation
-----------------
An optional ``partition`` map (state -> block id) builds an aggregated
model -- uniform intra-block weights, an action available on a block
iff it is available for **every** member -- solves it with a small
dense-ish RVI, and lifts the block values back to the full state space
as a warm start.  Aggregation only ever shapes the *starting point*;
the bound is always certified against the full model, so a bad
partition costs sweeps, never correctness.

Engine selection
----------------
The ``--engine`` CLI flag (``exact`` | ``approx``) mirrors the ratio
method registry: explicit :func:`set_engine` beats the ``REPRO_ENGINE``
environment variable beats the ``exact`` default.  The supervisor and
the direct ratio path only route through this engine when the model has
at least :data:`APPROX_MIN_STATES` states -- below the threshold exact
solvers are both faster and tighter, so approx defers to them.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np
from scipy import sparse

from repro.errors import SolverError, SolverInputError
from repro.mdp.kernels import note_q_backups, q_backup_max, \
    q_backup_states
from repro.mdp.model import MDP
from repro.mdp.policy_iteration import AverageRewardSolution, \
    evaluate_policy
from repro.runtime.telemetry import counter_add, gauge_set, span

#: Engine names accepted by :func:`set_engine` / ``--engine``.
ENGINE_NAMES = ("exact", "approx")

#: Environment variable consulted when no explicit engine is set (how
#: the CLI reaches spawned worker processes).
ENGINE_ENV = "REPRO_ENGINE"

#: Below this state count the supervisor and the ratio path ignore the
#: approx engine and keep the exact solvers: a sparse LU on a small
#: system beats thousands of damped sweeps, and its answer is exact.
APPROX_MIN_STATES = 100_000

#: The last explicitly-selected engine (beats the environment).
_engine: Optional[str] = None


def set_engine(name: str) -> str:
    """Select the process-global solve engine by name.

    Unknown names raise :class:`~repro.errors.SolverInputError`; the
    selection beats :data:`ENGINE_ENV` until :func:`reset_engine`.
    """
    global _engine
    if name not in ENGINE_NAMES:
        raise SolverInputError(
            f"unknown engine {name!r}; expected one of {ENGINE_NAMES}")
    _engine = name
    return name


def current_engine() -> str:
    """The engine the ratio path will use: explicit
    :func:`set_engine` > ``REPRO_ENGINE`` > ``"exact"``."""
    if _engine is not None:
        return _engine
    env = os.environ.get(ENGINE_ENV, "").strip()
    if env:
        if env not in ENGINE_NAMES:
            raise SolverInputError(
                f"{ENGINE_ENV}={env!r} names an unknown engine; "
                f"expected one of {ENGINE_NAMES}")
        return env
    return "exact"


def reset_engine() -> None:
    """Forget the explicit selection; the next
    :func:`current_engine` re-resolves from the environment.
    Intended for tests."""
    global _engine
    _engine = None


def engine_prefers_approx(mdp: MDP) -> bool:
    """Whether the current engine routes ``mdp`` to the approximate
    solver (``--engine approx`` *and* at least
    :data:`APPROX_MIN_STATES` states -- smaller models always take the
    exact path)."""
    return current_engine() == "approx" \
        and mdp.n_states >= APPROX_MIN_STATES


@dataclass
class ApproxSolution(AverageRewardSolution):
    """An :class:`~repro.mdp.policy_iteration.AverageRewardSolution`
    with the approximate engine's certificate attached.

    Attributes
    ----------
    bound:
        Certified suboptimality bound: the optimal gain exceeds
        ``gain`` by at most this much (see the module docstring for
        the derivation).
    sweeps:
        Number of full damped sweeps performed.
    queue_pops:
        Number of states popped off the Bellman-residual priority
        queue across all prioritized rounds.
    aggregated_states:
        Number of blocks of the aggregation warm start (0 when no
        partition was given).
    certified:
        Whether ``gain`` is the exact gain of ``policy`` (one LU-backed
        policy evaluation) rather than the RVI-style estimate.
    """

    bound: float = float("inf")
    sweeps: int = 0
    queue_pops: int = 0
    aggregated_states: int = 0
    certified: bool = True


def _validate_partition(mdp: MDP, partition) -> np.ndarray:
    part = np.asarray(partition, dtype=np.int64)
    if part.shape != (mdp.n_states,):
        raise SolverInputError(
            f"partition has shape {part.shape}, expected "
            f"({mdp.n_states},)")
    if part.size and part.min() < 0:
        raise SolverInputError("partition contains negative block ids")
    counts = np.bincount(part)
    if (counts == 0).any():
        missing = int(np.flatnonzero(counts == 0)[0])
        raise SolverInputError(
            f"partition block {missing} is empty; block ids must be "
            "contiguous from 0")
    return part


def _aggregate_warm_start(mdp: MDP, reward: np.ndarray,
                          part: np.ndarray, tau: float,
                          epsilon: float, max_iter: int = 20_000
                          ) -> Tuple[np.ndarray, int]:
    """Solve the block-aggregated model and lift its bias to the full
    state space.

    Aggregation uses uniform intra-block weights; an action is
    available on a block iff it is available for every member (so the
    aggregate never mixes defined and undefined rows).  Returns the
    lifted ``(N,)`` warm-start vector and the block count.
    """
    n, a = mdp.n_states, mdp.n_actions
    n_blocks = int(part.max()) + 1 if part.size else 0
    counts = np.bincount(part, minlength=n_blocks).astype(float)
    states = np.arange(n)
    # Indicator (N, B) and uniform-weight (B, N) membership matrices.
    ind = sparse.csr_matrix(
        (np.ones(n), (states, part)), shape=(n, n_blocks))
    lift = sparse.csr_matrix(
        (1.0 / counts[part], (part, states)), shape=(n_blocks, n))
    avail = np.empty((a, n_blocks), dtype=bool)
    for ai in range(a):
        member_avail = np.bincount(
            part, weights=mdp.available[ai], minlength=n_blocks)
        avail[ai] = member_avail == counts
    if not avail.any(axis=0).all():
        block = int(np.flatnonzero(~avail.any(axis=0))[0])
        raise SolverInputError(
            f"aggregation block {block} has no action available for "
            "all of its members; refine the partition")
    p_agg = [(lift @ mdp.transition[ai] @ ind).toarray()
             for ai in range(a)]
    r_agg = np.stack([lift @ reward[ai] for ai in range(a)])
    # Small damped RVI on the aggregate; convergence is best-effort --
    # the result is only a warm start, certified later on the full
    # model.
    ref = int(part[mdp.start])
    h = np.zeros(n_blocks)
    q = np.empty((a, n_blocks))
    for _ in range(max_iter):
        for ai in range(a):
            q[ai] = p_agg[ai].dot(h) + r_agg[ai]
        q[~avail] = -np.inf
        new_h = (1.0 - tau) * h + tau * q.max(axis=0)
        width = (new_h - h).max() - (new_h - h).min()
        h = new_h - new_h[ref]
        if width < epsilon * tau:
            break
    counter_add("solver/approx/agg_solves")
    return h[part], n_blocks


def approx_average_reward(mdp: MDP, reward: np.ndarray,
                          epsilon: float = 1e-8,
                          max_sweeps: int = 500_000,
                          tau: float = 0.9,
                          queue_fraction: float = 0.25,
                          full_every: int = 8,
                          partition=None,
                          v0: Optional[np.ndarray] = None,
                          certify: bool = True,
                          on_iter: Optional[Callable[[int], None]] = None
                          ) -> ApproxSolution:
    """Solve an average-reward MDP approximately, with a certificate.

    Parameters
    ----------
    mdp, reward:
        The model and a precombined ``(A, N)`` reward array.
    epsilon:
        Convergence threshold on the span of the one-step change of a
        full damped sweep (the same criterion as
        :func:`~repro.mdp.average_reward.relative_value_iteration`).
    max_sweeps:
        Budget on rounds (full sweeps + prioritized rounds combined).
    tau:
        Damping factor of the aperiodicity transformation.
    queue_fraction:
        Fraction of the state space popped per prioritized round (the
        highest-residual states).
    full_every:
        A full sweep every this many rounds; the rounds in between are
        prioritized subset backups.  ``full_every=1`` degenerates to
        plain damped RVI.
    partition:
        Optional ``(N,)`` block-id map enabling the aggregation warm
        start (see the module docstring).
    v0:
        Optional warm-start value vector (re-pinned at the reference
        state); mutually amplifying with ``partition`` -- an explicit
        ``v0`` wins.
    certify:
        Exactly evaluate the final greedy policy (one cached LU) so
        ``gain`` is exact-for-policy and ``bound`` is the tight
        ``max(d)/tau - gain`` certificate.  With ``False`` the gain is
        the RVI-style estimate and ``bound`` the full bracket width.
    on_iter:
        Optional per-round hook for budget supervision.
    """
    if not 0 < tau <= 1:
        raise SolverInputError("tau must lie in (0, 1]")
    if not 0 < queue_fraction <= 1:
        raise SolverInputError("queue_fraction must lie in (0, 1]")
    if full_every < 1:
        raise SolverInputError("full_every must be >= 1")
    if not epsilon > 0:
        raise SolverInputError("epsilon must be > 0")
    reward = np.asarray(reward, dtype=float)
    if reward.shape != (mdp.n_actions, mdp.n_states):
        raise SolverInputError(
            f"reward has shape {reward.shape}, expected "
            f"({mdp.n_actions}, {mdp.n_states})")
    n = mdp.n_states
    ref = mdp.start
    aggregated_states = 0
    if v0 is None and partition is not None:
        part = _validate_partition(mdp, partition)
        v0, aggregated_states = _aggregate_warm_start(
            mdp, reward, part, tau, epsilon)
    if v0 is None:
        h = np.zeros(n)
    else:
        h = np.asarray(v0, dtype=float)
        if h.shape != (n,):
            raise SolverInputError(
                f"v0 has shape {h.shape}, expected ({n},)")
        if not np.all(np.isfinite(h)):
            raise SolverInputError("v0 contains non-finite entries")
        h = h - h[ref]
        counter_add("solver/approx/warm_starts")
    # Bellman-residual priorities: per-state deviation of the damped
    # one-step change from the uniform drift ``d[ref]`` (raw ``|d|``
    # would never drain -- at the fixed point every state still moves
    # by ``tau * g`` per sweep).
    priority = np.full(n, np.inf)
    # Pop-at-most-once discipline: between two full sweeps each state
    # is backed up at most one extra time.  Re-popping the same states
    # against a frozen drift estimate amplifies the estimate's error
    # by the inverse leak rate of the popped subsystem -- an unstable
    # resonance; one pop per cycle bounds the error per cycle and the
    # next full sweep re-pins everything.
    updated = np.zeros(n, dtype=bool)
    pops_per_round = max(1, int(round(queue_fraction * n)))
    backups = 0
    sweeps = 0
    queue_pops = 0
    drift = 0.0
    d = None
    greedy = None
    converged = False
    force_full = True
    rounds = 0
    # Stability monitor.  Pure damped sweeps are span-nonexpansive, so
    # between two full sweeps the residual span can only grow if the
    # prioritized rounds in between expanded it -- asynchronous
    # average-reward backups are a heuristic acceleration with no
    # convergence guarantee (periodic chains can resonate).  On the
    # first regression the engine restores the last full-sweep iterate
    # and degrades to plain damped RVI (``full_every=1`` behaviour),
    # which does converge; acceleration is only ever a speed bet.
    stable = True
    prev_width = float("inf")
    h_safe: Optional[np.ndarray] = None
    try:
        with span("solve/average/approx"):
            while rounds < max_sweeps:
                rounds += 1
                if on_iter is not None:
                    on_iter(rounds)
                if not stable or force_full \
                        or rounds % full_every == 0:
                    # Full damped sweep: refresh residuals, the drift
                    # (gain) estimate and the greedy policy, and test
                    # convergence on the span.
                    force_full = False
                    backups += 1
                    sweeps += 1
                    t_h, greedy = q_backup_max(mdp, reward, h)
                    new_h = (1.0 - tau) * h + tau * t_h
                    d = new_h - h
                    width = d.max() - d.min()
                    if stable and h_safe is not None \
                            and not width <= prev_width * (1 + 1e-12):
                        # The span grew (or went non-finite, which the
                        # inverted comparison also catches): the
                        # prioritized rounds destabilized this model.
                        # Roll back and run plain damped RVI from here.
                        h = h_safe
                        stable = False
                        counter_add("solver/approx/degraded")
                        continue
                    drift = float(d[ref])
                    np.abs(d - drift, out=priority)
                    h = new_h - new_h[ref]
                    updated[:] = False
                    if width < epsilon * tau:
                        converged = True
                        break
                    if stable:
                        prev_width = width
                        h_safe = h.copy()
                    continue
                # Prioritized round: pop the highest-residual states
                # not yet touched this cycle and back up only those,
                # in place.  The update is gain-neutralized (the
                # uniform drift is subtracted): undiscounted values
                # grow by ~``tau * g`` per backup, so without the
                # correction popped states would outrun the rest and
                # the span would never close.
                candidates = np.flatnonzero(
                    ~updated & (priority > epsilon * tau))
                if candidates.size == 0:
                    # Queue drained; full-sweep next round to either
                    # converge or refill it.
                    force_full = True
                    continue
                if candidates.size > pops_per_round:
                    top = np.argpartition(
                        priority[candidates],
                        candidates.size - pops_per_round
                    )[candidates.size - pops_per_round:]
                    popped = candidates[top]
                else:
                    popped = candidates
                backups += 1
                queue_pops += int(popped.size)
                best, _ = q_backup_states(mdp, reward, h, popped)
                change = (1.0 - tau) * h[popped] + tau * best \
                    - h[popped] - drift
                priority[popped] = np.abs(change)
                h[popped] += change
                updated[popped] = True
                h = h - h[ref]
    finally:
        counter_add("solver/approx/sweeps", sweeps)
        counter_add("solver/approx/queue_pops", queue_pops)
        note_q_backups(backups)
    if not converged:
        span_left = float(d.max() - d.min()) if d is not None \
            else float("inf")
        raise SolverError(
            f"approximate value iteration did not converge in "
            f"{max_sweeps} rounds (residual span {span_left!r})")
    policy = np.asarray(greedy, dtype=int)
    upper = float(d.max()) / tau
    if certify:
        gain, bias = evaluate_policy(mdp, policy, reward)
        bound = max(0.0, upper - gain)
    else:
        gain = float(d[ref]) / tau
        bias = h
        bound = float(d.max() - d.min()) / tau
    counter_add("solver/approx/solves")
    gauge_set("solver/approx/bound", float(bound))
    return ApproxSolution(gain=float(gain), bias=bias, policy=policy,
                          iterations=rounds, bound=float(bound),
                          sweeps=sweeps, queue_pops=queue_pops,
                          aggregated_states=aggregated_states,
                          certified=certify)


def approx_average_solver(epsilon: float = 1e-8,
                          tau: float = 0.9,
                          queue_fraction: float = 0.25,
                          full_every: int = 8,
                          max_sweeps: int = 500_000,
                          partition=None,
                          on_iter: Optional[Callable[[int], None]] = None):
    """An :data:`~repro.mdp.ratio.AverageRewardSolver` running the
    approximate engine -- the plug-in point that puts ``--engine
    approx`` under :func:`repro.mdp.ratio.maximize_ratio`.

    Warm starts thread through naturally: the ratio solvers hand each
    inner solve the previous iterate's bias, which becomes this
    engine's ``v0`` (the aggregation warm start only fires on the cold
    first call).
    """

    def solve(mdp: MDP, reward: np.ndarray, warm) -> ApproxSolution:
        v0 = None
        if warm is not None and warm.bias is not None:
            v0 = warm.bias
        return approx_average_reward(
            mdp, reward, epsilon=epsilon, max_sweeps=max_sweeps,
            tau=tau, queue_fraction=queue_fraction,
            full_every=full_every,
            partition=partition if v0 is None else None,
            v0=v0, certify=True, on_iter=on_iter)

    return solve
