"""A Markov-decision-process toolkit for mining-protocol analysis.

The toolkit mirrors what the paper relies on: undiscounted
average-reward MDPs (each step mines exactly one block) and the
Sapirshtein-style transformation that turns ratio objectives such as
relative revenue into a family of average-reward problems.

- :mod:`repro.mdp.model` -- immutable sparse MDP container with named
  actions and multi-channel rewards;
- :mod:`repro.mdp.builder` -- incremental construction with validation;
- :mod:`repro.mdp.value_iteration` -- discounted value iteration;
- :mod:`repro.mdp.average_reward` -- relative value iteration;
- :mod:`repro.mdp.policy_iteration` -- Howard policy iteration with
  exact sparse gain/bias evaluation (the default solver);
- :mod:`repro.mdp.stationary` -- stationary distributions and exact
  per-channel gain evaluation of a fixed policy;
- :mod:`repro.mdp.ratio` -- maximization of gain ratios via Dinkelbach
  iteration with a bisection fallback;
- :mod:`repro.mdp.simulate` -- Monte-Carlo rollouts of a policy for
  cross-validation.
"""

from repro.mdp.model import MDP
from repro.mdp.builder import MDPBuilder
from repro.mdp.policy import Policy
from repro.mdp.value_iteration import DiscountedSolution, value_iteration
from repro.mdp.average_reward import relative_value_iteration
from repro.mdp.policy_iteration import AverageRewardSolution, policy_iteration
from repro.mdp.absorbing import AbsorptionResult, absorbing_analysis
from repro.mdp.finite_horizon import (
    FiniteHorizonSolution,
    backward_induction,
)
from repro.mdp.linear_programming import lp_average_reward, lp_gain
from repro.mdp.stationary import policy_gains, stationary_distribution
from repro.mdp.ratio import RatioSolution, maximize_ratio
from repro.mdp.simulate import RolloutResult, rollout

__all__ = [
    "MDP",
    "MDPBuilder",
    "Policy",
    "value_iteration",
    "DiscountedSolution",
    "relative_value_iteration",
    "policy_iteration",
    "AverageRewardSolution",
    "stationary_distribution",
    "policy_gains",
    "lp_average_reward",
    "lp_gain",
    "absorbing_analysis",
    "AbsorptionResult",
    "backward_induction",
    "FiniteHorizonSolution",
    "maximize_ratio",
    "RatioSolution",
    "rollout",
    "RolloutResult",
]
