"""Pluggable compute backends for the Bellman/rollout hot loops.

The library's two inner loops -- the stacked-CSR Q-backup behind every
dynamic-programming solver (:mod:`repro.mdp.kernels`) and the batched
trajectory advance behind the Monte-Carlo engines
(:mod:`repro.mdp.simulate`) -- dispatch through a process-global
*backend* selected here:

``numpy``
    The default: the vectorized scipy/numpy implementations that have
    carried every committed baseline.  Always available.
``numba``
    JIT-compiles the loop kernels of :mod:`repro.mdp._kernel_ref` with
    ``numba.njit`` (``fastmath`` off).  Optional: when numba is missing
    or compilation fails, selection *degrades to numpy with a
    warning* -- a sweep never crashes because an accelerator is absent.
``reference``
    The same loop kernels, uncompiled.  Orders of magnitude slower;
    exists so the differential test suite can prove the compiled code
    path bit-identical to numpy on any machine, numba installed or not.

Every backend is **bit-identical** to every other by construction (see
:mod:`repro.mdp._kernel_ref` for the op-ordering argument); switching
backends changes wall time, never results.

Selection order (first match wins):

1. an explicit :func:`set_backend` call (the CLI's ``--backend`` flag,
   or a :class:`repro.runtime.parallel.SolveTask` carrying a backend
   into a worker process);
2. the ``REPRO_BACKEND`` environment variable (how parent processes
   reach spawned workers);
3. the ``numpy`` default.

Telemetry: ``backend/select/<name>`` counts explicit selections,
``backend/fallback`` counts degradations to numpy (with a
``backend/fallback/<reason>`` detail), and the numba backend sets the
``backend/numba/compile_s`` gauge after its one-time JIT compilation.
"""

from __future__ import annotations

import os
import warnings
from typing import Callable, Dict, Optional

import numpy as np
from scipy import sparse

from repro.errors import ReproError
from repro.runtime.telemetry import counter_add, gauge_set

#: Environment variable consulted when no explicit backend is set.
BACKEND_ENV = "REPRO_BACKEND"

#: Names accepted by :func:`set_backend` / ``--backend``.
BACKEND_NAMES = ("numpy", "numba", "reference")


class BackendWarning(UserWarning):
    """Warned when a requested backend degrades to the numpy default
    (numba missing, JIT failure, unknown ``REPRO_BACKEND`` value)."""


class NumpyBackend:
    """The default vectorized scipy/numpy implementations."""

    name = "numpy"
    compiled = False

    # -- Bellman kernels ----------------------------------------------

    def q_backup(self, kernel, reward: np.ndarray, values: np.ndarray,
                 discount: float = 1.0) -> np.ndarray:
        q = kernel.stack.dot(values).reshape(kernel.n_actions,
                                             kernel.n_states)
        if discount != 1.0:
            q *= discount
        q += reward
        if not kernel._all_available:
            q[~kernel.available] = -np.inf
        return q

    def q_backup_max(self, kernel, reward: np.ndarray,
                     values: np.ndarray, discount: float = 1.0):
        q = self.q_backup(kernel, reward, values, discount)
        return q.max(axis=0), np.asarray(q.argmax(axis=0),
                                         dtype=np.int64)

    def q_backup_greedy(self, kernel, reward: np.ndarray,
                        values: np.ndarray, discount: float = 1.0):
        q = self.q_backup(kernel, reward, values, discount)
        return q, q.max(axis=0), np.asarray(q.argmax(axis=0),
                                            dtype=np.int64)

    def q_backup_states(self, kernel, reward: np.ndarray,
                        values: np.ndarray, states: np.ndarray,
                        discount: float = 1.0):
        """Subset backup over ``states`` only (the prioritized-sweep
        kernel): row-slice the stack at every (action, state) pair of
        the subset, then the same dot/discount/add/mask sequence as
        the full backup -- bit-identical to slicing its result."""
        states = np.asarray(states, dtype=np.int64)
        rows = (np.arange(kernel.n_actions, dtype=np.int64)[:, None]
                * kernel.n_states + states).ravel()
        q = kernel.stack[rows].dot(values).reshape(kernel.n_actions,
                                                   states.size)
        if discount != 1.0:
            q *= discount
        q += reward[:, states]
        if not kernel._all_available:
            q[~kernel.available[:, states]] = -np.inf
        return q.max(axis=0), np.asarray(q.argmax(axis=0),
                                         dtype=np.int64)

    def policy_matrix(self, kernel, rows: np.ndarray):
        return kernel.stack[rows]

    # -- rollout advances ---------------------------------------------

    def advance_chunk_cdf(self, tables, states: np.ndarray,
                          uniforms: np.ndarray, history: np.ndarray,
                          m: int) -> np.ndarray:
        """Vectorized chunk advance: flat ``np.take`` gathers into
        preallocated buffers (per-step Python overhead bounds
        throughput, so the loop avoids every avoidable allocation)."""
        n_traj = states.shape[0]
        k = tables.width
        cum = tables.cum_capped
        cols_flat = tables.cols.reshape(-1)
        rows = np.empty((n_traj, k), dtype=float)
        below = np.empty((n_traj, k), dtype=bool)
        j = np.empty(n_traj, dtype=np.intp)
        idx = np.empty(n_traj, dtype=np.intp)
        for i in range(m):
            history[i] = states
            np.take(cum, states, axis=0, out=rows)
            np.less_equal(rows, uniforms[i].reshape(n_traj, 1),
                          out=below)
            below.sum(axis=1, dtype=np.intp, out=j)
            np.multiply(states, k, out=idx)
            np.add(idx, j, out=idx)
            np.take(cols_flat, idx, out=states)
        return states

    def advance_chunk_alias(self, tables, states: np.ndarray,
                            uniforms: np.ndarray, history: np.ndarray,
                            m: int) -> np.ndarray:
        accept, accept_col, alias_col = tables.alias_tables()
        for i in range(m):
            history[i] = states
            x = uniforms[i] * tables.width
            j = x.astype(np.intp)
            frac = x - j
            take = frac < accept[states, j]
            states = np.where(take, accept_col[states, j],
                              alias_col[states, j])
        return np.asarray(states, dtype=np.intp)


class LoopBackend:
    """Backend over the loop kernels of :mod:`repro.mdp._kernel_ref`
    -- either jitted (``numba``) or uncompiled (``reference``)."""

    def __init__(self, name: str, kernels: Dict[str, Callable],
                 compiled: bool) -> None:
        self.name = name
        self.compiled = compiled
        self._k = kernels

    def q_backup(self, kernel, reward: np.ndarray, values: np.ndarray,
                 discount: float = 1.0) -> np.ndarray:
        stack = kernel.stack
        return self._k["q_values"](stack.indptr, stack.indices,
                                   stack.data, reward, values,
                                   float(discount), kernel.available)

    def q_backup_max(self, kernel, reward: np.ndarray,
                     values: np.ndarray, discount: float = 1.0):
        stack = kernel.stack
        return self._k["q_backup_max"](stack.indptr, stack.indices,
                                       stack.data, reward, values,
                                       float(discount),
                                       kernel.available)

    def q_backup_greedy(self, kernel, reward: np.ndarray,
                        values: np.ndarray, discount: float = 1.0):
        stack = kernel.stack
        return self._k["q_backup_greedy"](stack.indptr, stack.indices,
                                          stack.data, reward, values,
                                          float(discount),
                                          kernel.available)

    def q_backup_states(self, kernel, reward: np.ndarray,
                        values: np.ndarray, states: np.ndarray,
                        discount: float = 1.0):
        stack = kernel.stack
        return self._k["q_backup_states"](
            stack.indptr, stack.indices, stack.data, reward, values,
            np.asarray(states, dtype=np.int64), float(discount),
            kernel.available)

    def policy_matrix(self, kernel, rows: np.ndarray):
        stack = kernel.stack
        indptr, indices, data = self._k["extract_rows"](
            stack.indptr, stack.indices, stack.data,
            np.asarray(rows, dtype=np.int64))
        return sparse.csr_matrix(
            (data, indices, indptr),
            shape=(len(rows), kernel.n_states))

    def advance_chunk_cdf(self, tables, states: np.ndarray,
                          uniforms: np.ndarray, history: np.ndarray,
                          m: int) -> np.ndarray:
        self._k["advance_cdf"](tables.cum_capped, tables.cols, states,
                               uniforms, history, m)
        return states

    def advance_chunk_alias(self, tables, states: np.ndarray,
                            uniforms: np.ndarray, history: np.ndarray,
                            m: int) -> np.ndarray:
        accept, accept_col, alias_col = tables.alias_tables()
        self._k["advance_alias"](accept, accept_col, alias_col, states,
                                 uniforms, history, m)
        return states


#: The resolved backend, or ``None`` before first use / after
#: :func:`reset_backend`.  Module-global so the hot-path lookup is one
#: load+test, like the telemetry tracer.
_ACTIVE = None

#: The last *requested* name (which may differ from ``_ACTIVE.name``
#: after a fallback); re-requesting it is a no-op so per-task
#: re-selection in worker processes neither re-warns nor re-counts.
_REQUESTED: Optional[str] = None


def _numpy_backend() -> NumpyBackend:
    return NumpyBackend()


def reference_backend() -> LoopBackend:
    """The uncompiled twin of the numba backend (for tests and for
    proving bit-identity without numba)."""
    from repro.mdp import _kernel_ref as ref
    kernels = {name: getattr(ref, name) for name in ref.KERNEL_NAMES}
    return LoopBackend("reference", kernels, compiled=False)


def _numba_backend() -> LoopBackend:
    """Build the jitted backend; raises
    :class:`repro.mdp._numba_backend.BackendUnavailable` when it
    cannot."""
    from repro.mdp import _numba_backend as nb
    kernels = nb.load_kernels()
    gauge_set("backend/numba/compile_s", nb.compile_seconds())
    return LoopBackend("numba", kernels, compiled=True)


def _fallback(requested: str, reason: str):
    warnings.warn(
        f"backend {requested!r} unavailable ({reason}); falling back "
        "to the numpy backend (results are identical, only slower)",
        BackendWarning, stacklevel=3)
    counter_add("backend/fallback")
    counter_add(f"backend/fallback/{requested}")
    return _numpy_backend()


def _build(name: str):
    """Construct the named backend, degrading to numpy on an
    unavailable accelerator (never on an unknown name)."""
    if name == "numpy":
        return _numpy_backend()
    if name == "reference":
        return reference_backend()
    if name == "numba":
        from repro.mdp._numba_backend import BackendUnavailable
        try:
            return _numba_backend()
        except BackendUnavailable as exc:
            return _fallback("numba", str(exc))
    raise ReproError(
        f"unknown backend {name!r}; expected one of {BACKEND_NAMES}")


def set_backend(name: str):
    """Select the process-global backend by name and return it.

    ``"numba"`` degrades to numpy with a :class:`BackendWarning` when
    numba is missing or JIT compilation fails; an unknown name raises
    :class:`~repro.errors.ReproError`.  Selecting the already-active
    backend is a cheap no-op.
    """
    global _ACTIVE, _REQUESTED
    if _ACTIVE is not None and name in (_REQUESTED, _ACTIVE.name):
        return _ACTIVE
    backend = _build(name)
    _ACTIVE = backend
    _REQUESTED = name
    counter_add(f"backend/select/{backend.name}")
    return backend


def active():
    """The active backend, resolving ``REPRO_BACKEND`` (then the numpy
    default) on first use.

    Lazy resolution is deliberately silent telemetry-wise: it fires
    once per process lifetime, so counting it would make merged
    worker counters depend on worker count.  Only explicit
    :func:`set_backend` calls count a ``backend/select/*``.
    """
    global _ACTIVE, _REQUESTED
    if _ACTIVE is None:
        name = os.environ.get(BACKEND_ENV, "numpy")
        if name not in BACKEND_NAMES:
            _ACTIVE = _fallback(name, f"unknown {BACKEND_ENV} value")
        else:
            _ACTIVE = _build(name)
        _REQUESTED = name
    return _ACTIVE


def current_backend_name() -> str:
    """Name of the backend the next kernel call will use."""
    return active().name


def reset_backend() -> None:
    """Forget the selection; the next :func:`active` re-resolves from
    the environment.  Intended for tests."""
    global _ACTIVE, _REQUESTED
    _ACTIVE = None
    _REQUESTED = None


def available_backends() -> Dict[str, bool]:
    """Name -> availability (without warnings or fallbacks)."""
    from repro.mdp._numba_backend import numba_available
    return {"numpy": True, "numba": numba_available(),
            "reference": True}


def use_backend(name: str):
    """Context manager: run a block under the named backend, restoring
    the previous selection (including "unresolved") on exit."""
    import contextlib

    @contextlib.contextmanager
    def _cm():
        global _ACTIVE, _REQUESTED
        previous = _ACTIVE, _REQUESTED
        set_backend(name)
        try:
            yield _ACTIVE
        finally:
            _ACTIVE, _REQUESTED = previous
    return _cm()
