"""Stationary distributions and exact per-channel policy evaluation.

Once a solver has produced an optimal policy, the long-run rate of any
reward channel under that policy equals ``pi . r_pi`` where ``pi`` is
the stationary distribution of the induced Markov chain.  This is how
the library reports, e.g., the orphan rate of a revenue-optimal policy,
and how ratio utilities are evaluated exactly.
"""

from __future__ import annotations

import warnings
from typing import Dict, Iterable, Optional

import numpy as np
from scipy import sparse
from scipy.sparse import csgraph
from scipy.sparse import linalg as sla

from repro.errors import SolverError
from repro.mdp.model import MDP

#: Acceptance threshold on the verified residual
#: ``max |pi (P - I)|`` of a normalized stationary solution.  A
#: singular or near-singular system can pass ``isfinite`` with garbage
#: values; it cannot pass the residual.
STATIONARY_RESIDUAL_TOL = 1e-8


def _check_stationary_residual(pi: np.ndarray, p: sparse.csr_matrix,
                               context: str) -> np.ndarray:
    """Clip, normalize and verify a candidate stationary vector.

    Returns the normalized distribution; raises
    :class:`~repro.errors.SolverError` with diagnostics when the
    residual ``max |pi (P - I)|`` of the *normalized* vector exceeds
    :data:`STATIONARY_RESIDUAL_TOL` (the solution solved some system,
    but not the stationary one -- the singular/reducible failure mode).
    """
    if not np.all(np.isfinite(pi)):
        raise SolverError(
            f"{context}: stationary solve produced non-finite values")
    # Clip tiny negative round-off and renormalize.
    pi = np.clip(pi, 0.0, None)
    total = pi.sum()
    if total <= 0:
        raise SolverError(
            f"{context}: stationary distribution has zero mass")
    pi = pi / total
    residual = float(np.abs(pi @ p - pi).max())
    if residual > STATIONARY_RESIDUAL_TOL:
        raise SolverError(
            f"{context}: stationary residual max|pi(P-I)| = "
            f"{residual:.3e} exceeds {STATIONARY_RESIDUAL_TOL:.0e} "
            f"(n={p.shape[0]}, mass before normalization={total!r}); "
            "the chain is likely multichain/reducible")
    return pi


def _solve_stationary_unique(p: sparse.csr_matrix) -> np.ndarray:
    """Solve ``pi (P - I) = 0, sum(pi) = 1`` assuming a unique closed
    recurrent class, verifying the result."""
    n = p.shape[0]
    # Build (P^T - I) with its last row replaced by the normalization
    # constraint directly in CSR (a LIL round-trip is ~100x slower on
    # the 30k-state setting-2 models).
    a = (sparse.csr_matrix(p).T - sparse.identity(n, format="csr")).tocsr()
    top = a[:n - 1, :]
    ones_row = sparse.csr_matrix(np.ones((1, n)))
    system = sparse.vstack([top, ones_row], format="csc")
    rhs = np.zeros(n)
    rhs[n - 1] = 1.0
    with warnings.catch_warnings():
        # scipy reports a singular system as MatrixRankWarning while
        # still returning (often finite) garbage; promote it.
        warnings.simplefilter("error", sla.MatrixRankWarning)
        try:
            pi = sla.spsolve(system, rhs)
        except sla.MatrixRankWarning as exc:
            raise SolverError(
                "stationary system is singular (multichain/reducible "
                f"chain, n={n}): {exc}") from exc
        except SolverError:
            raise
        except Exception as exc:
            raise SolverError(f"stationary solve failed: {exc}") from exc
    return _check_stationary_residual(pi, p, "stationary solve")


def _restrict_to_start_class(p: sparse.csr_matrix,
                             start: int) -> np.ndarray:
    """Stationary distribution of the unique closed recurrent class
    reachable from ``start``, embedded with zero mass elsewhere.

    Raises :class:`~repro.errors.SolverError` when several closed
    classes are reachable (the long-run distribution then depends on
    the sample path, not just the start state).
    """
    n = p.shape[0]
    reachable = np.zeros(n, dtype=bool)
    order = csgraph.breadth_first_order(p, start, directed=True,
                                        return_predecessors=False)
    reachable[order] = True
    idx = np.flatnonzero(reachable)
    sub = p[idx][:, idx]
    n_comp, labels = csgraph.connected_components(sub, directed=True,
                                                  connection="strong")
    # A component is closed iff no edge leaves it.
    leaves = np.zeros(n_comp, dtype=bool)
    coo = sub.tocoo()
    cross = labels[coo.row] != labels[coo.col]
    leaves[np.unique(labels[coo.row[cross]])] = True
    closed = np.flatnonzero(~leaves)
    if len(closed) != 1:
        raise SolverError(
            f"start state {start} reaches {len(closed)} closed "
            "recurrent classes; the stationary distribution is not "
            "determined by the start state (use "
            "repro.mdp.absorbing for path-dependent questions)")
    members = idx[labels == closed[0]]
    sub_closed = p[members][:, members]
    pi_closed = _solve_stationary_unique(sub_closed)
    pi = np.zeros(n)
    pi[members] = pi_closed
    return pi


def stationary_distribution(p: sparse.csr_matrix,
                            start: Optional[int] = None) -> np.ndarray:
    """Return the stationary distribution of a row-stochastic matrix.

    Solves ``pi (P - I) = 0`` with the normalization ``sum(pi) = 1`` by
    replacing one column of the transposed system, then *verifies* the
    residual ``max |pi (P - I)|`` of the normalized solution: a
    singular system (multichain/reducible ``P``) raises
    :class:`~repro.errors.SolverError` instead of returning finite
    garbage.

    Parameters
    ----------
    p:
        Row-stochastic ``(N, N)`` sparse matrix.
    start:
        Optional start state.  For a unichain matrix the distribution
        does not depend on it and the fast global solve is used.  For a
        multichain matrix the global system is singular; with ``start``
        given, the solve is retried restricted to the unique closed
        recurrent class reachable from ``start`` (transient states get
        zero mass).  If several closed classes are reachable -- or
        ``start`` is omitted on a multichain matrix -- a
        :class:`~repro.errors.SolverError` is raised.
    """
    p = sparse.csr_matrix(p)
    try:
        return _solve_stationary_unique(p)
    except SolverError:
        if start is None:
            raise
        return _restrict_to_start_class(p, int(start))


def policy_gains(mdp: MDP, policy: np.ndarray,
                 channels: Optional[Iterable[str]] = None) -> Dict[str, float]:
    """Exactly evaluate the per-step rate of each reward channel under
    ``policy`` via the stationary distribution.

    The stationary distribution is taken with respect to the MDP's
    ``start`` state: the reported rates are those of the recurrent
    class the start state reaches.  Policies whose induced chain makes
    the start state unreachable (multichain policies) raise
    :class:`~repro.errors.SolverError` rather than returning rates of
    an arbitrary class.

    Runs through the MDP's
    :class:`~repro.mdp.kernels.PolicyEvalCache`: the stationary
    distribution is one transposed triangular solve on the policy's
    cached evaluation-system factorization, and per-channel gains are
    memoized so a ratio solve's repeated queries near convergence stop
    re-solving.
    """
    policy = np.asarray(policy, dtype=int)
    return mdp.eval_cache().channel_gains(policy, channels)
