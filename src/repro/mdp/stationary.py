"""Stationary distributions and exact per-channel policy evaluation.

Once a solver has produced an optimal policy, the long-run rate of any
reward channel under that policy equals ``pi . r_pi`` where ``pi`` is
the stationary distribution of the induced Markov chain.  This is how
the library reports, e.g., the orphan rate of a revenue-optimal policy,
and how ratio utilities are evaluated exactly.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np
from scipy import sparse
from scipy.sparse import linalg as sla

from repro.errors import SolverError
from repro.mdp.model import MDP


def stationary_distribution(p: sparse.csr_matrix,
                            start: Optional[int] = None) -> np.ndarray:
    """Return the stationary distribution of a row-stochastic matrix.

    Solves ``pi (P - I) = 0`` with the normalization ``sum(pi) = 1`` by
    replacing one column of the transposed system.  For a unichain
    matrix the solution is unique; transient states receive mass zero.

    Parameters
    ----------
    p:
        Row-stochastic ``(N, N)`` sparse matrix.
    start:
        Unused placeholder kept for API symmetry (the distribution of a
        unichain matrix does not depend on the start state).
    """
    n = p.shape[0]
    # Build (P^T - I) with its last row replaced by the normalization
    # constraint directly in CSR (a LIL round-trip is ~100x slower on
    # the 30k-state setting-2 models).
    a = (sparse.csr_matrix(p).T - sparse.identity(n, format="csr")).tocsr()
    top = a[:n - 1, :]
    ones_row = sparse.csr_matrix(np.ones((1, n)))
    system = sparse.vstack([top, ones_row], format="csc")
    rhs = np.zeros(n)
    rhs[n - 1] = 1.0
    try:
        pi = sla.spsolve(system, rhs)
    except Exception as exc:  # pragma: no cover - scipy failure modes
        raise SolverError(f"stationary solve failed: {exc}") from exc
    if not np.all(np.isfinite(pi)):
        raise SolverError("stationary solve produced non-finite values")
    # Clip tiny negative round-off and renormalize.
    pi = np.clip(pi, 0.0, None)
    total = pi.sum()
    if total <= 0:
        raise SolverError("stationary distribution has zero mass")
    return pi / total


def policy_gains(mdp: MDP, policy: np.ndarray,
                 channels: Optional[Iterable[str]] = None) -> Dict[str, float]:
    """Exactly evaluate the per-step rate of each reward channel under
    ``policy`` via the stationary distribution.

    Runs through the MDP's
    :class:`~repro.mdp.kernels.PolicyEvalCache`: the stationary
    distribution is one transposed triangular solve on the policy's
    cached evaluation-system factorization, and per-channel gains are
    memoized so a ratio solve's repeated queries near convergence stop
    re-solving.
    """
    policy = np.asarray(policy, dtype=int)
    return mdp.eval_cache().channel_gains(policy, channels)
