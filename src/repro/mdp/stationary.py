"""Stationary distributions and exact per-channel policy evaluation.

Once a solver has produced an optimal policy, the long-run rate of any
reward channel under that policy equals ``pi . r_pi`` where ``pi`` is
the stationary distribution of the induced Markov chain.  This is how
the library reports, e.g., the orphan rate of a revenue-optimal policy,
and how ratio utilities are evaluated exactly.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np
from scipy import sparse
from scipy.sparse import linalg as sla

from repro.errors import SolverError
from repro.mdp.model import MDP


def stationary_distribution(p: sparse.csr_matrix,
                            start: Optional[int] = None) -> np.ndarray:
    """Return the stationary distribution of a row-stochastic matrix.

    Solves ``pi (P - I) = 0`` with the normalization ``sum(pi) = 1`` by
    replacing one column of the transposed system.  For a unichain
    matrix the solution is unique; transient states receive mass zero.

    Parameters
    ----------
    p:
        Row-stochastic ``(N, N)`` sparse matrix.
    start:
        Unused placeholder kept for API symmetry (the distribution of a
        unichain matrix does not depend on the start state).
    """
    n = p.shape[0]
    a = (p.T - sparse.identity(n, format="csr")).tolil()
    # Replace the last equation with the normalization constraint.
    a[n - 1, :] = np.ones(n)
    rhs = np.zeros(n)
    rhs[n - 1] = 1.0
    try:
        pi = sla.spsolve(sparse.csc_matrix(a), rhs)
    except Exception as exc:  # pragma: no cover - scipy failure modes
        raise SolverError(f"stationary solve failed: {exc}") from exc
    if not np.all(np.isfinite(pi)):
        raise SolverError("stationary solve produced non-finite values")
    # Clip tiny negative round-off and renormalize.
    pi = np.clip(pi, 0.0, None)
    total = pi.sum()
    if total <= 0:
        raise SolverError("stationary distribution has zero mass")
    return pi / total


def policy_gains(mdp: MDP, policy: np.ndarray,
                 channels: Optional[Iterable[str]] = None) -> Dict[str, float]:
    """Exactly evaluate the per-step rate of each reward channel under
    ``policy`` via the stationary distribution."""
    policy = np.asarray(policy, dtype=int)
    p_pi = mdp.policy_matrix(policy)
    pi = stationary_distribution(p_pi, start=mdp.start)
    names = list(channels) if channels is not None else mdp.channels
    out: Dict[str, float] = {}
    for name in names:
        r_pi = mdp.policy_reward(policy, mdp.channel_reward(name))
        out[name] = float(pi.dot(r_pi))
    return out
