"""Probabilistic-termination (PTO) reduction for ratio objectives.

Bar-Zur, Eyal & Tamar ("Efficient MDP Analysis for Selfish-Mining in
Blockchains", AFT 2020) replace the ratio-of-gains objective

    maximize over policies    gain_num(policy) / gain_den(policy)

by a *probabilistically terminated* total-reward MDP: after a step
accruing denominator reward ``d`` the process survives with probability
``(1 - eps) ** (d / den_scale)``, so the expected accumulated
denominator before termination is the same ``den_scale / eps`` for
every non-degenerate policy and the terminated value of the transformed
reward ``num - rho * den`` has the sign of ``gain_num / gain_den - rho``
up to an ``O(eps)`` bias.

The key structural fact this module exploits: the terminated
evaluation system of a policy,

    (I - Gamma_pi P_pi) V = r_pi,

does **not** depend on ``rho`` -- only on the policy and ``eps``.  One
sparse LU factorization per policy therefore serves *both* reward
channels (``V_num``, ``V_den``), and the PT value of the policy at any
``rho`` is the linear combination ``V_num - rho * V_den``.  The outer
loop is a Dinkelbach-style root finder on the PT optimal value
``Phi(rho)`` (piecewise linear, convex, decreasing): run Howard policy
improvement on the terminated problem at fixed ``rho``, then update
``rho <- V_num(start) / V_den(start)``.  Because evaluations are cached
per policy, an outer round whose optimal policy did not change costs
one cache hit and a single Q-backup -- **zero** average-reward solves
and zero new factorizations.  The small ``O(eps)`` bias only affects
which policy wins near exact ties; the returned value is de-biased by
evaluating the final policy's exact channel gains.

Counters: ``solver/ratio/pto/rounds`` (outer updates),
``solver/ratio/pto/transformed_solves`` (PT factorizations, each
solving both channels) and ``solver/ratio/pto/warm_start_hits``
(evaluations served from the per-solve policy cache).
"""

from __future__ import annotations

import math
from typing import Callable, Mapping, Optional, Tuple

import numpy as np
from scipy import sparse
from scipy.sparse import linalg as sla

from repro.errors import SolverDivergedError, SolverError, SolverInputError
from repro.mdp.kernels import note_q_backups, q_backup
from repro.mdp.model import MDP
from repro.mdp.ratio import DEN_FLOOR, RatioSolution
from repro.mdp.stationary import policy_gains
from repro.runtime.telemetry import counter_add, gauge_set, span

#: Termination probability per normalized unit of denominator reward.
#: Small enough that the O(eps) value bias cannot flip policy
#: preferences outside exact ties; large enough that the terminated
#: values (~ scale / eps) stay well inside float64 range.
PTO_TERMINATION = 2.0 ** -20

#: Relative improvement threshold of the inner PT policy iteration
#: (mirrors ``policy_iteration.IMPROVE_TOL``, but scaled by the PT
#: value magnitude, which is ~1/eps times the reward scale).
PT_IMPROVE_TOL = 1e-11

#: Inner Howard improvement rounds per outer ``rho`` update.
PT_MAX_INNER = 500


def _pt_continuation(r_den: np.ndarray, den_scale: float,
                     termination: float) -> np.ndarray:
    """Per-(action, state) survival probabilities
    ``(1 - eps) ** (den / den_scale)``, computed in log space so huge
    denominator entries underflow to 0 instead of raising."""
    exponent = np.clip(r_den, 0.0, None) / den_scale
    return np.exp(math.log1p(-termination) * exponent)


def solve_pto(mdp: MDP, num: Mapping[str, float],
              den: Mapping[str, float], lo: float, hi: float,
              tol: float = 1e-7, max_iter: int = 80,
              initial_policy: Optional[np.ndarray] = None,
              on_solve: Optional[Callable[[int], None]] = None,
              termination: float = PTO_TERMINATION
              ) -> Tuple[RatioSolution, float]:
    """Maximize ``gain(num) / gain(den)`` via the PTO reduction.

    Returns ``(solution, residual)`` where ``residual`` is the de-bias
    magnitude ``|value - rho_PT|`` (how far the exact ratio of the
    final policy sits from the terminated fixed point).  Raises a typed
    :class:`~repro.errors.SolverError` on degeneracy (a policy whose
    recurrent behaviour accrues no denominator makes the terminated
    evaluation system singular or its start value vanish) --
    :func:`repro.mdp.ratio.maximize_ratio` turns that into a bisection
    fallback exactly like Dinkelbach's.

    Parameters mirror :func:`repro.mdp.ratio.maximize_ratio`;
    ``termination`` is the PT stopping probability ``eps`` per
    normalized denominator unit.
    """
    if not 0.0 < termination < 1.0:
        raise SolverInputError(
            f"termination probability must lie in (0, 1), "
            f"got {termination!r}")
    r_num = np.asarray(mdp.combined_reward(dict(num)), dtype=float)
    r_den = np.asarray(mdp.combined_reward(dict(den)), dtype=float)
    avail = mdp.available
    den_scale = float(np.abs(r_den[avail]).max()) if avail.any() else 0.0
    if den_scale <= 0.0:
        raise SolverError(
            "PTO: the denominator channel is identically zero on every "
            "available (state, action) pair")
    if float(r_den[avail].min()) < -1e-12 * den_scale:
        raise SolverInputError(
            "PTO requires a nonnegative denominator reward (survival "
            "probabilities (1-eps)**(den/scale) exceed 1 otherwise); "
            f"min available den reward is {float(r_den[avail].min())!r}")

    gamma = _pt_continuation(r_den, den_scale, termination)
    # A non-degenerate policy accrues ~den_scale/eps denominator before
    # termination; the degeneracy floor on V_den(start) is the same
    # *relative* quantity Dinkelbach floors (g_den / max|r_den|).
    den_value_floor = DEN_FLOOR * den_scale / termination

    n = mdp.n_states
    rows = np.arange(n)
    kernel = mdp.kernel()
    identity = sparse.identity(n, format="csr")

    if initial_policy is not None:
        policy = np.asarray(initial_policy, dtype=int).copy()
        if not mdp.valid_policy(policy):
            raise SolverInputError(
                "initial policy selects unavailable actions")
    else:
        policy = np.asarray(mdp.available.argmax(axis=0), dtype=int)

    # Per-policy PT evaluations, keyed by the policy bytes.  The
    # factorization is rho-independent, so a policy revisited at a new
    # rho is a pure cache hit -- this is where cross-iteration
    # warm-starting turns outer rounds nearly free.
    evaluations = {}
    pt_solves = 0

    def evaluate(pol: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        nonlocal pt_solves
        key = pol.tobytes()
        hit = evaluations.get(key)
        if hit is not None:
            counter_add("solver/ratio/pto/warm_start_hits")
            return hit
        p_pi = kernel.policy_matrix(pol)
        g_pi = gamma[pol, rows]
        system = sparse.csc_matrix(identity - p_pi.multiply(g_pi[:, None]))
        try:
            lu = sla.splu(system, permc_spec="COLAMD")
            v_num = lu.solve(r_num[pol, rows])
            v_den = lu.solve(r_den[pol, rows])
        except RuntimeError as exc:
            # SuperLU raises on an exactly singular factor: the policy
            # has a recurrent class with zero denominator (survival 1).
            raise SolverError(
                "PT evaluation system is singular -- the current "
                "policy accrues no denominator reward in some "
                f"recurrent class ({exc})") from exc
        if not (np.all(np.isfinite(v_num)) and np.all(np.isfinite(v_den))):
            raise SolverDivergedError(
                "PT evaluation produced non-finite terminated values")
        pt_solves += 1
        counter_add("solver/ratio/pto/transformed_solves")
        if on_solve is not None:
            on_solve(pt_solves)
        result = (v_num, v_den)
        evaluations[key] = result
        return result

    rho = float(lo)
    start = mdp.start
    rounds = 0
    backups = 0
    converged = False
    try:
        with span("solve/ratio/pto"):
            for rounds in range(1, max_iter + 1):
                counter_add("solver/ratio/pto/rounds")
                # Howard improvement on the terminated problem at fixed
                # rho.  Q(a, s) = w(a, s) + Gamma(a, s) * (P_a V)(s);
                # unavailable pairs inherit -inf from the kernel's
                # masked backup (gamma > 0 preserves the mask).
                for _ in range(PT_MAX_INNER):
                    v_num, v_den = evaluate(policy)
                    values = v_num - rho * v_den
                    backups += 1
                    pv = q_backup(mdp, _ZERO_REWARD(mdp), values)
                    q = (r_num - rho * r_den) + gamma * pv
                    incumbent = q[policy, rows]
                    best = q.max(axis=0)
                    improve_tol = PT_IMPROVE_TOL * max(
                        1.0, float(np.abs(values).max()))
                    improvable = best > incumbent + improve_tol
                    if not improvable.any():
                        break
                    greedy = q.argmax(axis=0)
                    policy = policy.copy()
                    policy[improvable] = greedy[improvable]
                else:
                    raise SolverError(
                        f"PT policy improvement did not converge in "
                        f"{PT_MAX_INNER} rounds at rho={rho!r}")
                v_start_num = float(v_num[start])
                v_start_den = float(v_den[start])
                if v_start_den <= den_value_floor:
                    raise SolverError(
                        "PTO hit a degenerate (zero-denominator) policy "
                        f"at rho={rho!r}: terminated denominator value "
                        f"{v_start_den!r} is below the floor "
                        f"{den_value_floor!r}")
                new_rho = v_start_num / v_start_den
                if not np.isfinite(new_rho):
                    raise SolverDivergedError(
                        f"PTO produced a non-finite ratio update at "
                        f"rho={rho!r}: {v_start_num!r} / {v_start_den!r}")
                if abs(new_rho - rho) <= tol * max(1.0, abs(new_rho)):
                    rho = new_rho
                    converged = True
                    break
                rho = new_rho
            if not converged:
                raise SolverError(
                    f"PTO did not converge in {max_iter} rounds "
                    f"(last rho={rho!r})")
    finally:
        note_q_backups(backups)

    # De-bias: the PT fixed point carries an O(eps) offset, but the
    # *policy* it selects is exact outside O(eps)-sized ties; report
    # that policy's exact average-reward ratio (one cached LU via the
    # shared PolicyEvalCache).
    gains = policy_gains(mdp, policy, set(num) | set(den))
    g_num = float(sum(w * gains[c] for c, w in num.items()))
    g_den = float(sum(w * gains[c] for c, w in den.items()))
    if not (np.isfinite(g_num) and np.isfinite(g_den)):
        raise SolverDivergedError(
            f"non-finite channel gains under the PTO policy: "
            f"gain_num={g_num!r}, gain_den={g_den!r}")
    if g_den <= DEN_FLOOR * den_scale:
        raise SolverError(
            "PTO converged to a policy with a degenerate average "
            f"denominator rate {g_den!r} (transient-only accumulation)")
    value = g_num / g_den
    residual = abs(value - rho)
    gauge_set("solver/ratio/pto/debias", residual)
    solution = RatioSolution(value=float(value), policy=policy,
                             gain_num=g_num, gain_den=g_den,
                             iterations=rounds, method="pto",
                             transformed_solves=pt_solves)
    return solution, residual


_ZERO_CACHE = {}


def _ZERO_REWARD(mdp: MDP) -> np.ndarray:
    """A shared all-zero ``(A, N)`` reward (the kernel backup computes
    ``reward + P @ V``; PTO needs the bare expectation ``P @ V``)."""
    zero = _ZERO_CACHE.get(id(mdp))
    if zero is None or zero.shape != (mdp.n_actions, mdp.n_states):
        zero = np.zeros((mdp.n_actions, mdp.n_states))
        _ZERO_CACHE.clear()  # one entry is enough; avoid unbounded growth
        _ZERO_CACHE[id(mdp)] = zero
    return zero
