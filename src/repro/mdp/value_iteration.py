"""Discounted value iteration.

Included for completeness and as an independently-checkable reference
solver; the paper's analysis uses the undiscounted average-reward
criterion (see :mod:`repro.mdp.policy_iteration`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.errors import SolverError
from repro.mdp.kernels import greedy_policy_from_q, q_backup
from repro.mdp.model import MDP


@dataclass
class DiscountedSolution:
    """Result of discounted value iteration.

    Attributes
    ----------
    values:
        Optimal value per state.
    policy:
        Greedy action index per state.
    iterations:
        Number of sweeps performed.
    """

    values: np.ndarray
    policy: np.ndarray
    iterations: int


def greedy_policy(mdp: MDP, reward: np.ndarray,
                  values: np.ndarray) -> np.ndarray:
    """Return the greedy policy for ``values`` under ``reward``,
    respecting action availability."""
    return greedy_policy_from_q(q_backup(mdp, reward, values))


def value_iteration(mdp: MDP, reward: np.ndarray, discount: float,
                    epsilon: float = 1e-8,
                    max_iter: int = 100_000,
                    on_iter: Optional[Callable[[int], None]] = None
                    ) -> DiscountedSolution:
    """Solve a discounted MDP by value iteration.

    Stops when the sup-norm update falls below
    ``epsilon * (1 - discount) / (2 * discount)`` (the standard bound
    guaranteeing an epsilon-optimal value function).  ``on_iter`` is
    called once per sweep for budget supervision.
    """
    if not 0 < discount < 1:
        raise SolverError("discount must lie in (0, 1)")
    reward = np.asarray(reward, dtype=float)
    values = np.zeros(mdp.n_states)
    threshold = epsilon * (1.0 - discount) / (2.0 * discount)
    for it in range(1, max_iter + 1):
        if on_iter is not None:
            on_iter(it)
        q = q_backup(mdp, reward, values, discount=discount)
        new_values = q.max(axis=0)
        if np.abs(new_values - values).max() < threshold:
            return DiscountedSolution(
                values=new_values,
                policy=greedy_policy_from_q(q),
                iterations=it)
        values = new_values
    raise SolverError(f"value iteration did not converge in {max_iter} sweeps")
