"""Discounted value iteration.

Included for completeness and as an independently-checkable reference
solver; the paper's analysis uses the undiscounted average-reward
criterion (see :mod:`repro.mdp.policy_iteration`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.errors import SolverError
from repro.mdp.kernels import (
    greedy_policy_from_q,
    note_q_backups,
    q_backup,
    q_backup_max,
)
from repro.mdp.model import MDP


@dataclass
class DiscountedSolution:
    """Result of discounted value iteration.

    Attributes
    ----------
    values:
        Optimal value per state.
    policy:
        Greedy action index per state.
    iterations:
        Number of sweeps performed.
    """

    values: np.ndarray
    policy: np.ndarray
    iterations: int


def greedy_policy(mdp: MDP, reward: np.ndarray,
                  values: np.ndarray) -> np.ndarray:
    """Return the greedy policy for ``values`` under ``reward``,
    respecting action availability."""
    note_q_backups(1)
    return greedy_policy_from_q(q_backup(mdp, reward, values))


def value_iteration(mdp: MDP, reward: np.ndarray, discount: float,
                    epsilon: float = 1e-8,
                    max_iter: int = 100_000,
                    on_iter: Optional[Callable[[int], None]] = None
                    ) -> DiscountedSolution:
    """Solve a discounted MDP by value iteration.

    Stops when the sup-norm update falls below
    ``epsilon * (1 - discount) / (2 * discount)`` (the standard bound
    guaranteeing an epsilon-optimal value function).  ``on_iter`` is
    called once per sweep for budget supervision.
    """
    if not 0 < discount < 1:
        raise SolverError("discount must lie in (0, 1)")
    reward = np.asarray(reward, dtype=float)
    values = np.zeros(mdp.n_states)
    threshold = epsilon * (1.0 - discount) / (2.0 * discount)
    backups = 0
    try:
        for it in range(1, max_iter + 1):
            if on_iter is not None:
                on_iter(it)
            backups += 1
            new_values, greedy = q_backup_max(mdp, reward, values,
                                              discount=discount)
            if np.abs(new_values - values).max() < threshold:
                return DiscountedSolution(
                    values=new_values,
                    policy=np.asarray(greedy, dtype=int),
                    iterations=it)
            values = new_values
    finally:
        # One flush per solve (value-identical to per-sweep counting),
        # on success and on abort alike.
        note_q_backups(backups)
    raise SolverError(f"value iteration did not converge in {max_iter} sweeps")
