"""Maximization of gain ratios over policies.

The paper's relative-revenue utility (Eq. 1) and orphan-rate utility
(Eq. 3) are ratios of long-run accumulation rates::

    maximize over policies    gain_num(policy) / gain_den(policy)

Following Sapirshtein et al., the transformed reward
``w(rho) = num - rho * den`` turns this into a family of standard
average-reward problems whose optimal gain ``f(rho)`` is non-increasing
in ``rho`` and crosses zero exactly at the optimal ratio.

Two methods are provided:

- **Dinkelbach iteration** (default): repeatedly set ``rho`` to the
  ratio of the current policy and re-solve; converges superlinearly
  when every encountered policy has a positive denominator rate.
- **Bisection**: robust fallback that also handles the degenerate case
  where some policies have zero denominator rate (e.g. the "always
  wait" policy of the non-profit-driven model, for which
  ``f(rho) = 0`` for all ``rho`` beyond the optimum); there the answer
  is the threshold ``sup { rho : f(rho) > 0 }``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

import numpy as np

from repro.errors import SolverError
from repro.mdp.model import MDP
from repro.mdp.policy_iteration import policy_iteration
from repro.mdp.stationary import policy_gains

#: A gain below this counts as "zero" when testing profitability of the
#: transformed problem.
GAIN_TOL = 1e-10

#: Denominator rates below this abort Dinkelbach in favour of bisection.
DEN_FLOOR = 1e-9


@dataclass
class RatioSolution:
    """Result of a ratio maximization.

    Attributes
    ----------
    value:
        The maximal ratio ``gain_num / gain_den``.
    policy:
        A policy achieving it.
    gain_num, gain_den:
        The two channel rates under that policy.
    iterations:
        Number of transformed-MDP solves performed.
    method:
        ``"dinkelbach"`` or ``"bisection"`` (which method produced the
        final answer).
    """

    value: float
    policy: np.ndarray
    gain_num: float
    gain_den: float
    iterations: int
    method: str


def _channel_gains(mdp: MDP, policy: np.ndarray,
                   num: Mapping[str, float],
                   den: Mapping[str, float]) -> tuple:
    gains = policy_gains(mdp, policy, set(num) | set(den))
    g_num = sum(w * gains[c] for c, w in num.items())
    g_den = sum(w * gains[c] for c, w in den.items())
    return g_num, g_den


def _transformed(mdp: MDP, num: Mapping[str, float],
                 den: Mapping[str, float], rho: float) -> np.ndarray:
    weights = dict(num)
    for c, w in den.items():
        weights[c] = weights.get(c, 0.0) - rho * w
    return mdp.combined_reward(weights)


def maximize_ratio(mdp: MDP, num: Mapping[str, float],
                   den: Mapping[str, float], lo: float, hi: float,
                   tol: float = 1e-7, max_iter: int = 80,
                   method: str = "dinkelbach",
                   initial_policy: Optional[np.ndarray] = None
                   ) -> RatioSolution:
    """Maximize ``gain(num) / gain(den)`` over stationary policies.

    Parameters
    ----------
    num, den:
        Channel-weight mappings defining numerator and denominator.
    lo, hi:
        Bracket known to contain the optimal ratio.
    tol:
        Absolute precision of the returned ratio.
    method:
        ``"dinkelbach"`` (with automatic bisection fallback) or
        ``"bisection"``.
    initial_policy:
        Optional warm start.
    """
    if hi <= lo:
        raise SolverError("ratio bracket must satisfy lo < hi")
    if method not in ("dinkelbach", "bisection"):
        raise SolverError(f"unknown method {method!r}")
    solves = 0
    policy = initial_policy

    if method == "dinkelbach":
        rho = lo
        best: Optional[RatioSolution] = None
        for _ in range(max_iter):
            solution = policy_iteration(
                mdp, _transformed(mdp, num, den, rho),
                initial_policy=policy)
            solves += 1
            policy = solution.policy
            g_num, g_den = _channel_gains(mdp, policy, num, den)
            if g_den < DEN_FLOOR:
                break  # degenerate policy; fall back to bisection
            new_rho = g_num / g_den
            best = RatioSolution(value=new_rho, policy=policy,
                                 gain_num=g_num, gain_den=g_den,
                                 iterations=solves, method="dinkelbach")
            if new_rho <= rho + tol and abs(solution.gain) <= max(
                    GAIN_TOL, tol * max(g_den, DEN_FLOOR)):
                return best
            if new_rho <= rho:  # numerical stall; answer is converged
                return best
            rho = new_rho
        if best is not None and solves >= max_iter:
            return best
        # fall through to bisection

    # Bisection on the profitability threshold.
    lo_b, hi_b = lo, hi
    best_policy = policy
    for _ in range(max_iter):
        if hi_b - lo_b <= tol:
            break
        mid = 0.5 * (lo_b + hi_b)
        solution = policy_iteration(mdp, _transformed(mdp, num, den, mid),
                                    initial_policy=best_policy)
        solves += 1
        if solution.gain > GAIN_TOL:
            lo_b = mid
            best_policy = solution.policy
        else:
            hi_b = mid
    if best_policy is None:
        solution = policy_iteration(mdp, _transformed(mdp, num, den, lo_b))
        solves += 1
        best_policy = solution.policy
    g_num, g_den = _channel_gains(mdp, best_policy, num, den)
    value = g_num / g_den if g_den > DEN_FLOOR else 0.5 * (lo_b + hi_b)
    return RatioSolution(value=float(value), policy=best_policy,
                         gain_num=g_num, gain_den=g_den,
                         iterations=solves, method="bisection")
