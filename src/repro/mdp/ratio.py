"""Maximization of gain ratios over policies.

The paper's relative-revenue utility (Eq. 1) and orphan-rate utility
(Eq. 3) are ratios of long-run accumulation rates::

    maximize over policies    gain_num(policy) / gain_den(policy)

Following Sapirshtein et al., the transformed reward
``w(rho) = num - rho * den`` turns this into a family of standard
average-reward problems whose optimal gain ``f(rho)`` is non-increasing
in ``rho`` and crosses zero exactly at the optimal ratio.

Three methods are provided:

- **Dinkelbach iteration** (default): repeatedly set ``rho`` to the
  ratio of the current policy and re-solve; converges superlinearly
  when every encountered policy has a positive denominator rate.
- **Bisection**: robust fallback that also handles the degenerate case
  where some policies have zero denominator rate (e.g. the "always
  wait" policy of the non-profit-driven model, for which
  ``f(rho) = 0`` for all ``rho`` beyond the optimum); there the answer
  is the threshold ``sup { rho : f(rho) > 0 }``.
- **PTO** (:mod:`repro.mdp.pto`): the probabilistic-termination
  reduction of Bar-Zur, Eyal & Tamar -- the transformed problems
  become *terminated* total-reward problems whose policy evaluations
  are independent of ``rho``, so one factorization per distinct policy
  serves every outer iteration.  Falls back to bisection on the same
  degeneracies as Dinkelbach (zero-denominator policies make the
  terminated system singular).

Every method threads the previous iterate's policy and bias vector
into the next transformed solve as a :class:`WarmStart`, so successive
solves start near their fixed point instead of from scratch (counter
``solver/ratio/warm_start_hits``).

The process-global default method mirrors the compute-backend
registry: explicit :func:`set_ratio_method` wins over the
``REPRO_RATIO_METHOD`` environment variable, which wins over
``"dinkelbach"``.  ``maximize_ratio(method=None)`` resolves through
:func:`current_ratio_method`, which is how the ``--ratio-method`` CLI
flag reaches every solve, including in spawned sweep workers.

With ``strict=True`` the Dinkelbach and PTO methods raise a typed
:class:`~repro.errors.SolverError` on degeneracy or iteration
exhaustion instead of silently switching method -- this is what the
:class:`repro.runtime.supervisor.SolverSupervisor` fallback chain uses
to make each recovery step explicit and diagnosable.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Mapping, Optional

import numpy as np

from repro.errors import SolverDivergedError, SolverError, SolverInputError
from repro.mdp.model import MDP
from repro.mdp.policy_iteration import AverageRewardSolution, policy_iteration
from repro.mdp.stationary import policy_gains
from repro.runtime.telemetry import counter_add, gauge_set, span

#: A gain below this (relative to the reward scale of the transformed
#: problem) counts as "zero" when testing profitability.
GAIN_TOL = 1e-10

#: Denominator rates below this (relative to the denominator channel's
#: reward scale) abort Dinkelbach in favour of bisection.  Scaling both
#: objective channels by a common factor must not change which policies
#: count as degenerate, so the floor is applied to
#: ``g_den / max|r_den|``, not to ``g_den`` itself.
DEN_FLOOR = 1e-9

#: Recognized ratio-objective methods, in fallback-chain order.
RATIO_METHODS = ("dinkelbach", "bisection", "pto")

#: Environment variable naming the default ratio method (same
#: precedence scheme as ``REPRO_BACKEND``: explicit setter > env >
#: built-in default).
RATIO_METHOD_ENV = "REPRO_RATIO_METHOD"

_ratio_method: Optional[str] = None


def set_ratio_method(method: Optional[str]) -> None:
    """Set the process-global default ratio method (``None`` resets to
    the environment/default resolution order)."""
    if method is not None and method not in RATIO_METHODS:
        raise SolverInputError(
            f"unknown ratio method {method!r}; expected one of "
            f"{RATIO_METHODS}")
    global _ratio_method
    _ratio_method = method


def current_ratio_method() -> str:
    """The ratio method ``maximize_ratio(method=None)`` will use:
    explicit :func:`set_ratio_method` > ``REPRO_RATIO_METHOD`` env >
    ``"dinkelbach"``."""
    if _ratio_method is not None:
        return _ratio_method
    env = os.environ.get(RATIO_METHOD_ENV, "").strip()
    if env:
        if env not in RATIO_METHODS:
            raise SolverInputError(
                f"{RATIO_METHOD_ENV}={env!r} names an unknown ratio "
                f"method; expected one of {RATIO_METHODS}")
        return env
    return "dinkelbach"


@dataclass
class WarmStart:
    """Starting point threaded between successive transformed solves.

    ``policy`` seeds policy iteration (``initial_policy=``); ``bias``
    seeds relative value iteration (``v0=``).  Solvers use whichever
    component they understand and ignore the other.
    """

    policy: np.ndarray
    bias: Optional[np.ndarray] = None


#: An average-reward solver usable by :func:`maximize_ratio`: takes the
#: MDP, a precombined reward array and an optional warm start.
AverageRewardSolver = Callable[[MDP, np.ndarray, Optional[WarmStart]],
                               AverageRewardSolution]


@dataclass
class RatioSolution:
    """Result of a ratio maximization.

    Attributes
    ----------
    value:
        The maximal ratio ``gain_num / gain_den``.
    policy:
        A policy achieving it.
    gain_num, gain_den:
        The two channel rates under that policy.
    iterations:
        Method rounds performed (transformed-MDP solves for
        Dinkelbach/bisection; outer ``rho`` updates for PTO).
    method:
        ``"dinkelbach"``, ``"bisection"`` or ``"pto"`` (which method
        produced the final answer).
    transformed_solves:
        Number of transformed-problem solves actually paid for:
        average-reward solves for Dinkelbach/bisection, terminated
        policy evaluations (sparse LU factorizations) for PTO.  This is
        the quantity the ``ratio-methods`` benchmark gates.
    """

    value: float
    policy: np.ndarray
    gain_num: float
    gain_den: float
    iterations: int
    method: str
    transformed_solves: int = 0


def _default_solver(mdp: MDP, reward: np.ndarray,
                    warm: Optional[WarmStart]) -> AverageRewardSolution:
    initial = None if warm is None else warm.policy
    return policy_iteration(mdp, reward, initial_policy=initial)


def _channel_gains(mdp: MDP, policy: np.ndarray,
                   num: Mapping[str, float],
                   den: Mapping[str, float],
                   rho: Optional[float] = None) -> tuple:
    gains = policy_gains(mdp, policy, set(num) | set(den))
    g_num = sum(w * gains[c] for c, w in num.items())
    g_den = sum(w * gains[c] for c, w in den.items())
    if not (np.isfinite(g_num) and np.isfinite(g_den)):
        where = "" if rho is None else f" at rho={rho!r}"
        raise SolverDivergedError(
            f"non-finite channel gains{where}: "
            f"gain_num={g_num!r}, gain_den={g_den!r}")
    return g_num, g_den


def _transformed(mdp: MDP, num: Mapping[str, float],
                 den: Mapping[str, float], rho: float) -> np.ndarray:
    weights = dict(num)
    for c, w in den.items():
        weights[c] = weights.get(c, 0.0) - rho * w
    return mdp.combined_reward(weights)


def _validate_inputs(num: Mapping[str, float], den: Mapping[str, float],
                     lo: float, hi: float, tol: float, max_iter: int,
                     method: str) -> None:
    if not num:
        raise SolverInputError("numerator channel mapping is empty")
    if not den:
        raise SolverInputError("denominator channel mapping is empty")
    if tol <= 0:
        raise SolverInputError(f"tol must be positive, got {tol!r}")
    if max_iter < 1:
        raise SolverInputError(f"max_iter must be >= 1, got {max_iter!r}")
    if not (np.isfinite(lo) and np.isfinite(hi)):
        raise SolverInputError(f"ratio bracket [{lo!r}, {hi!r}] must be "
                               "finite")
    if hi <= lo:
        raise SolverError("ratio bracket must satisfy lo < hi")
    if method not in RATIO_METHODS:
        raise SolverError(f"unknown method {method!r}")


def maximize_ratio(mdp: MDP, num: Mapping[str, float],
                   den: Mapping[str, float], lo: float, hi: float,
                   tol: float = 1e-7, max_iter: int = 80,
                   method: Optional[str] = None,
                   initial_policy: Optional[np.ndarray] = None,
                   strict: bool = False,
                   solver: Optional[AverageRewardSolver] = None,
                   on_solve: Optional[Callable[[int], None]] = None
                   ) -> RatioSolution:
    """Maximize ``gain(num) / gain(den)`` over stationary policies.

    Parameters
    ----------
    num, den:
        Channel-weight mappings defining numerator and denominator.
    lo, hi:
        Bracket known to contain the optimal ratio.
    tol:
        Absolute precision of the returned ratio.
    method:
        ``"dinkelbach"`` or ``"pto"`` (each with automatic bisection
        fallback unless ``strict``) or ``"bisection"``.  ``None``
        (default) resolves via :func:`current_ratio_method`.
    initial_policy:
        Optional warm start.
    strict:
        Dinkelbach/PTO only: raise :class:`~repro.errors.SolverError`
        when the iteration hits a zero-denominator policy or exhausts
        ``max_iter`` instead of silently falling back to bisection.
        Used by the supervised fallback chain, where each stage must
        fail loudly for the next stage to be tried deliberately.
    solver:
        Average-reward solver for the transformed problems; defaults
        to :func:`repro.mdp.policy_iteration.policy_iteration`.  The
        supervised fallback chain substitutes relative value iteration
        or the occupation-measure LP here.  (The PTO method performs
        its own terminated evaluations and does not use this.)
    on_solve:
        Called with the running transformed-solve count after each
        solve -- a budget supervisor's tick hook.
    """
    if method is None:
        method = current_ratio_method()
    _validate_inputs(num, den, lo, hi, tol, max_iter, method)
    if solver is None:
        solver = _default_solver
    solves = 0
    warm: Optional[WarmStart] = None
    if initial_policy is not None:
        warm = WarmStart(policy=np.asarray(initial_policy, dtype=int))

    # Reward scales make every tolerance below scale-equivariant:
    # multiplying num and/or den by a common factor changes neither
    # which policies count as degenerate nor the relative accuracy of
    # the accepted ratio (absolute GAIN_TOL/DEN_FLOOR would).
    num_scale = float(np.abs(mdp.combined_reward(num)).max())
    den_scale = float(np.abs(mdp.combined_reward(den)).max())
    den_floor = DEN_FLOOR * (den_scale if den_scale > 0 else 1.0)

    def run_solver(reward: np.ndarray,
                   warm: Optional[WarmStart]) -> AverageRewardSolution:
        nonlocal solves
        if warm is not None:
            counter_add("solver/ratio/warm_start_hits")
        solution = solver(mdp, reward, warm)
        solves += 1
        counter_add("solver/ratio/transformed_solves")
        if on_solve is not None:
            on_solve(solves)
        return solution

    def finish(solution: RatioSolution,
               residual: float) -> RatioSolution:
        counter_add("solver/ratio/solves")
        counter_add(f"solver/ratio/{solution.method}_wins")
        gauge_set("solver/ratio/value", solution.value)
        gauge_set("solver/ratio/final_residual", residual)
        return solution

    if method == "pto":
        from repro.mdp.pto import solve_pto  # deferred: pto imports us
        try:
            solution, residual = solve_pto(
                mdp, num, den, lo, hi, tol=tol, max_iter=max_iter,
                initial_policy=initial_policy, on_solve=on_solve)
            return finish(solution, residual)
        except SolverInputError:
            raise  # malformed problem; no method can recover
        except SolverError:
            if strict:
                raise
            # Degenerate (zero-denominator) policies make the
            # terminated evaluation singular -- the same cases that
            # abort Dinkelbach.  Recover with bisection.
            counter_add("solver/ratio/pto/fallbacks")
        # fall through to bisection

    if method == "dinkelbach":
        with span("solve/ratio/dinkelbach"):
            rho = lo
            best: Optional[RatioSolution] = None
            for _ in range(max_iter):
                counter_add("solver/ratio/dinkelbach_rounds")
                solution = run_solver(_transformed(mdp, num, den, rho),
                                      warm)
                warm = WarmStart(policy=solution.policy,
                                 bias=solution.bias)
                policy = solution.policy
                g_num, g_den = _channel_gains(mdp, policy, num, den,
                                              rho=rho)
                if g_den < den_floor:
                    if strict:
                        raise SolverError(
                            "Dinkelbach hit a degenerate "
                            "(zero-denominator) "
                            f"policy at rho={rho!r}: gain_num={g_num!r}, "
                            f"gain_den={g_den!r} "
                            f"(den_floor={den_floor!r})")
                    break  # degenerate policy; fall back to bisection
                new_rho = g_num / g_den
                best = RatioSolution(value=new_rho, policy=policy,
                                     gain_num=g_num, gain_den=g_den,
                                     iterations=solves,
                                     method="dinkelbach",
                                     transformed_solves=solves)
                # Scale-aware acceptance: the ratio step is measured
                # relative to the ratio's own magnitude and the
                # transformed-gain residual relative to the achieved
                # channel gains, so every reward scaling converges to
                # the same *relative* accuracy.
                gain_scale = max(abs(g_num), abs(g_den))
                if (new_rho <= rho + tol * max(1.0, abs(new_rho))
                        and abs(solution.gain)
                        <= max(GAIN_TOL, tol) * gain_scale):
                    return finish(best, abs(solution.gain))
                if new_rho <= rho:  # numerical stall; converged
                    return finish(best, abs(solution.gain))
                rho = new_rho
            else:
                if strict:
                    raise SolverError(
                        f"Dinkelbach did not converge in {max_iter} "
                        f"transformed solves (last rho={rho!r})")
                if best is not None:
                    return finish(best, abs(solution.gain))
            if strict and best is None:
                raise SolverError(
                    "Dinkelbach made no progress before degenerating at "
                    f"rho={rho!r}")
        # fall through to bisection

    # Bisection on the profitability threshold.
    with span("solve/ratio/bisection"):
        lo_b, hi_b = lo, hi
        best_warm = warm
        best_policy = None if warm is None else warm.policy
        last_gain = float("nan")
        for _ in range(max_iter):
            if hi_b - lo_b <= tol * max(1.0, abs(lo_b), abs(hi_b)):
                break
            counter_add("solver/ratio/bisection_rounds")
            mid = 0.5 * (lo_b + hi_b)
            solution = run_solver(_transformed(mdp, num, den, mid),
                                  best_warm)
            last_gain = abs(solution.gain)
            # Profitability is judged relative to the transformed
            # reward's scale: with both channels scaled by 1e-8, an
            # absolute threshold would classify every mid within ~1e-2
            # of the optimum as unprofitable and bias the bracket.
            w_scale = max(num_scale, abs(mid) * den_scale)
            if solution.gain > GAIN_TOL * max(w_scale, 1e-300):
                lo_b = mid
                best_policy = solution.policy
                best_warm = WarmStart(policy=solution.policy,
                                      bias=solution.bias)
            else:
                hi_b = mid
        if best_policy is None:
            solution = run_solver(_transformed(mdp, num, den, lo_b), None)
            best_policy = solution.policy
            last_gain = abs(solution.gain)
        g_num, g_den = _channel_gains(mdp, best_policy, num, den,
                                      rho=lo_b)
        value = g_num / g_den if g_den > den_floor else 0.5 * (lo_b + hi_b)
        if not np.isfinite(value):
            raise SolverDivergedError(
                f"ratio bisection produced non-finite value {value!r} "
                f"(gain_num={g_num!r}, gain_den={g_den!r})")
        return finish(RatioSolution(value=float(value), policy=best_policy,
                                    gain_num=g_num, gain_den=g_den,
                                    iterations=solves, method="bisection",
                                    transformed_solves=solves),
                      last_gain)
