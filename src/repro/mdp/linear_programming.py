"""Linear-programming solver for average-reward MDPs.

An independent cross-check of the dynamic-programming solvers: the
optimal gain of a unichain average-reward MDP is the value of the LP
over state-action *occupation measures* ``x(s, a)``::

    maximize    sum_{s,a} r(s, a) x(s, a)
    subject to  sum_a x(t, a) = sum_{s,a} P(t | s, a) x(s, a)   (balance)
                sum_{s,a} x(s, a) = 1,   x >= 0

Solved with ``scipy.optimize.linprog`` (HiGHS).  The optimal basic
solution concentrates on one action per recurrent state; transient
states get an arbitrary (zero-mass) action.  Intended for validation
and for small models -- the policy-iteration solver remains the
production path.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from scipy import optimize, sparse

from repro.errors import SolverError
from repro.mdp.model import MDP


def lp_average_reward(mdp: MDP, reward: np.ndarray
                      ) -> Tuple[float, np.ndarray]:
    """Solve the average-reward LP and return ``(gain, policy)``.

    The policy assigns, per state, the action with the largest
    occupation mass (transient states fall back to the first available
    action, whose choice cannot affect the gain of a unichain model
    only through recurrent behaviour -- callers wanting transient
    optimality should use :func:`repro.mdp.policy_iteration.policy_iteration`).
    """
    reward = np.asarray(reward, dtype=float)
    n, na = mdp.n_states, mdp.n_actions
    pairs = [(s, a) for a in range(na) for s in range(n)
             if mdp.available[a, s]]
    index = {pair: i for i, pair in enumerate(pairs)}
    n_vars = len(pairs)

    cost = np.array([-reward[a, s] for s, a in pairs])

    rows, cols, vals = [], [], []
    for (s, a), i in index.items():
        rows.append(s)
        cols.append(i)
        vals.append(1.0)
        mat = mdp.transition[a]
        lo, hi = mat.indptr[s], mat.indptr[s + 1]
        for t, p in zip(mat.indices[lo:hi], mat.data[lo:hi]):
            rows.append(int(t))
            cols.append(i)
            vals.append(-float(p))
    balance = sparse.csr_matrix((vals, (rows, cols)), shape=(n, n_vars))
    normalization = sparse.csr_matrix(np.ones((1, n_vars)))
    a_eq = sparse.vstack([balance, normalization], format="csc")
    b_eq = np.zeros(n + 1)
    b_eq[-1] = 1.0

    result = optimize.linprog(cost, A_eq=a_eq, b_eq=b_eq,
                              bounds=(0, None), method="highs")
    if not result.success:  # pragma: no cover - solver failure path
        raise SolverError(f"LP solve failed: {result.message}")
    gain = -float(result.fun)

    mass = result.x
    policy = np.asarray(mdp.available.argmax(axis=0), dtype=int)
    best_mass = np.zeros(n)
    for (s, a), i in index.items():
        if mass[i] > best_mass[s] + 1e-12:
            best_mass[s] = mass[i]
            policy[s] = a
    return gain, policy


def lp_gain(mdp: MDP, reward: np.ndarray,
            expected: Optional[float] = None, tol: float = 1e-7) -> float:
    """Convenience: return the LP gain, optionally asserting agreement
    with an expected value (used by validation tests)."""
    gain, _policy = lp_average_reward(mdp, reward)
    if expected is not None and abs(gain - expected) > tol:
        raise SolverError(
            f"LP gain {gain} disagrees with expected {expected}")
    return gain
