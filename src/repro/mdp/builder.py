"""Incremental MDP construction.

The builder interns state keys, accumulates transitions per
(state, action) pair, merges duplicate (state, action, next) entries by
summing probabilities (with probability-weighted rewards, the way the
paper's Table 1 merges events that lead to the same state), and
validates row-stochasticity when :meth:`MDPBuilder.build` is called.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence, Tuple

import numpy as np
from scipy import sparse

from repro.errors import InvalidTransitionError, MDPError
from repro.mdp.model import MDP, PROB_TOL


class MDPBuilder:
    """Builds an :class:`repro.mdp.model.MDP` incrementally."""

    def __init__(self, actions: Sequence[str],
                 channels: Sequence[str]) -> None:
        if len(set(actions)) != len(actions):
            raise MDPError("duplicate action names")
        if len(set(channels)) != len(channels):
            raise MDPError("duplicate channel names")
        self.actions: List[str] = list(actions)
        self.channels: List[str] = list(channels)
        self._action_index = {a: i for i, a in enumerate(self.actions)}
        self._keys: List[Hashable] = []
        self._index: Dict[Hashable, int] = {}
        # (state, action) -> {next_state: [prob, channel_reward_sums...]}
        self._entries: Dict[Tuple[int, int], Dict[int, np.ndarray]] = {}

    def state_id(self, key: Hashable) -> int:
        """Intern ``key`` and return its state index."""
        idx = self._index.get(key)
        if idx is None:
            idx = len(self._keys)
            self._index[key] = idx
            self._keys.append(key)
        return idx

    def __contains__(self, key: Hashable) -> bool:
        return key in self._index

    @property
    def n_states(self) -> int:
        """Number of states interned so far."""
        return len(self._keys)

    def add(self, state: Hashable, action: str, next_state: Hashable,
            prob: float, **rewards: float) -> None:
        """Record a transition.

        ``rewards`` are the channel rewards received *if this event
        happens*; the builder converts them to expected rewards when
        multiple events merge.
        """
        if prob < 0 or prob > 1 + PROB_TOL:
            raise InvalidTransitionError(f"probability {prob} out of range")
        if prob == 0:
            return
        unknown = set(rewards) - set(self.channels)
        if unknown:
            raise MDPError(f"unknown reward channels {sorted(unknown)}")
        a = self._action_index.get(action)
        if a is None:
            raise MDPError(f"unknown action {action!r}")
        s = self.state_id(state)
        t = self.state_id(next_state)
        bucket = self._entries.setdefault((s, a), {})
        row = bucket.get(t)
        if row is None:
            row = np.zeros(1 + len(self.channels))
            bucket[t] = row
        row[0] += prob
        for i, name in enumerate(self.channels):
            row[1 + i] += prob * rewards.get(name, 0.0)

    def build(self, start: Hashable, validate: bool = True) -> MDP:
        """Assemble the MDP.  ``start`` must be an interned state key."""
        if start not in self._index:
            raise MDPError(f"unknown start state {start!r}")
        n = len(self._keys)
        n_actions = len(self.actions)
        available = np.zeros((n_actions, n), dtype=bool)
        rewards = {c: np.zeros((n_actions, n)) for c in self.channels}
        mats: List[sparse.csr_matrix] = []
        per_action: List[Tuple[List[int], List[int], List[float]]] = [
            ([], [], []) for _ in range(n_actions)]
        for (s, a), bucket in self._entries.items():
            available[a, s] = True
            rows, cols, vals = per_action[a]
            total = 0.0
            for t, row in bucket.items():
                rows.append(s)
                cols.append(t)
                vals.append(row[0])
                total += row[0]
                for i, name in enumerate(self.channels):
                    rewards[name][a, s] += row[1 + i]
            if validate and abs(total - 1.0) > PROB_TOL:
                raise InvalidTransitionError(
                    f"probabilities for state {self._keys[s]!r} action "
                    f"{self.actions[a]!r} sum to {total}")
        for a in range(n_actions):
            rows, cols, vals = per_action[a]
            mats.append(sparse.csr_matrix(
                (vals, (rows, cols)), shape=(n, n)))
        return MDP(state_keys=self._keys, actions=self.actions,
                   transition=mats, rewards=rewards, available=available,
                   start=self._index[start], validate=validate)
