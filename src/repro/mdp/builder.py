"""Incremental MDP construction.

The builder interns state keys, accumulates transitions as flat
coordinate lists, merges duplicate (state, action, next) entries by
summing probabilities (with probability-weighted rewards, the way the
paper's Table 1 merges events that lead to the same state), and
validates row-stochasticity when :meth:`MDPBuilder.build` is called.

``add`` is the hottest pure-Python call in the attack-MDP build (one
call per generated transition, ~180k for the 30,595-state setting-2
model), so it does nothing but append to flat lists; all merging and
matrix assembly happens vectorized in :meth:`MDPBuilder.build` (CSR
construction from COO triplets sums duplicates, ``np.add.at``
accumulates expected rewards).

For lookahead caps well past the paper's ``ad=6`` (the approximate
engine's territory: hundreds of thousands of states), even one Python
call per transition is too slow; :meth:`MDPBuilder.state_ids` bulk-
interns key sequences and :meth:`MDPBuilder.add_batch` records whole
transition arrays per action, stored as chunks and concatenated once
at :meth:`MDPBuilder.build`.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

from repro.errors import InvalidTransitionError, MDPError
from repro.mdp.model import MDP, PROB_TOL


class MDPBuilder:
    """Builds an :class:`repro.mdp.model.MDP` incrementally."""

    def __init__(self, actions: Sequence[str],
                 channels: Sequence[str]) -> None:
        if len(set(actions)) != len(actions):
            raise MDPError("duplicate action names")
        if len(set(channels)) != len(channels):
            raise MDPError("duplicate channel names")
        self.actions: List[str] = list(actions)
        self.channels: List[str] = list(channels)
        self._action_index = {a: i for i, a in enumerate(self.actions)}
        self._keys: List[Hashable] = []
        self._index: Dict[Hashable, int] = {}
        # Flat COO-style triplet lists, one entry per add() call.
        self._src: List[int] = []
        self._act: List[int] = []
        self._dst: List[int] = []
        self._prob: List[float] = []
        # Per-channel expected-reward scatter lists: (state, action,
        # prob * reward) triplets, appended only for nonzero rewards.
        self._rew: Dict[str, Tuple[List[int], List[int], List[float]]] = {
            c: ([], [], []) for c in self.channels}
        # Array chunks appended by add_batch(); concatenated with the
        # flat lists at build() time.
        self._batch: List[Tuple[np.ndarray, np.ndarray, np.ndarray,
                                np.ndarray]] = []
        self._rew_batch: Dict[str, List[Tuple[np.ndarray, np.ndarray,
                                              np.ndarray]]] = {
            c: [] for c in self.channels}

    def state_id(self, key: Hashable) -> int:
        """Intern ``key`` and return its state index."""
        idx = self._index.get(key)
        if idx is None:
            idx = len(self._keys)
            self._index[key] = idx
            self._keys.append(key)
        return idx

    def __contains__(self, key: Hashable) -> bool:
        return key in self._index

    @property
    def n_states(self) -> int:
        """Number of states interned so far."""
        return len(self._keys)

    def add(self, state: Hashable, action: str, next_state: Hashable,
            prob: float, **rewards: float) -> None:
        """Record a transition.

        ``rewards`` are the channel rewards received *if this event
        happens*; the builder converts them to expected rewards when
        multiple events merge.
        """
        if prob < 0 or prob > 1 + PROB_TOL:
            raise InvalidTransitionError(f"probability {prob} out of range")
        if prob == 0:
            return
        a = self._action_index.get(action)
        if a is None:
            raise MDPError(f"unknown action {action!r}")
        s = self.state_id(state)
        t = self.state_id(next_state)
        self._src.append(s)
        self._act.append(a)
        self._dst.append(t)
        self._prob.append(prob)
        if rewards:
            rew = self._rew
            for name, value in rewards.items():
                lists = rew.get(name)
                if lists is None:
                    unknown = sorted(set(rewards) - set(self.channels))
                    raise MDPError(f"unknown reward channels {unknown}")
                if value != 0.0:
                    lists[0].append(s)
                    lists[1].append(a)
                    lists[2].append(prob * value)

    def state_ids(self, keys: Sequence[Hashable]) -> np.ndarray:
        """Bulk-intern a sequence of state keys -> ``(len(keys),)``
        index array (the vectorized companion of :meth:`state_id`)."""
        return np.fromiter((self.state_id(k) for k in keys),
                           dtype=np.intp, count=len(keys))

    def add_batch(self, states, action: str, next_states, probs,
                  **rewards) -> None:
        """Record many transitions of one action at once, array-based.

        This is the path for lookahead caps well past the paper's
        ``ad=6`` (hundreds of thousands of generated transitions),
        where one Python-level :meth:`add` call per transition
        dominates the build.  ``states`` and ``next_states`` are
        pre-interned index arrays (see :meth:`state_ids`), ``probs``
        the per-transition probabilities, and each ``rewards`` entry a
        per-transition reward array for that channel (converted to
        expected rewards exactly like :meth:`add`).  Zero-probability
        entries are dropped, matching the scalar path.
        """
        a = self._action_index.get(action)
        if a is None:
            raise MDPError(f"unknown action {action!r}")
        src = np.asarray(states, dtype=np.intp)
        dst = np.asarray(next_states, dtype=np.intp)
        prob = np.asarray(probs, dtype=float)
        if not (src.shape == dst.shape == prob.shape
                and src.ndim == 1):
            raise MDPError(
                f"add_batch arrays disagree in shape: states "
                f"{src.shape}, next_states {dst.shape}, probs "
                f"{prob.shape}")
        n = len(self._keys)
        for name, arr in (("states", src), ("next_states", dst)):
            if arr.size and (arr.min() < 0 or arr.max() >= n):
                raise MDPError(
                    f"add_batch {name} contains indices outside the "
                    f"{n} interned states; intern keys with "
                    f"state_ids() first")
        if prob.size and (prob.min() < 0 or prob.max() > 1 + PROB_TOL):
            bad = float(prob[(prob < 0)
                             | (prob > 1 + PROB_TOL)][0])
            raise InvalidTransitionError(
                f"probability {bad} out of range")
        keep: Optional[np.ndarray] = None
        if (prob == 0).any():
            keep = prob != 0
            src, dst, prob = src[keep], dst[keep], prob[keep]
        act = np.full(src.shape, a, dtype=np.intp)
        self._batch.append((src, act, dst, prob))
        for name, values in rewards.items():
            chunks = self._rew_batch.get(name)
            if chunks is None:
                unknown = sorted(set(rewards) - set(self.channels))
                raise MDPError(f"unknown reward channels {unknown}")
            vals = np.asarray(values, dtype=float)
            if keep is not None:
                if vals.shape != keep.shape:
                    raise MDPError(
                        f"add_batch reward channel {name!r} has shape "
                        f"{vals.shape}, expected {keep.shape}")
                vals = vals[keep]
            elif vals.shape != src.shape:
                raise MDPError(
                    f"add_batch reward channel {name!r} has shape "
                    f"{vals.shape}, expected {src.shape}")
            nz = vals != 0.0
            if nz.any():
                chunks.append((src[nz], act[nz], prob[nz] * vals[nz]))

    def extend(self, transitions) -> None:
        """Bulk-record an iterable of raw ``(state, action,
        next_state, prob, rewards)`` tuples.

        Equivalent to calling :meth:`add` once per entry but with the
        per-call overhead (argument packing, attribute lookups) hoisted
        out of the loop -- this is the path the attack-MDP build uses
        for its ~180k generated transitions.
        """
        index = self._index
        keys = self._keys
        action_index = self._action_index
        src_append = self._src.append
        act_append = self._act.append
        dst_append = self._dst.append
        prob_append = self._prob.append
        rew = self._rew
        for state, action, next_state, prob, rewards in transitions:
            if prob < 0 or prob > 1 + PROB_TOL:
                raise InvalidTransitionError(
                    f"probability {prob} out of range")
            if prob == 0:
                continue
            a = action_index.get(action)
            if a is None:
                raise MDPError(f"unknown action {action!r}")
            s = index.get(state)
            if s is None:
                s = len(keys)
                index[state] = s
                keys.append(state)
            t = index.get(next_state)
            if t is None:
                t = len(keys)
                index[next_state] = t
                keys.append(next_state)
            src_append(s)
            act_append(a)
            dst_append(t)
            prob_append(prob)
            for name, value in rewards.items():
                lists = rew.get(name)
                if lists is None:
                    unknown = sorted(set(rewards) - set(self.channels))
                    raise MDPError(f"unknown reward channels {unknown}")
                if value != 0.0:
                    lists[0].append(s)
                    lists[1].append(a)
                    lists[2].append(prob * value)

    def build(self, start: Hashable, validate: bool = True) -> MDP:
        """Assemble the MDP.  ``start`` must be an interned state key.

        Row-stochasticity is checked by the assembled
        :class:`~repro.mdp.model.MDP`'s own validator (pass
        ``validate=False`` to skip it, e.g. for deliberately partial
        test fixtures).
        """
        if start not in self._index:
            raise MDPError(f"unknown start state {start!r}")
        src_parts = [np.asarray(self._src, dtype=np.intp)]
        act_parts = [np.asarray(self._act, dtype=np.intp)]
        dst_parts = [np.asarray(self._dst, dtype=np.intp)]
        prob_parts = [np.asarray(self._prob, dtype=float)]
        for b_src, b_act, b_dst, b_prob in self._batch:
            src_parts.append(b_src)
            act_parts.append(b_act)
            dst_parts.append(b_dst)
            prob_parts.append(b_prob)
        src = np.concatenate(src_parts)
        act = np.concatenate(act_parts)
        dst = np.concatenate(dst_parts)
        prob = np.concatenate(prob_parts)
        rew = {}
        for name in self.channels:
            ss, aa, vv = self._rew[name]
            chunks = self._rew_batch[name]
            rew[name] = (
                np.concatenate([np.asarray(ss, dtype=np.intp)]
                               + [c[0] for c in chunks]),
                np.concatenate([np.asarray(aa, dtype=np.intp)]
                               + [c[1] for c in chunks]),
                np.concatenate([np.asarray(vv, dtype=float)]
                               + [c[2] for c in chunks]))
        return assemble_mdp(self._keys, self.actions, src, act, dst,
                            prob, rew, self._index[start],
                            validate=validate)


def assemble_mdp(keys, actions, src, act, dst, prob, rew_scatter,
                 start_index, validate: bool = True) -> MDP:
    """Assemble an :class:`~repro.mdp.model.MDP` from flat COO-style
    arrays.

    Shared by :meth:`MDPBuilder.build` and the vectorized attack-MDP
    fast path.  ``src``/``act``/``dst``/``prob`` are parallel arrays
    (one entry per recorded transition); ``rew_scatter`` maps each
    channel name to ``(state_idx, action_idx, value)`` scatter arrays
    of *expected* (probability-weighted) rewards.
    """
    n = len(keys)
    n_actions = len(actions)
    available = np.zeros((n_actions, n), dtype=bool)
    available[act, src] = True

    rewards = {}
    for name, (ss, aa, vv) in rew_scatter.items():
        arr = np.zeros((n_actions, n))
        if len(ss):
            np.add.at(arr, (aa, ss), vv)
        rewards[name] = arr

    mats: List[sparse.csr_matrix] = []
    for a in range(n_actions):
        mask = act == a
        # The CSR constructor sums duplicate (row, col) entries,
        # which performs the (state, action, next) merge.
        mats.append(sparse.csr_matrix(
            (prob[mask], (src[mask], dst[mask])), shape=(n, n)))
    return MDP(state_keys=keys, actions=actions, transition=mats,
               rewards=rewards, available=available, start=start_index,
               validate=validate)
