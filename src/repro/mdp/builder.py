"""Incremental MDP construction.

The builder interns state keys, accumulates transitions as flat
coordinate lists, merges duplicate (state, action, next) entries by
summing probabilities (with probability-weighted rewards, the way the
paper's Table 1 merges events that lead to the same state), and
validates row-stochasticity when :meth:`MDPBuilder.build` is called.

``add`` is the hottest pure-Python call in the attack-MDP build (one
call per generated transition, ~180k for the 30,595-state setting-2
model), so it does nothing but append to flat lists; all merging and
matrix assembly happens vectorized in :meth:`MDPBuilder.build` (CSR
construction from COO triplets sums duplicates, ``np.add.at``
accumulates expected rewards).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence, Tuple

import numpy as np
from scipy import sparse

from repro.errors import InvalidTransitionError, MDPError
from repro.mdp.model import MDP, PROB_TOL


class MDPBuilder:
    """Builds an :class:`repro.mdp.model.MDP` incrementally."""

    def __init__(self, actions: Sequence[str],
                 channels: Sequence[str]) -> None:
        if len(set(actions)) != len(actions):
            raise MDPError("duplicate action names")
        if len(set(channels)) != len(channels):
            raise MDPError("duplicate channel names")
        self.actions: List[str] = list(actions)
        self.channels: List[str] = list(channels)
        self._action_index = {a: i for i, a in enumerate(self.actions)}
        self._keys: List[Hashable] = []
        self._index: Dict[Hashable, int] = {}
        # Flat COO-style triplet lists, one entry per add() call.
        self._src: List[int] = []
        self._act: List[int] = []
        self._dst: List[int] = []
        self._prob: List[float] = []
        # Per-channel expected-reward scatter lists: (state, action,
        # prob * reward) triplets, appended only for nonzero rewards.
        self._rew: Dict[str, Tuple[List[int], List[int], List[float]]] = {
            c: ([], [], []) for c in self.channels}

    def state_id(self, key: Hashable) -> int:
        """Intern ``key`` and return its state index."""
        idx = self._index.get(key)
        if idx is None:
            idx = len(self._keys)
            self._index[key] = idx
            self._keys.append(key)
        return idx

    def __contains__(self, key: Hashable) -> bool:
        return key in self._index

    @property
    def n_states(self) -> int:
        """Number of states interned so far."""
        return len(self._keys)

    def add(self, state: Hashable, action: str, next_state: Hashable,
            prob: float, **rewards: float) -> None:
        """Record a transition.

        ``rewards`` are the channel rewards received *if this event
        happens*; the builder converts them to expected rewards when
        multiple events merge.
        """
        if prob < 0 or prob > 1 + PROB_TOL:
            raise InvalidTransitionError(f"probability {prob} out of range")
        if prob == 0:
            return
        a = self._action_index.get(action)
        if a is None:
            raise MDPError(f"unknown action {action!r}")
        s = self.state_id(state)
        t = self.state_id(next_state)
        self._src.append(s)
        self._act.append(a)
        self._dst.append(t)
        self._prob.append(prob)
        if rewards:
            rew = self._rew
            for name, value in rewards.items():
                lists = rew.get(name)
                if lists is None:
                    unknown = sorted(set(rewards) - set(self.channels))
                    raise MDPError(f"unknown reward channels {unknown}")
                if value != 0.0:
                    lists[0].append(s)
                    lists[1].append(a)
                    lists[2].append(prob * value)

    def extend(self, transitions) -> None:
        """Bulk-record an iterable of raw ``(state, action,
        next_state, prob, rewards)`` tuples.

        Equivalent to calling :meth:`add` once per entry but with the
        per-call overhead (argument packing, attribute lookups) hoisted
        out of the loop -- this is the path the attack-MDP build uses
        for its ~180k generated transitions.
        """
        index = self._index
        keys = self._keys
        action_index = self._action_index
        src_append = self._src.append
        act_append = self._act.append
        dst_append = self._dst.append
        prob_append = self._prob.append
        rew = self._rew
        for state, action, next_state, prob, rewards in transitions:
            if prob < 0 or prob > 1 + PROB_TOL:
                raise InvalidTransitionError(
                    f"probability {prob} out of range")
            if prob == 0:
                continue
            a = action_index.get(action)
            if a is None:
                raise MDPError(f"unknown action {action!r}")
            s = index.get(state)
            if s is None:
                s = len(keys)
                index[state] = s
                keys.append(state)
            t = index.get(next_state)
            if t is None:
                t = len(keys)
                index[next_state] = t
                keys.append(next_state)
            src_append(s)
            act_append(a)
            dst_append(t)
            prob_append(prob)
            for name, value in rewards.items():
                lists = rew.get(name)
                if lists is None:
                    unknown = sorted(set(rewards) - set(self.channels))
                    raise MDPError(f"unknown reward channels {unknown}")
                if value != 0.0:
                    lists[0].append(s)
                    lists[1].append(a)
                    lists[2].append(prob * value)

    def build(self, start: Hashable, validate: bool = True) -> MDP:
        """Assemble the MDP.  ``start`` must be an interned state key.

        Row-stochasticity is checked by the assembled
        :class:`~repro.mdp.model.MDP`'s own validator (pass
        ``validate=False`` to skip it, e.g. for deliberately partial
        test fixtures).
        """
        if start not in self._index:
            raise MDPError(f"unknown start state {start!r}")
        src = np.asarray(self._src, dtype=np.intp)
        act = np.asarray(self._act, dtype=np.intp)
        dst = np.asarray(self._dst, dtype=np.intp)
        prob = np.asarray(self._prob, dtype=float)
        rew = {}
        for name in self.channels:
            ss, aa, vv = self._rew[name]
            rew[name] = (np.asarray(ss, dtype=np.intp),
                         np.asarray(aa, dtype=np.intp),
                         np.asarray(vv, dtype=float))
        return assemble_mdp(self._keys, self.actions, src, act, dst,
                            prob, rew, self._index[start],
                            validate=validate)


def assemble_mdp(keys, actions, src, act, dst, prob, rew_scatter,
                 start_index, validate: bool = True) -> MDP:
    """Assemble an :class:`~repro.mdp.model.MDP` from flat COO-style
    arrays.

    Shared by :meth:`MDPBuilder.build` and the vectorized attack-MDP
    fast path.  ``src``/``act``/``dst``/``prob`` are parallel arrays
    (one entry per recorded transition); ``rew_scatter`` maps each
    channel name to ``(state_idx, action_idx, value)`` scatter arrays
    of *expected* (probability-weighted) rewards.
    """
    n = len(keys)
    n_actions = len(actions)
    available = np.zeros((n_actions, n), dtype=bool)
    available[act, src] = True

    rewards = {}
    for name, (ss, aa, vv) in rew_scatter.items():
        arr = np.zeros((n_actions, n))
        if len(ss):
            np.add.at(arr, (aa, ss), vv)
        rewards[name] = arr

    mats: List[sparse.csr_matrix] = []
    for a in range(n_actions):
        mask = act == a
        # The CSR constructor sums duplicate (row, col) entries,
        # which performs the (state, action, next) merge.
        mats.append(sparse.csr_matrix(
            (prob[mask], (src[mask], dst[mask])), shape=(n, n)))
    return MDP(state_keys=keys, actions=actions, transition=mats,
               rewards=rewards, available=available, start=start_index,
               validate=validate)
