"""Immutable sparse MDP container.

An :class:`MDP` stores, per named action, a sparse row-stochastic
transition matrix and, per named *reward channel*, the expected
immediate reward of every (state, action) pair.  Multiple channels let
one transition structure serve several utility functions: the paper's
three incentive models all reuse the same strategy-space MDP and differ
only in which channels enter the numerator and denominator.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np
from scipy import sparse

from repro.errors import InvalidTransitionError, MDPError, NoActionError

#: Tolerance for "probabilities sum to one" checks.
PROB_TOL = 1e-9


class MDP:
    """A finite MDP with named actions and multi-channel rewards.

    Parameters
    ----------
    state_keys:
        One hashable key per state (index = state id).
    actions:
        Action names; indices into ``transition`` and reward arrays.
    transition:
        One ``(N, N)`` CSR matrix per action.  Rows of unavailable
        (state, action) pairs are all-zero.
    rewards:
        Channel name -> ``(A, N)`` array of expected immediate rewards.
    available:
        ``(A, N)`` boolean mask of action availability.
    start:
        Index of the start state.
    """

    def __init__(self, state_keys: Sequence, actions: Sequence[str],
                 transition: Sequence[sparse.csr_matrix],
                 rewards: Mapping[str, np.ndarray],
                 available: np.ndarray, start: int,
                 validate: bool = True) -> None:
        self.state_keys: List = list(state_keys)
        self.actions: List[str] = list(actions)
        # Skip the CSR re-wrap for inputs that are already CSR (the
        # builder's output, and every cache-shared matrix): the wrap
        # copies three large arrays per action for nothing.
        self.transition: List[sparse.csr_matrix] = [
            p if isinstance(p, sparse.csr_matrix) else sparse.csr_matrix(p)
            for p in transition]
        self.rewards: Dict[str, np.ndarray] = {
            name: np.asarray(r, dtype=float) for name, r in rewards.items()}
        self.available = np.asarray(available, dtype=bool)
        self.start = int(start)
        self._index: Dict = {k: i for i, k in enumerate(self.state_keys)}
        self._kernel = None
        self._eval_cache = None
        if validate:
            self._validate()

    # -- performance layer -------------------------------------------

    def kernel(self):
        """The lazily-built stacked Bellman kernel of this MDP (see
        :class:`repro.mdp.kernels.BellmanKernel`).  MDPs are treated as
        immutable; mutating ``transition`` after the first solver call
        requires :meth:`invalidate_caches`."""
        if self._kernel is None:
            from repro.mdp.kernels import BellmanKernel
            self._kernel = BellmanKernel(self)
        return self._kernel

    def eval_cache(self):
        """The lazily-built per-MDP policy-evaluation cache (see
        :class:`repro.mdp.kernels.PolicyEvalCache`)."""
        if self._eval_cache is None:
            from repro.mdp.kernels import PolicyEvalCache
            self._eval_cache = PolicyEvalCache(self)
        return self._eval_cache

    def invalidate_caches(self) -> None:
        """Drop the kernel and evaluation cache (required after any
        in-place mutation of ``transition`` or ``rewards``)."""
        self._kernel = None
        self._eval_cache = None

    # -- structure ---------------------------------------------------

    @property
    def n_states(self) -> int:
        """Number of states."""
        return len(self.state_keys)

    @property
    def n_actions(self) -> int:
        """Number of named actions."""
        return len(self.actions)

    @property
    def channels(self) -> List[str]:
        """Names of the reward channels."""
        return list(self.rewards)

    def state_index(self, key) -> int:
        """Return the index of the state with the given key."""
        try:
            return self._index[key]
        except KeyError:
            raise MDPError(f"unknown state key {key!r}") from None

    def action_index(self, name: str) -> int:
        """Return the index of the named action."""
        try:
            return self.actions.index(name)
        except ValueError:
            raise MDPError(f"unknown action {name!r}") from None

    # -- rewards -----------------------------------------------------

    def combined_reward(self, weights: Mapping[str, float]) -> np.ndarray:
        """Return the ``(A, N)`` reward array for a weighted combination
        of channels, e.g. ``{"num": 1.0, "den": -rho}``.

        The common single-channel unit-weight case (every plain
        average-reward solve inside the Dinkelbach loop) returns a copy
        of the channel array directly, skipping the zeros allocation
        and the add.
        """
        out: Optional[np.ndarray] = None
        for name, w in weights.items():
            if name not in self.rewards:
                raise MDPError(f"unknown reward channel {name!r}")
            if w == 0.0:
                continue
            if out is None:
                channel = self.rewards[name]
                out = channel.copy() if w == 1.0 else w * channel
            else:
                out += w * self.rewards[name]
        if out is None:
            out = np.zeros((self.n_actions, self.n_states))
        return out

    def channel_reward(self, name: str) -> np.ndarray:
        """Return the ``(A, N)`` reward array of one channel."""
        if name not in self.rewards:
            raise MDPError(f"unknown reward channel {name!r}")
        return self.rewards[name]

    # -- policies ----------------------------------------------------

    def policy_matrix(self, policy: np.ndarray) -> sparse.csr_matrix:
        """Return the ``(N, N)`` transition matrix induced by ``policy``
        (an array of action indices), extracted by row-slicing the
        stacked Bellman kernel."""
        return self.kernel().policy_matrix(policy)

    def policy_reward(self, policy: np.ndarray,
                      reward: np.ndarray) -> np.ndarray:
        """Return the per-state expected reward under ``policy`` for a
        precombined ``(A, N)`` reward array."""
        policy = np.asarray(policy, dtype=int)
        return reward[policy, np.arange(self.n_states)]

    def valid_policy(self, policy: np.ndarray) -> bool:
        """Whether ``policy`` picks an available action in every state."""
        policy = np.asarray(policy, dtype=int)
        return bool(self.available[policy, np.arange(self.n_states)].all())

    # -- validation --------------------------------------------------

    def _validate(self) -> None:
        n, a = self.n_states, self.n_actions
        if len(self.transition) != a:
            raise MDPError("one transition matrix required per action")
        if self.available.shape != (a, n):
            raise MDPError(f"available must have shape {(a, n)}")
        if not (0 <= self.start < n):
            raise MDPError("start state out of range")
        for name, r in self.rewards.items():
            if r.shape != (a, n):
                raise MDPError(
                    f"reward channel {name!r} must have shape {(a, n)}")
        for ai, p in enumerate(self.transition):
            if p.shape != (n, n):
                raise MDPError(f"transition[{ai}] must have shape {(n, n)}")
            if p.nnz and p.data.min() < -PROB_TOL:
                raise InvalidTransitionError(
                    f"negative probability under action {self.actions[ai]}")
            sums = np.asarray(p.sum(axis=1)).ravel()
            avail = self.available[ai]
            bad_avail = avail & (np.abs(sums - 1.0) > PROB_TOL)
            if bad_avail.any():
                s = int(np.flatnonzero(bad_avail)[0])
                raise InvalidTransitionError(
                    f"probabilities for state {self.state_keys[s]!r} action "
                    f"{self.actions[ai]!r} sum to {sums[s]!r}")
            bad_unavail = (~avail) & (sums > PROB_TOL)
            if bad_unavail.any():
                s = int(np.flatnonzero(bad_unavail)[0])
                raise InvalidTransitionError(
                    f"unavailable pair (state {self.state_keys[s]!r}, action "
                    f"{self.actions[ai]!r}) has transitions")
        if not self.available.any(axis=0).all():
            s = int(np.flatnonzero(~self.available.any(axis=0))[0])
            raise NoActionError(
                f"state {self.state_keys[s]!r} has no available action")
