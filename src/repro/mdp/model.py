"""Immutable sparse MDP container.

An :class:`MDP` stores, per named action, a sparse row-stochastic
transition matrix and, per named *reward channel*, the expected
immediate reward of every (state, action) pair.  Multiple channels let
one transition structure serve several utility functions: the paper's
three incentive models all reuse the same strategy-space MDP and differ
only in which channels enter the numerator and denominator.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np
from scipy import sparse

from repro.errors import InvalidTransitionError, MDPError, NoActionError

#: Tolerance for "probabilities sum to one" checks.
PROB_TOL = 1e-9


class MDP:
    """A finite MDP with named actions and multi-channel rewards.

    Parameters
    ----------
    state_keys:
        One hashable key per state (index = state id).
    actions:
        Action names; indices into ``transition`` and reward arrays.
    transition:
        One ``(N, N)`` CSR matrix per action.  Rows of unavailable
        (state, action) pairs are all-zero.
    rewards:
        Channel name -> ``(A, N)`` array of expected immediate rewards.
    available:
        ``(A, N)`` boolean mask of action availability.
    start:
        Index of the start state.
    """

    def __init__(self, state_keys: Sequence, actions: Sequence[str],
                 transition: Sequence[sparse.csr_matrix],
                 rewards: Mapping[str, np.ndarray],
                 available: np.ndarray, start: int,
                 validate: bool = True) -> None:
        self.state_keys: List = list(state_keys)
        self.actions: List[str] = list(actions)
        self.transition: List[sparse.csr_matrix] = [
            sparse.csr_matrix(p) for p in transition]
        self.rewards: Dict[str, np.ndarray] = {
            name: np.asarray(r, dtype=float) for name, r in rewards.items()}
        self.available = np.asarray(available, dtype=bool)
        self.start = int(start)
        self._index: Dict = {k: i for i, k in enumerate(self.state_keys)}
        if validate:
            self._validate()

    # -- structure ---------------------------------------------------

    @property
    def n_states(self) -> int:
        """Number of states."""
        return len(self.state_keys)

    @property
    def n_actions(self) -> int:
        """Number of named actions."""
        return len(self.actions)

    @property
    def channels(self) -> List[str]:
        """Names of the reward channels."""
        return list(self.rewards)

    def state_index(self, key) -> int:
        """Return the index of the state with the given key."""
        try:
            return self._index[key]
        except KeyError:
            raise MDPError(f"unknown state key {key!r}") from None

    def action_index(self, name: str) -> int:
        """Return the index of the named action."""
        try:
            return self.actions.index(name)
        except ValueError:
            raise MDPError(f"unknown action {name!r}") from None

    # -- rewards -----------------------------------------------------

    def combined_reward(self, weights: Mapping[str, float]) -> np.ndarray:
        """Return the ``(A, N)`` reward array for a weighted combination
        of channels, e.g. ``{"num": 1.0, "den": -rho}``."""
        out = np.zeros((self.n_actions, self.n_states))
        for name, w in weights.items():
            if name not in self.rewards:
                raise MDPError(f"unknown reward channel {name!r}")
            if w != 0.0:
                out += w * self.rewards[name]
        return out

    def channel_reward(self, name: str) -> np.ndarray:
        """Return the ``(A, N)`` reward array of one channel."""
        if name not in self.rewards:
            raise MDPError(f"unknown reward channel {name!r}")
        return self.rewards[name]

    # -- policies ----------------------------------------------------

    def policy_matrix(self, policy: np.ndarray) -> sparse.csr_matrix:
        """Return the ``(N, N)`` transition matrix induced by ``policy``
        (an array of action indices)."""
        policy = np.asarray(policy, dtype=int)
        if policy.shape != (self.n_states,):
            raise MDPError("policy must assign one action per state")
        out: Optional[sparse.csr_matrix] = None
        for a in range(self.n_actions):
            mask = (policy == a).astype(float)
            if not mask.any():
                continue
            selected = sparse.diags(mask).dot(self.transition[a])
            out = selected if out is None else out + selected
        if out is None:
            raise MDPError("empty policy")
        return sparse.csr_matrix(out)

    def policy_reward(self, policy: np.ndarray,
                      reward: np.ndarray) -> np.ndarray:
        """Return the per-state expected reward under ``policy`` for a
        precombined ``(A, N)`` reward array."""
        policy = np.asarray(policy, dtype=int)
        return reward[policy, np.arange(self.n_states)]

    def valid_policy(self, policy: np.ndarray) -> bool:
        """Whether ``policy`` picks an available action in every state."""
        policy = np.asarray(policy, dtype=int)
        return bool(self.available[policy, np.arange(self.n_states)].all())

    # -- validation --------------------------------------------------

    def _validate(self) -> None:
        n, a = self.n_states, self.n_actions
        if len(self.transition) != a:
            raise MDPError("one transition matrix required per action")
        if self.available.shape != (a, n):
            raise MDPError(f"available must have shape {(a, n)}")
        if not (0 <= self.start < n):
            raise MDPError("start state out of range")
        for name, r in self.rewards.items():
            if r.shape != (a, n):
                raise MDPError(
                    f"reward channel {name!r} must have shape {(a, n)}")
        for ai, p in enumerate(self.transition):
            if p.shape != (n, n):
                raise MDPError(f"transition[{ai}] must have shape {(n, n)}")
            if p.nnz and p.data.min() < -PROB_TOL:
                raise InvalidTransitionError(
                    f"negative probability under action {self.actions[ai]}")
            sums = np.asarray(p.sum(axis=1)).ravel()
            avail = self.available[ai]
            bad_avail = avail & (np.abs(sums - 1.0) > PROB_TOL)
            if bad_avail.any():
                s = int(np.flatnonzero(bad_avail)[0])
                raise InvalidTransitionError(
                    f"probabilities for state {self.state_keys[s]!r} action "
                    f"{self.actions[ai]!r} sum to {sums[s]!r}")
            bad_unavail = (~avail) & (sums > PROB_TOL)
            if bad_unavail.any():
                s = int(np.flatnonzero(bad_unavail)[0])
                raise InvalidTransitionError(
                    f"unavailable pair (state {self.state_keys[s]!r}, action "
                    f"{self.actions[ai]!r}) has transitions")
        if not self.available.any(axis=0).all():
            s = int(np.flatnonzero(~self.available.any(axis=0))[0])
            raise NoActionError(
                f"state {self.state_keys[s]!r} has no available action")
