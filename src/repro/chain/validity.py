"""Block-validity consensus (BVC) engines.

Three rules are implemented:

- :class:`BitcoinValidity` -- the prescribed BVC: a fixed block size
  limit that every participant shares (Section 2.1 of the paper).
- :class:`BUValidity` -- Bitcoin Unlimited's per-node rule following
  Rizun's description (Section 2.2): blocks larger than the local ``EB``
  are *excessive* and only become valid once buried at acceptance depth
  ``AD``; accepting an excessive block opens a *sticky gate* that lifts
  the local limit to the 32 MB network-message cap until 144 consecutive
  non-excessive blocks appear.
- :class:`BUSourceCodeValidity` -- the inconsistent rule the paper
  extracted from the March 2017 BU source code, kept so its
  counter-intuitive edge case can be demonstrated.

A rule instance represents *one node's view* over *one block tree*; the
rules keep per-block caches so evaluating validity is O(1) amortized per
new block, which lets the Monte-Carlo simulator run long chains.
"""

from __future__ import annotations

import bisect
from abc import ABC, abstractmethod
from typing import Dict, Optional, Tuple

from repro.chain.block import Block
from repro.chain.tree import BlockTree
from repro.errors import ChainError
from repro.protocol.params import MESSAGE_LIMIT_MB, STICKY_GATE_WINDOW


class ValidityRule(ABC):
    """A node's block-validity rule over a single block tree."""

    def __init__(self) -> None:
        self._tree_id: Optional[int] = None

    def _check_tree(self, tree: BlockTree) -> None:
        if self._tree_id is None:
            self._tree_id = id(tree)
        elif self._tree_id != id(tree):
            raise ChainError(
                "a ValidityRule instance caches per-block state and must be "
                "used with a single BlockTree")

    @abstractmethod
    def valid_prefix_height(self, tree: BlockTree, tip: Block) -> int:
        """Return the height of the longest valid prefix of the chain
        ending at ``tip`` (genesis alone gives 0)."""

    def valid_prefix_block(self, tree: BlockTree, tip: Block) -> Block:
        """Return the last block of the longest valid prefix."""
        height = self.valid_prefix_height(tree, tip)
        return tree.ancestor_at_height(tip, height)

    def is_chain_valid(self, tree: BlockTree, tip: Block) -> bool:
        """Whether the whole chain ending at ``tip`` is valid."""
        return self.valid_prefix_height(tree, tip) == tip.height


class BitcoinValidity(ValidityRule):
    """The prescribed Bitcoin BVC: a single shared block size limit."""

    def __init__(self, max_block_size: float = 1.0) -> None:
        super().__init__()
        if max_block_size <= 0:
            raise ChainError("max_block_size must be positive")
        self.max_block_size = max_block_size
        # block_id -> height of first oversize block on its chain, or None
        self._poison: Dict[str, Optional[int]] = {}

    def _poison_height(self, tree: BlockTree, block: Block) -> Optional[int]:
        cached = self._poison.get(block.block_id)
        if cached is not None or block.block_id in self._poison:
            return cached
        if block.is_genesis:
            value: Optional[int] = None
        else:
            parent = tree.parent(block)
            assert parent is not None
            value = self._poison_height(tree, parent)
            if value is None and block.size > self.max_block_size:
                value = block.height
        self._poison[block.block_id] = value
        return value

    def valid_prefix_height(self, tree: BlockTree, tip: Block) -> int:
        self._check_tree(tree)
        poison = self._poison_height(tree, tip)
        return tip.height if poison is None else poison - 1


#: Per-block cached view state for :class:`BUValidity`:
#: ``(leaders, last_excessive_height, poison_height)`` where ``leaders``
#: is the sorted tuple of heights of excessive blocks that start a new
#: sticky-gate group (and therefore must individually reach acceptance
#: depth), ``last_excessive_height`` is the height of the most recent
#: excessive block on the chain (or ``None``), and ``poison_height`` is
#: the height of the first block exceeding the network-message limit
#: (or ``None``).
_BUState = Tuple[Tuple[int, ...], Optional[int], Optional[int]]


class BUValidity(ValidityRule):
    """Bitcoin Unlimited validity per Rizun's sticky-gate description.

    Parameters
    ----------
    eb:
        The node's excessive block size (megabytes).  A block of size
        exactly ``eb`` is *not* excessive.
    ad:
        Acceptance depth: an excessive block becomes valid once a chain
        of ``ad`` blocks (including itself) is built on it.
    sticky:
        Whether the sticky gate is enabled.  With the gate disabled
        (BUIP038, the paper's "setting 1"), every excessive block must
        individually reach acceptance depth.
    message_limit:
        Hard cap from the network-message size; blocks above it are
        permanently invalid.
    gate_window:
        Number of consecutive non-excessive blocks after which the
        sticky gate closes (144 in BU, roughly one day).
    """

    def __init__(self, eb: float, ad: int, sticky: bool = True,
                 message_limit: float = MESSAGE_LIMIT_MB,
                 gate_window: int = STICKY_GATE_WINDOW) -> None:
        super().__init__()
        if eb <= 0:
            raise ChainError("eb must be positive")
        if ad < 1:
            raise ChainError("ad must be at least 1")
        if gate_window < 1:
            raise ChainError("gate_window must be at least 1")
        if message_limit < eb:
            raise ChainError("message_limit must be at least eb")
        self.eb = eb
        self.ad = ad
        self.sticky = sticky
        self.message_limit = message_limit
        self.gate_window = gate_window
        self._state: Dict[str, _BUState] = {}

    def is_excessive(self, block: Block) -> bool:
        """Whether the node considers ``block`` excessive (> local EB)."""
        return block.size > self.eb

    def _block_state(self, tree: BlockTree, block: Block) -> _BUState:
        cached = self._state.get(block.block_id)
        if cached is not None:
            return cached
        if block.is_genesis:
            state: _BUState = ((), None, None)
        else:
            parent = tree.parent(block)
            assert parent is not None
            leaders, last_exc, poison = self._block_state(tree, parent)
            if poison is None and block.size > self.message_limit:
                poison = block.height
            if poison is None and self.is_excessive(block):
                covered = (self.sticky and last_exc is not None
                           and block.height - last_exc <= self.gate_window)
                if not covered:
                    leaders = leaders + (block.height,)
                last_exc = block.height
            state = (leaders, last_exc, poison)
        self._state[block.block_id] = state
        return state

    def valid_prefix_height(self, tree: BlockTree, tip: Block) -> int:
        self._check_tree(tree)
        leaders, _last_exc, poison = self._block_state(tree, tip)
        height = tip.height if poison is None else poison - 1
        # A leader at height e is accepted at tip height H iff its burial
        # H - e + 1 reaches AD.  Cutting the chain below a failing leader
        # can un-bury an earlier leader, so walk leaders from the tip
        # downwards.
        for e in reversed(leaders):
            if e <= height and e > height - self.ad + 1:
                height = e - 1
        return height

    def gate_open_at(self, tree: BlockTree, tip: Block) -> bool:
        """Whether the sticky gate is open at ``tip`` on a fully valid
        chain (i.e. whether the node would accept blocks up to the
        message limit on top of ``tip``)."""
        self._check_tree(tree)
        if not self.sticky:
            return False
        if not self.is_chain_valid(tree, tip):
            return False
        _leaders, last_exc, _poison = self._block_state(tree, tip)
        if last_exc is None:
            return False
        return tip.height - last_exc < self.gate_window

    def last_excessive_height(self, tree: BlockTree,
                              tip: Block) -> Optional[int]:
        """Height of the most recent excessive block on the chain to
        ``tip``, or ``None`` if there is none."""
        self._check_tree(tree)
        _leaders, last_exc, _poison = self._block_state(tree, tip)
        return last_exc

    def local_limit_at(self, tree: BlockTree, tip: Block) -> float:
        """The maximum block size the node would accept immediately
        (without waiting for acceptance depth) on top of ``tip``."""
        if self.gate_open_at(tree, tip):
            return self.message_limit
        return self.eb


class BUSourceCodeValidity(ValidityRule):
    """The inconsistent validity rule from BU's March 2017 source code.

    Per Section 2.2 of the paper: a chain whose latest block has height
    ``h`` is valid iff the latest ``AD`` blocks are all non-excessive,
    *or* there is an excessive block whose height lies in
    ``[h - AD - 143, h - AD + 1]``.  The paper notes this yields
    counter-intuitive behaviour (a valid chain can become invalid by
    adding a block); we keep it to reproduce that edge case.
    """

    def __init__(self, eb: float, ad: int,
                 message_limit: float = MESSAGE_LIMIT_MB,
                 gate_window: int = STICKY_GATE_WINDOW) -> None:
        super().__init__()
        if eb <= 0:
            raise ChainError("eb must be positive")
        if ad < 1:
            raise ChainError("ad must be at least 1")
        self.eb = eb
        self.ad = ad
        self.message_limit = message_limit
        self.gate_window = gate_window
        # block_id -> (sorted tuple of excessive heights, poison height)
        self._state: Dict[str, Tuple[Tuple[int, ...], Optional[int]]] = {}

    def is_excessive(self, block: Block) -> bool:
        """Whether the node considers ``block`` excessive (> local EB)."""
        return block.size > self.eb

    def _block_state(self, tree: BlockTree,
                     block: Block) -> Tuple[Tuple[int, ...], Optional[int]]:
        cached = self._state.get(block.block_id)
        if cached is not None:
            return cached
        if block.is_genesis:
            state: Tuple[Tuple[int, ...], Optional[int]] = ((), None)
        else:
            parent = tree.parent(block)
            assert parent is not None
            exc, poison = self._block_state(tree, parent)
            if poison is None and block.size > self.message_limit:
                poison = block.height
            if poison is None and self.is_excessive(block):
                exc = exc + (block.height,)
            state = (exc, poison)
        self._state[block.block_id] = state
        return state

    def _predicate(self, exc_heights: Tuple[int, ...], h: int) -> bool:
        """The source-code validity predicate at tip height ``h``."""
        if h == 0:
            return True
        # Latest AD blocks (heights max(1, h-AD+1)..h) all non-excessive?
        lo = max(1, h - self.ad + 1)
        i = bisect.bisect_left(exc_heights, lo)
        if i >= len(exc_heights) or exc_heights[i] > h:
            return True
        # Or an excessive block with height in [h - AD - 143, h - AD + 1].
        lo2 = h - self.ad - (self.gate_window - 1)
        hi2 = h - self.ad + 1
        j = bisect.bisect_left(exc_heights, lo2)
        return j < len(exc_heights) and exc_heights[j] <= hi2

    def valid_prefix_height(self, tree: BlockTree, tip: Block) -> int:
        self._check_tree(tree)
        exc, poison = self._block_state(tree, tip)
        top = tip.height if poison is None else poison - 1
        for h in range(top, -1, -1):
            relevant = tuple(e for e in exc if e <= h)
            if self._predicate(relevant, h):
                return h
        return 0
