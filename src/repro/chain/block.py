"""Immutable block records.

Blocks carry exactly the fields the paper's model needs: identity,
parent link, height, size (in megabytes) and the miner who produced
them.  Hash puzzles and transaction contents are abstracted away -- the
analysis only depends on sizes and chain topology (Section 2.4 of the
paper: "Every miner is capable of creating blocks of any size").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import InvalidBlockError

#: Identifier of the genesis block shared by every tree.
GENESIS_ID = "genesis"

_block_counter = itertools.count(1)


@dataclass(frozen=True)
class Block:
    """A single block in the block tree.

    Parameters
    ----------
    block_id:
        Unique identifier.  Auto-generated ids use an increasing counter;
        tests may pass explicit ids.
    parent_id:
        Identifier of the parent block, or ``None`` for genesis.
    height:
        Distance from genesis (genesis has height 0).
    size:
        Block size in megabytes; must be positive except for genesis.
    miner:
        Name of the miner that produced this block.
    timestamp:
        Logical time at which the block was mined (simulation steps).
    """

    block_id: str
    parent_id: Optional[str]
    height: int
    size: float
    miner: str
    timestamp: float = field(default=0.0)

    def __post_init__(self) -> None:
        if self.height < 0:
            raise InvalidBlockError(f"negative height {self.height}")
        if self.block_id != GENESIS_ID and self.size <= 0:
            raise InvalidBlockError(f"non-positive block size {self.size}")
        if self.block_id == GENESIS_ID and self.parent_id is not None:
            raise InvalidBlockError("genesis block must not have a parent")
        if self.block_id != GENESIS_ID and self.parent_id is None:
            raise InvalidBlockError("non-genesis block requires a parent")

    @property
    def is_genesis(self) -> bool:
        """Whether this is the genesis block."""
        return self.block_id == GENESIS_ID


def genesis_block() -> Block:
    """Return a fresh genesis block (height 0, zero size)."""
    return Block(block_id=GENESIS_ID, parent_id=None, height=0, size=0.0,
                 miner="genesis")


def make_block(parent: Block, size: float, miner: str,
               timestamp: float = 0.0, block_id: Optional[str] = None) -> Block:
    """Create a child block of ``parent`` with an auto-generated id.

    >>> g = genesis_block()
    >>> b = make_block(g, size=1.0, miner="bob")
    >>> b.height
    1
    """
    if block_id is None:
        block_id = f"b{next(_block_counter)}"
    return Block(block_id=block_id, parent_id=parent.block_id,
                 height=parent.height + 1, size=size, miner=miner,
                 timestamp=timestamp)
