"""Longest-valid-chain fork choice with first-received tie-breaking.

Every node recognizes as its blockchain the longest chain that is valid
in its own view; when several valid chains have the same length, the
node keeps the one whose head it received first (Section 2.1).  With BU
validity, a chain with an unburied excessive block contributes only its
valid *prefix* as a candidate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.chain.block import Block
from repro.chain.tree import BlockTree
from repro.chain.validity import ValidityRule


@dataclass(frozen=True)
class TipCandidate:
    """A candidate head for a node's blockchain.

    Attributes
    ----------
    block:
        Last block of the candidate chain (the end of the valid prefix).
    height:
        Height of that block.
    arrival:
        Arrival index of that block (for first-received tie-breaking).
    """

    block: Block
    height: int
    arrival: int


class ForkChoice:
    """Selects the chain a node mines on, given its validity rule."""

    def __init__(self, tree: BlockTree, rule: ValidityRule) -> None:
        self.tree = tree
        self.rule = rule

    def candidates(self) -> List[TipCandidate]:
        """Return one candidate per tree tip: the end of the tip chain's
        valid prefix.  Duplicates (several tips sharing a valid prefix)
        are merged."""
        seen: Dict[str, TipCandidate] = {}
        for tip in self.tree.tips():
            head = self.rule.valid_prefix_block(self.tree, tip)
            if head.block_id not in seen:
                seen[head.block_id] = TipCandidate(
                    block=head, height=head.height,
                    arrival=self.tree.arrival_index(head.block_id))
        return sorted(seen.values(), key=lambda c: (-c.height, c.arrival))

    def best(self) -> Block:
        """Return the head of the chain this node mines on: maximum
        height, ties broken by earliest arrival."""
        return self.candidates()[0].block
