"""Difficulty retargeting and throughput under orphaning.

Bitcoin retargets every 2016 blocks so the *blockchain* grows one block
per ten minutes (Section 2.1).  The retarget only sees chain blocks --
orphaned blocks burn work without moving the clock -- so a BU-style
attack that raises the orphan rate silently (a) lowers the effective
difficulty until total block production speeds up to compensate and
(b) wastes the corresponding fraction of confirmed throughput.  These
helpers quantify that coupling for the discussion in Sections 6.2/6.4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import ChainError
from repro.protocol.params import DIFFICULTY_PERIOD

#: Bitcoin clamps each retarget to a factor of 4 either way.
MAX_ADJUSTMENT = 4.0


def next_difficulty(current: float, elapsed: float,
                    period: int = DIFFICULTY_PERIOD,
                    target_interval: float = 600.0) -> float:
    """One retarget step: scale difficulty by actual vs expected period
    duration, clamped to the x4 adjustment bound."""
    if current <= 0:
        raise ChainError("difficulty must be positive")
    if elapsed <= 0:
        raise ChainError("elapsed time must be positive")
    expected = period * target_interval
    ratio = expected / elapsed
    ratio = min(max(ratio, 1.0 / MAX_ADJUSTMENT), MAX_ADJUSTMENT)
    return current * ratio


def equilibrium_difficulty(hashrate: float, orphan_rate: float,
                           target_interval: float = 600.0) -> float:
    """The difficulty at which retargeting settles when a fraction
    ``orphan_rate`` of blocks never reach the chain.

    At equilibrium the *chain* gains one block per ``target_interval``,
    so total block production runs at ``1 / ((1 - orphan_rate) *
    target_interval)`` and difficulty is proportional to hashrate times
    the per-block time, i.e. scaled down by ``(1 - orphan_rate)``.
    """
    if hashrate <= 0:
        raise ChainError("hashrate must be positive")
    if not 0 <= orphan_rate < 1:
        raise ChainError("orphan rate must lie in [0, 1)")
    return hashrate * target_interval * (1.0 - orphan_rate)


def effective_throughput(block_size: float, orphan_rate: float,
                         target_interval: float = 600.0) -> float:
    """Confirmed megabytes per second once retargeting has settled:
    one ``block_size`` chain block per target interval regardless of
    orphaning -- the waste shows up as burned work, not raw throughput
    -- *unless* confirmation latency is priced in; see
    :func:`confirmed_throughput_during_attack` for the transient."""
    if block_size <= 0:
        raise ChainError("block size must be positive")
    if not 0 <= orphan_rate < 1:
        raise ChainError("orphan rate must lie in [0, 1)")
    return block_size / target_interval


def confirmed_throughput_during_attack(block_size: float,
                                       orphan_rate: float,
                                       target_interval: float = 600.0
                                       ) -> float:
    """Confirmed throughput *before* the next retarget: the chain only
    gains ``1 - orphan_rate`` of the produced blocks, so confirmed
    bytes drop proportionally (the quality-of-service degradation a
    non-profit-driven attacker buys with u_A3)."""
    if block_size <= 0:
        raise ChainError("block size must be positive")
    if not 0 <= orphan_rate < 1:
        raise ChainError("orphan rate must lie in [0, 1)")
    return block_size * (1.0 - orphan_rate) / target_interval


@dataclass
class RetargetStep:
    """One difficulty period in a retargeting trajectory.

    Attributes
    ----------
    difficulty:
        Difficulty in force during the period.
    elapsed:
        Wall-clock duration of the period.
    chain_interval:
        Average seconds per chain block during the period.
    """

    difficulty: float
    elapsed: float
    chain_interval: float


def simulate_retargeting(hashrate: float, orphan_rates: Sequence[float],
                         initial_difficulty: float = 1.0,
                         period: int = DIFFICULTY_PERIOD,
                         target_interval: float = 600.0
                         ) -> List[RetargetStep]:
    """Walk retargeting through a schedule of per-period orphan rates.

    Block production time per block is ``difficulty / hashrate``; a
    period of ``period`` chain blocks therefore takes
    ``period * difficulty / (hashrate * (1 - orphan_rate))`` seconds.
    """
    if hashrate <= 0:
        raise ChainError("hashrate must be positive")
    difficulty = initial_difficulty
    steps: List[RetargetStep] = []
    for orphan_rate in orphan_rates:
        if not 0 <= orphan_rate < 1:
            raise ChainError("orphan rate must lie in [0, 1)")
        per_block = difficulty / hashrate
        elapsed = period * per_block / (1.0 - orphan_rate)
        steps.append(RetargetStep(difficulty=difficulty, elapsed=elapsed,
                                  chain_interval=elapsed / period))
        difficulty = next_difficulty(difficulty, elapsed, period,
                                     target_interval)
    return steps
