"""A parent-linked block tree with chain queries.

The tree stores every block ever mined (including blocks that end up
orphaned) and answers the topological questions the validity engines
and the simulator need: chains from genesis, tips, common ancestors and
subchain slices.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set

from repro.chain.block import Block, GENESIS_ID, genesis_block
from repro.errors import DuplicateBlockError, OrphanParentError, UnknownBlockError


class BlockTree:
    """A tree of blocks rooted at genesis.

    Blocks must be added parent-first; the tree rejects duplicates and
    blocks whose parent is unknown, and verifies the height arithmetic.
    """

    def __init__(self) -> None:
        root = genesis_block()
        self._blocks: Dict[str, Block] = {root.block_id: root}
        self._children: Dict[str, List[str]] = {root.block_id: []}
        self._arrival: Dict[str, int] = {root.block_id: 0}
        self._next_arrival = 1

    @property
    def genesis(self) -> Block:
        """The genesis block of this tree."""
        return self._blocks[GENESIS_ID]

    def __len__(self) -> int:
        return len(self._blocks)

    def __contains__(self, block_id: str) -> bool:
        return block_id in self._blocks

    def __iter__(self) -> Iterator[Block]:
        return iter(self._blocks.values())

    def add(self, block: Block) -> Block:
        """Insert ``block`` and return it.

        Raises
        ------
        DuplicateBlockError
            If a block with the same id is already present.
        OrphanParentError
            If the parent is unknown.
        UnknownBlockError
            If the block's height does not equal its parent's plus one.
        """
        if block.block_id in self._blocks:
            raise DuplicateBlockError(block.block_id)
        if block.parent_id is None:
            raise OrphanParentError("only genesis may lack a parent")
        parent = self._blocks.get(block.parent_id)
        if parent is None:
            raise OrphanParentError(block.parent_id)
        if block.height != parent.height + 1:
            raise UnknownBlockError(
                f"height {block.height} inconsistent with parent height "
                f"{parent.height}")
        self._blocks[block.block_id] = block
        self._children[block.block_id] = []
        self._children[parent.block_id].append(block.block_id)
        self._arrival[block.block_id] = self._next_arrival
        self._next_arrival += 1
        return block

    def get(self, block_id: str) -> Block:
        """Return the block with ``block_id``."""
        try:
            return self._blocks[block_id]
        except KeyError:
            raise UnknownBlockError(block_id) from None

    def parent(self, block: Block) -> Optional[Block]:
        """Return the parent block, or ``None`` for genesis."""
        if block.parent_id is None:
            return None
        return self._blocks[block.parent_id]

    def children(self, block: Block) -> List[Block]:
        """Return the children of ``block`` in insertion order."""
        return [self._blocks[c] for c in self._children[block.block_id]]

    def arrival_index(self, block_id: str) -> int:
        """Return the insertion order index of a block (genesis is 0)."""
        try:
            return self._arrival[block_id]
        except KeyError:
            raise UnknownBlockError(block_id) from None

    def tips(self) -> List[Block]:
        """Return all leaf blocks, ordered by arrival."""
        leaves = [self._blocks[bid] for bid, kids in self._children.items()
                  if not kids]
        return sorted(leaves, key=lambda b: self._arrival[b.block_id])

    def chain(self, tip: Block) -> List[Block]:
        """Return the chain from genesis to ``tip`` inclusive."""
        if tip.block_id not in self._blocks:
            raise UnknownBlockError(tip.block_id)
        out: List[Block] = []
        cursor: Optional[Block] = tip
        while cursor is not None:
            out.append(cursor)
            cursor = self.parent(cursor)
        out.reverse()
        return out

    def ancestor_at_height(self, block: Block, height: int) -> Block:
        """Return the ancestor of ``block`` at the given height."""
        if height < 0 or height > block.height:
            raise UnknownBlockError(
                f"height {height} outside [0, {block.height}]")
        cursor = block
        while cursor.height > height:
            cursor = self._blocks[cursor.parent_id]  # type: ignore[index]
        return cursor

    def common_ancestor(self, a: Block, b: Block) -> Block:
        """Return the deepest common ancestor of ``a`` and ``b``."""
        x, y = a, b
        while x.height > y.height:
            x = self._blocks[x.parent_id]  # type: ignore[index]
        while y.height > x.height:
            y = self._blocks[y.parent_id]  # type: ignore[index]
        while x.block_id != y.block_id:
            x = self._blocks[x.parent_id]  # type: ignore[index]
            y = self._blocks[y.parent_id]  # type: ignore[index]
        return x

    def is_ancestor(self, ancestor: Block, descendant: Block) -> bool:
        """Whether ``ancestor`` lies on the chain from genesis to
        ``descendant`` (a block is its own ancestor)."""
        if ancestor.height > descendant.height:
            return False
        return (self.ancestor_at_height(descendant, ancestor.height).block_id
                == ancestor.block_id)

    def subchain(self, ancestor: Block, descendant: Block) -> List[Block]:
        """Return the blocks strictly after ``ancestor`` up to and
        including ``descendant``."""
        if not self.is_ancestor(ancestor, descendant):
            raise UnknownBlockError(
                f"{ancestor.block_id} is not an ancestor of "
                f"{descendant.block_id}")
        out: List[Block] = []
        cursor = descendant
        while cursor.block_id != ancestor.block_id:
            out.append(cursor)
            cursor = self._blocks[cursor.parent_id]  # type: ignore[index]
        out.reverse()
        return out

    def descendants(self, block: Block) -> Set[str]:
        """Return ids of all strict descendants of ``block``."""
        out: Set[str] = set()
        stack = list(self._children[block.block_id])
        while stack:
            bid = stack.pop()
            out.add(bid)
            stack.extend(self._children[bid])
        return out
