"""Blockchain substrate: blocks, block trees and block-validity consensus.

This package implements the ledger layer the paper's analysis rests on:

- :mod:`repro.chain.block` -- immutable block records and the genesis block;
- :mod:`repro.chain.tree` -- a parent-linked block tree with chain queries;
- :mod:`repro.chain.validity` -- block-validity consensus (BVC) engines:
  Bitcoin's prescribed rule, Bitcoin Unlimited's EB/AD rule with Rizun's
  sticky gate, and the inconsistent "source code" variant described in
  Section 2.2 of the paper;
- :mod:`repro.chain.fork_choice` -- longest-valid-chain selection with
  first-received tie-breaking.
"""

from repro.chain.block import Block, GENESIS_ID, genesis_block
from repro.chain.tree import BlockTree
from repro.chain.validity import (
    BitcoinValidity,
    BUSourceCodeValidity,
    BUValidity,
    ValidityRule,
)
from repro.chain.fork_choice import ForkChoice, TipCandidate
from repro.chain.difficulty import (
    equilibrium_difficulty,
    next_difficulty,
    simulate_retargeting,
)

__all__ = [
    "next_difficulty",
    "equilibrium_difficulty",
    "simulate_retargeting",
    "Block",
    "GENESIS_ID",
    "genesis_block",
    "BlockTree",
    "ValidityRule",
    "BitcoinValidity",
    "BUValidity",
    "BUSourceCodeValidity",
    "ForkChoice",
    "TipCandidate",
]
