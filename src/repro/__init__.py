"""repro -- a reproduction of Zhang & Preneel, "On the Necessity of a
Prescribed Block Validity Consensus: Analyzing Bitcoin Unlimited Mining
Protocol" (CoNEXT 2017).

The package provides:

- :mod:`repro.chain` -- the blockchain substrate with Bitcoin and
  Bitcoin Unlimited block-validity engines;
- :mod:`repro.protocol` -- protocol parameters, signaling and node views;
- :mod:`repro.mdp` -- an average-reward / ratio-objective MDP toolkit;
- :mod:`repro.core` -- the paper's attack MDP and its three incentive
  models (the headline Tables 2-4);
- :mod:`repro.baselines` -- Bitcoin attack baselines (selfish mining,
  selfish mining + double-spending, 51% attack);
- :mod:`repro.games` -- the Section 5 games on emergent consensus;
- :mod:`repro.countermeasure` -- the Section 6.3 voting countermeasure;
- :mod:`repro.sim` -- a Monte-Carlo mining simulator over the substrate;
- :mod:`repro.analysis` -- sweeps, paper tables and validation helpers.

Quickstart::

    from repro import AttackConfig, solve_relative_revenue
    analysis = solve_relative_revenue(
        AttackConfig.from_ratio(0.25, (2, 3), setting=1))
    print(analysis.utility)   # > 0.25: BU is not incentive compatible
"""

from repro.core import (
    AttackAnalysis,
    AttackConfig,
    IncentiveModel,
    analyze,
    build_attack_mdp,
    solve_absolute_reward,
    solve_orphan_rate,
    solve_relative_revenue,
)
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "AttackConfig",
    "AttackAnalysis",
    "IncentiveModel",
    "analyze",
    "build_attack_mdp",
    "solve_relative_revenue",
    "solve_absolute_reward",
    "solve_orphan_rate",
]
