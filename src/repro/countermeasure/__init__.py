"""The paper's countermeasure (Section 6.3): miner block-voting on the
block size limit while a prescribed BVC holds at every height."""

from repro.countermeasure.voting import (
    PreferenceVoter,
    Vote,
    VoteParams,
    VotingSimulation,
    equilibrium_limit,
    limit_schedule,
)
from repro.countermeasure.bip100 import (
    BIP100Params,
    bip100_schedule,
    simulate_bip100,
)

__all__ = [
    "Vote",
    "VoteParams",
    "PreferenceVoter",
    "VotingSimulation",
    "limit_schedule",
    "equilibrium_limit",
    "BIP100Params",
    "bip100_schedule",
    "simulate_bip100",
]
