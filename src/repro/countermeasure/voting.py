"""Dynamic block size limit by miner block-voting (Section 6.3).

The countermeasure keeps a *prescribed* BVC -- at any height every
participant derives the same block size limit from the shared chain
prefix -- while letting miners adjust the limit over time:

- each block carries a vote: *up*, *down*, or *abstain*;
- per 2016-block difficulty period, if the fraction of up-votes is at
  least ``up_threshold`` **and** the fraction of down-votes is at most
  ``veto_threshold``, the limit increases by ``step`` -- but only after
  ``activation_delay`` further blocks of the next period, so a fork at
  the period boundary cannot create disagreement about whether the
  thresholds were met;
- decreases mirror increases.

Because the limit at height ``h`` is a pure function of the first
``h`` votes, BVC holds by construction; :func:`limit_schedule` *is*
that pure function, and the tests check every node evaluating it on
the same chain agrees.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ReproError
from repro.protocol.params import DIFFICULTY_PERIOD, MESSAGE_LIMIT_MB


class Vote(enum.Enum):
    """A block's block-size vote."""

    UP = "up"
    DOWN = "down"
    ABSTAIN = "abstain"


@dataclass(frozen=True)
class VoteParams:
    """Rules of the voting scheme.

    Attributes
    ----------
    period:
        Number of blocks per voting (difficulty) period.
    activation_delay:
        Blocks of the next period that must be mined before an approved
        adjustment takes effect (the paper suggests two hundred).
    step:
        Size of one adjustment, in megabytes.
    up_threshold:
        Minimum fraction of blocks voting in favour.
    veto_threshold:
        Maximum fraction of blocks voting against.
    initial_limit, min_limit, max_limit:
        Limit bounds (the message cap bounds any block anyway).
    """

    period: int = DIFFICULTY_PERIOD
    activation_delay: int = 200
    step: float = 0.1
    up_threshold: float = 0.75
    veto_threshold: float = 0.25
    initial_limit: float = 1.0
    min_limit: float = 0.1
    max_limit: float = MESSAGE_LIMIT_MB

    def __post_init__(self) -> None:
        if self.period < 1:
            raise ReproError("period must be positive")
        if not 0 <= self.activation_delay <= self.period:
            raise ReproError("activation_delay must lie in [0, period]")
        if self.step <= 0:
            raise ReproError("step must be positive")
        if not 0 < self.up_threshold <= 1:
            raise ReproError("up_threshold must lie in (0, 1]")
        if not 0 <= self.veto_threshold < 1:
            raise ReproError("veto_threshold must lie in [0, 1)")
        if not (self.min_limit <= self.initial_limit <= self.max_limit):
            raise ReproError("initial limit outside [min, max]")


def limit_schedule(votes: Sequence[Vote],
                   params: VoteParams) -> List[float]:
    """Return the block size limit in force at every height.

    ``result[h]`` is the limit applied to the block at height ``h``
    (0-based), derived purely from the votes of blocks ``0..h-1`` --
    the prescribed-BVC property.
    """
    limits: List[float] = []
    limit = params.initial_limit
    pending: Optional[float] = None  # adjustment awaiting activation
    ups = downs = 0
    for h in range(len(votes) + 1):
        in_period = h % params.period
        if in_period == 0 and h > 0:
            # Period just ended: tally and stage an adjustment.
            up_frac = ups / params.period
            down_frac = downs / params.period
            delta = 0.0
            if (up_frac >= params.up_threshold
                    and down_frac <= params.veto_threshold):
                delta = params.step
            elif (down_frac >= params.up_threshold
                    and up_frac <= params.veto_threshold):
                delta = -params.step
            pending = delta if delta else None
            ups = downs = 0
        if pending is not None and in_period >= params.activation_delay:
            limit = float(np.clip(limit + pending, params.min_limit,
                                  params.max_limit))
            pending = None
        limits.append(limit)
        if h < len(votes):
            if votes[h] is Vote.UP:
                ups += 1
            elif votes[h] is Vote.DOWN:
                downs += 1
    return limits


@dataclass(frozen=True)
class PreferenceVoter:
    """A miner voting according to a preferred block size.

    Votes *up* when its preference exceeds the current limit by more
    than ``slack``, *down* when the limit exceeds the preference by
    more than ``slack``, and abstains otherwise.
    """

    name: str
    power: float
    preferred_size: float
    slack: float = 0.0

    def vote(self, current_limit: float) -> Vote:
        """The miner's vote given the limit in force."""
        if self.preferred_size > current_limit + self.slack:
            return Vote.UP
        if self.preferred_size < current_limit - self.slack:
            return Vote.DOWN
        return Vote.ABSTAIN


class VotingSimulation:
    """Simulates the countermeasure with preference voters.

    Block authors are drawn by mining power; each block's vote follows
    the author's preference against the limit in force at its height.
    """

    def __init__(self, miners: Sequence[PreferenceVoter],
                 params: Optional[VoteParams] = None) -> None:
        if not miners:
            raise ReproError("need at least one miner")
        total = sum(m.power for m in miners)
        if total <= 0:
            raise ReproError("total mining power must be positive")
        self.miners = list(miners)
        self.weights = np.array([m.power / total for m in miners])
        self.params = params or VoteParams()

    def run(self, n_periods: int,
            rng: Optional[np.random.Generator] = None) -> "VotingTrace":
        """Simulate ``n_periods`` full periods and return the trace.

        With ``rng=None`` the simulation is *expected-vote*
        deterministic: each period's vote fractions equal the mining
        power fractions of each stance (removing sampling noise, which
        is what the equilibrium analysis predicts).
        """
        params = self.params
        n_blocks = n_periods * params.period
        votes: List[Vote] = []
        limits: List[float] = []
        limit = params.initial_limit
        pending: Optional[float] = None
        ups = downs = 0.0
        for h in range(n_blocks):
            in_period = h % params.period
            if in_period == 0 and h > 0:
                up_frac = ups / params.period
                down_frac = downs / params.period
                delta = 0.0
                if (up_frac >= params.up_threshold
                        and down_frac <= params.veto_threshold):
                    delta = params.step
                elif (down_frac >= params.up_threshold
                        and up_frac <= params.veto_threshold):
                    delta = -params.step
                pending = delta if delta else None
                ups = downs = 0.0
            if pending is not None and in_period >= params.activation_delay:
                limit = float(np.clip(limit + pending, params.min_limit,
                                      params.max_limit))
                pending = None
            limits.append(limit)
            if rng is None:
                stance_up = sum(w for m, w in zip(self.miners, self.weights)
                                if m.vote(limit) is Vote.UP)
                stance_down = sum(w for m, w in
                                  zip(self.miners, self.weights)
                                  if m.vote(limit) is Vote.DOWN)
                ups += stance_up
                downs += stance_down
                votes.append(Vote.ABSTAIN)  # aggregate mode
            else:
                author = self.miners[int(rng.choice(len(self.miners),
                                                    p=self.weights))]
                vote = author.vote(limit)
                votes.append(vote)
                if vote is Vote.UP:
                    ups += 1
                elif vote is Vote.DOWN:
                    downs += 1
        return VotingTrace(limits=limits, votes=votes, params=params)


@dataclass
class VotingTrace:
    """Result of a voting simulation.

    Attributes
    ----------
    limits:
        Limit in force at every height.
    votes:
        Per-block votes (aggregate mode records abstain placeholders).
    params:
        The rules used.
    """

    limits: List[float]
    votes: List[Vote]
    params: VoteParams

    @property
    def final_limit(self) -> float:
        """Limit in force after the last simulated block."""
        return self.limits[-1]

    def bvc_holds(self) -> bool:
        """Whether two independent evaluations of the limit schedule
        agree at every height (trivially true by construction; kept as
        an executable statement of the invariant)."""
        replay = limit_schedule(self.votes, self.params)[:len(self.limits)]
        if len(self.votes) == len(self.limits) and all(
                v is Vote.ABSTAIN for v in self.votes):
            return True  # aggregate mode: per-block votes not recorded
        return replay == self.limits


def equilibrium_limit(miners: Sequence[PreferenceVoter],
                      params: Optional[VoteParams] = None) -> float:
    """The limit at which expected-vote dynamics stop moving: the first
    reachable value (stepping from the initial limit) where neither the
    up- nor the down-coalition clears its threshold."""
    params = params or VoteParams()
    total = sum(m.power for m in miners)
    limit = params.initial_limit
    for _ in range(100_000):
        up = sum(m.power for m in miners
                 if m.vote(limit) is Vote.UP) / total
        down = sum(m.power for m in miners
                   if m.vote(limit) is Vote.DOWN) / total
        if up >= params.up_threshold and down <= params.veto_threshold:
            new = min(limit + params.step, params.max_limit)
        elif down >= params.up_threshold and up <= params.veto_threshold:
            new = max(limit - params.step, params.min_limit)
        else:
            return limit
        if new == limit:
            return limit
        limit = new
    raise ReproError("equilibrium search did not terminate")
