"""BIP 100: dynamic maximum block size by miner vote (Garzik et al.).

The paper's Section 6.3 cites BIP 100 as an existing design that keeps
a prescribed BVC while letting miners adjust the limit: each block
carries an explicit size vote in its coinbase; at every 2016-block
boundary the new limit is a low percentile of the period's votes
(protecting the slow minority), clamped to at most a small multiplier
of change per period.  Like :mod:`repro.countermeasure.voting`, the
limit at any height is a pure function of the shared chain prefix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ReproError
from repro.protocol.params import DIFFICULTY_PERIOD, MESSAGE_LIMIT_MB


@dataclass(frozen=True)
class BIP100Params:
    """Rules of the BIP 100 adjustment.

    Attributes
    ----------
    period:
        Blocks per voting period.
    percentile:
        The vote percentile adopted as the new limit (BIP 100 uses the
        20th percentile: 80% of blocks must vote at or above a size
        for it to pass).
    max_change:
        Maximum multiplicative change per period (BIP 100: 1.05).
    initial_limit, min_limit, max_limit:
        Limit bounds.
    """

    period: int = DIFFICULTY_PERIOD
    percentile: float = 20.0
    max_change: float = 1.05
    initial_limit: float = 1.0
    min_limit: float = 0.1
    max_limit: float = MESSAGE_LIMIT_MB

    def __post_init__(self) -> None:
        if self.period < 1:
            raise ReproError("period must be positive")
        if not 0 < self.percentile < 100:
            raise ReproError("percentile must lie in (0, 100)")
        if self.max_change <= 1.0:
            raise ReproError("max_change must exceed 1")
        if not (self.min_limit <= self.initial_limit <= self.max_limit):
            raise ReproError("initial limit outside [min, max]")


def bip100_schedule(size_votes: Sequence[float],
                    params: Optional[BIP100Params] = None) -> List[float]:
    """Return the limit in force at every height, given each block's
    coinbase size vote.

    ``result[h]`` depends only on votes ``0..h-1`` -- the prescribed-BVC
    property, shared with :func:`repro.countermeasure.voting.limit_schedule`.
    """
    params = params or BIP100Params()
    if any(v <= 0 for v in size_votes):
        raise ReproError("size votes must be positive")
    limits: List[float] = []
    limit = params.initial_limit
    for h in range(len(size_votes) + 1):
        if h % params.period == 0 and h > 0:
            votes = np.asarray(size_votes[h - params.period: h])
            target = float(np.percentile(votes, params.percentile))
            lo = limit / params.max_change
            hi = limit * params.max_change
            limit = float(np.clip(np.clip(target, lo, hi),
                                  params.min_limit, params.max_limit))
        limits.append(limit)
    return limits


def simulate_bip100(preferences: Sequence[float],
                    powers: Sequence[float], n_periods: int,
                    params: Optional[BIP100Params] = None,
                    rng: Optional[np.random.Generator] = None
                    ) -> List[float]:
    """Simulate miners voting their preferred sizes.

    With ``rng=None`` the vote sequence interleaves deterministically in
    proportion to power; otherwise block authors are sampled.
    Returns the limit trajectory (one entry per height).
    """
    params = params or BIP100Params()
    if len(preferences) != len(powers) or not preferences:
        raise ReproError("preferences and powers must align and be "
                         "non-empty")
    weights = np.asarray(powers, dtype=float)
    if weights.min() <= 0:
        raise ReproError("powers must be positive")
    weights = weights / weights.sum()
    n_blocks = n_periods * params.period
    if rng is None:
        # Deterministic proportional interleaving (largest remainder).
        counts = np.floor(weights * params.period).astype(int)
        while counts.sum() < params.period:
            counts[int(np.argmax(weights * params.period - counts))] += 1
        period_votes: List[float] = []
        for pref, count in zip(preferences, counts):
            period_votes.extend([pref] * int(count))
        votes = period_votes * n_periods
    else:
        authors = rng.choice(len(weights), size=n_blocks, p=weights)
        votes = [preferences[int(a)] for a in authors]
    return bip100_schedule(votes, params)
