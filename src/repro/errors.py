"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single base class.  More specific subclasses exist
for the major subsystems (chain substrate, MDP toolkit, games) to keep
error handling targeted.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ChainError(ReproError):
    """Base class for blockchain substrate errors."""


class UnknownBlockError(ChainError):
    """A referenced block id is not present in the block tree."""


class DuplicateBlockError(ChainError):
    """A block with the same id was already inserted into the tree."""


class OrphanParentError(ChainError):
    """A block references a parent that is not in the tree."""


class InvalidBlockError(ChainError):
    """A block violates a structural rule (e.g. non-positive size)."""


class MDPError(ReproError):
    """Base class for MDP construction and solving errors."""


class InvalidTransitionError(MDPError):
    """A transition's probabilities are malformed (negative, or do not
    sum to one per state/action pair)."""


class NoActionError(MDPError):
    """A state was built with no available action."""


class SolverError(MDPError):
    """An MDP solver failed to converge or hit a numerical problem."""


class SolverInputError(SolverError):
    """A solver was called with malformed inputs (non-positive
    tolerance, empty channel mappings, invalid bracket, ...)."""


class SchedulerSpecError(SolverInputError):
    """A scheduler spec is malformed -- empty or missing ``nodes``,
    zero/negative/non-numeric slot or worker counts -- and was rejected
    at parse time, before any pool is constructed.  Subclass of
    :class:`SolverInputError` so supervised sweeps treat it as a
    non-retryable caller mistake."""


class SolverDivergedError(SolverError):
    """A solver produced non-finite intermediate or final values (NaN
    or infinite gains/ratios) instead of a usable solution."""


class SolverBudgetExceededError(SolverError):
    """A supervised solve exhausted its wall-clock or iteration budget
    before converging."""


class SolveDeadlineError(SolverBudgetExceededError):
    """A solve missed its caller-imposed wall-clock deadline.

    Subclass of :class:`SolverBudgetExceededError` so fallback chains
    treat it as non-recoverable: a different algorithm cannot refund
    spent time.  Raised by :meth:`repro.core.deadline.Deadline.budget`
    when the deadline expired before the solve could even start, and by
    the serving layer when an in-flight solve overruns it."""


class FallbackExhaustedError(SolverError):
    """Every stage of a solver fallback chain failed; carries the
    per-stage diagnostics in :attr:`diagnostics`."""

    def __init__(self, message: str, diagnostics=()) -> None:
        super().__init__(message)
        #: Sequence of ``StageDiagnostics`` describing each attempt.
        self.diagnostics = list(diagnostics)


class GameError(ReproError):
    """Base class for game-theoretic module errors."""


class InvalidPowerVectorError(GameError):
    """Mining power shares are malformed (negative, or do not sum to 1)."""


class SimulationError(ReproError):
    """The Monte-Carlo simulator hit an inconsistent state."""


class FaultInjectionError(SimulationError):
    """A fault-injection plan is malformed (rates outside [0, 1],
    inverted windows, unknown node names)."""


class CheckpointError(ReproError):
    """A checkpoint journal is corrupt or belongs to a different sweep
    or schema version."""


class ArtifactCorruptError(ReproError):
    """A persisted artifact (analysis file, table, atlas entry) failed
    to load: malformed JSON, wrong kind/schema, missing fields, or a
    checksum mismatch.

    Carries the offending path and a human-readable reason so serving
    layers can quarantine the file instead of crashing."""

    def __init__(self, path, reason: str) -> None:
        super().__init__(f"{path}: {reason}")
        #: Location of the corrupt artifact.
        self.path = str(path)
        #: Why the artifact was rejected.
        self.reason = reason


class ServeError(ReproError):
    """Base class for solver-as-a-service errors."""


class ServiceOverloadError(ServeError):
    """The service's admission controller rejected a request because
    the pending-solve queue is full (the 429 of this system).  Clients
    should back off and retry; the request was never enqueued."""


class ServiceShutdownError(ServeError):
    """The service is draining or closed; the request was either never
    admitted or its in-flight solve was cancelled by shutdown."""


class RequestTooLargeError(ServeError):
    """A front-end request exceeded the configured size limit (the 413
    of this system).  The connection is answered with a typed error
    object -- never silently dropped -- and then closed, because the
    stream position past an oversized frame is unrecoverable."""


class AtlasQuarantineError(ServeError):
    """Moving a corrupt atlas entry into ``quarantine/`` failed for a
    real reason (permissions, a cross-device quarantine directory, ...)
    rather than a lost race with another process.  The corrupt entry is
    still in place; serving must surface this instead of silently
    retrying the same poisoned file forever."""
