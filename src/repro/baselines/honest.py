"""Honest-mining analytics.

Bitcoin's mining protocol is incentive compatible when all miners are
compliant and propagation delay is negligible (Section 3.1): a miner's
expected relative revenue equals its mining power share.  These helpers
state that baseline and a standard delay-induced natural fork-rate
estimate used in discussion sections.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import ReproError


def expected_relative_revenue(power_share: float) -> float:
    """Expected relative revenue of a compliant miner in Bitcoin with
    negligible propagation delay: exactly its power share."""
    if not 0 <= power_share <= 1:
        raise ReproError("power share must lie in [0, 1]")
    return power_share


def is_incentive_compatible(power_shares: Sequence[float],
                            revenues: Sequence[float],
                            tol: float = 1e-9) -> bool:
    """Whether observed relative revenues match power shares, i.e. no
    miner earns block rewards unproportional to its mining power."""
    if len(power_shares) != len(revenues):
        raise ReproError("shares and revenues must have equal length")
    return all(abs(s - r) <= tol for s, r in zip(power_shares, revenues))


def fork_rate_with_delay(block_interval: float,
                         propagation_delay: float) -> float:
    """Natural fork probability per block with exponential block arrivals
    (rate ``1/block_interval``) and uniform propagation delay: the
    chance another block is found within the delay window,
    ``1 - exp(-delay / interval)``."""
    if block_interval <= 0:
        raise ReproError("block interval must be positive")
    if propagation_delay < 0:
        raise ReproError("propagation delay cannot be negative")
    return 1.0 - math.exp(-propagation_delay / block_interval)
