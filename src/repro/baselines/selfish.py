"""Optimal selfish mining in Bitcoin (Sapirshtein et al. 2016).

The attacker privately extends its own chain and strategically releases
blocks to orphan honest work.  States are ``(a, h, fork)`` where ``a``
and ``h`` are the attacker's private and the honest public chain
lengths since the last common ancestor and ``fork`` tracks whether a
*match* (publishing ``h`` blocks to tie the honest chain) is feasible
or ongoing.  The tie-winning parameter ``tie_power`` is the fraction of
honest mining power that mines on the attacker's branch during an
active match -- the paper's "P(win a tie)".

Reward channels mirror :mod:`repro.core.transitions`: ``alice`` /
``others`` for blocks locked into the blockchain, ``alice_orphans`` /
``others_orphans`` for orphaned blocks, and ``ds`` for double-spend
bonuses (used by :mod:`repro.baselines.selfish_ds`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.core.double_spend import DEFAULT_CONFIRMATIONS, double_spend_bonus
from repro.errors import ReproError
from repro.mdp.builder import MDPBuilder
from repro.mdp.model import MDP
from repro.mdp.policy import Policy
from repro.mdp.ratio import maximize_ratio

IRRELEVANT, RELEVANT, ACTIVE = "irrelevant", "relevant", "active"

ADOPT, OVERRIDE, MATCH, WAIT = "adopt", "override", "match", "wait"

CHANNELS = ("alice", "others", "alice_orphans", "others_orphans", "ds")


@dataclass(frozen=True)
class SelfishMiningConfig:
    """Parameters of the selfish-mining MDP.

    Attributes
    ----------
    alpha:
        Attacker's mining power share.
    tie_power:
        Fraction of honest power mining on the attacker's branch during
        an active match (0 = attacker never wins ties from honest help,
        1 = "the attacker wins all equal-length block races").
    max_len:
        Truncation depth of either chain; at the cap the attacker is
        forced to resolve (adopt or override).
    rds:
        Double-spend value in block rewards (0 disables the combined
        attack and yields plain selfish mining).
    confirmations:
        Merchant confirmation count for double-spending.
    """

    alpha: float
    tie_power: float = 0.0
    max_len: int = 24
    rds: float = 0.0
    confirmations: int = DEFAULT_CONFIRMATIONS

    def __post_init__(self) -> None:
        if not 0 < self.alpha < 0.5:
            raise ReproError("alpha must lie in (0, 0.5)")
        if not 0 <= self.tie_power <= 1:
            raise ReproError("tie_power must lie in [0, 1]")
        if self.max_len < 4:
            raise ReproError("max_len must be at least 4")
        if self.rds < 0:
            raise ReproError("rds cannot be negative")


State = Tuple[int, int, str]


def _transitions(config: SelfishMiningConfig) -> Iterator[tuple]:
    """Yield ``(state, action, next_state, prob, rewards)`` tuples."""
    alpha = config.alpha
    honest = 1.0 - alpha
    tie = config.tie_power
    cap = config.max_len

    def ds(orphaned: int) -> float:
        return double_spend_bonus(orphaned, config.rds, config.confirmations)

    for a in range(cap + 1):
        for h in range(cap + 1):
            for fork in (IRRELEVANT, RELEVANT, ACTIVE):
                state: State = (a, h, fork)
                if fork is ACTIVE and (h == 0 or a < h):
                    continue  # a match requires h >= 1 and a >= h
                if fork is RELEVANT and h == 0:
                    continue  # "last block honest" implies h >= 1
                # -- adopt: abandon the private chain --------------
                if h >= 1:
                    rewards = {"others": float(h),
                               "alice_orphans": float(a)}
                    yield (state, ADOPT, (1, 0, IRRELEVANT), alpha, rewards)
                    yield (state, ADOPT, (0, 1, IRRELEVANT), honest, rewards)
                # -- override: publish h+1 blocks ------------------
                if a > h:
                    rewards = {"alice": float(h + 1),
                               "others_orphans": float(h),
                               "ds": ds(h)}
                    yield (state, OVERRIDE, (a - h, 0, IRRELEVANT),
                           alpha, rewards)
                    yield (state, OVERRIDE, (a - h - 1, 1, RELEVANT),
                           honest, rewards)
                # -- wait / match ----------------------------------
                if fork is ACTIVE:
                    # Match ongoing: honest power is split.
                    if a < cap:
                        yield (state, WAIT, (a + 1, h, ACTIVE), alpha, {})
                        win = {"alice": float(h),
                               "others_orphans": float(h),
                               "ds": ds(h)}
                        yield (state, WAIT, (a - h, 1, RELEVANT),
                               tie * honest, win)
                        if h < cap:
                            yield (state, WAIT, (a, h + 1, RELEVANT),
                                   (1 - tie) * honest, {})
                        else:
                            rewards = {"others": float(h + 1),
                                       "alice_orphans": float(a)}
                            yield (state, WAIT, (0, 0, IRRELEVANT),
                                   (1 - tie) * honest, rewards)
                else:
                    if a < cap and h < cap:
                        yield (state, WAIT, (a + 1, h, fork), alpha, {})
                        yield (state, WAIT, (a, h + 1, RELEVANT), honest, {})
                    if (fork is RELEVANT and a >= h and h >= 1
                            and a < cap):
                        yield (state, MATCH, (a + 1, h, ACTIVE), alpha, {})
                        win = {"alice": float(h),
                               "others_orphans": float(h),
                               "ds": ds(h)}
                        yield (state, MATCH, (a - h, 1, RELEVANT),
                               tie * honest, win)
                        if h < cap:
                            yield (state, MATCH, (a, h + 1, RELEVANT),
                                   (1 - tie) * honest, {})
                        else:
                            rewards = {"others": float(h + 1),
                                       "alice_orphans": float(a)}
                            yield (state, MATCH, (0, 0, IRRELEVANT),
                                   (1 - tie) * honest, rewards)


def build_selfish_mdp(config: SelfishMiningConfig) -> MDP:
    """Build the selfish-mining MDP (reachable states only)."""
    builder = MDPBuilder(actions=[ADOPT, OVERRIDE, MATCH, WAIT],
                         channels=list(CHANNELS))
    start: State = (0, 0, IRRELEVANT)
    transitions = {}
    for tr in _transitions(config):
        transitions.setdefault(tr[0], []).append(tr)
    seen = {start}
    frontier = [start]
    while frontier:
        state = frontier.pop()
        for _s, action, nxt, prob, rewards in transitions.get(state, []):
            builder.add(state, action, nxt, prob, **rewards)
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return builder.build(start=start)


@dataclass
class SelfishMiningResult:
    """Outcome of an optimal selfish-mining solve.

    Attributes
    ----------
    relative_revenue:
        Attacker's share of blockchain blocks under the optimal policy.
    policy:
        The optimal policy over ``(a, h, fork)`` states.
    config:
        The analyzed configuration.
    """

    relative_revenue: float
    policy: Policy
    config: SelfishMiningConfig


def solve_selfish_mining(config: SelfishMiningConfig,
                         tol: float = 1e-7) -> SelfishMiningResult:
    """Maximize the attacker's relative revenue (plain selfish mining)."""
    mdp = build_selfish_mdp(config)
    solution = maximize_ratio(mdp, num={"alice": 1.0},
                              den={"alice": 1.0, "others": 1.0},
                              lo=0.0, hi=1.0, tol=tol)
    return SelfishMiningResult(relative_revenue=solution.value,
                               policy=Policy(mdp, solution.policy),
                               config=config)


def eyal_sirer_revenue(alpha: float, tie_power: float) -> float:
    """Closed-form relative revenue of the fixed Eyal-Sirer SM1 strategy
    (used as a lower bound when testing the optimal MDP).

    Formula from Eyal & Sirer (2014), with ``gamma`` the honest power
    fraction mining on the attacker's branch during ties.
    """
    if not 0 < alpha < 0.5:
        raise ReproError("alpha must lie in (0, 0.5)")
    g = tie_power
    num = (alpha * (1 - alpha) ** 2 * (4 * alpha + g * (1 - 2 * alpha))
           - alpha ** 3)
    den = 1 - alpha * (1 + (2 - alpha) * alpha)
    return num / den
