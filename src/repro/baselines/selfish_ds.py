"""Selfish mining combined with double-spending in Bitcoin.

The bottom block of the paper's Table 3: the attacker mines in secret
to double-spend and, "when there is little hope to orphan [enough]
blocks in a row, publishes the secret blocks to claim the block rewards
and invalidate other miners' blocks" (Sompolinsky & Zohar).  The
utility is the absolute reward u_A2 (Eq. 2): the attacker's time-averaged
income (block rewards + double-spends) per network block, with a
double-spend worth ten block rewards banked whenever a race orphans
more than ``confirmations - 1`` honest blocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.baselines.selfish import SelfishMiningConfig, build_selfish_mdp
from repro.core.double_spend import DEFAULT_CONFIRMATIONS, DEFAULT_RDS
from repro.errors import ReproError
from repro.mdp.policy import Policy
from repro.mdp.policy_iteration import policy_iteration
from repro.mdp.stationary import policy_gains


@dataclass
class SelfishDSResult:
    """Outcome of the combined selfish-mining + double-spending solve.

    Attributes
    ----------
    absolute_reward:
        u_A2: attacker income (blocks + double-spends) per network block.
    policy:
        The optimal policy.
    rates:
        Per-step rate of every reward channel under the optimal policy.
    config:
        The analyzed configuration.
    """

    absolute_reward: float
    policy: Policy
    rates: Dict[str, float]
    config: SelfishMiningConfig


def solve_selfish_mining_double_spend(
        alpha: float, tie_power: float,
        rds: float = DEFAULT_RDS,
        confirmations: int = DEFAULT_CONFIRMATIONS,
        max_len: int = 24) -> SelfishDSResult:
    """Maximize the attacker's absolute reward in Bitcoin.

    Each MDP step mines exactly one block, so u_A2 is the plain average
    of the ``alice + ds`` channels per step.
    """
    if rds <= 0:
        raise ReproError("combined attack requires a positive rds")
    config = SelfishMiningConfig(alpha=alpha, tie_power=tie_power,
                                 max_len=max_len, rds=rds,
                                 confirmations=confirmations)
    mdp = build_selfish_mdp(config)
    reward = mdp.combined_reward({"alice": 1.0, "ds": 1.0})
    solution = policy_iteration(mdp, reward)
    rates = policy_gains(mdp, solution.policy)
    return SelfishDSResult(absolute_reward=solution.gain,
                           policy=Policy(mdp, solution.policy),
                           rates=rates, config=config)
