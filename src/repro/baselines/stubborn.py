"""Stubborn mining strategies (Nayak et al., EuroS&P 2016).

The paper cites stubborn mining as one of the known non-compliant
attacks on Bitcoin (Section 2.4's related work).  Stubborn strategies
generalize Eyal-Sirer selfish mining with three independent toggles:

- **Lead-stubborn** (L): with a lead, *match* instead of overriding
  when the honest chain catches up to one behind.
- **Equal-fork-stubborn** (F): keep mining through an active
  equal-length fork rather than overriding on the next block.
- **Trail-stubborn** (T_j): stay behind by up to ``j`` blocks before
  adopting the honest chain.

Each variant is a *fixed policy* on the selfish-mining MDP of
:mod:`repro.baselines.selfish`, evaluated exactly via the stationary
distribution.  The optimal MDP policy must dominate every variant
(property-tested), and the variants beat plain SM1 in the regions
Nayak et al. report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.baselines.selfish import (
    ACTIVE,
    ADOPT,
    MATCH,
    OVERRIDE,
    RELEVANT,
    SelfishMiningConfig,
    WAIT,
    build_selfish_mdp,
)
from repro.errors import ReproError
from repro.mdp.model import MDP
from repro.mdp.stationary import policy_gains


@dataclass(frozen=True)
class StubbornProfile:
    """Which stubborn toggles are active.

    Attributes
    ----------
    lead:
        Lead-stubbornness: prefer matching over overriding.
    equal_fork:
        Equal-fork-stubbornness: keep private blocks through ties.
    trail:
        Trail-stubbornness depth ``j`` (0 = adopt as soon as behind).
    """

    lead: bool = False
    equal_fork: bool = False
    trail: int = 0

    def __post_init__(self) -> None:
        if self.trail < 0:
            raise ReproError("trail depth cannot be negative")

    @property
    def name(self) -> str:
        """Short label, e.g. ``"L,T1"`` or ``"SM1"``."""
        parts = []
        if self.lead:
            parts.append("L")
        if self.equal_fork:
            parts.append("F")
        if self.trail:
            parts.append(f"T{self.trail}")
        return ",".join(parts) if parts else "SM1"


def _choose(mdp: MDP, available: np.ndarray, state_idx: int,
            *preferences: str) -> int:
    for name in preferences:
        a = mdp.action_index(name)
        if available[a, state_idx]:
            return a
    raise ReproError(
        f"no action available among {preferences} in state "
        f"{mdp.state_keys[state_idx]!r}")


def stubborn_policy(mdp: MDP, config: SelfishMiningConfig,
                    profile: StubbornProfile) -> np.ndarray:
    """Render a stubborn profile as a deterministic policy over the
    selfish-mining MDP's ``(a, h, fork)`` states."""
    policy = np.zeros(mdp.n_states, dtype=int)
    for idx, (a, h, fork) in enumerate(mdp.state_keys):
        if fork == ACTIVE:
            if a > h and not profile.equal_fork:
                action = _choose(mdp, mdp.available, idx, OVERRIDE, WAIT,
                                 ADOPT)
            else:
                action = _choose(mdp, mdp.available, idx, WAIT, OVERRIDE,
                                 ADOPT)
        elif h > a:
            # Behind: trail-stubborn miners hang on up to `trail` deep.
            if h - a > profile.trail or h >= config.max_len:
                action = _choose(mdp, mdp.available, idx, ADOPT, WAIT)
            else:
                action = _choose(mdp, mdp.available, idx, WAIT, ADOPT)
        elif a == h:
            if h == 0:
                action = mdp.action_index(WAIT)
            elif fork == RELEVANT:
                # Eyal-Sirer SM1 publishes its block to force the tie.
                action = _choose(mdp, mdp.available, idx, MATCH, WAIT,
                                 ADOPT)
            else:
                action = _choose(mdp, mdp.available, idx, WAIT, ADOPT)
        else:  # a > h: ahead
            if h == 0:
                if a >= config.max_len:
                    action = mdp.action_index(OVERRIDE)
                else:
                    action = mdp.action_index(WAIT)
            elif a - h == 1:
                # The honest chain caught up to one behind: SM1
                # overrides; lead-stubborn matches instead.
                if profile.lead and fork == RELEVANT:
                    action = _choose(mdp, mdp.available, idx, MATCH,
                                     OVERRIDE, ADOPT)
                else:
                    action = _choose(mdp, mdp.available, idx, OVERRIDE,
                                     WAIT, ADOPT)
            else:
                if profile.lead and fork == RELEVANT:
                    action = _choose(mdp, mdp.available, idx, MATCH, WAIT,
                                     OVERRIDE)
                else:
                    action = _choose(mdp, mdp.available, idx, WAIT,
                                     OVERRIDE, ADOPT)
        policy[idx] = action
    return policy


@dataclass
class StubbornResult:
    """Exact evaluation of one stubborn profile.

    Attributes
    ----------
    profile:
        The evaluated toggles.
    relative_revenue:
        The attacker's share of blockchain blocks.
    rates:
        Per-step channel rates.
    """

    profile: StubbornProfile
    relative_revenue: float
    rates: Dict[str, float]


def evaluate_stubborn(config: SelfishMiningConfig,
                      profile: StubbornProfile,
                      mdp: MDP = None) -> StubbornResult:
    """Exactly evaluate a stubborn profile's relative revenue."""
    if mdp is None:
        mdp = build_selfish_mdp(config)
    policy = stubborn_policy(mdp, config, profile)
    gains = policy_gains(mdp, policy)
    revenue = gains["alice"] / (gains["alice"] + gains["others"])
    return StubbornResult(profile=profile, relative_revenue=revenue,
                          rates=gains)


def sweep_profiles(config: SelfishMiningConfig,
                   max_trail: int = 2) -> Dict[str, StubbornResult]:
    """Evaluate SM1 and every stubborn toggle combination up to
    ``max_trail`` and return results keyed by profile name."""
    mdp = build_selfish_mdp(config)
    out: Dict[str, StubbornResult] = {}
    for lead in (False, True):
        for equal_fork in (False, True):
            for trail in range(max_trail + 1):
                profile = StubbornProfile(lead=lead, equal_fork=equal_fork,
                                          trail=trail)
                out[profile.name] = evaluate_stubborn(config, profile, mdp)
    return out
