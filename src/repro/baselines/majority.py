"""51% (Goldfinger) attack analytics.

The Bitcoin reference point for the non-profit-driven incentive model
(Section 3.3): an attacker with majority power constantly overrides the
blockchain.  Every attacker block orphans at most one compliant block,
so ``u_A3 = 1`` -- the paper's Table 4 shows BU pushes this as high as
1.77 *without* majority power.
"""

from __future__ import annotations

from repro.errors import ReproError


def catch_up_probability(attacker_power: float, deficit: int) -> float:
    """Probability the attacker ever catches up from ``deficit`` blocks
    behind (Nakamoto's gambler's-ruin analysis): 1 with majority power,
    ``(q / p) ** deficit`` otherwise."""
    q = attacker_power
    if not 0 < q < 1:
        raise ReproError("attacker power must lie in (0, 1)")
    if deficit < 0:
        raise ReproError("deficit cannot be negative")
    if deficit == 0 or q >= 0.5:
        return 1.0
    return (q / (1.0 - q)) ** deficit


def expected_race_length(attacker_power: float, deficit: int) -> float:
    """Expected number of blocks mined until a majority attacker erases
    a ``deficit``-block lead (gambler's-ruin hitting time,
    ``deficit / (2q - 1)``)."""
    q = attacker_power
    if not 0.5 < q < 1:
        raise ReproError("expected race length requires majority power")
    if deficit < 0:
        raise ReproError("deficit cannot be negative")
    return deficit / (2.0 * q - 1.0)


def majority_orphan_rate(attacker_power: float) -> float:
    """u_A3 of a majority attacker who overrides everything: each
    compliant block is orphaned, each attacker block ends up in the
    chain, so others' orphans per attacker block is
    ``(1 - q) / q`` -- at most 1 for ``q >= 0.5``."""
    q = attacker_power
    if not 0.5 <= q < 1:
        raise ReproError("majority attack requires q >= 0.5")
    return (1.0 - q) / q
