"""Bitcoin attack baselines the paper compares against.

- :mod:`repro.baselines.honest` -- honest-mining analytics (incentive
  compatibility of Bitcoin under compliance, Section 3.1);
- :mod:`repro.baselines.selfish` -- the Sapirshtein et al. optimal
  selfish-mining MDP with the tie-winning parameter;
- :mod:`repro.baselines.selfish_ds` -- selfish mining combined with
  double-spending (Sompolinsky & Zohar), the bottom block of Table 3;
- :mod:`repro.baselines.majority` -- 51% (Goldfinger) attack analytics,
  the Bitcoin reference for the non-profit-driven model.
"""

from repro.baselines.honest import (
    expected_relative_revenue,
    fork_rate_with_delay,
    is_incentive_compatible,
)
from repro.baselines.selfish import (
    SelfishMiningConfig,
    build_selfish_mdp,
    eyal_sirer_revenue,
    solve_selfish_mining,
)
from repro.baselines.selfish_ds import solve_selfish_mining_double_spend
from repro.baselines.stubborn import (
    StubbornProfile,
    evaluate_stubborn,
    sweep_profiles,
)
from repro.baselines.majority import (
    catch_up_probability,
    expected_race_length,
    majority_orphan_rate,
)

__all__ = [
    "expected_relative_revenue",
    "is_incentive_compatible",
    "fork_rate_with_delay",
    "SelfishMiningConfig",
    "build_selfish_mdp",
    "solve_selfish_mining",
    "eyal_sirer_revenue",
    "solve_selfish_mining_double_spend",
    "StubbornProfile",
    "evaluate_stubborn",
    "sweep_profiles",
    "catch_up_probability",
    "expected_race_length",
    "majority_orphan_rate",
]
