"""Plain-text table rendering for benches and examples."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import ReproError


def format_cell(value, precision: int = 4) -> str:
    """Render one cell: floats at fixed precision, None as a blank."""
    if value is None:
        return ""
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: Optional[str] = None, precision: int = 4) -> str:
    """Render an aligned ASCII table.

    >>> print(format_table(["a", "b"], [[1, 2.0]]))
    a | b
    --+-------
    1 | 2.0000
    """
    if not headers:
        raise ReproError("table needs at least one column")
    rendered: List[List[str]] = [[format_cell(v, precision) for v in row]
                                 for row in rows]
    for row in rendered:
        if len(row) != len(headers):
            raise ReproError("row width does not match header count")
    widths = [max(len(h), *(len(r[i]) for r in rendered)) if rendered
              else len(h) for i, h in enumerate(headers)]
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(line.rstrip() for line in lines)
