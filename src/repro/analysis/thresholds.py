"""Profitability thresholds.

Two boundary curves matter in the paper's story:

- **Bitcoin's selfish-mining threshold**: the minimum mining power at
  which deviating beats honest mining (Sapirshtein et al.: 23.21% at
  tie_power 0, falling to 0 as tie_power approaches 1).  Bitcoin's
  security margin is this gap.
- **BU's attack thresholds**: the minimum power at which each BU attack
  beats honest mining.  Table 3 shows there effectively *is no*
  threshold for the non-compliant attacker (a 1% miner profits), and
  Table 2's incentive-compatibility boundary is a condition on the
  *split* (alpha + gamma > beta), not on alpha alone.  These functions
  compute both curves by bisection over exact solves.
"""

from __future__ import annotations

from typing import Callable, Tuple

from repro.baselines.selfish import SelfishMiningConfig, \
    solve_selfish_mining
from repro.core.config import AttackConfig
from repro.core.incentives import IncentiveModel
from repro.core.solve import analyze
from repro.errors import ReproError

#: A utility must beat the honest baseline by more than this to count
#: as profitable (absorbs solver tolerance).
PROFIT_EPS = 1e-5


def _bisect_threshold(profitable: Callable[[float], bool],
                      lo: float, hi: float, tol: float) -> float:
    """Smallest x in [lo, hi] with profitable(x), assuming monotone
    profitability; returns hi when nothing profits."""
    if profitable(lo):
        return lo
    if not profitable(hi):
        return hi
    while hi - lo > tol:
        mid = 0.5 * (lo + hi)
        if profitable(mid):
            hi = mid
        else:
            lo = mid
    return hi


def selfish_mining_threshold(tie_power: float, tol: float = 1e-3,
                             max_len: int = 24) -> float:
    """Minimum alpha at which optimal selfish mining beats honest
    mining in Bitcoin (23.21% at tie_power 0)."""
    if not 0 <= tie_power <= 1:
        raise ReproError("tie_power must lie in [0, 1]")

    def profitable(alpha: float) -> bool:
        result = solve_selfish_mining(SelfishMiningConfig(
            alpha=alpha, tie_power=tie_power, max_len=max_len))
        return result.relative_revenue > alpha + PROFIT_EPS

    return _bisect_threshold(profitable, 0.02, 0.49, tol)


def bu_attack_threshold(ratio: Tuple[int, int], model: IncentiveModel,
                        setting: int = 1, tol: float = 1e-3,
                        lo: float = 0.005, hi: float = 0.45) -> float:
    """Minimum alpha at which a BU attack beats honest mining for a
    given compliant split.  Returns ``lo`` when even the smallest
    probed miner profits (the Table 3 situation) and ``hi`` when no
    probed size does."""

    def profitable(alpha: float) -> bool:
        b, g = ratio
        rest = 1.0 - alpha
        config = AttackConfig(alpha=alpha, beta=rest * b / (b + g),
                              gamma=rest * g / (b + g), setting=setting)
        return analyze(config, model).advantage > PROFIT_EPS

    return _bisect_threshold(profitable, lo, hi, tol)


def relative_revenue_boundary(alpha: float, setting: int = 1,
                              steps: int = 21) -> float:
    """The split boundary of Analytical Result 1: the largest beta
    share (of the compliant power) at which a compliant alpha-miner
    still earns unfair revenue.  The theory says the boundary is
    ``beta_share = (alpha + gamma) vs beta``, i.e. compliant-beta share
    ``(1 - ... )``; measured by scanning splits."""
    if not 0 < alpha < 0.5:
        raise ReproError("alpha must lie in (0, 0.5)")
    best = 0.0
    for i in range(1, steps):
        share = i / steps  # beta's share of the compliant power
        rest = 1.0 - alpha
        config = AttackConfig(alpha=alpha, beta=rest * share,
                              gamma=rest * (1.0 - share),
                              setting=setting)
        result = analyze(config, IncentiveModel.COMPLIANT_PROFIT)
        if result.advantage > PROFIT_EPS:
            best = max(best, share)
    return best
