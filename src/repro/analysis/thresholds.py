"""Profitability thresholds.

Two boundary curves matter in the paper's story:

- **Bitcoin's selfish-mining threshold**: the minimum mining power at
  which deviating beats honest mining (Sapirshtein et al.: 23.21% at
  tie_power 0, falling to 0 as tie_power approaches 1).  Bitcoin's
  security margin is this gap.
- **BU's attack thresholds**: the minimum power at which each BU attack
  beats honest mining.  Table 3 shows there effectively *is no*
  threshold for the non-compliant attacker (a 1% miner profits), and
  Table 2's incentive-compatibility boundary is a condition on the
  *split* (alpha + gamma > beta), not on alpha alone.  These functions
  compute both curves by bisection over exact solves.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from repro.baselines.selfish import SelfishMiningConfig, \
    solve_selfish_mining
from repro.core.attack_mdp import build_attack_mdp
from repro.core.config import AttackConfig
from repro.core.incentives import IncentiveModel
from repro.core.solve import analyze
from repro.errors import ReproError

#: A utility must beat the honest baseline by more than this to count
#: as profitable (absorbs solver tolerance).
PROFIT_EPS = 1e-5


def _bisect_threshold(profitable: Callable[[float], bool],
                      lo: float, hi: float, tol: float) -> float:
    """Smallest x in [lo, hi] with profitable(x), assuming monotone
    profitability; returns hi when nothing profits.

    The termination test is scale-relative (like the ratio solver's
    bracket test): ``tol`` is interpreted against the bracket
    magnitude, so thresholds over large-scale quantities (e.g. a
    double-spend value of order 10) and over [0, 0.5] power shares
    converge to the same *relative* accuracy.
    """
    if profitable(lo):
        return lo
    if not profitable(hi):
        return hi
    while hi - lo > tol * max(1.0, abs(lo), abs(hi)):
        mid = 0.5 * (lo + hi)
        if profitable(mid):
            hi = mid
        else:
            lo = mid
    return hi


class _WarmProbe:
    """Carries the optimal policy from one bisection probe into the
    next as a warm start, when the two probes' MDPs have the same state
    space (adjacent probes differ only in transition probabilities or
    reward values, so the previous optimum is usually one or two
    improvement steps from the new one)."""

    def __init__(self) -> None:
        self.policy: Optional[np.ndarray] = None

    def warm_for(self, n_states: int) -> Optional[np.ndarray]:
        if self.policy is not None and self.policy.shape == (n_states,):
            return self.policy
        return None

    def remember(self, analysis) -> None:
        self.policy = np.asarray(analysis.policy.action_indices,
                                 dtype=int)


def selfish_mining_threshold(tie_power: float, tol: float = 1e-3,
                             max_len: int = 24) -> float:
    """Minimum alpha at which optimal selfish mining beats honest
    mining in Bitcoin (23.21% at tie_power 0)."""
    if not 0 <= tie_power <= 1:
        raise ReproError("tie_power must lie in [0, 1]")

    def profitable(alpha: float) -> bool:
        result = solve_selfish_mining(SelfishMiningConfig(
            alpha=alpha, tie_power=tie_power, max_len=max_len))
        return result.relative_revenue > alpha + PROFIT_EPS

    return _bisect_threshold(profitable, 0.02, 0.49, tol)


def bu_attack_threshold(ratio: Tuple[int, int], model: IncentiveModel,
                        setting: int = 1, tol: float = 1e-3,
                        lo: float = 0.005, hi: float = 0.45) -> float:
    """Minimum alpha at which a BU attack beats honest mining for a
    given compliant split.  Returns ``lo`` when even the smallest
    probed miner profits (the Table 3 situation) and ``hi`` when no
    probed size does."""

    warm = _WarmProbe()

    def profitable(alpha: float) -> bool:
        b, g = ratio
        rest = 1.0 - alpha
        config = AttackConfig(alpha=alpha, beta=rest * b / (b + g),
                              gamma=rest * g / (b + g), setting=setting,
                              include_wait=model.uses_wait)
        # Adjacent probes share the attack MDP's *structure* (alpha
        # moves transition probabilities, not the state space), so the
        # previous probe's optimal policy is a valid -- and nearly
        # optimal -- warm start for this one.
        mdp = build_attack_mdp(config)
        analysis = analyze(config, model, mdp,
                           initial_policy=warm.warm_for(mdp.n_states))
        warm.remember(analysis)
        return analysis.advantage > PROFIT_EPS

    return _bisect_threshold(profitable, lo, hi, tol)


def ds_value_threshold(alpha: float, ratio: Tuple[int, int],
                       setting: int = 1, tol: float = 1e-3,
                       lo: float = 0.0, hi: float = 40.0) -> float:
    """Minimum double-spend value ``rds`` (in block rewards) at which
    the non-compliant attack beats honest mining for an
    ``alpha``-miner.  Returns ``lo`` when the attack profits even with
    worthless double-spends and ``hi`` when no probed value does.

    Every probe differs from the previous one *only* in the ``rds``
    reward field, which is reward-only for the attack-MDP build cache
    (:data:`repro.core.attack_mdp.REWARD_ONLY_FIELDS`): after the first
    probe pays for the BFS + matrix assembly, each subsequent probe is
    a ``reward_rebuilds`` cache hit that recomputes just the ``ds``
    channel from the cached orphan histograms.  Combined with the
    cross-probe policy warm start this makes the whole bisection cost
    roughly one cold solve plus a handful of warm policy evaluations.
    """
    if not 0 < alpha < 0.5:
        raise ReproError("alpha must lie in (0, 0.5)")
    if lo < 0 or hi <= lo:
        raise ReproError("rds bracket must satisfy 0 <= lo < hi")
    b, g = ratio
    rest = 1.0 - alpha
    model = IncentiveModel.NONCOMPLIANT_PROFIT
    warm = _WarmProbe()

    def profitable(rds: float) -> bool:
        config = AttackConfig(alpha=alpha, beta=rest * b / (b + g),
                              gamma=rest * g / (b + g), setting=setting,
                              rds=rds, include_wait=model.uses_wait)
        mdp = build_attack_mdp(config)
        analysis = analyze(config, model, mdp,
                           initial_policy=warm.warm_for(mdp.n_states))
        warm.remember(analysis)
        return analysis.advantage > PROFIT_EPS

    return _bisect_threshold(profitable, lo, hi, tol)


def relative_revenue_boundary(alpha: float, setting: int = 1,
                              steps: int = 21) -> float:
    """The split boundary of Analytical Result 1: the largest beta
    share (of the compliant power) at which a compliant alpha-miner
    still earns unfair revenue.  The theory says the boundary is
    ``beta_share = (alpha + gamma) vs beta``, i.e. compliant-beta share
    ``(1 - ... )``; measured by scanning splits."""
    if not 0 < alpha < 0.5:
        raise ReproError("alpha must lie in (0, 0.5)")
    best = 0.0
    for i in range(1, steps):
        share = i / steps  # beta's share of the compliant power
        rest = 1.0 - alpha
        config = AttackConfig(alpha=alpha, beta=rest * share,
                              gamma=rest * (1.0 - share),
                              setting=setting)
        result = analyze(config, IncentiveModel.COMPLIANT_PROFIT)
        if result.advantage > PROFIT_EPS:
            best = max(best, share)
    return best
