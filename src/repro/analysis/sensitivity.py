"""Sensitivity of Table 3 to the double-spend parameters.

The paper fixes R_DS = 10 block rewards and four confirmations
(Section 4.3) but both are modeling choices; this module sweeps them.
It exists for two reasons:

1. downstream users exploring "what if merchants require six
   confirmations" get the answer in one call;
2. it documents, as executable analysis, the Table 3 setting-1
   deviation investigation recorded in EXPERIMENTS.md -- no
   (confirmations, R_DS) pair matches the paper's setting-1 column
   while preserving the exact setting-2 agreement of the stated
   parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Sequence, Tuple

from repro.core.config import AttackConfig
from repro.core.solve import solve_absolute_reward
from repro.errors import ReproError


@dataclass
class DSSensitivity:
    """u_A2 over a (confirmations, R_DS) grid.

    Attributes
    ----------
    base:
        The base configuration (its own rds/confirmations ignored).
    values:
        ``(confirmations, rds)`` -> optimal u_A2.
    """

    base: AttackConfig
    values: Dict[Tuple[int, float], float]

    def best_fit(self, target: float) -> Tuple[Tuple[int, float], float]:
        """The grid point whose u_A2 is closest to ``target``."""
        key = min(self.values,
                  key=lambda k: abs(self.values[k] - target))
        return key, self.values[key]

    def monotone_in_rds(self) -> bool:
        """u_A2 never decreases in R_DS at fixed confirmations."""
        by_conf: Dict[int, List[Tuple[float, float]]] = {}
        for (conf, rds), value in self.values.items():
            by_conf.setdefault(conf, []).append((rds, value))
        for rows in by_conf.values():
            rows.sort()
            for (_, a), (_, b) in zip(rows, rows[1:]):
                if b < a - 1e-9:
                    return False
        return True

    def monotone_in_confirmations(self) -> bool:
        """u_A2 never increases with stricter confirmations at fixed
        R_DS."""
        by_rds: Dict[float, List[Tuple[int, float]]] = {}
        for (conf, rds), value in self.values.items():
            by_rds.setdefault(rds, []).append((conf, value))
        for rows in by_rds.values():
            rows.sort()
            for (_, a), (_, b) in zip(rows, rows[1:]):
                if b > a + 1e-9:
                    return False
        return True


def ds_sensitivity(base: AttackConfig,
                   confirmations: Sequence[int] = (3, 4, 5, 6),
                   rds_values: Sequence[float] = (5.0, 10.0, 20.0),
                   runner=None) -> DSSensitivity:
    """Solve u_A2 over the (confirmations, R_DS) grid.

    ``runner`` optionally checkpoints each grid point through a
    :class:`repro.runtime.sweeprunner.SweepRunner` journal so an
    interrupted grid resumes where it stopped.
    """
    if not confirmations or not rds_values:
        raise ReproError("grids must be non-empty")
    values: Dict[Tuple[int, float], float] = {}
    for conf in confirmations:
        for rds in rds_values:
            config = replace(base, confirmations=conf, rds=rds)
            solve = lambda: solve_absolute_reward(config).utility  # noqa: E731
            if runner is None:
                values[(conf, rds)] = solve()
            else:
                values[(conf, rds)] = runner.cell([conf, rds], solve)
    return DSSensitivity(base=base, values=values)
