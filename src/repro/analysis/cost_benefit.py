"""Attack cost vs victim damage.

The BU homepage dismissed chain-splitting attacks because they would
"cost the attacker far more than the victim" (quoted in the paper's
introduction); Section 4 disproves it.  This module states the
comparison as numbers: for a solved attack policy, the attacker's cost
rate (orphaned own blocks plus forgone honest income) against the
victims' damage rate (orphaned compliant blocks plus double-spent
funds), both in block rewards per network block.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.solve import AttackAnalysis
from repro.errors import ReproError


@dataclass
class CostBenefit:
    """The attacker-vs-victim ledger of one solved attack.

    All rates are block rewards per network block.

    Attributes
    ----------
    attacker_cost:
        Alice's orphaned blocks plus the income she gives up relative
        to honest mining (zero when the attack out-earns honesty).
    victim_damage:
        Compliant blocks orphaned plus double-spent funds.
    attacker_net:
        Alice's actual income minus her honest income (positive means
        the "attack" is *profitable*, not merely cheap).
    damage_ratio:
        ``victim_damage / attacker_cost`` (``inf`` for a free or
        profitable attack).
    """

    attacker_cost: float
    victim_damage: float
    attacker_net: float

    @property
    def damage_ratio(self) -> float:
        if self.attacker_cost <= 1e-12:  # free (or honest) strategy
            return float("inf")
        return self.victim_damage / self.attacker_cost

    @property
    def claim_holds(self) -> bool:
        """The BU homepage claim: the attack costs the attacker more
        than the victims."""
        return self.attacker_cost > self.victim_damage


def cost_benefit(analysis: AttackAnalysis) -> CostBenefit:
    """Build the ledger from a solved attack analysis."""
    rates = analysis.rates
    required = {"alice", "alice_orphans", "others_orphans", "ds"}
    if not required <= set(rates):
        raise ReproError("analysis lacks the required reward channels")
    income = rates["alice"] + rates["ds"]
    honest_income = analysis.config.alpha
    forgone = max(honest_income - income, 0.0)
    attacker_cost = rates["alice_orphans"] + forgone
    victim_damage = rates["others_orphans"] + rates["ds"]
    return CostBenefit(attacker_cost=attacker_cost,
                       victim_damage=victim_damage,
                       attacker_net=income - honest_income)
