"""ASCII maps of optimal attack policies.

MDP mining papers typically visualize strategies on the (attacker
chain, honest chain) grid; this module renders the same view for the
attack MDP: one cell per ``(l1, l2)`` fork shape showing the action the
optimal policy takes there (aggregated over the Alice-block counts
``a1, a2`` when they agree, ``*`` when they do not).

Legend: ``1`` OnChain1, ``2`` OnChain2, ``W`` Wait, ``*`` mixed,
``.`` infeasible shape.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.actions import ON_CHAIN_1, ON_CHAIN_2, WAIT
from repro.errors import ReproError
from repro.mdp.policy import Policy

_SYMBOL = {ON_CHAIN_1: "1", ON_CHAIN_2: "2", WAIT: "W"}


def _fork_actions(policy: Policy, phase: int,
                  r: Optional[int]) -> Dict[Tuple[int, int], Set[str]]:
    """Collect, per (l1, l2), the set of actions over all (a1, a2)."""
    tag = "fork1" if phase == 1 else "fork2"
    cells: Dict[Tuple[int, int], Set[str]] = {}
    for key in policy.mdp.state_keys:
        if key[0] != tag:
            continue
        if phase == 2 and r is not None and key[5] != r:
            continue
        l1, l2 = key[1], key[2]
        cells.setdefault((l1, l2), set()).add(policy.action_for(key))
    if not cells:
        raise ReproError(
            f"policy has no phase-{phase} fork states"
            + (f" with r={r}" if r is not None else ""))
    return cells


def policy_map(policy: Policy, phase: int = 1,
               r: Optional[int] = None) -> str:
    """Render the (l1, l2) action grid of a solved policy.

    Rows are Chain-1 lengths, columns Chain-2 lengths.  For phase 2
    pass the gate counter ``r`` to select one slice (default: all
    slices merged).
    """
    cells = _fork_actions(policy, phase, r)
    max_l1 = max(l1 for l1, _ in cells)
    max_l2 = max(l2 for _, l2 in cells)
    lines: List[str] = []
    header = "l1\\l2 " + " ".join(f"{l2}" for l2 in range(1, max_l2 + 1))
    lines.append(header)
    for l1 in range(0, max_l1 + 1):
        row = [f"{l1:>5} "]
        for l2 in range(1, max_l2 + 1):
            actions = cells.get((l1, l2))
            if actions is None:
                row.append(".")
            elif len(actions) == 1:
                row.append(_SYMBOL[next(iter(actions))])
            else:
                row.append("*")
        lines.append(" ".join(row))
    return "\n".join(lines)


def action_census(policy: Policy) -> Dict[str, int]:
    """Count how many states pick each action."""
    census: Dict[str, int] = {}
    for key in policy.mdp.state_keys:
        action = policy.action_for(key)
        census[action] = census.get(action, 0) + 1
    return census


def summarize(policy: Policy) -> str:
    """One-paragraph strategy summary: base action, census, and the
    phase-1 map."""
    base_action = policy.action_for(("base", 0))
    census = ", ".join(f"{a}: {n}" for a, n in
                       sorted(action_census(policy).items()))
    return (f"base state plays {base_action}; state census: {census}\n"
            f"{policy_map(policy, phase=1)}")
