"""MDP-vs-simulation agreement checks.

Two independent implementations of the paper's system exist in this
library: the Table 1 transition encoding solved exactly
(:mod:`repro.core`) and the substrate simulator driven by real BU
validity rules (:mod:`repro.sim`).  Running the MDP-optimal policy
through a sampler and comparing channel rates validates both.

Two sampling engines are available:

- ``"substrate"`` -- the :class:`~repro.sim.scenario.ThreeMinerScenario`
  simulator (real BU fork choice; no shared dynamics code with the
  MDP), the strongest cross-check but Python-speed.
- ``"rollout"`` -- the batched vectorized sampler of
  :mod:`repro.mdp.simulate` over the policy-induced Markov chain,
  orders of magnitude faster; it validates the exact stationary
  solve (gain, channel rates) by Monte-Carlo and supplies the
  statistics the solvers cannot (variance, confidence intervals).

A single run gives a point estimate; ``seeds > 1`` (optionally
``workers > 1`` processes, fanned out through
:mod:`repro.runtime.parallel`) turns validation into a statistical
report -- mean, standard error, confidence interval and z-score of
the sampled utility against the exact gain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import AttackConfig
from repro.core.incentives import IncentiveModel
from repro.core.solve import AttackAnalysis, analyze
from repro.errors import SimulationError
from repro.runtime.telemetry import counter_add, span
from repro.sim.metrics import Welford
from repro.sim.scenario import ThreeMinerScenario
from repro.sim.strategies import PolicyStrategy

#: Sampling engines understood by :func:`validate_against_sim`.
ENGINES = ("substrate", "rollout")

#: Default two-sided confidence level of multi-seed reports.
CI_LEVEL = 0.99


def _normal_quantile(level: float) -> float:
    """Two-sided normal critical value for a confidence ``level``."""
    if not 0.0 < level < 1.0:
        raise SimulationError(
            f"confidence level must be in (0, 1), got {level!r}")
    from scipy.special import ndtri
    return float(ndtri(0.5 + level / 2.0))


@dataclass
class MultiSeedSummary:
    """Statistics of the sampled utility across seeds/trajectories.

    Attributes
    ----------
    n:
        Number of utility samples (seeds x trajectories).
    mean:
        Sample mean of the utility estimates.
    stderr:
        Standard error of the mean.
    level:
        Two-sided confidence level of ``(lo, hi)``.
    lo / hi:
        Confidence-interval bounds ``mean -/+ z * stderr``.
    z_score:
        ``(mean - exact) / stderr`` -- how many standard errors the
        sampled mean sits from the exact gain (``0`` when the
        standard error vanishes on an exact match).
    per_seed:
        Mean utility of each seed, in seed order.
    """

    n: int
    mean: float
    stderr: float
    level: float
    lo: float
    hi: float
    z_score: float
    per_seed: List[float] = field(default_factory=list)

    def contains_exact(self) -> bool:
        """Whether the exact utility lies inside the interval."""
        critical = _normal_quantile(self.level)
        return abs(self.z_score) <= critical


@dataclass
class ValidationReport:
    """Comparison of exact MDP rates with simulated rates.

    Attributes
    ----------
    analysis:
        The exact solve (utility + channel gains).
    sim_rates:
        Channel rates measured by the sampler (pooled over all seeds
        and trajectories).
    sim_utility:
        The utility estimated from the sampled totals (the multi-seed
        mean when ``seeds * trajectories > 1``).
    steps:
        Total sampled block events across all seeds and trajectories.
    multi:
        Multi-seed statistics, or ``None`` for a single-run report.
    """

    analysis: AttackAnalysis
    sim_rates: Dict[str, float]
    sim_utility: float
    steps: int
    multi: Optional[MultiSeedSummary] = None

    @property
    def utility_error(self) -> float:
        """|simulated - exact| utility."""
        return abs(self.sim_utility - self.analysis.utility)

    def max_rate_error(self) -> float:
        """Largest channel-rate deviation."""
        return max(abs(self.sim_rates[c] - self.analysis.rates[c])
                   for c in self.sim_rates)


def _utility_from_totals(model: IncentiveModel,
                         totals: Dict[str, float], steps: int) -> float:
    """The Section 3 utility computed from sampled channel totals
    (mirrors the :class:`~repro.sim.metrics.Accounting` properties)."""
    if model is IncentiveModel.COMPLIANT_PROFIT:
        locked = totals["alice"] + totals["others"]
        if locked == 0:
            raise SimulationError("no blocks locked yet")
        return totals["alice"] / locked
    if model is IncentiveModel.NONCOMPLIANT_PROFIT:
        return (totals["alice"] + totals["ds"]) / steps
    den = totals["alice"] + totals["alice_orphans"]
    if den == 0:
        raise SimulationError("Alice mined no blocks yet")
    return totals["others_orphans"] / den


def _substrate_utility(model: IncentiveModel, accounting) -> float:
    if model is IncentiveModel.COMPLIANT_PROFIT:
        return accounting.relative_revenue
    if model is IncentiveModel.NONCOMPLIANT_PROFIT:
        return accounting.absolute_reward
    return accounting.orphan_rate


def run_validation_seed(config: AttackConfig, model: IncentiveModel,
                        seed: int, steps: int, trajectories: int,
                        engine: str, policy: Tuple[int, ...],
                        method: str = "cdf",
                        tables_state: Optional[Dict] = None) -> Dict:
    """Sample one seed's utility estimates (one multi-seed cell).

    Runs in a worker process under parallel validation, so it accepts
    only picklable inputs (the optimal policy travels as a tuple of
    action indices; the MDP is rebuilt from ``config`` against the
    process-local build cache) and returns a JSON-style payload:
    ``{"utilities": [...], "rates": {...}, "steps": total}``.

    ``method`` selects the ``"rollout"`` engine's sampling method.
    ``tables_state`` (a :meth:`~repro.mdp.simulate.PolicyTables.\
state_dict`) ships the parent's prebuilt sampling tables across the
    process boundary: every worker then skips the table build -- in
    particular the O(states x width) Python alias construction, which
    would otherwise repeat in each of ``workers`` processes.
    """
    if engine not in ENGINES:
        raise SimulationError(
            f"unknown validation engine {engine!r}; expected one of "
            f"{ENGINES}")
    from repro.core.attack_mdp import build_attack_mdp
    with span("validate/seed"):
        counter_add("validate/seeds")
        mdp = build_attack_mdp(config)
        indices = np.asarray(policy, dtype=int)
        if engine == "rollout":
            from repro.mdp.simulate import PolicyTables, rollout_batch
            tables = None
            if tables_state is not None:
                tables = PolicyTables.from_state(tables_state)
                counter_add("validate/tables_shipped")
            batch = rollout_batch(mdp, indices, steps,
                                  n_traj=trajectories, seed=seed,
                                  method=method, tables=tables)
            utilities = [
                _utility_from_totals(
                    model, {name: float(vals[b])
                            for name, vals in batch.totals.items()},
                    steps)
                for b in range(batch.n_traj)]
            rates = {name: batch.rate(name) for name in mdp.channels}
            counter_add("validate/samples", len(utilities))
            return {"utilities": utilities, "rates": rates,
                    "steps": batch.total_steps}
        from repro.mdp.policy import Policy
        utilities = []
        totals: Dict[str, float] = {}
        for t in range(trajectories):
            scenario = ThreeMinerScenario(
                config, PolicyStrategy(Policy(mdp, indices)),
                rng=np.random.default_rng((seed, t)))
            accounting = scenario.run(steps).accounting
            utilities.append(_substrate_utility(model, accounting))
            for name, rate in accounting.rates().items():
                totals[name] = totals.get(name, 0.0) + rate * steps
        total_steps = steps * trajectories
        rates = {name: value / total_steps
                 for name, value in totals.items()}
        counter_add("validate/samples", len(utilities))
        return {"utilities": utilities, "rates": rates,
                "steps": total_steps}


def _multi_seed_report(analysis: AttackAnalysis, model: IncentiveModel,
                       steps: int, seeds: int, trajectories: int,
                       workers: int, engine: str, seed: int,
                       ci_level: float,
                       method: str = "cdf") -> ValidationReport:
    from repro.runtime.parallel import SolveTask, run_cells
    config = analysis.config
    policy = tuple(int(a) for a in analysis.policy.action_indices)
    extra: Tuple = ()
    key_extra: Tuple = ()
    if engine == "rollout":
        # Build the sampling tables once here and ship them to every
        # worker (satisfying in particular the expensive alias-table
        # construction exactly once per validation run).
        from repro.mdp.simulate import PolicyTables
        tables = PolicyTables(analysis.policy.mdp,
                              np.asarray(policy, dtype=int))
        if method == "alias":
            tables.alias_tables()
        extra = (("method", method),
                 ("tables_state", tables.state_dict()))
        if method != "cdf":
            # Historical cdf journal keys stay valid; other methods
            # sample different trajectories and journal separately.
            key_extra = (method,)
    tasks = [
        SolveTask(kind="validate_seed",
                  key=("validate", model.value, config.alpha,
                       config.beta, config.setting, engine, steps,
                       trajectories, seed + i) + key_extra,
                  config=config, model=model,
                  params=(("seed", seed + i), ("steps", steps),
                          ("trajectories", trajectories),
                          ("engine", engine), ("policy", policy))
                  + extra)
        for i in range(seeds)]
    payloads = run_cells(tasks, workers=workers)

    # Fold per-seed samples in input (seed) order so the report is
    # independent of worker count and completion order.
    acc = Welford()
    per_seed: List[float] = []
    rates: Dict[str, float] = {}
    total_steps = 0
    for payload in payloads:
        seed_acc = Welford()
        seed_acc.add_many(payload["utilities"])
        per_seed.append(seed_acc.mean)
        acc.merge(seed_acc)
        total_steps += payload["steps"]
        for name, rate in payload["rates"].items():
            rates[name] = rates.get(name, 0.0) \
                + rate * payload["steps"]
    rates = {name: value / total_steps for name, value in rates.items()}

    stderr = acc.stderr if acc.count >= 2 else 0.0
    critical = _normal_quantile(ci_level)
    if stderr > 0:
        z_score = (acc.mean - analysis.utility) / stderr
    else:
        z_score = 0.0 if acc.mean == analysis.utility else float("inf")
    summary = MultiSeedSummary(
        n=acc.count, mean=acc.mean, stderr=stderr, level=ci_level,
        lo=acc.mean - critical * stderr, hi=acc.mean + critical * stderr,
        z_score=z_score, per_seed=per_seed)
    return ValidationReport(analysis=analysis, sim_rates=rates,
                            sim_utility=acc.mean, steps=total_steps,
                            multi=summary)


def validate_against_sim(config: AttackConfig, model: IncentiveModel,
                         steps: int = 200_000,
                         rng: Optional[np.random.Generator] = None,
                         seeds: int = 1, trajectories: int = 1,
                         workers: int = 1, engine: str = "substrate",
                         seed: int = 0,
                         ci_level: float = CI_LEVEL,
                         method: str = "cdf") -> ValidationReport:
    """Solve ``model`` exactly, replay the optimal policy through a
    sampler, and report the agreement.

    With the defaults this is the historical single-run check: one
    substrate-simulator trajectory of ``steps`` blocks driven by
    ``rng``, returning a point estimate (``multi`` is ``None``).
    Raising ``seeds`` and/or ``trajectories`` samples
    ``seeds * trajectories`` independent utility estimates (each seed
    optionally on one of ``workers`` parallel processes) and attaches
    a :class:`MultiSeedSummary` -- mean, stderr, ``ci_level``
    confidence interval and z-score against the exact gain.  Seeds
    are ``seed, seed + 1, ...``; results are deterministic and
    independent of ``workers``.

    Exact agreement is expected in setting 1; in setting 2 the
    substrate's Rizun-faithful gate countdown differs slightly from
    the paper's MDP (see :mod:`repro.sim.scenario`), while the
    ``"rollout"`` engine samples the MDP itself and is unbiased in
    both settings.
    """
    if seeds < 1:
        raise SimulationError(f"seeds must be >= 1, got {seeds!r}")
    if trajectories < 1:
        raise SimulationError(
            f"trajectories must be >= 1, got {trajectories!r}")
    if engine not in ENGINES:
        raise SimulationError(
            f"unknown validation engine {engine!r}; expected one of "
            f"{ENGINES}")
    from repro.mdp.simulate import METHODS
    if method not in METHODS:
        raise SimulationError(
            f"unknown sampling method {method!r}; expected one of "
            f"{METHODS}")
    analysis = analyze(config, model)
    if seeds == 1 and trajectories == 1 and engine == "substrate":
        scenario = ThreeMinerScenario(
            config.with_wait(model.uses_wait),
            PolicyStrategy(analysis.policy), rng=rng)
        result = scenario.run(steps)
        acc = result.accounting
        return ValidationReport(
            analysis=analysis, sim_rates=acc.rates(),
            sim_utility=_substrate_utility(model, acc), steps=steps)
    return _multi_seed_report(analysis, model, steps, seeds,
                              trajectories, workers, engine, seed,
                              ci_level, method=method)
