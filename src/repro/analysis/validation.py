"""MDP-vs-simulation agreement checks.

Two independent implementations of the paper's system exist in this
library: the Table 1 transition encoding solved exactly
(:mod:`repro.core`) and the substrate simulator driven by real BU
validity rules (:mod:`repro.sim`).  Running the MDP-optimal policy
through the simulator and comparing channel rates validates both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.config import AttackConfig
from repro.core.incentives import IncentiveModel
from repro.core.solve import AttackAnalysis, analyze
from repro.sim.scenario import ThreeMinerScenario
from repro.sim.strategies import PolicyStrategy


@dataclass
class ValidationReport:
    """Comparison of exact MDP rates with simulated rates.

    Attributes
    ----------
    analysis:
        The exact solve (utility + channel gains).
    sim_rates:
        Channel rates measured by the substrate simulator.
    sim_utility:
        The utility estimated from the simulation totals.
    steps:
        Simulated block events.
    """

    analysis: AttackAnalysis
    sim_rates: Dict[str, float]
    sim_utility: float
    steps: int

    @property
    def utility_error(self) -> float:
        """|simulated - exact| utility."""
        return abs(self.sim_utility - self.analysis.utility)

    def max_rate_error(self) -> float:
        """Largest channel-rate deviation."""
        return max(abs(self.sim_rates[c] - self.analysis.rates[c])
                   for c in self.sim_rates)


def validate_against_sim(config: AttackConfig, model: IncentiveModel,
                         steps: int = 200_000,
                         rng: Optional[np.random.Generator] = None
                         ) -> ValidationReport:
    """Solve ``model`` exactly, replay the optimal policy through the
    substrate simulator, and report the agreement.

    Exact agreement is expected in setting 1; in setting 2 the
    substrate's Rizun-faithful gate countdown differs slightly from the
    paper's MDP (see :mod:`repro.sim.scenario`).
    """
    analysis = analyze(config, model)
    scenario = ThreeMinerScenario(config.with_wait(model.uses_wait),
                                  PolicyStrategy(analysis.policy),
                                  rng=rng)
    result = scenario.run(steps)
    acc = result.accounting
    if model is IncentiveModel.COMPLIANT_PROFIT:
        sim_utility = acc.relative_revenue
    elif model is IncentiveModel.NONCOMPLIANT_PROFIT:
        sim_utility = acc.absolute_reward
    else:
        sim_utility = acc.orphan_rate
    return ValidationReport(analysis=analysis, sim_rates=acc.rates(),
                            sim_utility=sim_utility, steps=steps)
