"""JSON persistence for analysis results.

Setting-2 solves take seconds to minutes; this module saves
:class:`repro.core.solve.AttackAnalysis` results (config, utility,
rates, and the full policy keyed by state tuples) and
:class:`repro.analysis.tables.TableResult` grids so sweeps can resume
and reports can be regenerated without re-solving.

All writes go through :func:`repro.runtime.journal.atomic_write_text`
(temp file + ``os.replace``), so a crash mid-write can never leave a
truncated JSON file behind.  The payload encode/decode pair
(:func:`analysis_to_payload` / :func:`analysis_from_payload`) is also
what the checkpoint journal stores per sweep cell, which is why a
resumed sweep reproduces an uninterrupted one byte for byte.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Dict, Union

from repro.analysis.tables import TableResult
from repro.core.config import AttackConfig
from repro.core.incentives import IncentiveModel
from repro.core.solve import AttackAnalysis
from repro.errors import ArtifactCorruptError, ReproError
from repro.runtime.journal import atomic_write_text

PathLike = Union[str, Path]

#: Format version; bump on breaking layout changes.
SCHEMA_VERSION = 1


def _state_to_text(state) -> str:
    return json.dumps(list(state))


def _text_to_state(text: str):
    return tuple(json.loads(text))


def analysis_to_payload(analysis: AttackAnalysis) -> Dict:
    """Encode a solved analysis as a JSON-compatible payload.

    The optional ``solver`` provenance (ratio method, iteration and
    transformed-solve counts) rides along when present, so journaled
    sweep cells record which method produced each answer and ``repro
    trace`` can report per-method win rates from the journal alone.
    """
    payload = {
        "schema": SCHEMA_VERSION,
        "kind": "attack-analysis",
        "config": dataclasses.asdict(analysis.config),
        "model": analysis.model.value,
        "utility": analysis.utility,
        "honest_utility": analysis.honest_utility,
        "rates": analysis.rates,
        "policy": {_state_to_text(k): v
                   for k, v in analysis.policy.as_dict().items()},
    }
    if analysis.solver is not None:
        payload["solver"] = dict(analysis.solver)
    return payload


def _load_json(path: PathLike) -> Dict:
    """Read and parse one JSON artifact, raising the typed
    :class:`~repro.errors.ArtifactCorruptError` (path + reason) on
    malformed content instead of a raw :class:`json.JSONDecodeError`."""
    try:
        payload = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ArtifactCorruptError(path, f"malformed JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ArtifactCorruptError(
            path, f"expected a JSON object, got {type(payload).__name__}")
    return payload


def _decode_payload(payload: Dict, source: str = "payload") -> Dict:
    if not isinstance(payload, dict):
        raise ArtifactCorruptError(
            source, f"expected a JSON object, got {type(payload).__name__}")
    if payload.get("kind") != "attack-analysis":
        raise ArtifactCorruptError(
            source, f"does not contain an attack analysis "
                    f"(kind={payload.get('kind')!r})")
    if payload.get("schema") != SCHEMA_VERSION:
        raise ArtifactCorruptError(
            source, f"unsupported schema {payload.get('schema')!r} "
                    f"(expected {SCHEMA_VERSION})")
    decoded = dict(payload)
    try:
        decoded["policy"] = {_text_to_state(k): v
                             for k, v in payload["policy"].items()}
        decoded["config"] = AttackConfig(**payload["config"])
        decoded["model"] = IncentiveModel(payload["model"])
    except ArtifactCorruptError:
        raise
    except (KeyError, TypeError, ValueError, AttributeError,
            ReproError) as exc:
        # Missing fields, wrong field types, unknown config knobs or
        # model names: one typed error instead of a leaked KeyError.
        raise ArtifactCorruptError(
            source, f"schema mismatch: {exc!r}") from exc
    return decoded


def validate_analysis_payload(payload: Dict,
                              source: str = "payload") -> Dict:
    """Validate an analysis payload and return its decoded summary
    (config/model/policy rebuilt as live objects).

    Raises the typed :class:`~repro.errors.ArtifactCorruptError` --
    carrying ``source`` and a reason -- on any structural problem, so
    callers holding untrusted payloads (the policy atlas, the serving
    layer) get one catchable error instead of raw ``KeyError``\\ s.
    """
    return _decode_payload(payload, source=source)


def analysis_from_payload(payload: Dict) -> AttackAnalysis:
    """Rebuild a full :class:`AttackAnalysis` (live policy included)
    from a payload produced by :func:`analysis_to_payload`.

    Rebuilding the MDP from the stored config is much cheaper than
    re-solving it, which is what makes journal-restored sweep cells
    fast.
    """
    summary = _decode_payload(payload)
    policy = policy_from_summary(summary)
    solver = summary.get("solver")
    return AttackAnalysis(config=summary["config"],
                          model=summary["model"],
                          utility=summary["utility"],
                          honest_utility=summary["honest_utility"],
                          policy=policy,
                          rates=dict(summary["rates"]),
                          solver=None if solver is None else dict(solver))


def save_analysis(analysis: AttackAnalysis, path: PathLike) -> None:
    """Persist a solved analysis (config, utility, rates, policy)."""
    payload = analysis_to_payload(analysis)
    atomic_write_text(path, json.dumps(payload, indent=1))


def load_analysis_summary(path: PathLike) -> Dict:
    """Load a saved analysis as a plain dictionary (policy keys decoded
    back to state tuples).

    The MDP itself is not persisted; callers needing a live
    :class:`Policy` should rebuild the MDP from the stored config and
    match actions by state key (see :func:`policy_from_summary`).
    """
    payload = _load_json(path)
    return _decode_payload(payload, source=str(path))


def policy_from_summary(summary: Dict):
    """Rebuild a live :class:`repro.mdp.policy.Policy` from a loaded
    summary by reconstructing the MDP."""
    import numpy as np

    from repro.core.attack_mdp import build_attack_mdp
    from repro.mdp.policy import Policy

    config: AttackConfig = summary["config"]
    mdp = build_attack_mdp(config)
    actions = np.zeros(mdp.n_states, dtype=int)
    stored: Dict = summary["policy"]
    for idx, key in enumerate(mdp.state_keys):
        try:
            actions[idx] = mdp.action_index(stored[key])
        except KeyError:
            raise ReproError(
                f"stored policy misses state {key!r}; config mismatch")
    return Policy(mdp, actions)


def save_table(result: TableResult, path: PathLike) -> None:
    """Persist a regenerated table."""
    payload = {
        "schema": SCHEMA_VERSION,
        "kind": "table",
        "name": result.name,
        "row_labels": list(result.row_labels),
        "col_labels": list(result.col_labels),
        "cells": [[list(k), v] for k, v in result.cells.items()],
        "paper": [[list(k), v] for k, v in result.paper.items()],
    }
    atomic_write_text(path, json.dumps(payload, indent=1))


def load_table(path: PathLike) -> TableResult:
    """Load a persisted table.

    Raises
    ------
    ArtifactCorruptError
        On malformed JSON, wrong kind/schema, or missing fields.
    """
    payload = _load_json(path)
    if payload.get("kind") != "table":
        raise ArtifactCorruptError(
            path, f"does not contain a table (kind={payload.get('kind')!r})")
    if payload.get("schema") != SCHEMA_VERSION:
        raise ArtifactCorruptError(
            path, f"unsupported schema {payload.get('schema')!r} "
                  f"(expected {SCHEMA_VERSION})")
    try:
        return TableResult(
            name=payload["name"],
            row_labels=payload["row_labels"],
            col_labels=payload["col_labels"],
            cells={tuple(k): v for k, v in payload["cells"]},
            paper={tuple(k): v for k, v in payload["paper"]},
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ArtifactCorruptError(
            path, f"schema mismatch: {exc!r}") from exc
