"""JSON persistence for analysis results.

Setting-2 solves take seconds to minutes; this module saves
:class:`repro.core.solve.AttackAnalysis` results (config, utility,
rates, and the full policy keyed by state tuples) and
:class:`repro.analysis.tables.TableResult` grids so sweeps can resume
and reports can be regenerated without re-solving.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Dict, Union

from repro.analysis.tables import TableResult
from repro.core.config import AttackConfig
from repro.core.incentives import IncentiveModel
from repro.core.solve import AttackAnalysis
from repro.errors import ReproError

PathLike = Union[str, Path]

#: Format version; bump on breaking layout changes.
SCHEMA_VERSION = 1


def _state_to_text(state) -> str:
    return json.dumps(list(state))


def _text_to_state(text: str):
    return tuple(json.loads(text))


def save_analysis(analysis: AttackAnalysis, path: PathLike) -> None:
    """Persist a solved analysis (config, utility, rates, policy)."""
    payload = {
        "schema": SCHEMA_VERSION,
        "kind": "attack-analysis",
        "config": dataclasses.asdict(analysis.config),
        "model": analysis.model.value,
        "utility": analysis.utility,
        "honest_utility": analysis.honest_utility,
        "rates": analysis.rates,
        "policy": {_state_to_text(k): v
                   for k, v in analysis.policy.as_dict().items()},
    }
    Path(path).write_text(json.dumps(payload, indent=1))


def load_analysis_summary(path: PathLike) -> Dict:
    """Load a saved analysis as a plain dictionary (policy keys decoded
    back to state tuples).

    The MDP itself is not persisted; callers needing a live
    :class:`Policy` should rebuild the MDP from the stored config and
    match actions by state key (see :func:`policy_from_summary`).
    """
    payload = json.loads(Path(path).read_text())
    if payload.get("kind") != "attack-analysis":
        raise ReproError(f"{path} does not contain an attack analysis")
    if payload.get("schema") != SCHEMA_VERSION:
        raise ReproError(f"unsupported schema {payload.get('schema')}")
    payload["policy"] = {_text_to_state(k): v
                         for k, v in payload["policy"].items()}
    payload["config"] = AttackConfig(**payload["config"])
    payload["model"] = IncentiveModel(payload["model"])
    return payload


def policy_from_summary(summary: Dict):
    """Rebuild a live :class:`repro.mdp.policy.Policy` from a loaded
    summary by reconstructing the MDP."""
    import numpy as np

    from repro.core.attack_mdp import build_attack_mdp
    from repro.mdp.policy import Policy

    config: AttackConfig = summary["config"]
    mdp = build_attack_mdp(config)
    actions = np.zeros(mdp.n_states, dtype=int)
    stored: Dict = summary["policy"]
    for idx, key in enumerate(mdp.state_keys):
        try:
            actions[idx] = mdp.action_index(stored[key])
        except KeyError:
            raise ReproError(
                f"stored policy misses state {key!r}; config mismatch")
    return Policy(mdp, actions)


def save_table(result: TableResult, path: PathLike) -> None:
    """Persist a regenerated table."""
    payload = {
        "schema": SCHEMA_VERSION,
        "kind": "table",
        "name": result.name,
        "row_labels": list(result.row_labels),
        "col_labels": list(result.col_labels),
        "cells": [[list(k), v] for k, v in result.cells.items()],
        "paper": [[list(k), v] for k, v in result.paper.items()],
    }
    Path(path).write_text(json.dumps(payload, indent=1))


def load_table(path: PathLike) -> TableResult:
    """Load a persisted table."""
    payload = json.loads(Path(path).read_text())
    if payload.get("kind") != "table":
        raise ReproError(f"{path} does not contain a table")
    if payload.get("schema") != SCHEMA_VERSION:
        raise ReproError(f"unsupported schema {payload.get('schema')}")
    return TableResult(
        name=payload["name"],
        row_labels=payload["row_labels"],
        col_labels=payload["col_labels"],
        cells={tuple(k): v for k, v in payload["cells"]},
        paper={tuple(k): v for k, v in payload["paper"]},
    )
