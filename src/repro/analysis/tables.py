"""Regeneration of the paper's result tables.

Each ``tableN`` function sweeps the same parameter grid as the paper
and returns a :class:`TableResult` whose cells can be compared against
the recorded paper values (``PAPER_TABLE*`` constants, transcribed from
the CoNEXT '17 camera-ready).  Cells the paper leaves blank violate the
threat-model assumption ``alpha <= min(beta, gamma)`` and are skipped.

Run ``python -m repro.analysis.tables all`` to print every table; see
EXPERIMENTS.md for the recorded paper-vs-measured comparison.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.analysis.formatting import format_table
from repro.baselines.selfish_ds import solve_selfish_mining_double_spend
from repro.core.config import AttackConfig
from repro.core.solve import (
    solve_absolute_reward,
    solve_orphan_rate,
    solve_relative_revenue,
)
from repro.errors import ReproError

Ratio = Tuple[int, int]

#: Parameter grids from Section 4.1.2.
TABLE2_ALPHAS = (0.10, 0.15, 0.20, 0.25)
TABLE2_RATIOS: Tuple[Ratio, ...] = ((3, 2), (1, 1), (2, 3), (1, 2),
                                    (1, 3), (1, 4))
TABLE3_ALPHAS = (0.01, 0.025, 0.05, 0.10, 0.15, 0.20, 0.25)
TABLE3_RATIOS: Tuple[Ratio, ...] = ((4, 1), (2, 1), (1, 1), (1, 2), (1, 4))
TABLE4_RATIOS: Tuple[Ratio, ...] = ((4, 1), (3, 1), (2, 1), (3, 2), (1, 1),
                                    (2, 3), (1, 2), (1, 3), (1, 4))

#: Paper values (Table 2): (ratio, alpha) -> relative revenue, setting 1.
PAPER_TABLE2: Dict[Tuple[Ratio, float], float] = {
    ((3, 2), 0.10): 0.10, ((3, 2), 0.15): 0.15,
    ((3, 2), 0.20): 0.20, ((3, 2), 0.25): 0.25,
    ((1, 1), 0.10): 0.10, ((1, 1), 0.15): 0.15,
    ((1, 1), 0.20): 0.20, ((1, 1), 0.25): 0.2624,
    ((2, 3), 0.10): 0.10, ((2, 3), 0.15): 0.1505,
    ((2, 3), 0.20): 0.2115, ((2, 3), 0.25): 0.2739,
    ((1, 2), 0.10): 0.10, ((1, 2), 0.15): 0.1562,
    ((1, 2), 0.20): 0.2156, ((1, 2), 0.25): 0.2756,
    ((1, 3), 0.10): 0.1026, ((1, 3), 0.15): 0.1587,
    ((1, 3), 0.20): 0.2158,
    ((1, 4), 0.10): 0.1034, ((1, 4), 0.15): 0.1584,
}

#: Paper values (Table 2, setting 2, alpha = 25%).
PAPER_TABLE2_SET2: Dict[Tuple[Ratio, float], float] = {
    ((3, 2), 0.25): 0.2529, ((1, 1), 0.25): 0.2624,
    ((2, 3), 0.25): 0.2529, ((1, 2), 0.25): 0.25,
}

#: Paper values (Table 3, BU): (ratio, alpha) -> absolute reward.
PAPER_TABLE3_SET1: Dict[Tuple[Ratio, float], float] = {
    ((4, 1), 0.01): 0.013, ((2, 1), 0.01): 0.035, ((1, 1), 0.01): 0.042,
    ((1, 2), 0.01): 0.025, ((1, 4), 0.01): 0.013,
    ((4, 1), 0.025): 0.038, ((2, 1), 0.025): 0.089, ((1, 1), 0.025): 0.10,
    ((1, 2), 0.025): 0.063, ((1, 4), 0.025): 0.033,
    ((4, 1), 0.05): 0.090, ((2, 1), 0.05): 0.18, ((1, 1), 0.05): 0.20,
    ((1, 2), 0.05): 0.13, ((1, 4), 0.05): 0.067,
    ((4, 1), 0.10): 0.24, ((2, 1), 0.10): 0.39, ((1, 1), 0.10): 0.40,
    ((1, 2), 0.10): 0.26, ((1, 4), 0.10): 0.14,
    ((4, 1), 0.15): 0.44, ((2, 1), 0.15): 0.61, ((1, 1), 0.15): 0.59,
    ((1, 2), 0.15): 0.40, ((1, 4), 0.15): 0.23,
    ((2, 1), 0.20): 0.83, ((1, 1), 0.20): 0.78, ((1, 2), 0.20): 0.55,
    ((2, 1), 0.25): 1.1, ((1, 1), 0.25): 0.97, ((1, 2), 0.25): 0.71,
}

PAPER_TABLE3_SET2: Dict[Tuple[Ratio, float], float] = {
    ((4, 1), 0.01): 0.01, ((2, 1), 0.01): 0.025, ((1, 1), 0.01): 0.034,
    ((1, 2), 0.01): 0.024, ((1, 4), 0.01): 0.011,
    ((4, 1), 0.025): 0.027, ((2, 1), 0.025): 0.064, ((1, 1), 0.025): 0.084,
    ((1, 2), 0.025): 0.063, ((1, 4), 0.025): 0.028,
    ((4, 1), 0.05): 0.063, ((2, 1), 0.05): 0.13, ((1, 1), 0.05): 0.16,
    ((1, 2), 0.05): 0.13, ((1, 4), 0.05): 0.064,
    ((4, 1), 0.10): 0.16, ((2, 1), 0.10): 0.27, ((1, 1), 0.10): 0.31,
    ((1, 2), 0.10): 0.27, ((1, 4), 0.10): 0.16,
    ((4, 1), 0.15): 0.28, ((2, 1), 0.15): 0.41, ((1, 1), 0.15): 0.46,
    ((1, 2), 0.15): 0.41, ((1, 4), 0.15): 0.29,
    ((2, 1), 0.20): 0.55, ((1, 1), 0.20): 0.59, ((1, 2), 0.20): 0.55,
    ((2, 1), 0.25): 0.69, ((1, 1), 0.25): 0.73, ((1, 2), 0.25): 0.69,
}

#: Paper values (Table 3, Bitcoin): (tie_power, alpha) -> absolute reward.
PAPER_TABLE3_BITCOIN: Dict[Tuple[float, float], float] = {
    (0.5, 0.10): 0.1, (0.5, 0.15): 0.15, (0.5, 0.20): 0.2,
    (0.5, 0.25): 0.38,
    (1.0, 0.10): 0.11, (1.0, 0.15): 0.18, (1.0, 0.20): 0.30,
    (1.0, 0.25): 0.52,
}

#: Paper values (Table 4): (ratio, setting) -> orphans per Alice block.
PAPER_TABLE4: Dict[Tuple[Ratio, int], float] = {
    ((4, 1), 1): 0.61, ((4, 1), 2): 0.62,
    ((3, 1), 1): 0.83, ((3, 1), 2): 0.85,
    ((2, 1), 1): 1.22, ((2, 1), 2): 1.26,
    ((3, 2), 1): 1.50, ((3, 2), 2): 1.55,
    ((1, 1), 1): 1.76, ((1, 1), 2): 1.76,
    ((2, 3), 1): 1.77, ((2, 3), 2): 1.77,
    ((1, 2), 1): 1.62, ((1, 2), 2): 1.62,
    ((1, 3), 1): 1.30, ((1, 3), 2): 1.30,
    ((1, 4), 1): 1.06, ((1, 4), 2): 1.06,
}


def feasible(alpha: float, ratio: Ratio) -> bool:
    """The paper's constraint alpha <= min(beta, gamma)."""
    b, g = ratio
    rest = 1.0 - alpha
    beta = rest * b / (b + g)
    gamma = rest - beta
    return alpha <= min(beta, gamma) + 1e-12


@dataclass
class TableResult:
    """A regenerated table.

    Attributes
    ----------
    name:
        Table identifier (e.g. ``"table2-setting1"``).
    row_labels, col_labels:
        Axis labels in display order.
    cells:
        (row_label, col_label) -> computed value (missing = infeasible).
    paper:
        Same keying, the paper's reported values where available.
    """

    name: str
    row_labels: List
    col_labels: List
    cells: Dict = field(default_factory=dict)
    paper: Dict = field(default_factory=dict)

    def render(self, precision: int = 4) -> str:
        """ASCII rendering in the paper's orientation."""
        headers = [self.name] + [str(c) for c in self.col_labels]
        rows = []
        for r in self.row_labels:
            rows.append([str(r)] + [self.cells.get((r, c))
                                    for c in self.col_labels])
        return format_table(headers, rows, precision=precision)

    def max_paper_deviation(self) -> float:
        """Largest |computed - paper| across cells both sides report."""
        devs = [abs(self.cells[k] - v) for k, v in self.paper.items()
                if k in self.cells]
        if not devs:
            raise ReproError("no overlapping cells with paper values")
        return max(devs)


ProgressFn = Optional[Callable[[str], None]]


def _progress(progress: ProgressFn, message: str) -> None:
    if progress is not None:
        progress(message)


def _cell(runner, key, solve: Callable[[], float]) -> float:
    """Solve one table cell, through the checkpoint runner when given.

    ``runner`` is a :class:`repro.runtime.sweeprunner.SweepRunner`
    (or ``None``); cells already present in its journal are restored
    without re-solving, which is what makes a killed table run
    resumable.
    """
    if runner is None:
        return solve()
    return runner.cell(list(key), solve)


def _fill_cells(result: TableResult, specs, runner, supervisor,
                workers: int, progress: ProgressFn, label: str,
                serial_solve=None) -> None:
    """Solve the cells described by ``specs`` into ``result``.

    ``specs`` is a list of ``(key, task, paper_value)`` triples where
    ``task`` is a :class:`repro.runtime.parallel.SolveTask`.  With
    ``workers == 1`` each task runs in-process through
    ``serial_solve`` (which resolves the solver from this module, so
    tests can monkeypatch it, and honours a supervisor); with
    ``workers > 1`` the tasks fan out through
    :func:`repro.runtime.parallel.run_cells`.  A supervisor forces the
    serial path because it holds live, non-picklable state.
    """
    if workers > 1:
        if supervisor is not None:
            raise ReproError(
                "supervised table solves hold live solver state and "
                "cannot run in parallel; use workers=1")
        from repro.runtime.parallel import run_cells
        paper_by_key = {key: pv for key, _t, pv in specs
                        if pv is not None}

        def on_done(task, value) -> None:
            _progress(progress, f"{label} {task.key}: {value:.4f}")

        values = run_cells([task for _k, task, _p in specs],
                           runner=runner, workers=workers,
                           progress=on_done)
        for (key, _task, _pv), value in zip(specs, values):
            result.cells[key] = value
        result.paper.update(paper_by_key)
        return
    for key, task, paper_value in specs:
        value = _cell(runner, key, lambda task=task: serial_solve(task))
        result.cells[key] = value
        if paper_value is not None:
            result.paper[key] = paper_value
        _progress(progress, f"{label} {key}: {value:.4f}")


def table2(setting: int = 1,
           alphas: Iterable[float] = TABLE2_ALPHAS,
           ratios: Iterable[Ratio] = TABLE2_RATIOS,
           progress: ProgressFn = None,
           runner=None, supervisor=None,
           workers: int = 1) -> TableResult:
    """Regenerate Table 2 (relative revenue of a compliant and
    profit-driven Alice) for one setting.

    ``runner`` enables checkpoint/resume via a
    :class:`repro.runtime.sweeprunner.SweepRunner`; ``supervisor``
    runs each solve under a
    :class:`repro.runtime.supervisor.SolverSupervisor` (serial only);
    ``workers > 1`` fans the cells out over that many processes.
    """
    from repro.runtime.parallel import SolveTask
    alphas, ratios = list(alphas), list(ratios)
    paper = PAPER_TABLE2 if setting == 1 else PAPER_TABLE2_SET2
    result = TableResult(name=f"table2-setting{setting}",
                         row_labels=[f"{b}:{g}" for b, g in ratios],
                         col_labels=[f"{a:.0%}" for a in alphas])
    specs = []
    for ratio in ratios:
        for alpha in alphas:
            if not feasible(alpha, ratio):
                continue
            config = AttackConfig.from_ratio(alpha, ratio, setting=setting)
            key = (f"{ratio[0]}:{ratio[1]}", f"{alpha:.0%}")
            specs.append((key, SolveTask(kind="relative", key=key,
                                         config=config),
                          paper.get((ratio, alpha))))
    _fill_cells(result, specs, runner, supervisor, workers, progress,
                f"table2 s{setting}",
                serial_solve=lambda task: solve_relative_revenue(
                    task.config, supervisor=supervisor).utility)
    return result


def table3(setting: int = 1,
           alphas: Iterable[float] = TABLE3_ALPHAS,
           ratios: Iterable[Ratio] = TABLE3_RATIOS,
           progress: ProgressFn = None,
           runner=None, supervisor=None,
           workers: int = 1) -> TableResult:
    """Regenerate Table 3's BU block (absolute reward of a
    non-compliant, profit-driven Alice) for one setting."""
    from repro.runtime.parallel import SolveTask
    alphas, ratios = list(alphas), list(ratios)
    paper = PAPER_TABLE3_SET1 if setting == 1 else PAPER_TABLE3_SET2
    result = TableResult(name=f"table3-setting{setting}",
                         row_labels=[f"{a:.4g}" for a in alphas],
                         col_labels=[f"{b}:{g}" for b, g in ratios])
    specs = []
    for alpha in alphas:
        for ratio in ratios:
            if not feasible(alpha, ratio):
                continue
            config = AttackConfig.from_ratio(alpha, ratio, setting=setting)
            key = (f"{alpha:.4g}", f"{ratio[0]}:{ratio[1]}")
            specs.append((key, SolveTask(kind="absolute", key=key,
                                         config=config),
                          paper.get((ratio, alpha))))
    _fill_cells(result, specs, runner, supervisor, workers, progress,
                f"table3 s{setting}",
                serial_solve=lambda task: solve_absolute_reward(
                    task.config, supervisor=supervisor).utility)
    return result


def table3_bitcoin(ties: Iterable[float] = (0.5, 1.0),
                   alphas: Iterable[float] = (0.10, 0.15, 0.20, 0.25),
                   max_len: int = 24,
                   progress: ProgressFn = None,
                   runner=None, workers: int = 1) -> TableResult:
    """Regenerate Table 3's Bitcoin block (selfish mining combined with
    double-spending)."""
    from repro.runtime.parallel import SolveTask
    ties, alphas = list(ties), list(alphas)
    result = TableResult(name="table3-bitcoin",
                         row_labels=[f"tie={t:.0%}" for t in ties],
                         col_labels=[f"{a:.0%}" for a in alphas])
    specs = []
    for tie in ties:
        for alpha in alphas:
            key = (f"tie={tie:.0%}", f"{alpha:.0%}")
            specs.append((key, SolveTask(
                kind="selfish_ds", key=key,
                params=(("alpha", alpha), ("tie_power", tie),
                        ("max_len", max_len))),
                PAPER_TABLE3_BITCOIN.get((tie, alpha))))
    _fill_cells(result, specs, runner, None, workers, progress,
                "table3 bitcoin",
                serial_solve=lambda task: solve_selfish_mining_double_spend(
                    **dict(task.params)).absolute_reward)
    return result


def table4(alpha: float = 0.01,
           ratios: Iterable[Ratio] = TABLE4_RATIOS,
           settings: Iterable[int] = (1, 2),
           progress: ProgressFn = None,
           runner=None, supervisor=None,
           workers: int = 1) -> TableResult:
    """Regenerate Table 4 (others' blocks orphaned per Alice block,
    non-profit-driven Alice)."""
    from repro.runtime.parallel import SolveTask
    ratios, settings = list(ratios), list(settings)
    result = TableResult(name=f"table4-alpha{alpha:.0%}",
                         row_labels=[f"{b}:{g}" for b, g in ratios],
                         col_labels=[f"setting{s}" for s in settings])
    specs = []
    for ratio in ratios:
        for setting in settings:
            if not feasible(alpha, ratio):
                continue
            config = AttackConfig.from_ratio(alpha, ratio, setting=setting)
            key = (f"{ratio[0]}:{ratio[1]}", f"setting{setting}")
            specs.append((key, SolveTask(kind="orphans", key=key,
                                         config=config),
                          PAPER_TABLE4.get((ratio, setting))))
    _fill_cells(result, specs, runner, supervisor, workers, progress,
                "table4",
                serial_solve=lambda task: solve_orphan_rate(
                    task.config, supervisor=supervisor).utility)
    return result


def _make_runner(journal_dir, sweep: str):
    """Build a journal-backed runner for one table, or ``None``."""
    if journal_dir is None:
        return None
    from pathlib import Path

    from repro.runtime.journal import Journal
    from repro.runtime.sweeprunner import SweepRunner

    directory = Path(journal_dir)
    directory.mkdir(parents=True, exist_ok=True)
    journal = Journal(directory / f"{sweep}.journal", sweep=sweep)
    return SweepRunner(journal=journal)


def _main(argv: List[str]) -> int:
    argv = list(argv)
    journal_dir = None
    if "--journal" in argv:
        at = argv.index("--journal")
        try:
            journal_dir = argv[at + 1]
        except IndexError:
            print("--journal requires a directory argument")
            return 2
        del argv[at:at + 2]
    workers = 1
    if "--workers" in argv:
        at = argv.index("--workers")
        try:
            workers = int(argv[at + 1])
        except (IndexError, ValueError):
            print("--workers requires an integer argument")
            return 2
        del argv[at:at + 2]
    which = argv[0] if argv else "all"
    fast = "--fast" in argv

    def echo(msg: str) -> None:
        print(msg, file=sys.stderr)

    def runner_for(sweep: str):
        return _make_runner(journal_dir, sweep)

    outputs: List[TableResult] = []
    if which in ("table2", "all"):
        outputs.append(table2(setting=1, progress=echo, workers=workers,
                              runner=runner_for("table2-setting1")))
        outputs.append(table2(setting=2, alphas=(0.25,),
                              ratios=TABLE2_RATIOS[:4],
                              progress=echo, workers=workers,
                              runner=runner_for("table2-setting2")))
    if which in ("table3", "all"):
        alphas = (0.01, 0.10) if fast else TABLE3_ALPHAS
        outputs.append(table3(setting=1, alphas=alphas, progress=echo,
                              workers=workers,
                              runner=runner_for("table3-setting1")))
        outputs.append(table3(setting=2, alphas=alphas, progress=echo,
                              workers=workers,
                              runner=runner_for("table3-setting2")))
        outputs.append(table3_bitcoin(progress=echo, workers=workers,
                                      runner=runner_for("table3-bitcoin")))
    if which in ("table4", "all"):
        settings = (1,) if fast else (1, 2)
        outputs.append(table4(settings=settings, progress=echo,
                              workers=workers,
                              runner=runner_for("table4-alpha1%")))
    if not outputs:
        print(f"unknown table {which!r}; use table2|table3|table4|all")
        return 2
    for out in outputs:
        print(out.render())
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    raise SystemExit(_main(sys.argv[1:]))
