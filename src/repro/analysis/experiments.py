"""Markdown report generator: paper vs measured, per experiment.

``python -m repro.analysis.experiments [--fast] [--output FILE]``
regenerates the quantitative comparison backing EXPERIMENTS.md.  The
``--fast`` mode solves representative cells (seconds); the full mode
regenerates every feasible cell of every table (minutes).
"""

from __future__ import annotations

import argparse
import sys
from typing import IO, List, Optional

from repro.analysis.tables import (
    TABLE3_ALPHAS,
    TABLE4_RATIOS,
    TableResult,
    table2,
    table3,
    table3_bitcoin,
    table4,
)


def _markdown_table(result: TableResult) -> List[str]:
    lines = [f"### {result.name}", ""]
    header = ["cell", "measured", "paper", "delta"]
    lines.append("| " + " | ".join(header) + " |")
    lines.append("|" + "---|" * len(header))
    for key in sorted(result.cells):
        measured = result.cells[key]
        paper = result.paper.get(key)
        delta = "" if paper is None else f"{measured - paper:+.4f}"
        paper_text = "" if paper is None else f"{paper:g}"
        lines.append(f"| {key[0]} / {key[1]} | {measured:.4f} | "
                     f"{paper_text} | {delta} |")
    if result.paper:
        lines.append("")
        lines.append(f"Max |measured - paper| over reported cells: "
                     f"{result.max_paper_deviation():.4f}")
    lines.append("")
    return lines


def generate_report(fast: bool = True,
                    stream: Optional[IO[str]] = None) -> str:
    """Build (and optionally stream) the full comparison report."""
    def emit(result: TableResult) -> List[str]:
        block = _markdown_table(result)
        if stream is not None:
            stream.write("\n".join(block) + "\n")
            stream.flush()
        return block

    lines: List[str] = ["# Regenerated paper comparison", ""]
    if stream is not None:
        stream.write("\n".join(lines) + "\n")

    alphas3 = (0.01, 0.10) if fast else TABLE3_ALPHAS
    ratios4 = ((2, 1), (1, 1), (2, 3)) if fast else TABLE4_RATIOS
    settings4 = (1,) if fast else (1, 2)
    results = [
        table2(setting=1,
               alphas=(0.25,) if fast else (0.10, 0.15, 0.20, 0.25)),
        table3(setting=1, alphas=alphas3),
        table3(setting=2, alphas=alphas3),
        table3_bitcoin(),
        table4(ratios=ratios4, settings=settings4),
    ]
    for result in results:
        lines.extend(emit(result))
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point for the report generator."""
    parser = argparse.ArgumentParser(
        description="Regenerate the paper-vs-measured comparison")
    parser.add_argument("--fast", action="store_true",
                        help="representative cells only")
    parser.add_argument("--output", default="-",
                        help="output file (default stdout)")
    args = parser.parse_args(argv)
    if args.output == "-":
        generate_report(fast=args.fast, stream=sys.stdout)
        return 0
    with open(args.output, "w") as handle:
        generate_report(fast=args.fast, stream=handle)
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    raise SystemExit(main())
