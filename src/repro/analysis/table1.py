"""Render Table 1 (the transition/reward spec) from the implementation.

The paper's Table 1 lists, for setting 1, every (state, action) row
with its resulting states, probabilities and reward pairs.  This module
regenerates that table *from the transition generator*, making the
implementation an executable version of the paper's spec: the rendered
rows can be eyeballed against the paper, and the tests check selected
rows symbolically (probabilities expressed in alpha/beta/gamma).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analysis.formatting import format_table
from repro.core.config import AttackConfig
from repro.core.transitions import Transition, generate_transitions


def _fmt_state(state: Tuple) -> str:
    if state[0] == "base":
        return "(0,0,0,0)" if state[1] == 0 else f"base r={state[1]}"
    return "(" + ",".join(str(x) for x in state[1:5]) + ")"


def _fmt_rewards(rewards: Dict[str, float]) -> str:
    ra = rewards.get("alice", 0.0)
    ro = rewards.get("others", 0.0)
    return f"({ra:g},{ro:g})"


def collect_rows(config: AttackConfig) -> List[List[str]]:
    """One output row per (state, action, next_state) transition of the
    setting-1 MDP, in generation order."""
    rows: List[List[str]] = []
    for tr in generate_transitions(config):
        rows.append([_fmt_state(tr.state), tr.action,
                     _fmt_state(tr.next_state), f"{tr.prob:.4f}",
                     _fmt_rewards(tr.rewards)])
    return rows


def render_table1(config: AttackConfig, max_rows: int = 60) -> str:
    """Render the regenerated Table 1 (truncated for readability)."""
    rows = collect_rows(config)
    shown = rows[:max_rows]
    table = format_table(
        ["state", "action", "next", "prob", "(R_A, R_others)"], shown)
    if len(rows) > max_rows:
        table += f"\n... {len(rows) - max_rows} further rows"
    return table


def transitions_for(config: AttackConfig, state: Tuple,
                    action: str) -> List[Transition]:
    """Look up the generated transitions of one (state, action) pair --
    the unit the paper's Table 1 rows describe."""
    return [tr for tr in generate_transitions(config)
            if tr.state == state and tr.action == action]
