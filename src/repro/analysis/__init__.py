"""Analysis harness: parameter sweeps, paper tables and validation.

- :mod:`repro.analysis.tables` -- regenerate Tables 2, 3 and 4 (plus
  the Bitcoin comparison block of Table 3) in the paper's layout;
- :mod:`repro.analysis.sweeps` -- generic parameter sweep runner;
- :mod:`repro.analysis.formatting` -- ASCII table rendering;
- :mod:`repro.analysis.validation` -- MDP-vs-simulation agreement
  checks.
"""

from repro.analysis.formatting import format_table
from repro.analysis.sweeps import SweepResult, sweep_attack
from repro.analysis.tables import (
    PAPER_TABLE2,
    PAPER_TABLE3_BITCOIN,
    PAPER_TABLE3_SET1,
    PAPER_TABLE3_SET2,
    PAPER_TABLE4,
    table2,
    table3,
    table3_bitcoin,
    table4,
)
from repro.analysis.validation import ValidationReport, validate_against_sim
from repro.analysis.policy_maps import action_census, policy_map, summarize
from repro.analysis.table1 import render_table1
from repro.analysis.cost_benefit import CostBenefit, cost_benefit
from repro.analysis.sensitivity import DSSensitivity, ds_sensitivity
from repro.analysis.thresholds import (
    bu_attack_threshold,
    selfish_mining_threshold,
)

__all__ = [
    "format_table",
    "sweep_attack",
    "SweepResult",
    "table2",
    "table3",
    "table3_bitcoin",
    "table4",
    "PAPER_TABLE2",
    "PAPER_TABLE3_SET1",
    "PAPER_TABLE3_SET2",
    "PAPER_TABLE3_BITCOIN",
    "PAPER_TABLE4",
    "validate_against_sim",
    "ValidationReport",
    "policy_map",
    "action_census",
    "summarize",
    "render_table1",
    "cost_benefit",
    "CostBenefit",
    "selfish_mining_threshold",
    "bu_attack_threshold",
    "ds_sensitivity",
    "DSSensitivity",
]
