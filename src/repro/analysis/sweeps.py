"""Generic parameter sweeps over the attack analysis.

Used by the ablation benches (AD sweep, phase-3 return, gate countdown)
and available to downstream users exploring the parameter space beyond
the paper's grid.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterable, List, Sequence

from repro.core.config import AttackConfig
from repro.core.incentives import IncentiveModel
from repro.core.solve import AttackAnalysis, analyze
from repro.errors import ReproError


@dataclass
class SweepResult:
    """Result of a one-dimensional sweep.

    Attributes
    ----------
    parameter:
        Name of the swept :class:`AttackConfig` field.
    values:
        Swept values in order.
    analyses:
        One :class:`AttackAnalysis` per value.
    """

    parameter: str
    values: List
    analyses: List[AttackAnalysis]

    def utilities(self) -> List[float]:
        """Utility per swept value."""
        return [a.utility for a in self.analyses]

    def as_rows(self) -> List[List]:
        """Rows for :func:`repro.analysis.formatting.format_table`."""
        return [[v, a.utility, a.honest_utility, a.advantage]
                for v, a in zip(self.values, self.analyses)]


def sweep_attack(base: AttackConfig, parameter: str, values: Iterable,
                 model: IncentiveModel,
                 transform: Callable[[AttackConfig], AttackConfig] = None,
                 runner=None, workers: int = 1) -> SweepResult:
    """Solve ``model`` for ``base`` with ``parameter`` set to each value.

    ``transform`` optionally post-processes each config (e.g. to keep
    power shares normalized when sweeping ``alpha``).  ``runner`` is an
    optional :class:`repro.runtime.sweeprunner.SweepRunner`; with a
    journal attached, completed values survive a crash and are restored
    (full analysis, policy included) instead of re-solved.  With
    ``workers > 1`` the values are solved on that many processes
    through :func:`repro.runtime.parallel.run_cells`; the analyses are
    then payload round-trips, exactly like journal-restored cells.
    """
    values = list(values)
    if not values:
        raise ReproError("sweep needs at least one value")
    if parameter not in AttackConfig.__dataclass_fields__:
        raise ReproError(f"unknown AttackConfig field {parameter!r}")
    configs = []
    for value in values:
        config = replace(base, **{parameter: value})
        if transform is not None:
            config = transform(config)
        configs.append(config)
    if workers > 1:
        from repro.runtime.parallel import SolveTask, run_cells
        tasks = [SolveTask(kind="analyze", key=(parameter, value),
                           config=config, model=model)
                 for value, config in zip(values, configs)]
        analyses = run_cells(tasks, runner=runner, workers=workers)
        return SweepResult(parameter=parameter, values=values,
                           analyses=analyses)
    analyses = []
    for value, config in zip(values, configs):
        if runner is None:
            analyses.append(analyze(config, model))
        else:
            from repro.analysis.store import (
                analysis_from_payload,
                analysis_to_payload,
            )
            # NOTE: bind the loop variable as a default argument --
            # a bare closure would late-bind and make every deferred
            # cell solve the final config.
            analyses.append(runner.cell(
                [parameter, value],
                lambda config=config: analyze(config, model),
                encode=analysis_to_payload,
                decode=analysis_from_payload))
    return SweepResult(parameter=parameter, values=values,
                       analyses=analyses)


def sweep_alpha(ratio, alphas: Sequence[float], model: IncentiveModel,
                **config_kwargs) -> Dict[float, AttackAnalysis]:
    """Sweep Alice's power share at a fixed beta:gamma ratio."""
    out: Dict[float, AttackAnalysis] = {}
    for alpha in alphas:
        config = AttackConfig.from_ratio(alpha, ratio, **config_kwargs)
        out[alpha] = analyze(config, model)
    return out
