"""Reward, orphan and double-spend accounting for simulations, plus
streaming (Welford) moment accumulators for sampled statistics."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable

from repro.core.double_spend import double_spend_bonus
from repro.errors import SimulationError


@dataclass
class Welford:
    """Streaming mean/variance accumulator (Welford's algorithm).

    Holds O(1) state however many samples are added, so arbitrarily
    long sample streams (per-trajectory utilities, per-seed rates)
    never need materializing.  Accumulators combine exactly with
    :meth:`merge` (Chan et al.'s pairwise update), which is how
    per-seed statistics computed in worker processes are folded into
    one report; merging in a fixed order keeps the combined result
    independent of how work was distributed.

    Attributes
    ----------
    count:
        Number of samples absorbed.
    mean:
        Running sample mean.
    m2:
        Running sum of squared deviations from the mean.
    """

    count: int = 0
    mean: float = 0.0
    m2: float = 0.0

    def add(self, value: float) -> None:
        """Absorb one sample."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)

    def add_many(self, values: Iterable[float]) -> None:
        """Absorb a batch of samples (in iteration order)."""
        for value in values:
            self.add(float(value))

    def merge(self, other: "Welford") -> None:
        """Fold another accumulator into this one."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count, self.mean, self.m2 = \
                other.count, other.mean, other.m2
            return
        total = self.count + other.count
        delta = other.mean - self.mean
        self.mean += delta * other.count / total
        self.m2 += other.m2 + delta * delta \
            * self.count * other.count / total
        self.count = total

    @property
    def variance(self) -> float:
        """Unbiased sample variance (needs >= 2 samples)."""
        if self.count < 2:
            raise SimulationError(
                "variance needs at least two samples")
        return self.m2 / (self.count - 1)

    @property
    def std(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    @property
    def stderr(self) -> float:
        """Standard error of the mean."""
        return self.std / math.sqrt(self.count)

    def as_dict(self) -> Dict[str, float]:
        """JSON-compatible state (for cross-process payloads)."""
        return {"count": self.count, "mean": self.mean, "m2": self.m2}

    @classmethod
    def from_dict(cls, payload: Dict[str, float]) -> "Welford":
        """Rebuild an accumulator from :meth:`as_dict` output."""
        return cls(count=int(payload["count"]),
                   mean=float(payload["mean"]),
                   m2=float(payload["m2"]))


@dataclass
class Accounting:
    """Accumulated outcome of a simulation run.

    Mirrors the MDP's reward channels so simulated rates are directly
    comparable with :func:`repro.mdp.stationary.policy_gains`.
    """

    steps: int = 0
    alice: float = 0.0
    others: float = 0.0
    alice_orphans: float = 0.0
    others_orphans: float = 0.0
    ds: float = 0.0
    races: int = 0
    race_lengths: Dict[int, int] = field(default_factory=dict)

    def record_locked(self, alice_blocks: int, other_blocks: int) -> None:
        """Credit blocks that entered the blockchain."""
        self.alice += alice_blocks
        self.others += other_blocks

    def record_race(self, orphaned_alice: int, orphaned_others: int,
                    rds: float, confirmations: int) -> None:
        """Record a resolved block race and its double-spend payout."""
        self.alice_orphans += orphaned_alice
        self.others_orphans += orphaned_others
        orphaned = orphaned_alice + orphaned_others
        self.ds += double_spend_bonus(orphaned, rds, confirmations)
        self.races += 1
        self.race_lengths[orphaned] = self.race_lengths.get(orphaned, 0) + 1

    # -- utilities mirroring Section 3 ---------------------------------

    @property
    def relative_revenue(self) -> float:
        """u_A1 estimate: Alice's share of blockchain blocks."""
        total = self.alice + self.others
        if total == 0:
            raise SimulationError("no blocks locked yet")
        return self.alice / total

    @property
    def absolute_reward(self) -> float:
        """u_A2 estimate: Alice's income per network block."""
        if self.steps == 0:
            raise SimulationError("no steps simulated yet")
        return (self.alice + self.ds) / self.steps

    @property
    def orphan_rate(self) -> float:
        """u_A3 estimate: others' orphans per Alice block."""
        den = self.alice + self.alice_orphans
        if den == 0:
            raise SimulationError("Alice mined no blocks yet")
        return self.others_orphans / den

    def rates(self) -> Dict[str, float]:
        """Per-step channel rates, comparable with MDP gains."""
        if self.steps == 0:
            raise SimulationError("no steps simulated yet")
        return {
            "alice": self.alice / self.steps,
            "others": self.others / self.steps,
            "alice_orphans": self.alice_orphans / self.steps,
            "others_orphans": self.others_orphans / self.steps,
            "ds": self.ds / self.steps,
        }
