"""Reward, orphan and double-spend accounting for simulations."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.core.double_spend import double_spend_bonus
from repro.errors import SimulationError


@dataclass
class Accounting:
    """Accumulated outcome of a simulation run.

    Mirrors the MDP's reward channels so simulated rates are directly
    comparable with :func:`repro.mdp.stationary.policy_gains`.
    """

    steps: int = 0
    alice: float = 0.0
    others: float = 0.0
    alice_orphans: float = 0.0
    others_orphans: float = 0.0
    ds: float = 0.0
    races: int = 0
    race_lengths: Dict[int, int] = field(default_factory=dict)

    def record_locked(self, alice_blocks: int, other_blocks: int) -> None:
        """Credit blocks that entered the blockchain."""
        self.alice += alice_blocks
        self.others += other_blocks

    def record_race(self, orphaned_alice: int, orphaned_others: int,
                    rds: float, confirmations: int) -> None:
        """Record a resolved block race and its double-spend payout."""
        self.alice_orphans += orphaned_alice
        self.others_orphans += orphaned_others
        orphaned = orphaned_alice + orphaned_others
        self.ds += double_spend_bonus(orphaned, rds, confirmations)
        self.races += 1
        self.race_lengths[orphaned] = self.race_lengths.get(orphaned, 0) + 1

    # -- utilities mirroring Section 3 ---------------------------------

    @property
    def relative_revenue(self) -> float:
        """u_A1 estimate: Alice's share of blockchain blocks."""
        total = self.alice + self.others
        if total == 0:
            raise SimulationError("no blocks locked yet")
        return self.alice / total

    @property
    def absolute_reward(self) -> float:
        """u_A2 estimate: Alice's income per network block."""
        if self.steps == 0:
            raise SimulationError("no steps simulated yet")
        return (self.alice + self.ds) / self.steps

    @property
    def orphan_rate(self) -> float:
        """u_A3 estimate: others' orphans per Alice block."""
        den = self.alice + self.alice_orphans
        if den == 0:
            raise SimulationError("Alice mined no blocks yet")
        return self.others_orphans / den

    def rates(self) -> Dict[str, float]:
        """Per-step channel rates, comparable with MDP gains."""
        if self.steps == 0:
            raise SimulationError("no steps simulated yet")
        return {
            "alice": self.alice / self.steps,
            "others": self.others / self.steps,
            "alice_orphans": self.alice_orphans / self.steps,
            "others_orphans": self.others_orphans / self.steps,
            "ds": self.ds / self.steps,
        }
