"""Executable versions of the paper's Figures 1-3.

The paper's figures are protocol illustrations; here each becomes a
scripted scenario over the real substrate whose captions turn into
checkable facts.  The benches print the same stories the figures tell.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.chain.block import Block, make_block
from repro.chain.tree import BlockTree
from repro.chain.validity import BUValidity
from repro.core.actions import ON_CHAIN_1, ON_CHAIN_2
from repro.core.config import AttackConfig
from repro.errors import SimulationError
from repro.sim.scenario import ALICE, BOB, CAROL, ThreeMinerScenario
from repro.sim.strategies import HonestStrategy


@dataclass
class Figure1Result:
    """Facts behind Figure 1 (a BU miner's choice of parent block).

    Attributes
    ----------
    rejected_before_depth:
        The excessive block is invalid until AD blocks stack on it.
    accepted_at_depth:
        The chain becomes valid once the acceptance depth is reached.
    limit_before, limit_after:
        The node's effective block size limit before and after the
        sticky gate opens (EB vs the 32 MB message cap).
    gate_closed_after_window:
        The gate closes after 144 consecutive non-excessive blocks.
    """

    rejected_before_depth: bool
    accepted_at_depth: bool
    limit_before: float
    limit_after: float
    gate_closed_after_window: bool


def figure1_sticky_gate(eb: float = 1.0, ad: int = 3,
                        gate_window: int = 144) -> Figure1Result:
    """Replay Figure 1: reject, accept at depth, open gate to 32 MB,
    close after the window."""
    tree = BlockTree()
    rule = BUValidity(eb=eb, ad=ad, sticky=True, gate_window=gate_window)
    tip: Block = tree.genesis
    limit_before = rule.local_limit_at(tree, tip)
    # An excessive block appears.
    excessive = tree.add(make_block(tip, size=eb * 2, miner="big"))
    rejected = not rule.is_chain_valid(tree, excessive)
    # Build AD - 1 blocks on top: the chain becomes valid (middle panel).
    tip = excessive
    for _ in range(ad - 1):
        tip = tree.add(make_block(tip, size=eb, miner="other"))
    accepted = rule.is_chain_valid(tree, tip)
    limit_after = rule.local_limit_at(tree, tip)
    # 144 consecutive non-excessive blocks close the gate (lower panel).
    for _ in range(gate_window - (tip.height - excessive.height)):
        tip = tree.add(make_block(tip, size=eb, miner="other"))
    closed = not rule.gate_open_at(tree, tip)
    still_valid = rule.is_chain_valid(tree, tip)
    if not still_valid:
        raise SimulationError("closing the gate must not invalidate "
                              "the accepted chain")
    return Figure1Result(rejected_before_depth=rejected,
                         accepted_at_depth=accepted,
                         limit_before=limit_before,
                         limit_after=limit_after,
                         gate_closed_after_window=closed)


@dataclass
class Figure2Result:
    """Facts behind Figure 2 (phase-1 and phase-2 splits).

    Attributes
    ----------
    phase1_split:
        After Alice's EB_C-sized block, Carol mines on it while Bob
        stays on its predecessor.
    phase2_entered:
        Once Chain 2 reaches AD, Bob adopts it and his gate opens.
    phase2_split:
        With Bob's gate open, Alice's block just above EB_C is accepted
        by Bob and rejected by Carol -- the mirrored fork.
    """

    phase1_split: bool
    phase2_entered: bool
    phase2_split: bool


def figure2_phase_forks(ad: int = 3) -> Figure2Result:
    """Replay Figure 2's two panels through the simulator."""
    config = AttackConfig(alpha=0.2, beta=0.4, gamma=0.4, ad=ad, setting=2)
    scenario = ThreeMinerScenario(config, HonestStrategy())
    # Phase 1: Alice splits; Carol follows her block, Bob does not.
    scenario.force_step(ALICE, ON_CHAIN_2)
    fork = scenario.fork
    phase1_split = (fork is not None and fork.phase == 1
                    and scenario.carol.head().miner == ALICE
                    and scenario.bob.head().block_id
                    == fork.base.block_id)
    # Carol extends Chain 2 until it reaches AD: Bob adopts, gate opens.
    for _ in range(ad - 1):
        scenario.force_step(CAROL, ON_CHAIN_1)
    phase2_entered = (scenario.fork is None
                      and scenario.bob.head().block_id
                      == scenario.carol.head().block_id
                      and scenario._gate_r(scenario.bob) > 0)
    # Phase 2: Alice's oversize block splits the other way.
    scenario.force_step(ALICE, ON_CHAIN_2)
    fork = scenario.fork
    phase2_split = (fork is not None and fork.phase == 2
                    and scenario.bob.head().miner == ALICE
                    and scenario.carol.head().block_id
                    == fork.base.block_id)
    return Figure2Result(phase1_split=phase1_split,
                         phase2_entered=phase2_entered,
                         phase2_split=phase2_split)


@dataclass
class Figure3Result:
    """Facts behind Figure 3 (two compliant blocks orphaned by one
    Alice block).

    Attributes
    ----------
    alice_blocks_spent:
        Alice's blocks consumed by the race (all orphaned here).
    others_orphaned:
        Compliant blocks orphaned when Carol switches back to Chain 1.
    orphans_per_alice_block:
        The u_A3 contribution of this single race.
    """

    alice_blocks_spent: int
    others_orphaned: int
    orphans_per_alice_block: float


def figure3_orphaning(ad: int = 6) -> Figure3Result:
    """Replay Figure 3: Alice's one split block drags two Carol blocks
    onto a chain that Bob's majority then orphans."""
    config = AttackConfig(alpha=0.1, beta=0.6, gamma=0.3, ad=ad, setting=1)
    scenario = ThreeMinerScenario(config, HonestStrategy())
    scenario.force_step(ALICE, ON_CHAIN_2)   # Chain 2 opens (l2 = 1)
    scenario.force_step(CAROL, ON_CHAIN_1)   # Carol joins Chain 2 (l2 = 2)
    scenario.force_step(CAROL, ON_CHAIN_1)   # and again (l2 = 3)
    for _ in range(4):                       # Bob out-mines the fork
        scenario.force_step(BOB, ON_CHAIN_1)
    acc = scenario.accounting
    if scenario.fork is not None:
        raise SimulationError("the race must have resolved")
    alice_spent = int(acc.alice + acc.alice_orphans)
    return Figure3Result(
        alice_blocks_spent=alice_spent,
        others_orphaned=int(acc.others_orphans),
        orphans_per_alice_block=acc.others_orphans / alice_spent)


def chain_sizes(tree: BlockTree, tip: Block) -> List[Tuple[int, float]]:
    """Helper for reports: (height, size) pairs of a chain."""
    return [(b.height, b.size) for b in tree.chain(tip)]
