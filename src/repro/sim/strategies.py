"""Attacker strategies for the three-miner simulator.

A strategy maps the tracked MDP state (see :mod:`repro.core.states`)
to an action name.  :class:`PolicyStrategy` executes an optimal policy
from the solvers; the heuristics are baselines and test fixtures.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.core.actions import ON_CHAIN_1, ON_CHAIN_2, WAIT
from repro.core.states import State, is_base
from repro.errors import SimulationError
from repro.mdp.policy import Policy


class Strategy(ABC):
    """Decides Alice's action in each simulator step."""

    @abstractmethod
    def decide(self, state: State) -> str:
        """Return the action name for the tracked state."""


class HonestStrategy(Strategy):
    """Never attacks: always extends the consensus chain."""

    def decide(self, state: State) -> str:
        return ON_CHAIN_1


class AlwaysSplitStrategy(Strategy):
    """Splits at every opportunity and keeps pumping Chain 2 -- the
    naive generalization of Cryptoconomy's attack description."""

    def decide(self, state: State) -> str:
        return ON_CHAIN_2


class WaitAndWatchStrategy(Strategy):
    """Splits from base states, then idles to watch Bob and Carol
    orphan each other (a cheap non-profit-driven heuristic)."""

    def decide(self, state: State) -> str:
        return ON_CHAIN_2 if is_base(state) else WAIT


class PolicyStrategy(Strategy):
    """Executes an MDP policy produced by the solvers."""

    def __init__(self, policy: Policy) -> None:
        self.policy = policy

    def decide(self, state: State) -> str:
        try:
            return self.policy.action_for(state)
        except Exception as exc:
            raise SimulationError(
                f"policy has no action for tracked state {state!r}"
            ) from exc
