"""The three-miner scenario simulator (Section 4.1.1, over the real
substrate).

Alice (strategic), Bob (small EB) and Carol (large EB) mine over one
shared block tree; Bob and Carol run genuine
:class:`repro.chain.validity.BUValidity` fork choice, so the
simulator's dynamics follow Rizun's protocol description rather than
the MDP's abstraction.  The scenario simultaneously tracks the MDP
state it believes the system is in and *asserts* at every step that the
substrate's node views agree (Bob on Chain 1, Carol on Chain 2, and
vice versa in phase 2) -- a continuous cross-validation of the Table 1
encoding.

In setting 1 (sticky gates disabled) the substrate dynamics coincide
exactly with the MDP, so long runs of an optimal policy must reproduce
the solved utilities within sampling error (tested).  In setting 2 the
substrate's gate countdown starts at the excessive block itself (per
Rizun) while the paper's MDP restarts it at 144 upon acceptance; the
tracked ``r`` follows the substrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.chain.block import Block, make_block
from repro.chain.tree import BlockTree
from repro.chain.validity import BUValidity
from repro.core.actions import ON_CHAIN_1, ON_CHAIN_2, WAIT
from repro.core.config import AttackConfig
from repro.core.states import State, base1_state, base2_state
from repro.errors import SimulationError
from repro.protocol.node import NodeView
from repro.protocol.params import BUParams, MESSAGE_LIMIT_MB
from repro.sim.metrics import Accounting
from repro.sim.strategies import Strategy

ALICE, BOB, CAROL = "alice", "bob", "carol"

#: Uniform draws pre-sampled per refill by :class:`ChunkedUniforms`.
UNIFORM_CHUNK = 1024


class ChunkedUniforms:
    """Chunked scalar uniform draws from a generator.

    ``Generator.random(n)`` consumes the same bit stream as ``n``
    scalar ``Generator.random()`` calls, so buffering draws in chunks
    of ``chunk`` changes per-block wall time (one numpy call per
    ``chunk`` blocks instead of one per block) but never the sampled
    values: a scenario run is bit-identical with any chunk size.
    """

    def __init__(self, rng: np.random.Generator,
                 chunk: int = UNIFORM_CHUNK) -> None:
        if chunk < 1:
            raise SimulationError(f"chunk must be >= 1, got {chunk!r}")
        self._rng = rng
        self._chunk = chunk
        self._buffer = np.empty(0)
        self._next = 0

    def next(self) -> float:
        """The next uniform draw from the underlying stream."""
        if self._next >= len(self._buffer):
            self._buffer = self._rng.random(self._chunk)
            self._next = 0
        value = self._buffer[self._next]
        self._next += 1
        return float(value)


@dataclass
class _Fork:
    """Bookkeeping of an ongoing fork."""

    base: Block          # last block both compliant groups agree on
    chain1_tip: Block
    chain2_tip: Block
    phase: int           # 1: Bob on Chain 1; 2: roles swapped
    a1: int = 0
    a2: int = 1          # Chain 2 opens with Alice's block
    r_at_start: int = 0

    @property
    def l1(self) -> int:
        return self.chain1_tip.height - self.base.height

    @property
    def l2(self) -> int:
        return self.chain2_tip.height - self.base.height


@dataclass
class ScenarioResult:
    """Outcome of a simulation run.

    Attributes
    ----------
    accounting:
        Channel totals comparable with MDP gains.
    blocks_mined:
        Total blocks mined (equals steps).
    tree_size:
        Number of blocks in the tree (including genesis).
    """

    accounting: Accounting
    blocks_mined: int
    tree_size: int


class ThreeMinerScenario:
    """Simulates the Alice/Bob/Carol system over the chain substrate."""

    def __init__(self, config: AttackConfig, strategy: Strategy,
                 eb_bob: float = 1.0, eb_carol: float = 4.0,
                 rng: Optional[np.random.Generator] = None,
                 observer=None) -> None:
        if eb_carol <= eb_bob:
            raise SimulationError("the scenario requires EB_B < EB_C")
        if eb_carol + 0.5 > MESSAGE_LIMIT_MB:
            raise SimulationError("EB_C too close to the message limit")
        self.config = config
        self.strategy = strategy
        self.rng = rng if rng is not None else np.random.default_rng()
        # step() draws its one uniform per block through this chunked
        # buffer; drawing from self.rng directly between steps would
        # interleave with the pre-sampled chunk.
        self._uniforms = ChunkedUniforms(self.rng)
        self.tree = BlockTree()
        sticky = config.setting == 2
        self.bob = NodeView.bu(
            BOB, self.tree, BUParams(mg=1.0, eb=eb_bob, ad=config.ad),
            sticky=sticky)
        self.carol = NodeView.bu(
            CAROL, self.tree,
            BUParams(mg=1.0, eb=eb_carol, ad=config.effective_ad_carol),
            sticky=sticky)
        self.normal_size = 1.0
        self.split1_size = eb_carol          # Carol accepts, Bob rejects
        self.split2_size = eb_carol + 0.5    # Bob's open gate accepts only
        self.accounting = Accounting()
        self.fork: Optional[_Fork] = None
        self.last_locked: Block = self.tree.genesis
        #: Optional callable receiving one dict per settlement event
        #: (see :mod:`repro.sim.trace`).
        self.observer = observer

    def _notify(self, kind: str, **fields) -> None:
        if self.observer is not None:
            event = {"kind": kind, "step": self.accounting.steps}
            if self.fork is not None:
                event.update(l1=self.fork.l1, l2=self.fork.l2,
                             phase=self.fork.phase)
            event.update(fields)
            self.observer(event)

    # -- state tracking -------------------------------------------------

    def _bob_rule(self) -> BUValidity:
        return self.bob.rule  # type: ignore[return-value]

    def _carol_rule(self) -> BUValidity:
        return self.carol.rule  # type: ignore[return-value]

    def _gate_r(self, view: NodeView) -> int:
        """Remaining gate-counter blocks for a node at its head
        (substrate view; 0 when the gate is closed)."""
        rule = view.rule
        assert isinstance(rule, BUValidity)
        head = view.head()
        if not rule.gate_open_at(self.tree, head):
            return 0
        last_exc = rule.last_excessive_height(self.tree, head)
        assert last_exc is not None
        return max(rule.gate_window - (head.height - last_exc), 0)

    def in_phase3(self) -> bool:
        """Whether both sticky gates are open (the attack pauses)."""
        return (self.fork is None and self._gate_r(self.bob) > 0
                and self._gate_r(self.carol) > 0)

    def tracked_state(self) -> State:
        """The MDP state key corresponding to the current system."""
        if self.fork is None:
            r = self._gate_r(self.bob)
            return base1_state() if r == 0 else base2_state(r)
        f = self.fork
        if f.phase == 1:
            return ("fork1", f.l1, f.l2, f.a1, f.a2)
        return ("fork2", f.l1, f.l2, f.a1, f.a2, f.r_at_start)

    # -- one step --------------------------------------------------------

    def step(self) -> None:
        """Mine one block and settle any race it resolves."""
        cfg = self.config
        if self.in_phase3():
            action = ON_CHAIN_1  # the strategy pauses during phase 3
        else:
            action = self.strategy.decide(self.tracked_state())
        u = self._uniforms.next()
        if action == WAIT:
            rest = cfg.beta + cfg.gamma
            miner = BOB if u < cfg.beta / rest else CAROL
        else:
            if u < cfg.alpha:
                miner = ALICE
            elif u < cfg.alpha + cfg.beta:
                miner = BOB
            else:
                miner = CAROL
        self._advance(miner, action)

    def force_step(self, miner: str, action: str = ON_CHAIN_1) -> None:
        """Scripted step: ``miner`` finds the next block, with Alice
        acting per ``action``.  Used by the Figure 2/3 scenarios and by
        deterministic tests."""
        if miner not in (ALICE, BOB, CAROL):
            raise SimulationError(f"unknown miner {miner!r}")
        self._advance(miner, action)

    def _advance(self, miner: str, action: str) -> None:
        block = self._mine(miner, action)
        self.accounting.steps += 1
        self._settle(block, miner)
        self._check_views()

    def run(self, steps: int) -> ScenarioResult:
        """Run ``steps`` block events and return the totals."""
        for _ in range(steps):
            self.step()
        return ScenarioResult(accounting=self.accounting,
                              blocks_mined=self.accounting.steps,
                              tree_size=len(self.tree))

    # -- mining ----------------------------------------------------------

    def _chain1_tip(self) -> Block:
        if self.fork is None:
            return self.bob.head()
        return self.fork.chain1_tip

    def _chain2_tip(self) -> Block:
        if self.fork is None:
            raise SimulationError("no fork in progress")
        return self.fork.chain2_tip

    def _mine(self, miner: str, action: str) -> Block:
        step = self.accounting.steps
        if miner == BOB:
            parent, size = self.bob.head(), self.normal_size
        elif miner == CAROL:
            parent, size = self.carol.head(), self.normal_size
        else:
            if action == ON_CHAIN_2 and self.fork is None:
                parent = self.bob.head()
                gate_open = self._gate_r(self.bob) > 0
                size = self.split2_size if gate_open else self.split1_size
            elif action == ON_CHAIN_2:
                parent, size = self._chain2_tip(), self.normal_size
            else:
                parent, size = self._chain1_tip(), self.normal_size
        block = make_block(parent, size=size, miner=miner, timestamp=step)
        self.tree.add(block)
        self.bob.observe(block)
        self.carol.observe(block)
        return block

    # -- settlement -------------------------------------------------------

    def _count_alice(self, ancestor: Block, tip: Block) -> int:
        return sum(1 for b in self.tree.subchain(ancestor, tip)
                   if b.miner == ALICE)

    def _lock(self, tip: Block) -> None:
        """Lock the chain from the last locked block up to ``tip``."""
        blocks = self.tree.subchain(self.last_locked, tip)
        alice = sum(1 for b in blocks if b.miner == ALICE)
        self.accounting.record_locked(alice, len(blocks) - alice)
        self.last_locked = tip

    def _resolve(self, winner_tip: Block, loser_tip: Block) -> None:
        f = self.fork
        assert f is not None
        orphaned = self.tree.subchain(f.base, loser_tip)
        alice_orphans = sum(1 for b in orphaned if b.miner == ALICE)
        winner = "chain1" if winner_tip.block_id == f.chain1_tip.block_id \
            else "chain2"
        self._notify("resolve", winner=winner, orphaned=len(orphaned))
        self._lock(winner_tip)
        self.accounting.record_race(alice_orphans,
                                    len(orphaned) - alice_orphans,
                                    self.config.rds,
                                    self.config.confirmations)
        self.fork = None

    def _settle(self, block: Block, miner: str) -> None:
        cfg = self.config
        if self.fork is None:
            if miner == ALICE and block.size > self.normal_size:
                # Alice opened a fork with a split block.
                gate_open = block.size > self.split1_size
                base = self.tree.get(block.parent_id)
                self.fork = _Fork(base=base, chain1_tip=base,
                                  chain2_tip=block,
                                  phase=2 if gate_open else 1,
                                  r_at_start=self._gate_r(self.bob))
                self._notify("split", size=block.size)
                return
            self._lock(block)
            self._notify("locked", miner=miner)
            return
        f = self.fork
        parent_id = block.parent_id
        if parent_id == f.chain1_tip.block_id:
            f.chain1_tip = block
            if miner == ALICE:
                f.a1 += 1
        elif parent_id == f.chain2_tip.block_id:
            f.chain2_tip = block
            if miner == ALICE:
                f.a2 += 1
        else:
            raise SimulationError(
                f"block extends neither fork tip (miner {miner})")
        lock_depth = cfg.ad_bob if f.phase == 1 else cfg.effective_ad_carol
        if f.l1 > f.l2:
            self._resolve(winner_tip=f.chain1_tip, loser_tip=f.chain2_tip)
        elif f.l2 >= lock_depth:
            self._resolve(winner_tip=f.chain2_tip, loser_tip=f.chain1_tip)

    # -- substrate cross-checks --------------------------------------------

    def _check_views(self) -> None:
        """Assert the node views agree with the tracked fork state."""
        bob_head = self.bob.head()
        carol_head = self.carol.head()
        if self.fork is None:
            if bob_head.block_id != carol_head.block_id:
                raise SimulationError(
                    "tracker says consensus but node views disagree: "
                    f"bob={bob_head.block_id} carol={carol_head.block_id}")
            if bob_head.block_id != self.last_locked.block_id:
                raise SimulationError(
                    "consensus head does not match locked head")
            return
        f = self.fork
        on_one = f.chain1_tip if f.l1 > 0 else f.base
        expected = {1: (on_one, f.chain2_tip),
                    2: (f.chain2_tip, on_one)}[f.phase]
        exp_bob, exp_carol = expected
        if bob_head.block_id != exp_bob.block_id:
            raise SimulationError(
                f"Bob mines on {bob_head.block_id}, tracker expected "
                f"{exp_bob.block_id} (phase {f.phase})")
        if carol_head.block_id != exp_carol.block_id:
            raise SimulationError(
                f"Carol mines on {carol_head.block_id}, tracker expected "
                f"{exp_carol.block_id} (phase {f.phase})")
