"""Monte-Carlo mining simulator over the real chain substrate.

Unlike :mod:`repro.mdp.simulate` (which samples the abstract MDP), this
package replays the paper's three-miner scenario through actual
:class:`repro.chain.validity.BUValidity` node views: Bob and Carol run
longest-valid-chain fork choice with first-received tie-breaking, and
Alice executes an arbitrary strategy (typically an MDP-optimal policy).
Agreement between the two layers cross-validates the Table 1 encoding
against Rizun's protocol description.

- :mod:`repro.sim.strategies` -- attacker strategies (policy-driven,
  honest, always-split);
- :mod:`repro.sim.metrics` -- reward/orphan/double-spend accounting;
- :mod:`repro.sim.scenario` -- the three-miner simulator;
- :mod:`repro.sim.figures` -- executable versions of the paper's
  Figures 1-3.
"""

from repro.sim.metrics import Accounting, Welford
from repro.sim.strategies import (
    AlwaysSplitStrategy,
    HonestStrategy,
    PolicyStrategy,
    Strategy,
)
from repro.sim.scenario import ScenarioResult, ThreeMinerScenario
from repro.sim.figures import (
    figure1_sticky_gate,
    figure2_phase_forks,
    figure3_orphaning,
)
from repro.sim.latency import LatencyMiner, LatencyResult, LatencySimulation
from repro.sim.trace import TraceRecorder
from repro.sim.network import (
    HonestAttacker,
    NetworkMiner,
    NetworkResult,
    NetworkSimulation,
    SplitAttacker,
)

__all__ = [
    "Accounting",
    "Welford",
    "Strategy",
    "HonestStrategy",
    "AlwaysSplitStrategy",
    "PolicyStrategy",
    "ThreeMinerScenario",
    "ScenarioResult",
    "figure1_sticky_gate",
    "figure2_phase_forks",
    "figure3_orphaning",
    "LatencyMiner",
    "LatencyResult",
    "LatencySimulation",
    "NetworkMiner",
    "NetworkSimulation",
    "NetworkResult",
    "SplitAttacker",
    "HonestAttacker",
    "TraceRecorder",
]
