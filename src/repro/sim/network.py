"""N-node Bitcoin Unlimited network simulation.

The paper's analysis reduces the network to three actors; this module
simulates the general case -- any number of compliant participants with
individual ``(MG, EB, AD)`` triples over the shared substrate, plus an
optional strategic miner -- so scenarios like the April 2017 field
distribution (AD = 6 miners, an AD = 20 miner, AD = 12 / EB = 16 MB
public nodes) can be replayed directly.

Compliant miners follow longest-valid-chain fork choice with their own
validity rules; the attacker gets a view of everyone's signals and the
tree and decides, per block it mines, which parent to extend and what
size to produce.  :class:`SplitAttacker` implements the generalized
Cryptoconomy attack of Section 4.1.1 (split the compliant power at a
chosen EB boundary and keep the halves racing).

Metrics: per-miner blocks on the final consensus chain, orphan counts,
and *disagreement time* -- the fraction of steps during which not all
participants mine on the same head, the fork-frequency concern of the
paper's critics.

Passing a :class:`repro.runtime.faults.FaultPlan` replaces the ideal
zero-delay broadcast with a faulty network: announcements can be lost,
delayed, or duplicated, nodes can crash (skipping their mining slots
and missing announcements) and partitions can cut groups off.  The
shared :class:`BlockTree` still records every mined block -- faults act
purely on *delivery to views* -- which keeps the structural invariants
of :meth:`NetworkSimulation.check_invariants` exact under any fault
schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.chain.block import Block, make_block
from repro.chain.tree import BlockTree
from repro.errors import SimulationError
from repro.protocol.node import NodeView
from repro.protocol.params import BUParams, MESSAGE_LIMIT_MB
from repro.runtime.faults import FaultInjector, FaultPlan, FaultStats


@dataclass(frozen=True)
class NetworkMiner:
    """A compliant participant (power 0 models a non-mining node)."""

    name: str
    power: float
    params: BUParams

    def __post_init__(self) -> None:
        if self.power < 0:
            raise SimulationError("power cannot be negative")


class Attacker:
    """Strategy interface for the strategic miner."""

    def choose(self, sim: "NetworkSimulation") -> Tuple[Block, float]:
        """Return (parent block, block size) for the attacker's next
        block."""
        raise NotImplementedError


class HonestAttacker(Attacker):
    """Baseline: mines 1 MB blocks on the majority head."""

    def choose(self, sim: "NetworkSimulation") -> Tuple[Block, float]:
        return sim.majority_head(), 1.0


class SplitAttacker(Attacker):
    """The generalized EB-split attack (Section 4.1.1).

    At consensus, mines a block of ``split_size`` (excessive to the
    small-EB group, acceptable to the large-EB group) on the consensus
    head; while the network disagrees, keeps supporting the chain the
    large-EB group mines on.
    """

    def __init__(self, split_size: float) -> None:
        if not 0 < split_size <= MESSAGE_LIMIT_MB:
            raise SimulationError("split size outside (0, 32] MB")
        self.split_size = split_size

    def choose(self, sim: "NetworkSimulation") -> Tuple[Block, float]:
        heads = sim.heads()
        if len({h.block_id for h in heads.values()}) == 1:
            return next(iter(heads.values())), self.split_size
        # Disagreement: extend the head of the largest camp that
        # accepts the split blocks (EB >= split size).
        followers = [m for m in sim.miners
                     if m.params.eb >= self.split_size]
        if followers:
            best = max(followers, key=lambda m: m.power)
            return heads[best.name], 1.0
        return sim.majority_head(), 1.0


@dataclass
class NetworkResult:
    """Outcome of a network simulation run.

    Attributes
    ----------
    blocks_mined:
        Total blocks produced (attacker included).
    consensus_height:
        Height of the final consensus chain.
    orphans:
        Blocks off the final consensus chain.
    chain_share:
        Miner name -> share of consensus-chain blocks.
    disagreement_fraction:
        Fraction of steps at which participants' heads differed.
    attacker_orphan_ratio:
        Compliant blocks orphaned per attacker block mined (a
        simulation analogue of u_A3; 0 when no attacker is present).
    giant_blocks_on_chain:
        Consensus-chain blocks larger than the smallest signaled EB --
        the "embed giant blocks through open sticky gates" damage of
        Section 4.1.1's phase 3.
    fault_stats:
        Injected-fault counters when the run had a fault plan, else
        ``None``.
    """

    blocks_mined: int
    consensus_height: int
    orphans: int
    chain_share: Dict[str, float]
    disagreement_fraction: float
    attacker_orphan_ratio: float
    giant_blocks_on_chain: int
    fault_stats: Optional[FaultStats] = None


ATTACKER = "attacker"


class NetworkSimulation:
    """Step-stochastic simulation of an N-participant BU network."""

    def __init__(self, miners: Sequence[NetworkMiner],
                 attacker: Optional[Attacker] = None,
                 attacker_power: float = 0.0,
                 sticky: bool = True,
                 rng: Optional[np.random.Generator] = None,
                 faults: Optional[FaultPlan] = None) -> None:
        if not miners:
            raise SimulationError("need at least one compliant miner")
        if attacker is None and attacker_power > 0:
            raise SimulationError("attacker power without an attacker")
        if attacker is not None and attacker_power <= 0:
            raise SimulationError("attacker requires positive power")
        names = [m.name for m in miners]
        if len(set(names)) != len(names) or ATTACKER in names:
            raise SimulationError("miner names must be unique and must "
                                  f"not include {ATTACKER!r}")
        self.miners = list(miners)
        self.attacker = attacker
        self.attacker_power = attacker_power
        self.rng = rng if rng is not None else np.random.default_rng()
        total = sum(m.power for m in miners) + attacker_power
        if total <= 0:
            raise SimulationError("total mining power must be positive")
        if total > 1.0 + 1e-9:
            raise SimulationError(
                f"mining powers sum to {total:.6g} > 1 (attacker share "
                f"included); power shares must form a distribution")
        self._weights = np.array(
            [m.power / total for m in miners] + (
                [attacker_power / total] if attacker else []))
        self.tree = BlockTree()
        self.views: Dict[str, NodeView] = {}
        for m in miners:
            view = NodeView.bu(m.name, self.tree, m.params, sticky=sticky)
            view.observe(self.tree.genesis)
            self.views[m.name] = view
        self._mined: Dict[str, int] = {m.name: 0 for m in miners}
        self._mined[ATTACKER] = 0
        self._disagreement_steps = 0
        self._steps = 0
        # Fault machinery (inert when no plan is given): messages due at
        # a later step and blocks withheld from crashed nodes.
        self._injector = (FaultInjector(faults, names)
                          if faults is not None else None)
        self._pending: Dict[int, List[Tuple[str, Block]]] = {}
        self._withheld_down: Dict[str, List[Block]] = {}

    # -- queries used by attacker strategies ---------------------------

    def heads(self) -> Dict[str, Block]:
        """Current head per compliant participant."""
        return {name: view.head() for name, view in self.views.items()}

    def majority_head(self) -> Block:
        """The head backed by the most compliant mining power."""
        power_by_head: Dict[str, float] = {}
        block_by_id: Dict[str, Block] = {}
        for m in self.miners:
            head = self.views[m.name].head()
            power_by_head[head.block_id] = (
                power_by_head.get(head.block_id, 0.0) + m.power)
            block_by_id[head.block_id] = head
        best = max(power_by_head, key=power_by_head.__getitem__)
        return block_by_id[best]

    def in_disagreement(self) -> bool:
        """Whether participants currently mine on different heads."""
        ids = {view.head().block_id for view in self.views.values()}
        return len(ids) > 1

    # -- fault-aware delivery ------------------------------------------

    def _deliver(self, name: str, block: Block, step: int) -> None:
        """Deliver one announcement to a view, honoring crash state."""
        injector = self._injector
        if injector is not None and injector.is_down(name, step):
            if injector.plan.resync:
                self._withheld_down.setdefault(name, []).append(block)
                injector.stats.withheld += 1
            else:
                injector.stats.dropped_down += 1
            return
        self.views[name].observe(block)

    def _flush_recovered(self, step: int) -> None:
        """Replay withheld announcements to nodes that are back up,
        oldest first (tree arrival order)."""
        injector = self._injector
        assert injector is not None
        for name in list(self._withheld_down):
            if injector.is_down(name, step):
                continue
            blocks = self._withheld_down.pop(name)
            blocks.sort(key=lambda b: self.tree.arrival_index(b.block_id))
            for block in blocks:
                self.views[name].observe(block)

    def _deliver_due(self, step: int) -> None:
        """Deliver every pending announcement whose due step arrived."""
        for due in sorted(d for d in self._pending if d <= step):
            for name, block in self._pending.pop(due):
                self._deliver(name, block, step)

    def _broadcast(self, block: Block, origin: str, step: int) -> None:
        """Announce a freshly mined block to every view, subject to the
        fault plan.  The miner always observes its own block."""
        injector = self._injector
        if origin in self.views:
            self.views[origin].observe(block)
        for name in self.views:
            if name == origin:
                continue
            if injector is None:
                self.views[name].observe(block)
                continue
            release = injector.partition_release(origin, name, step)
            if release is not None:
                if injector.plan.resync:
                    self._pending.setdefault(release, []).append(
                        (name, block))
                    injector.stats.withheld += 1
                else:
                    injector.stats.lost += 1
                continue
            for due in injector.message_schedule(step):
                if due <= step:
                    self._deliver(name, block, step)
                else:
                    self._pending.setdefault(due, []).append((name, block))

    # -- dynamics -------------------------------------------------------

    def step(self) -> Optional[Block]:
        """One block event; returns the mined block, or ``None`` when
        the drawn miner was crashed (its slot is skipped)."""
        self._steps += 1
        step = self._steps
        injector = self._injector
        if injector is not None:
            injector.begin_step(step)
            self._deliver_due(step)
            self._flush_recovered(step)
        if self.in_disagreement():
            self._disagreement_steps += 1
        idx = int(self.rng.choice(len(self._weights), p=self._weights))
        if idx < len(self.miners):
            miner = self.miners[idx]
            if injector is not None and injector.is_down(miner.name, step):
                injector.stats.mining_skipped += 1
                return None
            view = self.views[miner.name]
            parent, size = view.head(), miner.params.mg
            name = miner.name
        else:
            assert self.attacker is not None
            parent, size = self.attacker.choose(self)
            name = ATTACKER
        block = make_block(parent, size=size, miner=name,
                           timestamp=step)
        self.tree.add(block)
        self._broadcast(block, name, step)
        self._mined[name] += 1
        return block

    def run(self, steps: int) -> NetworkResult:
        """Run ``steps`` block events and summarize."""
        for _ in range(steps):
            self.step()
        return self._summarize()

    # -- invariants -----------------------------------------------------

    def check_invariants(self) -> None:
        """Verify the structural invariants that must hold regardless of
        any injected faults; raises :class:`SimulationError` otherwise.

        1. *Conservation*: the shared tree holds genesis plus exactly
           the mined blocks -- faults affect delivery, never the ledger
           of what was mined.
        2. *View soundness*: every node's head is a tree block whose
           chain the node itself accepts as valid, with consistent
           chain length.
        3. *Bounded progress*: no head can be higher than the number of
           blocks mined.
        """
        mined_total = sum(self._mined.values())
        if len(self.tree) != 1 + mined_total:
            raise SimulationError(
                f"conservation violated: tree has {len(self.tree)} blocks "
                f"but {mined_total} were mined")
        for name, view in self.views.items():
            head = view.head()
            if head.block_id not in self.tree:
                raise SimulationError(
                    f"{name} head {head.block_id} not in the shared tree")
            if not view.accepts(head):
                raise SimulationError(
                    f"{name} mines on a chain it considers invalid "
                    f"(head {head.block_id})")
            chain = self.tree.chain(head)
            if len(chain) != head.height + 1:
                raise SimulationError(
                    f"{name} head height {head.height} inconsistent with "
                    f"chain length {len(chain)}")
            if head.height > mined_total:
                raise SimulationError(
                    f"{name} head height {head.height} exceeds blocks "
                    f"mined ({mined_total})")

    def _summarize(self) -> NetworkResult:
        consensus = self.majority_head()
        chain = self.tree.chain(consensus)
        on_chain: Dict[str, int] = {name: 0 for name in self._mined}
        for block in chain[1:]:
            on_chain[block.miner] += 1
        height = consensus.height
        share = {name: (count / height if height else 0.0)
                 for name, count in on_chain.items()}
        mined_total = sum(self._mined.values())
        orphans = mined_total - height
        attacker_mined = self._mined[ATTACKER]
        compliant_orphans = orphans - (attacker_mined
                                       - on_chain[ATTACKER])
        ratio = (compliant_orphans / attacker_mined
                 if attacker_mined else 0.0)
        min_eb = min(m.params.eb for m in self.miners)
        giant = sum(1 for block in chain[1:] if block.size > min_eb)
        return NetworkResult(
            giant_blocks_on_chain=giant,
            blocks_mined=mined_total,
            consensus_height=height,
            orphans=orphans,
            chain_share=share,
            disagreement_fraction=(self._disagreement_steps / self._steps
                                   if self._steps else 0.0),
            attacker_orphan_ratio=ratio,
            fault_stats=(self._injector.stats
                         if self._injector is not None else None))
