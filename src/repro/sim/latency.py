"""Event-driven mining with propagation delay.

The paper's threat model assumes instant propagation; its discussion
sections (6.2, 6.4 and the Croman et al. citation) turn on what happens
when blocks take time to spread -- natural forks appear even among
fully compliant miners, and bigger blocks mean longer delays.  This
module provides that substrate: compliant miners with individual node
views, exponential block arrivals, and a fixed propagation delay, over
the same chain/validity machinery as the rest of the library.

The measured natural fork rate is compared in the tests against the
standard small-delay approximation
:func:`repro.baselines.honest.fork_rate_with_delay`.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.chain.block import Block, make_block
from repro.chain.tree import BlockTree
from repro.chain.validity import BitcoinValidity
from repro.errors import SimulationError
from repro.protocol.node import NodeView


@dataclass(frozen=True)
class LatencyMiner:
    """A compliant miner in the delay simulation."""

    name: str
    power: float

    def __post_init__(self) -> None:
        if self.power <= 0:
            raise SimulationError("miner power must be positive")


@dataclass
class LatencyResult:
    """Outcome of a delayed-propagation run.

    Attributes
    ----------
    blocks_mined:
        Total blocks produced.
    main_chain_length:
        Height of the final consensus chain.
    orphans:
        Blocks that did not make the main chain.
    fork_rate:
        Orphans per mined block.
    per_miner_share:
        Miner name -> share of main-chain blocks.
    duration:
        Simulated time.
    """

    blocks_mined: int
    main_chain_length: int
    orphans: int
    fork_rate: float
    per_miner_share: dict
    duration: float


class LatencySimulation:
    """Compliant mining with a uniform propagation delay.

    Parameters
    ----------
    miners:
        The compliant miners (powers are normalized internally).
    block_interval:
        Mean time between blocks network-wide (Bitcoin: 600 s).
    delay:
        Time for a block to reach every other miner.
    max_block_size:
        The prescribed BVC all miners share.
    """

    def __init__(self, miners: Sequence[LatencyMiner],
                 block_interval: float = 600.0, delay: float = 2.0,
                 max_block_size: float = 1.0) -> None:
        if not miners:
            raise SimulationError("need at least one miner")
        if block_interval <= 0:
            raise SimulationError("block interval must be positive")
        if delay < 0:
            raise SimulationError("delay cannot be negative")
        self.miners = list(miners)
        total = sum(m.power for m in miners)
        self.weights = np.array([m.power / total for m in miners])
        self.block_interval = block_interval
        self.delay = delay
        self.tree = BlockTree()
        self.views = [NodeView(m.name, self.tree,
                               BitcoinValidity(max_block_size))
                      for m in miners]
        for view in self.views:
            view.observe(self.tree.genesis)

    def run(self, n_blocks: int,
            rng: Optional[np.random.Generator] = None) -> LatencyResult:
        """Mine ``n_blocks`` blocks and return fork statistics.

        The simulation keeps one global exponential clock (memoryless,
        so re-drawing on view changes is unnecessary) and a delivery
        queue of in-flight blocks.
        """
        if rng is None:
            rng = np.random.default_rng()
        counter = itertools.count()
        # (deliver_time, tiebreak, block, view index)
        pending: List[Tuple[float, int, Block, int]] = []
        now = 0.0
        mined = 0
        while mined < n_blocks:
            now += float(rng.exponential(self.block_interval))
            # Deliver everything that arrived before this block event.
            while pending and pending[0][0] <= now:
                _t, _c, block, idx = heapq.heappop(pending)
                self.views[idx].observe(block)
            miner_idx = int(rng.choice(len(self.miners), p=self.weights))
            view = self.views[miner_idx]
            block = make_block(view.head(), size=1.0,
                               miner=self.miners[miner_idx].name,
                               timestamp=now)
            self.tree.add(block)
            view.observe(block)
            for idx in range(len(self.views)):
                if idx != miner_idx:
                    heapq.heappush(pending,
                                   (now + self.delay, next(counter),
                                    block, idx))
            mined += 1
        # Flush deliveries so every view converges.
        while pending:
            _t, _c, block, idx = heapq.heappop(pending)
            self.views[idx].observe(block)
        return self._summarize(mined, now)

    def _summarize(self, mined: int, duration: float) -> LatencyResult:
        best = max((view.head() for view in self.views),
                   key=lambda b: b.height)
        chain = self.tree.chain(best)
        shares: dict = {m.name: 0 for m in self.miners}
        for block in chain[1:]:
            shares[block.miner] += 1
        length = best.height
        if length:
            shares = {k: v / length for k, v in shares.items()}
        orphans = mined - length
        return LatencyResult(blocks_mined=mined, main_chain_length=length,
                             orphans=orphans,
                             fork_rate=orphans / mined if mined else 0.0,
                             per_miner_share=shares, duration=duration)
