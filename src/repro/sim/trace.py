"""Event traces of scenario runs.

Attach a :class:`TraceRecorder` to :class:`repro.sim.scenario.
ThreeMinerScenario` (via its ``observer`` hook) to capture what happens
block by block -- splits, race resolutions, locked blocks -- and render
it as a readable timeline.  Meant for debugging strategies and for
narrating short runs in reports; long runs should cap the buffer.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Optional

from repro.errors import SimulationError


class TraceRecorder:
    """Ring-buffer recorder for scenario settlement events.

    Parameters
    ----------
    capacity:
        Maximum retained events (older events are dropped); ``None``
        keeps everything.
    kinds:
        Optional filter: only record these event kinds
        (``"split"``, ``"resolve"``, ``"locked"``).
    """

    def __init__(self, capacity: Optional[int] = 1000,
                 kinds: Optional[Iterable[str]] = None) -> None:
        if capacity is not None and capacity < 1:
            raise SimulationError("capacity must be positive")
        self._events: Deque[Dict] = deque(maxlen=capacity)
        self._kinds = set(kinds) if kinds is not None else None
        self.dropped = 0
        self.counts: Dict[str, int] = {}

    def __call__(self, event: Dict) -> None:
        """The observer hook: record one event."""
        kind = event.get("kind", "?")
        self.counts[kind] = self.counts.get(kind, 0) + 1
        if self._kinds is not None and kind not in self._kinds:
            return
        if (self._events.maxlen is not None
                and len(self._events) == self._events.maxlen):
            self.dropped += 1
        self._events.append(dict(event))

    @property
    def events(self) -> List[Dict]:
        """The retained events, oldest first."""
        return list(self._events)

    def races(self) -> List[Dict]:
        """Only the race resolutions."""
        return [e for e in self._events if e["kind"] == "resolve"]

    def render(self, limit: int = 30) -> str:
        """A compact timeline of the most recent events.

        >>> rec = TraceRecorder()
        >>> rec({"kind": "split", "step": 3, "size": 4.0})
        >>> print(rec.render())
        step    3  split    size=4.0
        """
        lines = []
        for event in list(self._events)[-limit:]:
            fields = {k: v for k, v in event.items()
                      if k not in ("kind", "step")}
            detail = " ".join(f"{k}={v}" for k, v in sorted(fields.items()))
            lines.append(f"step {event['step']:>4}  "
                         f"{event['kind']:<8} {detail}".rstrip())
        return "\n".join(lines)
