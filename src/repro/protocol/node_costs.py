"""Public-node costs of larger blocks (Section 6.4).

The paper lists three cost channels a bigger block imposes on every
public node -- bandwidth, signature verification time, and UTXO-set
memory -- and notes a compounding effect: lower fees shift the
transaction mix toward small transactions, which cost *more per byte*
to relay and verify.  Croman et al. (cited as the 4 MB bound) estimated
the block size at which 90% of then-current nodes could still keep up.

This module turns those observations into a small capacity model:

- a node has a capacity budget per block interval on each channel;
- a block size and a transaction mix imply a per-channel load;
- a node stays online iff every channel's load fits its budget;
- over a distribution of node capacities, :func:`nodes_online` yields
  the participation curve and :func:`max_size_for_participation` the
  Croman-style bound.

The numbers are intentionally parametric -- the point is the *shape*
(participation falls monotonically with the limit; the small-transaction
effect steepens it), which is what the paper's argument needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import ChainError


@dataclass(frozen=True)
class TransactionMix:
    """The average transaction profile in blocks.

    Attributes
    ----------
    mean_size_bytes:
        Average transaction size; lower fee levels push it down
        (Section 6.4: "higher proportion of small-size transactions").
    verify_cost_per_tx:
        Signature-verification work units per transaction.
    utxo_delta_per_tx:
        Net unspent-output entries added per transaction.
    """

    mean_size_bytes: float = 500.0
    verify_cost_per_tx: float = 1.0
    utxo_delta_per_tx: float = 0.5

    def __post_init__(self) -> None:
        if self.mean_size_bytes <= 0 or self.verify_cost_per_tx <= 0:
            raise ChainError("transaction parameters must be positive")

    def transactions_per_mb(self) -> float:
        """Transactions carried by one megabyte of block."""
        return 1_000_000.0 / self.mean_size_bytes

    @staticmethod
    def at_fee_level(fee_level: float) -> "TransactionMix":
        """A stylized fee elasticity: cheap block space (fee_level -> 0)
        fills with small transactions, expensive space with large ones.
        ``fee_level`` is a 0..1 knob; 1 reproduces the default mix."""
        if not 0 <= fee_level <= 1:
            raise ChainError("fee_level must lie in [0, 1]")
        mean = 200.0 + 300.0 * fee_level
        return TransactionMix(mean_size_bytes=mean)


@dataclass(frozen=True)
class NodeCapacity:
    """One public node's per-block-interval budgets.

    Attributes
    ----------
    bandwidth_mb:
        Megabytes it can relay per block interval.
    verify_budget:
        Verification work units per interval.
    utxo_budget:
        UTXO entries it can hold in memory (in millions, cumulative
        budget expressed per-interval for simplicity).
    """

    bandwidth_mb: float
    verify_budget: float
    utxo_budget: float

    def __post_init__(self) -> None:
        if min(self.bandwidth_mb, self.verify_budget,
               self.utxo_budget) <= 0:
            raise ChainError("capacities must be positive")

    def can_handle(self, block_size_mb: float, mix: TransactionMix) -> bool:
        """Whether this node keeps up with blocks of the given size."""
        if block_size_mb < 0:
            raise ChainError("block size cannot be negative")
        txs = block_size_mb * mix.transactions_per_mb()
        if block_size_mb > self.bandwidth_mb:
            return False
        if txs * mix.verify_cost_per_tx > self.verify_budget:
            return False
        if txs * mix.utxo_delta_per_tx > self.utxo_budget * 1e6:
            return False
        return True


def nodes_online(capacities: Sequence[NodeCapacity],
                 block_size_mb: float,
                 mix: TransactionMix = TransactionMix()) -> float:
    """Fraction of nodes that keep up with ``block_size_mb`` blocks."""
    if not capacities:
        raise ChainError("need at least one node")
    up = sum(1 for c in capacities if c.can_handle(block_size_mb, mix))
    return up / len(capacities)


def max_size_for_participation(capacities: Sequence[NodeCapacity],
                               target: float = 0.9,
                               mix: TransactionMix = TransactionMix(),
                               upper: float = 32.0,
                               tol: float = 1e-3) -> float:
    """The Croman-style bound: the largest block size keeping at least
    ``target`` of the nodes online."""
    if not 0 < target <= 1:
        raise ChainError("target must lie in (0, 1]")
    if nodes_online(capacities, 0.0, mix) < target:
        return 0.0
    lo, hi = 0.0, float(upper)
    if nodes_online(capacities, hi, mix) >= target:
        return hi
    while hi - lo > tol:
        mid = 0.5 * (lo + hi)
        if nodes_online(capacities, mid, mix) >= target:
            lo = mid
        else:
            hi = mid
    return lo


def participation_curve(capacities: Sequence[NodeCapacity],
                        sizes: Sequence[float],
                        mix: TransactionMix = TransactionMix()
                        ) -> List[float]:
    """Online fraction at each probed block size."""
    return [nodes_online(capacities, s, mix) for s in sizes]
