"""A node view: one participant's position over the shared block tree.

A :class:`NodeView` ties a validity rule to a block tree and exposes the
questions the simulator asks of a node: where would you mine, what is
your blockchain, do you accept this block's chain.  First-received
tie-breaking uses the tree's arrival order, matching the zero-delay
broadcast model of the paper's threat model.
"""

from __future__ import annotations

from typing import List, Optional

from repro.chain.block import Block
from repro.chain.fork_choice import ForkChoice
from repro.chain.tree import BlockTree
from repro.chain.validity import BUValidity, ValidityRule
from repro.protocol.params import BUParams


class NodeView:
    """One participant's view of the network.

    Two fork-choice modes exist:

    - *scan mode* (default): every call to :meth:`head` rescans the
      tree's tips -- convenient for hand-built trees in tests;
    - *online mode*: after the first :meth:`observe` call, the node
      updates its head incrementally as blocks arrive, switching only
      to *strictly longer* valid chains -- both O(1) per block and the
      faithful first-received behaviour of a live node (at equal
      length it keeps the chain it is already mining on).  The
      simulator uses this mode.
    """

    def __init__(self, name: str, tree: BlockTree, rule: ValidityRule,
                 params: Optional[BUParams] = None) -> None:
        self.name = name
        self.tree = tree
        self.rule = rule
        self.params = params
        self._fork_choice = ForkChoice(tree, rule)
        self._best: Optional[Block] = None

    def observe(self, block: Block) -> None:
        """Process one arriving block in online mode: adopt the chain it
        extends iff that chain's valid prefix is strictly longer than
        the current head."""
        if self._best is None:
            self._best = self.tree.genesis
        candidate = self.rule.valid_prefix_block(self.tree, block)
        if candidate.height > self._best.height:
            self._best = candidate

    def head(self) -> Block:
        """The block this node mines on (its blockchain head)."""
        if self._best is not None:
            return self._best
        return self._fork_choice.best()

    def blockchain(self) -> List[Block]:
        """The node's blockchain, genesis to head."""
        return self.tree.chain(self.head())

    def accepts(self, tip: Block) -> bool:
        """Whether the chain ending at ``tip`` is fully valid for this
        node."""
        return self.rule.is_chain_valid(self.tree, tip)

    def generation_size(self) -> float:
        """The size of blocks this node mines (its MG), defaulting to
        1 MB when no parameters are attached."""
        return self.params.mg if self.params is not None else 1.0

    def gate_open(self) -> bool:
        """Whether a BU node's sticky gate is open at its current head
        (always ``False`` for non-BU rules)."""
        if isinstance(self.rule, BUValidity):
            return self.rule.gate_open_at(self.tree, self.head())
        return False

    @staticmethod
    def bu(name: str, tree: BlockTree, params: BUParams,
           sticky: bool = True) -> "NodeView":
        """Construct a BU node from a parameter triple."""
        rule = BUValidity(eb=params.eb, ad=params.ad, sticky=sticky)
        return NodeView(name=name, tree=tree, rule=rule, params=params)
