"""Network-wide parameter signaling.

BU participants broadcast their ``(MG, EB, AD)`` choices; the paper's
threat model assumes signals are honest (Section 2.4).  The registry
aggregates the signaled values, and :class:`EBSplit` implements the
observation from Section 4.1.1: when the network signals EB values
``EB_1 < EB_2 < ... < EB_k``, an attacker may pick any split index ``d``
and treat the miners as two groups -- those accepting only up to
``EB_d`` ("Bob") and those accepting up to ``EB_k`` ("Carol") -- by
mining blocks of size ``EB_{d+1}`` (accepted by the large-EB group,
excessive to the small-EB group) and, in phase 2, of size just above
``EB_k``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ChainError
from repro.protocol.params import BUParams


class SignalRegistry:
    """Tracks the parameters signaled by each participant, weighted by
    mining power (non-mining nodes carry zero power)."""

    def __init__(self) -> None:
        self._signals: Dict[str, BUParams] = {}
        self._power: Dict[str, float] = {}

    def signal(self, node: str, params: BUParams, power: float = 0.0) -> None:
        """Record (or update) a participant's signaled parameters."""
        if power < 0:
            raise ChainError("mining power cannot be negative")
        self._signals[node] = params
        self._power[node] = power

    def params_of(self, node: str) -> BUParams:
        """Return the parameters signaled by ``node``."""
        try:
            return self._signals[node]
        except KeyError:
            raise ChainError(f"no signal recorded for {node!r}") from None

    def total_power(self) -> float:
        """Total mining power across signaling participants."""
        return sum(self._power.values())

    def distinct_ebs(self) -> List[float]:
        """Sorted distinct EB values signaled by the network."""
        return sorted({p.eb for p in self._signals.values()})

    def power_below_eb(self, eb: float) -> float:
        """Mining power of participants whose EB is strictly below
        ``eb`` (i.e. who would reject a block of size ``eb``)."""
        return sum(self._power[n] for n, p in self._signals.items()
                   if p.eb < eb)

    def power_at_least_eb(self, eb: float) -> float:
        """Mining power of participants whose EB is at least ``eb``."""
        return sum(self._power[n] for n, p in self._signals.items()
                   if p.eb >= eb)

    def has_consensus(self) -> bool:
        """Whether every participant signals the same EB (an emergent
        BVC, as all BU miners did in April 2017)."""
        return len(self.distinct_ebs()) <= 1

    def splits(self, attacker: Optional[str] = None) -> List["EBSplit"]:
        """Enumerate every split an attacker can induce (one per split
        index ``d``, Section 4.1.1), excluding the attacker's own power."""
        others = {n: p for n, p in self._signals.items() if n != attacker}
        ebs = sorted({p.eb for p in others.values()})
        out: List[EBSplit] = []
        for d in range(len(ebs) - 1):
            eb_small, eb_large = ebs[d], ebs[d + 1]
            beta = sum(self._power[n] for n, p in others.items()
                       if p.eb <= eb_small)
            gamma = sum(self._power[n] for n, p in others.items()
                        if p.eb > eb_small)
            out.append(EBSplit(split_eb=eb_small, fork_block_size=eb_large,
                               oversize_block_size=max(ebs) + 1e-6,
                               beta=beta, gamma=gamma))
        return out


@dataclass(frozen=True)
class EBSplit:
    """One way an attacker can split the compliant mining power.

    Attributes
    ----------
    split_eb:
        The largest EB of the small-EB group ("Bob").
    fork_block_size:
        Block size the attacker mines in phase 1: accepted by the
        large-EB group ("Carol"), excessive to the small-EB group.
    oversize_block_size:
        Block size the attacker mines in phase 2: just above every
        compliant EB, accepted only through an open sticky gate.
    beta:
        Mining power of the small-EB group.
    gamma:
        Mining power of the large-EB group.
    """

    split_eb: float
    fork_block_size: float
    oversize_block_size: float
    beta: float
    gamma: float

    def as_ratio(self) -> Tuple[float, float]:
        """Return ``(beta, gamma)`` normalized to sum to one."""
        total = self.beta + self.gamma
        if total <= 0:
            raise ChainError("split has no compliant mining power")
        return self.beta / total, self.gamma / total
