"""BUIP055: advance signaling of future EBs (Section 6.2).

BUIP055 lets miners announce the EB they intend to adopt and the date
it takes effect, hoping miners coordinate before a new EB activates.
The paper's objection: "a miner can change the signal without any
negative consequence, [so] BUIP055 cannot bond the miners with their
promises" -- and it even hands an attacker a tool to influence others.

This module models that argument executably: a signaling round followed
by an activation, where each miner's *realized* EB may differ from its
signal at zero cost, and the post-activation outcome is evaluated with
the Section 5.1 EB choosing game.  The tests show (a) defection from a
signaled consensus is free until activation, and (b) an attacker can
signal a large EB it never intends to adopt and strand believers on
the minority side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import ChainError
from repro.games.eb_choosing import EBChoosingGame, EBProfile


@dataclass(frozen=True)
class FutureEBSignal:
    """One miner's announced intention.

    Attributes
    ----------
    miner:
        Miner name.
    power:
        Mining power share.
    signaled_eb:
        The EB announced for activation.
    activation_height:
        The height at which the new EB is promised to take effect.
    """

    miner: str
    power: float
    signaled_eb: float
    activation_height: int

    def __post_init__(self) -> None:
        if self.power <= 0:
            raise ChainError("power must be positive")
        if self.signaled_eb <= 0:
            raise ChainError("signaled EB must be positive")
        if self.activation_height < 0:
            raise ChainError("activation height cannot be negative")


class BUIP055Round:
    """A signaling round over two candidate EB values."""

    def __init__(self, current_eb: float, proposed_eb: float) -> None:
        if current_eb <= 0 or proposed_eb <= 0:
            raise ChainError("EB values must be positive")
        if current_eb == proposed_eb:
            raise ChainError("proposal must differ from the current EB")
        self.current_eb = current_eb
        self.proposed_eb = proposed_eb
        self._signals: Dict[str, FutureEBSignal] = {}

    def signal(self, signal: FutureEBSignal) -> None:
        """Record (or replace -- signaling is non-binding) a signal."""
        if signal.signaled_eb not in (self.current_eb, self.proposed_eb):
            raise ChainError("signal must pick one of the two EBs")
        self._signals[signal.miner] = signal

    def signaled_support(self) -> float:
        """Power share signaling the proposed EB."""
        return sum(s.power for s in self._signals.values()
                   if s.signaled_eb == self.proposed_eb)

    def activate(self, realized_ebs: Optional[Dict[str, float]] = None
                 ) -> "ActivationOutcome":
        """Evaluate the post-activation EB choosing game.

        ``realized_ebs`` overrides signals per miner -- deviating from
        one's signal carries no protocol consequence, which is exactly
        the paper's point.
        """
        realized_ebs = realized_ebs or {}
        miners: List[str] = []
        powers: List[float] = []
        choices: List[int] = []
        for name, signal in self._signals.items():
            eb = realized_ebs.get(name, signal.signaled_eb)
            if eb not in (self.current_eb, self.proposed_eb):
                raise ChainError("realized EB must pick one of the two")
            miners.append(name)
            powers.append(signal.power)
            choices.append(0 if eb == self.current_eb else 1)
        game = EBChoosingGame(powers,
                              eb_values=(self.current_eb,
                                         self.proposed_eb))
        profile = EBProfile(tuple(choices))
        utilities = game.utilities(profile)
        winner = game.winning_side(profile)
        return ActivationOutcome(
            miners=miners,
            utilities={m: u for m, u in zip(miners, utilities)},
            winning_eb=(None if winner is None else
                        (self.current_eb, self.proposed_eb)[winner]),
            defectors=[m for m in miners
                       if m in realized_ebs
                       and realized_ebs[m]
                       != self._signals[m].signaled_eb])


@dataclass
class ActivationOutcome:
    """Result of an activation.

    Attributes
    ----------
    miners:
        Participating miners.
    utilities:
        Miner -> realized utility (power share of the winning side).
    winning_eb:
        The EB that ends up with the power majority (None on a tie).
    defectors:
        Miners whose realized EB differs from their signal.
    """

    miners: List[str]
    utilities: Dict[str, float]
    winning_eb: Optional[float]
    defectors: List[str]

    def stranded(self) -> List[str]:
        """Miners earning zero: they followed the losing EB."""
        return [m for m in self.miners if self.utilities[m] == 0]
