"""Protocol-level parameters, signaling, and node views.

- :mod:`repro.protocol.params` -- protocol constants and the per-node
  Bitcoin Unlimited parameter triple ``(MG, EB, AD)``;
- :mod:`repro.protocol.signals` -- the network-wide registry of signaled
  parameters, including the EB-split helper from Section 4.1.1;
- :mod:`repro.protocol.node` -- a node view tying a validity rule to a
  block tree with first-received fork choice.
"""

from repro.protocol.params import (
    BUParams,
    DIFFICULTY_PERIOD,
    MESSAGE_LIMIT_MB,
    STICKY_GATE_WINDOW,
)
from repro.protocol.signals import EBSplit, SignalRegistry
from repro.protocol.node import NodeView
from repro.protocol.buip055 import BUIP055Round, FutureEBSignal
from repro.protocol.node_costs import (
    NodeCapacity,
    TransactionMix,
    max_size_for_participation,
    nodes_online,
)

__all__ = [
    "BUParams",
    "DIFFICULTY_PERIOD",
    "MESSAGE_LIMIT_MB",
    "STICKY_GATE_WINDOW",
    "SignalRegistry",
    "EBSplit",
    "NodeView",
    "BUIP055Round",
    "FutureEBSignal",
    "NodeCapacity",
    "TransactionMix",
    "nodes_online",
    "max_size_for_participation",
]
