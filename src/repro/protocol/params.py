"""Protocol constants and the Bitcoin Unlimited parameter triple.

Constants follow the paper's Section 2:

- the network-message size cap of 32 MB, which bounds any block;
- the 144-block sticky-gate window (roughly one day of blocks);
- the 2016-block difficulty adjustment period (used by the Section 6.3
  countermeasure).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ChainError

#: Maximum size of a network message, and therefore of any block (MB).
MESSAGE_LIMIT_MB = 32.0

#: Consecutive non-excessive blocks after which the sticky gate closes.
STICKY_GATE_WINDOW = 144

#: Number of blocks in a difficulty adjustment period.
DIFFICULTY_PERIOD = 2016


@dataclass(frozen=True)
class BUParams:
    """A node's Bitcoin Unlimited parameter triple.

    Attributes
    ----------
    mg:
        Maximum generation size: the largest block the node will mine.
    eb:
        Excessive block size: the largest block the node accepts
        immediately (a block of size exactly ``eb`` is not excessive).
    ad:
        Excessive acceptance depth: chain length that must be built on
        an excessive block (including itself) before it is accepted.
    """

    mg: float
    eb: float
    ad: int

    def __post_init__(self) -> None:
        if self.mg <= 0:
            raise ChainError("MG must be positive")
        if self.eb <= 0:
            raise ChainError("EB must be positive")
        if self.ad < 1:
            raise ChainError("AD must be at least 1")
        if self.mg > MESSAGE_LIMIT_MB:
            raise ChainError(
                f"MG {self.mg} exceeds the network message limit "
                f"{MESSAGE_LIMIT_MB}")

    @staticmethod
    def bitcoin_compatible(ad: int = 6) -> "BUParams":
        """The parameters all BU miners signaled in April 2017, which
        meet Bitcoin's BVC (MG = EB = 1 MB)."""
        return BUParams(mg=1.0, eb=1.0, ad=ad)
