"""Declarative solver fallback chains with per-stage diagnostics.

A chain is an ordered list of named stages.  Each stage attempts the
same mathematical problem with a different (generally slower but more
robust) algorithm; a stage that raises a recoverable
:class:`~repro.errors.SolverError` is recorded in the diagnostics and
the next stage is tried.  Input errors and exhausted budgets are *not*
recoverable -- retrying with another algorithm cannot fix a bad bracket
and must not burn a budget that is already spent -- so those propagate
immediately.

Two problem shapes are covered, mirroring what the paper's analyses
run in bulk:

- **ratio maximization** (:class:`RatioRequest`), default chain
  Dinkelbach -> bisection -> bisection over relative value iteration
  -> bisection over the occupation-measure LP; selecting the PTO
  method (:func:`ratio_chain_for`) prepends a strict PTO stage, so a
  PTO failure (e.g. a zero-denominator policy making the terminated
  system singular) falls back to the full default chain; selecting
  ``--engine approx`` prepends a strict approximate-engine stage for
  models above ``APPROX_MIN_STATES`` states (smaller models keep the
  exact chain unchanged);
- **average-reward maximization** (:class:`AverageRequest`), default
  chain policy iteration -> relative value iteration -> LP.

The later stages trade exactness of the warm-started sparse solves for
independence from them: relative value iteration performs no linear
solves at all, and the LP is an entirely different formulation, so a
numerical failure mode of one stage is unlikely to recur in the next.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import (
    FallbackExhaustedError,
    SolverBudgetExceededError,
    SolverError,
    SolverInputError,
)
from repro.mdp.approx import (
    approx_average_reward,
    approx_average_solver,
    engine_prefers_approx,
)
from repro.mdp.average_reward import relative_value_iteration
from repro.mdp.linear_programming import lp_average_reward
from repro.mdp.model import MDP
from repro.mdp.policy_iteration import AverageRewardSolution, policy_iteration
from repro.mdp.ratio import (
    RatioSolution,
    WarmStart,
    current_ratio_method,
    maximize_ratio,
)
from repro.runtime.budget import BudgetClock
from repro.runtime.telemetry import counter_add, span


@dataclass
class StageDiagnostics:
    """Outcome of one fallback-chain stage attempt.

    Attributes
    ----------
    stage:
        Stage name (e.g. ``"dinkelbach"``).
    status:
        ``"ok"`` or ``"failed"``.
    elapsed:
        Wall-clock seconds spent in the stage.
    error:
        Stringified exception for failed stages, ``None`` otherwise.
    error_type:
        Exception class name for failed stages.
    """

    stage: str
    status: str
    elapsed: float
    error: Optional[str] = None
    error_type: Optional[str] = None


@dataclass
class RatioRequest:
    """One ratio-maximization problem for a fallback chain."""

    mdp: MDP
    num: Mapping[str, float]
    den: Mapping[str, float]
    lo: float
    hi: float
    tol: float = 1e-7
    max_iter: int = 80
    initial_policy: Optional[np.ndarray] = None


@dataclass
class AverageRequest:
    """One average-reward problem for a fallback chain."""

    mdp: MDP
    reward: np.ndarray
    initial_policy: Optional[np.ndarray] = None
    max_iter: int = 1000


def _tick(clock: Optional[BudgetClock]) -> Optional[Callable[[int], None]]:
    if clock is None:
        return None
    return lambda _it: clock.tick()


# -- average-reward solvers usable inside ratio bisection --------------

def _pi_solver(clock: Optional[BudgetClock]):
    def solve(mdp: MDP, reward: np.ndarray,
              warm: Optional[WarmStart]) -> AverageRewardSolution:
        initial = None if warm is None else warm.policy
        return policy_iteration(mdp, reward, initial_policy=initial,
                                on_iter=_tick(clock))
    return solve


def _rvi_solver(clock: Optional[BudgetClock]):
    def solve(mdp: MDP, reward: np.ndarray,
              warm: Optional[WarmStart]) -> AverageRewardSolution:
        # Warm-start from the previous iterate's bias vector; tick the
        # budget every 100 sweeps to keep the hook overhead negligible.
        on_iter = None
        if clock is not None:
            def on_iter(it: int) -> None:
                if it % 100 == 0:
                    clock.tick(100)
        v0 = None if warm is None else warm.bias
        return relative_value_iteration(mdp, reward, epsilon=1e-10,
                                        on_iter=on_iter, v0=v0)
    return solve


def _lp_solver(clock: Optional[BudgetClock]):
    def solve(mdp: MDP, reward: np.ndarray,
              _warm: Optional[WarmStart]) -> AverageRewardSolution:
        if clock is not None:
            clock.tick()
        gain, policy = lp_average_reward(mdp, reward)
        return AverageRewardSolution(gain=gain,
                                     bias=np.zeros(mdp.n_states),
                                     policy=policy, iterations=1)
    return solve


# -- ratio stages ------------------------------------------------------

def _ratio_dinkelbach(request: RatioRequest,
                      clock: Optional[BudgetClock]) -> RatioSolution:
    return maximize_ratio(request.mdp, request.num, request.den,
                          lo=request.lo, hi=request.hi, tol=request.tol,
                          max_iter=request.max_iter, method="dinkelbach",
                          initial_policy=request.initial_policy,
                          strict=True, solver=_pi_solver(clock))


def _ratio_pto(request: RatioRequest,
               clock: Optional[BudgetClock]) -> RatioSolution:
    on_solve = None
    if clock is not None:
        def on_solve(_n: int) -> None:
            clock.tick()
    return maximize_ratio(request.mdp, request.num, request.den,
                          lo=request.lo, hi=request.hi, tol=request.tol,
                          max_iter=request.max_iter, method="pto",
                          initial_policy=request.initial_policy,
                          strict=True, on_solve=on_solve)


def _ratio_approx(request: RatioRequest,
                  clock: Optional[BudgetClock]) -> RatioSolution:
    # Strict, like the other leading stages: an approx-engine failure
    # (non-convergence within the sweep budget) falls through to the
    # exact chain instead of silently bisecting inside this stage.
    on_iter = None
    if clock is not None:
        def on_iter(it: int) -> None:
            if it % 100 == 0:
                clock.tick(100)
    return maximize_ratio(request.mdp, request.num, request.den,
                          lo=request.lo, hi=request.hi, tol=request.tol,
                          max_iter=request.max_iter, method="dinkelbach",
                          initial_policy=request.initial_policy,
                          strict=True,
                          solver=approx_average_solver(on_iter=on_iter))


def _ratio_bisection(solver_factory):
    def stage(request: RatioRequest,
              clock: Optional[BudgetClock]) -> RatioSolution:
        return maximize_ratio(request.mdp, request.num, request.den,
                              lo=request.lo, hi=request.hi, tol=request.tol,
                              max_iter=request.max_iter, method="bisection",
                              initial_policy=request.initial_policy,
                              solver=solver_factory(clock))
    return stage


#: The default ratio chain, ordered fastest-first.
RATIO_CHAIN: Tuple[Tuple[str, Callable], ...] = (
    ("dinkelbach", _ratio_dinkelbach),
    ("bisection", _ratio_bisection(_pi_solver)),
    ("value-iteration", _ratio_bisection(_rvi_solver)),
    ("lp", _ratio_bisection(_lp_solver)),
)


def ratio_chain_for(method: Optional[str] = None,
                    mdp: Optional[MDP] = None
                    ) -> Tuple[Tuple[str, Callable], ...]:
    """The ratio fallback chain for a selected method (``None``
    resolves via :func:`repro.mdp.ratio.current_ratio_method`).

    ``"pto"`` prepends a strict PTO stage to the full default chain;
    ``"bisection"`` skips the Dinkelbach stage; ``"dinkelbach"`` is the
    default chain unchanged.  When ``mdp`` is given and the selected
    solve engine routes it to the approximate path
    (:func:`repro.mdp.approx.engine_prefers_approx` -- ``--engine
    approx`` and at least ``APPROX_MIN_STATES`` states), a strict
    approx stage is prepended, so large models try the prioritized
    asynchronous engine first and *fall back to the exact solvers*
    on any failure; small models never see the approx stage.
    """
    if method is None:
        method = current_ratio_method()
    if method == "pto":
        chain: Tuple[Tuple[str, Callable], ...] = \
            (("pto", _ratio_pto),) + RATIO_CHAIN
    elif method == "bisection":
        chain = RATIO_CHAIN[1:]
    elif method == "dinkelbach":
        chain = RATIO_CHAIN
    else:
        raise SolverInputError(
            f"unknown ratio method {method!r} for fallback chain "
            f"selection")
    if mdp is not None and engine_prefers_approx(mdp):
        chain = (("approx", _ratio_approx),) + chain
    return chain


# -- average-reward stages ---------------------------------------------

def _average_approx(request: AverageRequest,
                    clock: Optional[BudgetClock]
                    ) -> AverageRewardSolution:
    on_iter = None
    if clock is not None:
        def on_iter(it: int) -> None:
            if it % 100 == 0:
                clock.tick(100)
    return approx_average_reward(request.mdp, request.reward,
                                 on_iter=on_iter)


def _average_pi(request: AverageRequest,
                clock: Optional[BudgetClock]) -> AverageRewardSolution:
    return policy_iteration(request.mdp, request.reward,
                            initial_policy=request.initial_policy,
                            max_iter=request.max_iter, on_iter=_tick(clock))


def _average_rvi(request: AverageRequest,
                 clock: Optional[BudgetClock]) -> AverageRewardSolution:
    return _rvi_solver(clock)(request.mdp, request.reward, None)


def _average_lp(request: AverageRequest,
                clock: Optional[BudgetClock]) -> AverageRewardSolution:
    return _lp_solver(clock)(request.mdp, request.reward, None)


#: The default average-reward chain.
AVERAGE_CHAIN: Tuple[Tuple[str, Callable], ...] = (
    ("policy-iteration", _average_pi),
    ("value-iteration", _average_rvi),
    ("lp", _average_lp),
)


def average_chain_for(mdp: Optional[MDP] = None
                      ) -> Tuple[Tuple[str, Callable], ...]:
    """The average-reward fallback chain, with a strict approx stage
    prepended when the selected engine routes ``mdp`` to the
    approximate path (same rule as :func:`ratio_chain_for`)."""
    if mdp is not None and engine_prefers_approx(mdp):
        return (("approx", _average_approx),) + AVERAGE_CHAIN
    return AVERAGE_CHAIN


@dataclass
class ChainResult:
    """A successful chain run: the stage that succeeded, its result and
    the diagnostics of every attempted stage."""

    stage: str
    result: object
    diagnostics: List[StageDiagnostics] = field(default_factory=list)


def run_chain(chain: Sequence[Tuple[str, Callable]], request,
              clock: Optional[BudgetClock] = None) -> ChainResult:
    """Run ``request`` through ``chain`` until a stage succeeds.

    Raises
    ------
    SolverInputError
        Immediately, from any stage -- malformed inputs cannot be
        repaired by trying a different algorithm.
    SolverBudgetExceededError
        Immediately -- the budget is shared across stages and an
        exhausted budget must abort the whole chain.
    FallbackExhaustedError
        When every stage failed; carries the per-stage diagnostics.
    """
    if not chain:
        raise SolverInputError("fallback chain has no stages")
    diagnostics: List[StageDiagnostics] = []
    for name, stage in chain:
        started = time.monotonic()
        try:
            with span(f"fallback/{name}"):
                result = stage(request, clock)
        except (SolverInputError, SolverBudgetExceededError) as exc:
            counter_add(f"fallback/{name}/failed")
            diagnostics.append(StageDiagnostics(
                stage=name, status="failed",
                elapsed=time.monotonic() - started,
                error=str(exc), error_type=type(exc).__name__))
            # Non-recoverable aborts still carry the per-stage record
            # (earlier failed stages plus the one cancelled mid-flight)
            # so the supervisor can log *which* chain step the budget
            # or deadline cut off.
            exc.diagnostics = diagnostics
            raise
        except SolverError as exc:
            counter_add(f"fallback/{name}/failed")
            diagnostics.append(StageDiagnostics(
                stage=name, status="failed",
                elapsed=time.monotonic() - started,
                error=str(exc), error_type=type(exc).__name__))
            continue
        counter_add(f"fallback/{name}/ok")
        diagnostics.append(StageDiagnostics(
            stage=name, status="ok",
            elapsed=time.monotonic() - started))
        return ChainResult(stage=name, result=result,
                           diagnostics=diagnostics)
    raise FallbackExhaustedError(
        f"all {len(diagnostics)} fallback stages failed: "
        + "; ".join(f"{d.stage}: {d.error}" for d in diagnostics),
        diagnostics=diagnostics)
