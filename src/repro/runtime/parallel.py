"""Process-parallel execution of independent sweep cells.

A sweep (a paper table, a sensitivity grid, a parameter scan) is a set
of independent cells; nothing couples them except the shared build
cache, which each worker process re-warms on its own.  This module
describes one cell as a picklable :class:`SolveTask`, executes task
lists either serially or on a :class:`~concurrent.futures.\
ProcessPoolExecutor`, and keeps the
:class:`~repro.runtime.sweeprunner.SweepRunner` checkpoint semantics:
cells already present in the runner's journal are restored without
solving, fresh results are recorded in the parent process as they
complete (so a killed parallel run resumes exactly like a serial one),
and the returned list is ordered by input position regardless of
completion order.

Parallel and serial execution produce bit-identical results: a task's
payload is a plain float or JSON-style dict computed by the same
deterministic solver code path, and pickling across the process
boundary is exact for both.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.config import AttackConfig
from repro.core.incentives import IncentiveModel
from repro.errors import ReproError, SchedulerSpecError
from repro.runtime import telemetry

#: Task kinds understood by :func:`execute_task`.
TASK_KINDS = ("relative", "absolute", "orphans", "selfish_ds", "analyze",
              "warm", "validate_seed", "qa_cell")


@dataclass(frozen=True)
class SolveTask:
    """One picklable sweep cell.

    Attributes
    ----------
    kind:
        What to solve: ``"relative"`` / ``"absolute"`` / ``"orphans"``
        (the three incentive-model utilities, payload = float),
        ``"selfish_ds"`` (the Bitcoin selfish-mining baseline, payload
        = float), ``"analyze"`` (full analysis, payload = the JSON
        dict of :func:`repro.analysis.store.analysis_to_payload`), or
        ``"warm"`` (same solve and payload as ``"analyze"``, but
        :func:`decode_payload` leaves the payload as the raw dict --
        the atlas-precompute kind, which stores payloads verbatim and
        must not pay the MDP-rebuilding cost of full analysis
        reconstruction), or ``"validate_seed"`` (one seed of a
        multi-seed Monte-Carlo validation, payload = the sample dict
        of :func:`repro.analysis.validation.run_validation_seed`).
    key:
        Journal identity of the cell (stable across runs).
    config:
        Attack configuration (all kinds except ``"selfish_ds"``).
    model:
        Incentive model (``"analyze"`` only).
    params:
        Extra keyword arguments (``"selfish_ds"``: ``alpha``, ``tie``,
        ``max_len``; ``"validate_seed"``: ``seed``, ``steps``,
        ``trajectories``, ``engine``, ``policy``; ``"analyze"``:
        optional ``wall_clock`` / ``max_ticks`` running the solve
        under a supervised budget -- how the serving layer propagates
        request deadlines into worker processes).
    backend:
        Compute backend (:mod:`repro.mdp.backends`) the solving
        process should select before touching a kernel, or ``None``
        to leave the worker's own resolution (environment, then the
        numpy default) alone.  Not part of the journal ``key``:
        backends are bit-identical, so a cell solved under one
        restores under any other.
    """

    kind: str
    key: Tuple
    config: Optional[AttackConfig] = None
    model: Optional[IncentiveModel] = None
    params: Tuple[Tuple[str, object], ...] = field(default=())
    backend: Optional[str] = None


def stamp_backend(tasks: Sequence[SolveTask]) -> List[SolveTask]:
    """Return ``tasks`` with the parent's active compute backend
    stamped onto each (where not already set).

    The default numpy backend is not stamped: workers resolve to it on
    their own, and leaving the field ``None`` keeps task pickles
    byte-stable for the common case.
    """
    from repro.mdp import backends
    name = backends.current_backend_name()
    if name == "numpy":
        return list(tasks)
    return [task if task.backend is not None
            else replace(task, backend=name) for task in tasks]


def execute_task(task: SolveTask):
    """Solve one task and return its JSON-compatible payload.

    Runs in a worker process under parallel execution; must therefore
    touch only picklable inputs and return picklable, JSON-encodable
    output (what the journal would store).
    """
    if task.backend is not None:
        # Re-selecting the already-requested backend is a no-op, so
        # per-task stamping costs nothing after the first task.
        from repro.mdp.backends import set_backend
        set_backend(task.backend)
    if task.kind == "relative":
        from repro.core.solve import solve_relative_revenue
        return solve_relative_revenue(task.config).utility
    if task.kind == "absolute":
        from repro.core.solve import solve_absolute_reward
        return solve_absolute_reward(task.config).utility
    if task.kind == "orphans":
        from repro.core.solve import solve_orphan_rate
        return solve_orphan_rate(task.config).utility
    if task.kind == "selfish_ds":
        from repro.baselines.selfish_ds import (
            solve_selfish_mining_double_spend,
        )
        return solve_selfish_mining_double_spend(
            **dict(task.params)).absolute_reward
    if task.kind in ("analyze", "warm"):
        from repro.analysis.store import analysis_to_payload
        from repro.core.solve import analyze
        params = dict(task.params)
        wall_clock = params.get("wall_clock")
        supervisor = None
        if wall_clock is not None:
            # Deadline propagation across the task boundary: the
            # serving layer ships the *remaining* request time as a
            # wall-clock budget, so a solve running in a worker is cut
            # off by the same typed error path as an in-process one
            # (supervised fallback chain included).
            from repro.runtime.budget import Budget
            from repro.runtime.supervisor import SolverSupervisor
            supervisor = SolverSupervisor(
                budget=Budget(wall_clock=wall_clock,
                              max_ticks=params.get("max_ticks")))
        return analysis_to_payload(
            analyze(task.config, task.model, supervisor=supervisor))
    if task.kind == "validate_seed":
        from repro.analysis.validation import run_validation_seed
        return run_validation_seed(task.config, task.model,
                                   **dict(task.params))
    if task.kind == "qa_cell":
        from repro.qa.conformance import run_cell_payload
        return run_cell_payload(**dict(task.params))
    raise ReproError(f"unknown task kind {task.kind!r}")


def decode_payload(kind: str, payload):
    """Convert a journal/worker payload back to the caller-facing
    value (identity for float kinds and for ``"warm"`` -- whose
    consumers store the raw payload -- analysis reconstruction for
    ``"analyze"``)."""
    if kind == "analyze":
        from repro.analysis.store import analysis_from_payload
        return analysis_from_payload(payload)
    return payload


def execute_task_traced(task: SolveTask) -> Tuple[object, Dict]:
    """Solve one task under a fresh worker-local tracer and return
    ``(payload, telemetry_snapshot)``.

    Used by :func:`run_cells` when the parent has tracing enabled.
    The worker swaps in its own :class:`~repro.runtime.telemetry.\
Tracer` for the duration (a fork-started worker inherits the parent's
    registry, which must not be double-counted), times the cell, and
    ships counters/gauges/events back for the parent to merge.  The
    snapshot carries the cell wall time and worker pid as a
    ``worker-cell`` event so merged traces expose per-worker load.
    """
    tracer = telemetry.Tracer()
    started = time.perf_counter()
    with telemetry.use_tracer(tracer):
        payload = execute_task(task)
    tracer.events.append(
        {"type": "worker-cell", "key": list(task.key),
         "pid": os.getpid(),
         "wall_s": time.perf_counter() - started})
    return payload, tracer.snapshot()


ProgressFn = Optional[Callable[[SolveTask, object], None]]


class Scheduler:
    """Strategy for executing a batch of independent cells.

    :func:`run_cells` historically hard-coded one strategy (an
    in-process loop below a worker threshold, a
    :class:`~concurrent.futures.ProcessPoolExecutor` above it).  A
    scheduler makes that choice pluggable without touching the
    checkpoint semantics, which stay in :func:`run_cells`: the
    scheduler only answers "how many execution slots?" and "what
    executor runs them?".

    Implementations must be constructible in the parent process; their
    executors receive already backend-stamped tasks (see
    :func:`stamp_backend`), so backend selection survives the process
    boundary regardless of start method.
    """

    name = "serial"

    def slots(self, workers: int) -> int:
        """Number of concurrent execution slots given the call site's
        ``workers`` hint (1 means the serial in-process path)."""
        return 1

    def executor(self, slots: int):
        """A started ``concurrent.futures`` executor with ``slots``
        workers (only called when ``slots > 1``)."""
        raise ReproError(f"scheduler {self.name!r} has no executor")


class SerialScheduler(Scheduler):
    """Always solve in-process, whatever ``workers`` says.  Useful for
    debugging (breakpoints, profilers) and on platforms where process
    pools misbehave."""

    name = "serial"


class ProcessScheduler(Scheduler):
    """The default: a local
    :class:`~concurrent.futures.ProcessPoolExecutor`.

    ``workers=None`` defers to the call site's ``workers`` argument,
    so ``--scheduler process`` changes nothing for existing sweeps;
    ``ProcessScheduler(8)`` (or ``--scheduler process:8``) pins the
    pool size regardless of what callers pass.
    """

    name = "process"

    def __init__(self, workers: Optional[int] = None) -> None:
        if workers is not None and workers < 1:
            raise SchedulerSpecError(
                f"scheduler workers must be >= 1, got {workers!r}")
        self.workers = workers

    def slots(self, workers: int) -> int:
        return self.workers if self.workers is not None else workers

    def executor(self, slots: int):
        return ProcessPoolExecutor(max_workers=slots)


class SpecScheduler(ProcessScheduler):
    """Scheduler described by a JSON spec file -- the seam where a
    multi-node dispatch layer will plug in.

    The spec is ``{"nodes": [{"host": ..., "slots": ...}, ...]}``.
    Nodes with host ``"local"``/``"localhost"`` contribute their slots
    to one local process pool; any other host is rejected with a typed
    error today (remote dispatch is roadmap work), so a spec written
    for a future cluster fails loudly instead of silently solving
    everything on one machine.
    """

    name = "spec"

    def __init__(self, spec: Dict) -> None:
        nodes = spec.get("nodes") if isinstance(spec, dict) else None
        if not nodes:
            # Parse-time rejection: an empty (or missing) node list
            # used to flow through as slots=0 and blow up only deep
            # inside run_cells when the 0-worker pool was built.
            raise SchedulerSpecError("scheduler spec has no nodes")
        slots = 0
        for node in nodes:
            if not isinstance(node, dict):
                raise SchedulerSpecError(
                    f"scheduler spec node must be an object, got "
                    f"{node!r}")
            host = node.get("host", "local")
            if host not in ("local", "localhost"):
                raise ReproError(
                    f"scheduler spec names remote host {host!r}; "
                    "remote dispatch is not implemented yet")
            try:
                n = int(node.get("slots", 1))
            except (TypeError, ValueError):
                raise SchedulerSpecError(
                    "scheduler spec node has invalid slots "
                    f"{node.get('slots')!r}") from None
            if n < 1:
                raise SchedulerSpecError(
                    f"scheduler spec node has invalid slots {n!r}")
            slots += n
        super().__init__(slots)

    @classmethod
    def from_file(cls, path: str) -> "SpecScheduler":
        try:
            with open(path, "r", encoding="utf-8") as fh:
                spec = json.load(fh)
        except (OSError, ValueError) as exc:
            raise ReproError(
                f"cannot read scheduler spec {path!r}: {exc}") from exc
        return cls(spec)


def make_scheduler(spec: str) -> Scheduler:
    """Build a scheduler from a CLI-style spec string: ``"serial"``,
    ``"process"``, ``"process:<N>"``, or ``"spec:<path.json>"``."""
    if spec == "serial":
        return SerialScheduler()
    if spec == "process":
        return ProcessScheduler()
    if spec.startswith("process:"):
        count = spec.split(":", 1)[1]
        try:
            workers = int(count)
        except ValueError:
            raise SchedulerSpecError(
                f"invalid process scheduler worker count "
                f"{count!r}") from None
        # ProcessScheduler rejects workers < 1 with the same typed
        # error, so "process:0" fails here at parse time instead of
        # propagating a bare ValueError out of ProcessPoolExecutor
        # deep inside run_cells.
        return ProcessScheduler(workers)
    if spec.startswith("spec:"):
        return SpecScheduler.from_file(spec.split(":", 1)[1])
    raise ReproError(
        f"unknown scheduler spec {spec!r}; expected 'serial', "
        "'process', 'process:<N>' or 'spec:<path.json>'")


#: Process-global default used by :func:`run_cells` when no explicit
#: scheduler is passed (how the CLI's ``--scheduler`` flag reaches
#: sweeps, the qa matrix and the serve worker pool).
_DEFAULT_SCHEDULER: Optional[Scheduler] = None


def set_default_scheduler(scheduler: Optional[Scheduler]) -> None:
    """Install (or with ``None`` clear) the process-global scheduler."""
    global _DEFAULT_SCHEDULER
    _DEFAULT_SCHEDULER = scheduler


def default_scheduler() -> Optional[Scheduler]:
    """The installed process-global scheduler, if any."""
    return _DEFAULT_SCHEDULER


def run_cells(tasks: Sequence[SolveTask], runner=None, workers: int = 1,
              progress: ProgressFn = None,
              scheduler: Optional[Scheduler] = None) -> List:
    """Execute ``tasks`` and return their decoded values in input
    order.

    Parameters
    ----------
    tasks:
        The cells to solve.
    runner:
        Optional :class:`~repro.runtime.sweeprunner.SweepRunner`.
        Journaled cells are restored without solving; fresh results
        are recorded (and ``fault_hook`` fired) in the parent process.
    workers:
        ``1`` solves in-process; ``> 1`` fans the non-restored cells
        out to that many worker processes.  Results are identical
        either way, only wall time and journal record *order* differ
        (parallel records in completion order).
    progress:
        Optional callback invoked with ``(task, value)`` as each cell
        completes (input order when serial, completion order when
        parallel).
    scheduler:
        Execution strategy.  ``None`` uses the process-global default
        (:func:`set_default_scheduler`) when one is installed, else
        the historical behaviour (a local process pool sized by
        ``workers``).  Schedulers change *where* cells run, never
        their results or the journal semantics.

    With tracing enabled (:mod:`repro.runtime.telemetry`), worker
    cells run under worker-local tracers whose snapshots ship back
    with each payload and merge into the parent's tracer; merged
    counters are independent of ``workers``.  A worker exception does
    not abandon finished work: already-completed futures are drained
    and recorded (journal included), in-flight futures are cancelled,
    and the exception is re-raised with the failing cell's key on its
    ``task_key`` attribute.
    """
    if workers < 1:
        raise ReproError(f"workers must be >= 1, got {workers!r}")
    if scheduler is None:
        scheduler = _DEFAULT_SCHEDULER
    if scheduler is None:
        scheduler = ProcessScheduler()
    slots = scheduler.slots(workers)
    results: List = [None] * len(tasks)
    pending: List[Tuple[int, SolveTask]] = []
    for i, task in enumerate(tasks):
        journal = getattr(runner, "journal", None)
        if journal is not None and task.key in journal:
            runner.stats.restored += 1
            telemetry.counter_add("journal/restored")
            results[i] = decode_payload(task.kind, journal.get(task.key))
            if progress is not None:
                progress(task, results[i])
        else:
            pending.append((i, task))

    if slots == 1 or len(pending) <= 1:
        # Serial path: reuse SweepRunner.cell so checkpoint semantics
        # (fault_hook before each fresh solve, record after) match the
        # historical serial sweeps exactly.
        for i, task in pending:
            if runner is not None:
                payload = runner.cell(
                    list(task.key),
                    lambda task=task: execute_task(task))
            else:
                payload = execute_task(task)
            results[i] = decode_payload(task.kind, payload)
            if progress is not None:
                progress(task, results[i])
        return results

    def record(task: SolveTask, payload) -> None:
        if runner is None:
            return
        # In parallel mode solves happen in workers, so the
        # fault_hook fires in the parent just before the journal
        # record -- the closest crash point the parent controls.
        if runner.fault_hook is not None:
            runner.fault_hook(runner.stats.solved)
        if runner.journal is not None:
            runner.journal.record(list(task.key), payload)
        runner.stats.solved += 1
        telemetry.counter_add("journal/solved")

    traced = telemetry.tracing_enabled()
    worker_fn = execute_task_traced if traced else execute_task

    def unpack(payload):
        if not traced:
            return payload
        payload, snapshot = payload
        telemetry.current_tracer().merge_snapshot(snapshot)
        return payload

    # Stamp the parent's backend onto the outgoing tasks so spawned
    # workers (which inherit no module globals) select it too.
    pending = [(i, task) for (i, _), task in
               zip(pending, stamp_backend([t for _, t in pending]))]
    with scheduler.executor(slots) as pool:
        futures: Dict = {pool.submit(worker_fn, task): (i, task)
                         for i, task in pending}
        handled = set()
        for future in as_completed(futures):
            i, task = futures[future]
            handled.add(future)
            try:
                payload = unpack(future.result())
            except Exception as exc:
                _salvage(futures, handled=handled, record=record,
                         results=results, unpack=unpack)
                # Re-raise the worker's own exception, with the
                # failing cell's identity attached for diagnostics.
                exc.task_key = task.key
                raise
            record(task, payload)
            results[i] = decode_payload(task.kind, payload)
            if progress is not None:
                progress(task, results[i])
    return results


def _salvage(futures: Dict, handled, record, results: List,
             unpack) -> None:
    """Clean up after a worker exception mid-``as_completed``: cancel
    every not-yet-started future, then drain the ones that already
    completed successfully (and were not yet consumed by the main
    loop) and record their payloads (journal included) so a resume
    does not re-solve finished work."""
    for future in futures:
        if future not in handled:
            future.cancel()
    for future, (i, task) in futures.items():
        if future in handled or not future.done() or future.cancelled():
            continue
        try:
            payload = unpack(future.result())
        except Exception:
            continue  # a second failure; the first is being raised
        try:
            record(task, payload)
        except Exception:
            continue  # e.g. an injected fault hook; keep draining
        results[i] = decode_payload(task.kind, payload)
