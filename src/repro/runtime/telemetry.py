"""Structured tracing and metrics for solvers, sweeps and simulation.

The pipeline's hot layers (Dinkelbach/bisection ratio solves, policy
iteration, the attack-MDP build cache, :class:`PolicyEvalCache`,
journaled sweeps, parallel workers, Monte-Carlo rollouts) each expose
behavior that a bare wall-clock number cannot explain: how many
transformed solves a ratio took, whether a sweep cell hit the build
cache or re-enumerated 30k states, how restored and fresh cells split
on a resume.  This module gives them one zero-dependency instrument:

- **spans** -- nestable timed regions (``with span("solve/relative")``)
  whose names form ``/``-separated paths (see
  ``docs/observability.md`` for the naming conventions);
- **counters** -- monotonic event counts (``counter_add(name, n)``),
  the worker-merge-safe signal: counters from parallel workers are
  summed into the parent, so merged totals are independent of worker
  count and scheduling;
- **gauges** -- last-write-wins observations (final residuals, sampled
  throughput); informative but *not* guaranteed worker-count
  independent under parallel merge.

Tracing is off by default and every instrumentation hook is a no-op
fast path (one module-global ``None`` check) so instrumented code pays
nothing measurable when disabled.  Enabling installs a
:class:`Tracer` -- the in-memory registry -- which can be serialized
to a JSON-lines event file (written atomically via
:func:`repro.runtime.journal.atomic_write_text`) and summarized back
with :func:`load_trace` / :func:`summarize_trace` (the ``repro trace``
subcommand).

Worker processes do not share the parent's tracer.  Instead,
:mod:`repro.runtime.parallel` runs each task under a fresh local
tracer (:func:`use_tracer`) and ships the resulting
:meth:`Tracer.snapshot` back with the payload; the parent merges it
with :meth:`Tracer.merge_snapshot`.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional, Union

from repro.errors import ReproError
from repro.runtime.journal import PathLike, atomic_write_text

#: Format version of trace files.
TRACE_SCHEMA = 1

Number = Union[int, float]

#: The active tracer, or ``None`` when tracing is disabled.  Kept as a
#: bare module global so the disabled fast path is a single load+test.
_TRACER: Optional["Tracer"] = None


class _NullSpan:
    """Shared do-nothing context manager returned while disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """One live timed region of a :class:`Tracer`."""

    __slots__ = ("_tracer", "name", "path", "_start")

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self._tracer = tracer
        self.name = name
        self.path = name
        self._start = 0.0

    def __enter__(self) -> "_Span":
        stack = self._tracer._stack
        if stack:
            self.path = f"{stack[-1].path}/{self.name}"
        stack.append(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *_exc) -> bool:
        elapsed = time.perf_counter() - self._start
        stack = self._tracer._stack
        if stack and stack[-1] is self:
            stack.pop()
        self._tracer.events.append(
            {"type": "span", "path": self.path, "name": self.name,
             "dur_s": elapsed})
        return False


class Tracer:
    """In-memory registry of spans, counters and gauges.

    Attributes
    ----------
    counters:
        Name -> monotonic total.  The only channel with worker-merge
        guarantees (merge sums; addition is commutative, so merged
        totals are independent of worker count and completion order).
    gauges:
        Name -> last observed value.
    events:
        Chronological list of JSON-compatible event dicts (span
        completions, worker-cell records).
    """

    def __init__(self) -> None:
        self.counters: Dict[str, Number] = {}
        self.gauges: Dict[str, Number] = {}
        self.events: List[Dict] = []
        self._stack: List[_Span] = []
        self._created = time.time()

    # -- recording ----------------------------------------------------

    def add(self, name: str, value: Number = 1) -> None:
        """Increment counter ``name`` by ``value``."""
        self.counters[name] = self.counters.get(name, 0) + value

    def set(self, name: str, value: Number) -> None:
        """Record gauge ``name`` (last write wins)."""
        self.gauges[name] = value

    def span(self, name: str) -> _Span:
        """A context manager timing one nested region."""
        return _Span(self, name)

    # -- snapshots / merging ------------------------------------------

    def snapshot(self) -> Dict:
        """JSON-compatible copy of this tracer's state, suitable for
        shipping across a process boundary."""
        return {"counters": dict(self.counters),
                "gauges": dict(self.gauges),
                "events": list(self.events)}

    def merge_snapshot(self, snapshot: Dict) -> None:
        """Fold a worker's :meth:`snapshot` into this tracer.

        Counters are summed (worker-count independent); gauges are
        overwritten (last merge wins); events are appended.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.add(name, value)
        for name, value in snapshot.get("gauges", {}).items():
            self.set(name, value)
        self.events.extend(snapshot.get("events", ()))

    # -- serialization ------------------------------------------------

    def write(self, path: PathLike) -> None:
        """Serialize the registry to a JSON-lines trace file.

        Layout: one header record, one record per event, then one
        ``counters`` and one ``gauges`` record.  Written atomically so
        a crash mid-write never leaves a truncated trace.
        """
        lines = [json.dumps({"schema": TRACE_SCHEMA, "kind": "trace",
                             "created": self._created})]
        lines.extend(json.dumps(event) for event in self.events)
        lines.append(json.dumps({"type": "counters",
                                 "values": self.counters}))
        lines.append(json.dumps({"type": "gauges",
                                 "values": self.gauges}))
        atomic_write_text(path, "\n".join(lines) + "\n")


# -- module-level fast-path API ---------------------------------------

def current_tracer() -> Optional[Tracer]:
    """The active tracer, or ``None`` when tracing is disabled."""
    return _TRACER


def tracing_enabled() -> bool:
    """Whether a tracer is currently installed."""
    return _TRACER is not None


def enable_tracing(tracer: Optional[Tracer] = None) -> Tracer:
    """Install (and return) the active tracer."""
    global _TRACER
    _TRACER = tracer if tracer is not None else Tracer()
    return _TRACER


def disable_tracing() -> None:
    """Uninstall the active tracer; hooks revert to no-ops."""
    global _TRACER
    _TRACER = None


class use_tracer:
    """Context manager installing ``tracer`` for the duration and
    restoring the previous one after -- how parallel workers isolate
    their local registries from a (fork-inherited) parent tracer."""

    def __init__(self, tracer: Optional[Tracer]) -> None:
        self._tracer = tracer
        self._previous: Optional[Tracer] = None

    def __enter__(self) -> Optional[Tracer]:
        global _TRACER
        self._previous = _TRACER
        _TRACER = self._tracer
        return self._tracer

    def __exit__(self, *_exc) -> bool:
        global _TRACER
        _TRACER = self._previous
        return False


def span(name: str):
    """A timed region; free when tracing is disabled."""
    tracer = _TRACER
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name)


def counter_add(name: str, value: Number = 1) -> None:
    """Increment a monotonic counter; free when tracing is disabled."""
    tracer = _TRACER
    if tracer is not None:
        tracer.add(name, value)


def gauge_set(name: str, value: Number) -> None:
    """Record a gauge observation; free when tracing is disabled."""
    tracer = _TRACER
    if tracer is not None:
        tracer.set(name, value)


def event(type_: str, **fields) -> None:
    """Append one structured event record to the active trace; free
    when tracing is disabled.

    Events land in the trace's chronological event stream next to span
    completions and worker-cell records.  Field values must be
    JSON-compatible.  The serving layer uses this for per-request
    records (``serve-request`` events carrying source, degradation and
    latency), which :func:`load_trace` returns verbatim for offline
    latency analysis.
    """
    tracer = _TRACER
    if tracer is not None:
        tracer.events.append({"type": type_, **fields})


# -- trace files: loading and summarizing ------------------------------

def load_trace(path: PathLike) -> Dict:
    """Parse a trace file into ``{"events", "counters", "gauges"}``.

    Raises
    ------
    ReproError
        On a missing header, wrong schema, or corrupt records.
    """
    try:
        with open(path) as handle:
            lines = [line for line in handle.read().split("\n") if line]
    except OSError as exc:
        raise ReproError(f"cannot read trace file {path}: {exc}") from exc
    if not lines:
        raise ReproError(f"{path} is empty")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise ReproError(f"{path} has a corrupt header") from exc
    if not isinstance(header, dict) or header.get("kind") != "trace":
        raise ReproError(f"{path} is not a trace file")
    if header.get("schema") != TRACE_SCHEMA:
        raise ReproError(
            f"{path} uses unsupported trace schema "
            f"{header.get('schema')!r} (expected {TRACE_SCHEMA})")
    events: List[Dict] = []
    counters: Dict[str, Number] = {}
    gauges: Dict[str, Number] = {}
    for lineno, line in enumerate(lines[1:], start=2):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ReproError(f"{path}:{lineno} is corrupt") from exc
        kind = record.get("type")
        if kind == "counters":
            for name, value in record.get("values", {}).items():
                counters[name] = counters.get(name, 0) + value
        elif kind == "gauges":
            gauges.update(record.get("values", {}))
        else:
            events.append(record)
    return {"header": header, "events": events, "counters": counters,
            "gauges": gauges}


def aggregate_spans(events: List[Dict]) -> Dict[str, Dict[str, float]]:
    """Per-path span statistics: count, total / mean / max seconds."""
    stats: Dict[str, Dict[str, float]] = {}
    for event in events:
        if event.get("type") != "span":
            continue
        path = event.get("path", event.get("name", "?"))
        dur = float(event.get("dur_s", 0.0))
        agg = stats.setdefault(path, {"count": 0, "total_s": 0.0,
                                      "max_s": 0.0})
        agg["count"] += 1
        agg["total_s"] += dur
        agg["max_s"] = max(agg["max_s"], dur)
    for agg in stats.values():
        agg["mean_s"] = agg["total_s"] / agg["count"]
    return stats


def summarize_trace(trace: Dict) -> str:
    """Human-readable per-phase / per-counter summary of a loaded
    trace (the ``repro trace`` subcommand's output)."""
    from repro.analysis.formatting import format_table
    sections: List[str] = []
    spans = aggregate_spans(trace["events"])
    if spans:
        rows = [[path, agg["count"], agg["total_s"], agg["mean_s"],
                 agg["max_s"]]
                for path, agg in sorted(spans.items(),
                                        key=lambda kv: -kv[1]["total_s"])]
        sections.append(format_table(
            ["span", "count", "total s", "mean s", "max s"], rows,
            title="spans", precision=6))
    if trace["counters"]:
        rows = [[name, value]
                for name, value in sorted(trace["counters"].items())]
        sections.append(format_table(["counter", "total"], rows,
                                     title="counters"))
    wins = {name[len("solver/ratio/"):-len("_wins")]: value
            for name, value in trace["counters"].items()
            if name.startswith("solver/ratio/")
            and name.endswith("_wins") and "/" not in
            name[len("solver/ratio/"):-len("_wins")]}
    if wins:
        total = sum(wins.values())
        rows = [[method, value,
                 100.0 * value / total if total else 0.0]
                for method, value in sorted(wins.items(),
                                            key=lambda kv: -kv[1])]
        sections.append(format_table(
            ["method", "solves won", "share %"], rows,
            title="ratio method wins", precision=1))
    if trace["gauges"]:
        rows = [[name, value]
                for name, value in sorted(trace["gauges"].items())]
        sections.append(format_table(["gauge", "last value"], rows,
                                     title="gauges", precision=6))
    if not sections:
        return "(empty trace)"
    return "\n\n".join(sections)
