"""Supervised execution of the paper's long-running solves.

A :class:`SolverSupervisor` wraps the MDP solvers behind three
guarantees that a multi-hour sweep needs and the bare solvers do not
give:

- **bounded**: every solve runs under a shared
  :class:`~repro.runtime.budget.Budget` (wall-clock seconds and/or
  solver iterations), enforced cooperatively through the solvers'
  ``on_iter`` hooks, so a numerical stall raises
  :class:`~repro.errors.SolverBudgetExceededError` instead of hanging;
- **validated**: inputs are checked before solving (stochastic rows
  via the MDP's own validator, finite reward channels) and outputs
  after (finite gains/ratios, policy availability), so garbage raises
  a typed :class:`~repro.errors.SolverError` subclass instead of
  propagating NaNs into result tables;
- **recoverable**: each solve runs through the declarative fallback
  chains of :mod:`repro.runtime.fallbacks`, with per-stage diagnostics
  kept on the supervisor for post-mortem inspection.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import (
    SolverBudgetExceededError,
    SolverDivergedError,
    SolverError,
    SolverInputError,
)
from repro.mdp.model import MDP
from repro.mdp.policy_iteration import AverageRewardSolution
from repro.mdp.ratio import RatioSolution
from repro.runtime.budget import Budget, BudgetClock
from repro.runtime.telemetry import counter_add, span
from repro.runtime.fallbacks import (
    AverageRequest,
    RatioRequest,
    StageDiagnostics,
    average_chain_for,
    ratio_chain_for,
    run_chain,
)


class SolverSupervisor:
    """Budgets, validation and fallback execution for MDP solves.

    Parameters
    ----------
    budget:
        Limits shared by all solves issued through this supervisor
        within one :meth:`clock` scope (each top-level call starts a
        fresh clock over the same declarative budget).
    ratio_chain, average_chain:
        Fallback chains as ``(name, stage)`` sequences.  Both default
        to ``None``, meaning they are re-resolved per solve via
        :func:`repro.runtime.fallbacks.ratio_chain_for` /
        :func:`repro.runtime.fallbacks.average_chain_for` (so the
        process-global ``--ratio-method`` and ``--engine`` selections
        take effect even on supervisors built before the flags were
        applied, and the approx stage is only prepended for models
        above the size threshold).
    validate_inputs, validate_outputs:
        Toggle the pre-/post-solve checks (both on by default; input
        validation re-runs the MDP's structural validator, which is
        linear in the number of transitions).
    deadline:
        Optional :class:`repro.core.deadline.Deadline`.  Each solve's
        effective wall-clock budget becomes ``min(budget.wall_clock,
        deadline.remaining())``, so the same supervisor instance can be
        handed down a request path and every nested solve sees only the
        time that is actually left; an already-expired deadline raises
        :class:`~repro.errors.SolveDeadlineError` before the solve
        starts.
    """

    def __init__(self, budget: Optional[Budget] = None,
                 ratio_chain: Optional[Sequence[Tuple]] = None,
                 average_chain: Optional[Sequence[Tuple]] = None,
                 validate_inputs: bool = True,
                 validate_outputs: bool = True,
                 deadline=None) -> None:
        self.budget = budget if budget is not None else Budget()
        self.ratio_chain = (None if ratio_chain is None
                            else tuple(ratio_chain))
        self.average_chain = (None if average_chain is None
                              else tuple(average_chain))
        self.validate_inputs = validate_inputs
        self.validate_outputs = validate_outputs
        self.deadline = deadline
        #: Diagnostics of every stage attempted, across all solves.
        self.diagnostics: List[StageDiagnostics] = []
        #: Name of the stage that produced the last successful solve.
        self.last_stage: Optional[str] = None
        #: Name of the fallback-chain stage a budget/deadline abort
        #: cut off mid-flight (``None`` until a solve is cancelled).
        self.cancelled_stage: Optional[str] = None

    # -- validation ----------------------------------------------------

    def _check_mdp(self, mdp: MDP) -> None:
        if not self.validate_inputs:
            return
        # Re-run the structural validator (row-stochastic transitions,
        # every state has an action) -- callers may have built the MDP
        # with validate=False or mutated its arrays since construction.
        mdp._validate()
        for name, reward in mdp.rewards.items():
            if not np.all(np.isfinite(reward)):
                raise SolverInputError(
                    f"reward channel {name!r} contains non-finite values")

    def _check_policy(self, mdp: MDP, policy: np.ndarray,
                      label: str) -> None:
        if not self.validate_outputs:
            return
        if not mdp.valid_policy(policy):
            raise SolverError(
                f"{label} produced a policy selecting unavailable actions")

    # -- supervised solves ---------------------------------------------

    def solve_ratio(self, mdp: MDP, num: Mapping[str, float],
                    den: Mapping[str, float], lo: float, hi: float,
                    tol: float = 1e-7, max_iter: int = 80,
                    initial_policy: Optional[np.ndarray] = None,
                    method: Optional[str] = None) -> RatioSolution:
        """Maximize ``gain(num)/gain(den)`` through the fallback chain.

        ``method`` overrides the chain selection for this solve (it is
        ignored when the supervisor was constructed with an explicit
        ``ratio_chain``).
        """
        self._check_mdp(mdp)
        request = RatioRequest(mdp=mdp, num=num, den=den, lo=lo, hi=hi,
                               tol=tol, max_iter=max_iter,
                               initial_policy=initial_policy)
        chain = (self.ratio_chain if self.ratio_chain is not None
                 else ratio_chain_for(method, mdp=mdp))
        outcome = self._run(chain, request)
        solution: RatioSolution = outcome.result
        if self.validate_outputs and not np.isfinite(solution.value):
            raise SolverDivergedError(
                f"supervised ratio solve returned non-finite value "
                f"{solution.value!r}")
        self._check_policy(mdp, solution.policy,
                           f"ratio stage {outcome.stage!r}")
        return solution

    def solve_average(self, mdp: MDP, reward: np.ndarray,
                      initial_policy: Optional[np.ndarray] = None,
                      max_iter: int = 1000) -> AverageRewardSolution:
        """Maximize an average reward through the fallback chain."""
        self._check_mdp(mdp)
        reward = np.asarray(reward, dtype=float)
        if self.validate_inputs and not np.all(np.isfinite(reward)):
            raise SolverInputError(
                "combined reward array contains non-finite values")
        request = AverageRequest(mdp=mdp, reward=reward,
                                 initial_policy=initial_policy,
                                 max_iter=max_iter)
        chain = (self.average_chain if self.average_chain is not None
                 else average_chain_for(mdp))
        outcome = self._run(chain, request)
        solution: AverageRewardSolution = outcome.result
        if self.validate_outputs and not np.isfinite(solution.gain):
            raise SolverDivergedError(
                f"supervised average-reward solve returned non-finite "
                f"gain {solution.gain!r}")
        self._check_policy(mdp, solution.policy,
                           f"average stage {outcome.stage!r}")
        return solution

    def analyze(self, config, model, mdp: Optional[MDP] = None):
        """Supervised version of :func:`repro.core.solve.analyze`.

        Routes the underlying ratio/average solves through this
        supervisor and validates the resulting utility and channel
        rates before returning the :class:`AttackAnalysis`.
        """
        from repro.core.solve import analyze as core_analyze
        analysis = core_analyze(config, model, mdp, supervisor=self)
        if self.validate_outputs:
            if not np.isfinite(analysis.utility):
                raise SolverDivergedError(
                    f"analysis produced non-finite utility "
                    f"{analysis.utility!r} for {model!r}")
            bad = {name: rate for name, rate in analysis.rates.items()
                   if not np.isfinite(rate)}
            if bad:
                raise SolverDivergedError(
                    f"analysis produced non-finite channel rates {bad!r}")
        return analysis

    # -- internals -----------------------------------------------------

    def _effective_budget(self) -> Budget:
        """The declarative budget narrowed by the deadline's remaining
        time (raises the typed deadline error when already expired)."""
        if self.deadline is None:
            return self.budget
        narrowed = self.deadline.budget(max_ticks=self.budget.max_ticks)
        wall = narrowed.wall_clock
        if self.budget.wall_clock is not None:
            wall = min(wall, self.budget.wall_clock)
        return Budget(wall_clock=wall, max_ticks=self.budget.max_ticks)

    def _run(self, chain, request):
        clock: Optional[BudgetClock] = None
        budget = self._effective_budget()
        if budget.wall_clock is not None or budget.max_ticks is not None:
            clock = budget.start()
        counter_add("supervisor/solves")
        try:
            with span("supervised-solve"):
                outcome = run_chain(chain, request, clock)
        except Exception as exc:
            failed = getattr(exc, "diagnostics", None)
            if failed:
                self.diagnostics.extend(failed)
                if isinstance(exc, SolverBudgetExceededError):
                    # Record which chain step the budget/deadline cut
                    # off -- post-mortems need the stage, not just the
                    # fact of the timeout.
                    self.cancelled_stage = failed[-1].stage
                    counter_add(
                        f"supervisor/cancelled/{failed[-1].stage}")
            raise
        self.diagnostics.extend(outcome.diagnostics)
        self.last_stage = outcome.stage
        return outcome
