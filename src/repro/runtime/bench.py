"""Benchmark trajectory of the attack-MDP pipeline.

``python -m repro bench`` runs a small registry of named benchmarks
over the pipeline's hot path -- building the setting-2 attack MDP,
solving it, rebuilding reward channels against the structure cache,
sampling the optimal policy through the Monte-Carlo engines -- and
emits one ``BENCH_<name>.json`` per benchmark (wall time, state
count, solve/cache counters).  Committed result files form a
performance trajectory across PRs; the optional ``--baseline``
comparison turns the same files into a CI regression gate: the run
fails when any benchmark takes more than ``--max-regression`` times
its baseline wall time, or when a recorded utility drifts.

Wall times are machine-dependent, so the gate is deliberately loose
(default 2x) -- it catches algorithmic regressions, not noise.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.runtime import telemetry
from repro.runtime.journal import atomic_write_text

#: Format version of the BENCH_*.json files.
BENCH_SCHEMA = 1

#: Utilities are deterministic; any drift beyond this fails the gate.
UTILITY_TOL = 1e-9

#: Baselines shorter than this are padded up before applying the
#: regression factor -- sub-50ms timings are mostly scheduler noise.
WALL_FLOOR_S = 0.05


def _set2_config(fast: bool):
    """The Table 2 setting-2 acceptance cell (alpha = 25%, beta:gamma
    = 1:1); ``fast`` shrinks AD so CI smoke finishes in seconds."""
    from repro.core.config import AttackConfig
    return AttackConfig.from_ratio(0.25, (1, 1), setting=2,
                                   ad=2 if fast else 6)


def bench_attack_build(fast: bool) -> Dict:
    """Cold build of the setting-2 attack MDP (cache cleared)."""
    from repro.core.attack_mdp import build_attack_mdp, \
        clear_attack_mdp_cache
    config = _set2_config(fast)
    clear_attack_mdp_cache()
    start = time.perf_counter()
    mdp = build_attack_mdp(config)
    wall = time.perf_counter() - start
    return {"wall_time_s": wall,
            "metrics": {"n_states": mdp.n_states,
                        "n_actions": mdp.n_actions}}


def bench_attack_solve(fast: bool) -> Dict:
    """Relative-revenue solve of a pre-built setting-2 MDP.

    The build cache is cleared first so the timed solve starts from a
    cold policy-evaluation cache (build time itself is excluded).
    """
    from repro.core.attack_mdp import build_attack_mdp, \
        clear_attack_mdp_cache
    from repro.core.solve import solve_relative_revenue
    config = _set2_config(fast)
    clear_attack_mdp_cache()
    mdp = build_attack_mdp(config)
    start = time.perf_counter()
    analysis = solve_relative_revenue(config, mdp)
    wall = time.perf_counter() - start
    stats = mdp.eval_cache().stats
    return {"wall_time_s": wall,
            "metrics": {"n_states": mdp.n_states,
                        "utility": analysis.utility,
                        "factorizations": stats.factorizations,
                        "policy_misses": stats.policy_misses,
                        "policy_hits": stats.policy_hits}}


def bench_attack_e2e(fast: bool) -> Dict:
    """Cold end-to-end cell: build + solve from an empty cache.

    This is the acceptance trajectory -- compare against the seed's
    build + solve wall time for the same cell.
    """
    from repro.core.attack_mdp import build_attack_mdp, \
        clear_attack_mdp_cache
    from repro.core.solve import solve_relative_revenue
    config = _set2_config(fast)
    clear_attack_mdp_cache()
    start = time.perf_counter()
    mdp = build_attack_mdp(config)
    analysis = solve_relative_revenue(config, mdp)
    wall = time.perf_counter() - start
    return {"wall_time_s": wall,
            "metrics": {"n_states": mdp.n_states,
                        "utility": analysis.utility,
                        "factorizations":
                            mdp.eval_cache().stats.factorizations}}


def bench_reward_rebuild(fast: bool) -> Dict:
    """Reward-channel-only rebuild against a warm structure cache.

    Rebuilding the double-spend channel for a new ``rds`` must not
    re-enumerate the state space; this benchmark times the cached
    variant build and records the cache counters proving it took the
    reward-only path.
    """
    from dataclasses import replace

    from repro.core.attack_mdp import attack_mdp_cache_stats, \
        build_attack_mdp, clear_attack_mdp_cache
    config = _set2_config(fast)
    clear_attack_mdp_cache()
    base = build_attack_mdp(config)
    start = time.perf_counter()
    variant = build_attack_mdp(replace(config, rds=2.0))
    wall = time.perf_counter() - start
    stats = attack_mdp_cache_stats()
    if variant.transition[0] is not base.transition[0]:
        raise ReproError("reward variant rebuilt its transition "
                         "matrices; the structure cache is broken")
    return {"wall_time_s": wall,
            "metrics": {"n_states": variant.n_states,
                        "reward_rebuilds": stats.reward_rebuilds,
                        "misses": stats.misses}}


def bench_sim_rollout(fast: bool) -> Dict:
    """Monte-Carlo rollout throughput: serial vs batched vs pooled.

    Samples the same total number of policy-chain steps through the
    three :mod:`repro.mdp.simulate` engines on the setting-2
    acceptance cell and records steps/second for each plus the batched
    and pooled speedups over the serial reference.  Policy tables are
    prebuilt and shared so the timings isolate the sampling kernels;
    the gated wall time is the pooled run (the validation workhorse).
    """
    import numpy as np

    from repro.core.attack_mdp import build_attack_mdp
    from repro.core.solve import solve_relative_revenue
    from repro.mdp.simulate import build_policy_tables, rollout, \
        rollout_batch, rollout_pooled
    config = _set2_config(fast)
    mdp = build_attack_mdp(config)
    analysis = solve_relative_revenue(config, mdp)
    policy = np.asarray(analysis.policy.action_indices)
    tables = build_policy_tables(mdp, policy)
    total = 60_000 if fast else 300_000
    n_traj = 64 if fast else 256

    start = time.perf_counter()
    rollout(mdp, policy, total, rng=np.random.default_rng(0),
            tables=tables)
    serial_wall = time.perf_counter() - start
    serial_sps = total / serial_wall

    per_traj = total // n_traj
    start = time.perf_counter()
    batch = rollout_batch(mdp, policy, per_traj, n_traj=n_traj,
                          seed=0, tables=tables)
    batch_wall = time.perf_counter() - start
    batch_sps = batch.total_steps / batch_wall

    start = time.perf_counter()
    pooled = rollout_pooled(mdp, policy, per_traj, n_traj=n_traj,
                            seed=0, tables=tables)
    pooled_wall = time.perf_counter() - start
    pooled_sps = pooled.steps / pooled_wall

    # Alias-method throughput (informational, not the gated wall):
    # table build happens outside the timed region, like the cdf runs.
    tables.alias_tables()
    start = time.perf_counter()
    alias = rollout_pooled(mdp, policy, per_traj, n_traj=n_traj,
                           seed=0, tables=tables, method="alias")
    alias_wall = time.perf_counter() - start
    alias_sps = alias.steps / alias_wall

    return {"wall_time_s": pooled_wall,
            "metrics": {"n_states": mdp.n_states,
                        "total_steps": total,
                        "n_traj": n_traj,
                        "serial_steps_per_s": round(serial_sps),
                        "batch_steps_per_s": round(batch_sps),
                        "pooled_steps_per_s": round(pooled_sps),
                        "alias_steps_per_s": round(alias_sps),
                        "batch_speedup":
                            round(batch_sps / serial_sps, 2),
                        "pooled_speedup":
                            round(pooled_sps / serial_sps, 2)}}


def bench_sim_validate(fast: bool) -> Dict:
    """Multi-seed Monte-Carlo validation of the exact gain.

    Times :func:`repro.analysis.validation.validate_against_sim` with
    the ``"rollout"`` engine (seeds x trajectories utility samples,
    99% confidence interval) on the setting-2 acceptance cell and
    fails -- deterministically, the seeds are pinned -- when the exact
    gain falls outside the sampled interval.  The recorded ``utility``
    is the exact gain (deterministic, drift-gated); the sampled
    statistics are informational.
    """
    from repro.analysis.validation import validate_against_sim
    from repro.core.attack_mdp import build_attack_mdp
    from repro.core.incentives import IncentiveModel
    config = _set2_config(fast)
    # Warm the build cache so the timed region is solve + sampling.
    mdp = build_attack_mdp(config)
    steps = 20_000 if fast else 100_000
    start = time.perf_counter()
    report = validate_against_sim(
        config, IncentiveModel.COMPLIANT_PROFIT, steps=steps,
        seeds=4, trajectories=8, workers=1, engine="rollout", seed=0)
    wall = time.perf_counter() - start
    multi = report.multi
    if not multi.contains_exact():
        raise ReproError(
            f"statistical agreement failure: exact utility "
            f"{report.analysis.utility!r} outside the {multi.level:.0%} "
            f"confidence interval [{multi.lo!r}, {multi.hi!r}] "
            f"(z = {multi.z_score:.2f})")
    return {"wall_time_s": wall,
            "metrics": {"n_states": mdp.n_states,
                        "utility": report.analysis.utility,
                        "sampled_mean": multi.mean,
                        "sampled_stderr": multi.stderr,
                        "z_score": round(multi.z_score, 3),
                        "n_samples": multi.n,
                        "total_steps": report.steps}}


def bench_serve_smoke(fast: bool) -> Dict:
    """Serving-layer smoke: atlas-hit latency, coalescing, index/LRU.

    Pre-solves one setting-1 cell into a scratch atlas, then drives
    the :class:`~repro.serve.service.SolverService` through two
    phases: a sequential atlas-hit loop (recording p50/p99 per-request
    latency -- the common path a deployed service must keep fast) and
    a concurrent burst of identical cold requests against a slow
    backend (recording the coalescing hit-rate, which must collapse
    the burst into one solve).  A third phase measures the atlas
    itself at size: against a few-hundred-entry atlas it records
    cached-``get`` and hot indexed-``nearest`` p50/p99 -- both
    asserted to do **zero disk reads** via the
    :attr:`~repro.serve.atlas.AtlasStats.disk_reads` counter -- and
    compares against the pre-index baseline (a fresh
    :class:`~repro.serve.atlas.PolicyAtlas` per query, which must
    re-scan the directory the way ``nearest`` used to).  The indexed
    path must beat the scan baseline by >= 10x at p99 or the
    benchmark fails outright.  The gated wall time is the atlas-hit
    phase; the recorded ``utility`` is the exact solved utility
    (deterministic, drift-gated).
    """
    import asyncio
    import dataclasses
    import gc
    import tempfile

    import numpy as np

    from repro.analysis.store import analysis_to_payload
    from repro.core.config import AttackConfig
    from repro.core.incentives import IncentiveModel
    from repro.core.solve import analyze
    from repro.serve.atlas import PolicyAtlas, atlas_key
    from repro.serve.service import SolveRequest, SolverService

    def _p50_p99(samples) -> Tuple[float, float]:
        p50, p99 = np.percentile(np.asarray(samples) * 1e3, [50, 99])
        return round(float(p50), 4), round(float(p99), 4)

    config = AttackConfig.from_ratio(0.25, (2, 3), setting=1,
                                     ad=2 if fast else 6)
    model = IncentiveModel.COMPLIANT_PROFIT
    analysis = analyze(config, model)
    hits = 200 if fast else 1000
    burst = 32 if fast else 128

    async def drive(atlas: PolicyAtlas):
        async def slow_solve(request, deadline):
            await asyncio.sleep(0.02)
            payload = analysis_to_payload(analysis)
            payload["config"] = dataclasses.asdict(request.config)
            return payload

        service = SolverService(atlas, solve_fn=slow_solve)
        request = SolveRequest(config=config, model=model)
        latencies = []
        start = time.perf_counter()
        for _ in range(hits):
            t0 = time.perf_counter()
            response = await service.submit(request)
            latencies.append(time.perf_counter() - t0)
            if response.source != "atlas":
                raise ReproError(
                    f"expected an atlas hit, got {response.source!r}")
        hit_wall = time.perf_counter() - start

        cold = SolveRequest(
            config=dataclasses.replace(config, alpha=config.alpha,
                                       include_wait=True),
            model=model)
        responses = await asyncio.gather(
            *(service.submit(cold) for _ in range(burst)))
        await service.close()
        return service, latencies, hit_wall, responses

    with tempfile.TemporaryDirectory(prefix="repro-bench-") as root:
        atlas = PolicyAtlas(root)
        atlas.put_analysis(analysis)
        service, latencies, hit_wall, responses = \
            asyncio.run(drive(atlas))

    coalesced = sum(1 for r in responses if r.coalesced)
    if coalesced != burst - 1:
        raise ReproError(
            f"coalescing broke: {burst} identical requests produced "
            f"{burst - coalesced} solves (expected 1)")
    hit_p50, hit_p99 = _p50_p99(latencies)

    # -- phase 3: the atlas at size -- cached gets and indexed nearest
    # against a few-hundred-entry directory, with the pre-index
    # full-scan behaviour as the baseline.
    n_entries = 120 if fast else 500
    get_queries = 200 if fast else 500
    near_queries = 100 if fast else 200
    scan_queries = 8 if fast else 12
    payload = analysis_to_payload(analysis)
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as root:
        big = PolicyAtlas(root)
        keys = []
        for i in range(n_entries):
            alpha = 0.01 + 0.47 * i / (n_entries - 1)
            cfg = AttackConfig.from_ratio(alpha, (2, 3), setting=1,
                                          ad=2 if fast else 6)
            body = dict(payload)
            body["config"] = dataclasses.asdict(cfg)
            key = atlas_key(cfg, model)
            big.put(key, body)
            keys.append(key)

        hot_key = keys[n_entries // 2]
        big.get(hot_key)  # warm: one validated disk load, then cached
        before = big.stats.disk_reads
        get_lat = []
        for _ in range(get_queries):
            t0 = time.perf_counter()
            if big.get(hot_key) is None:
                raise ReproError("hot get missed a stored entry")
            get_lat.append(time.perf_counter() - t0)
        if big.stats.disk_reads != before:
            raise ReproError(
                f"cached get() touched disk: {big.stats.disk_reads - before} "
                f"reads across {get_queries} hot hits (expected 0)")

        # A probe between grid points, so nearest() really searches.
        probe = atlas_key(
            AttackConfig.from_ratio(0.2345, (2, 3), setting=1,
                                    ad=2 if fast else 6), model)

        def measure_pair():
            near = []
            for _ in range(near_queries):
                t0 = time.perf_counter()
                if big.nearest(probe) is None:
                    raise ReproError("nearest() missed a populated "
                                     "atlas")
                near.append(time.perf_counter() - t0)
            # Pre-index baseline: a fresh instance per query must
            # rebuild its view of the directory from disk, as
            # nearest() always did before the in-memory index.
            scan = []
            for _ in range(scan_queries):
                fresh = PolicyAtlas(root, cache_entries=0)
                t0 = time.perf_counter()
                if fresh.nearest(probe) is None:
                    raise ReproError("scan nearest() missed a "
                                     "populated atlas")
                scan.append(time.perf_counter() - t0)
            return near, scan

        big.nearest(probe)  # warm: builds the index, caches the winner
        before = big.stats.disk_reads
        # GC off and one remeasure: the hot path is sub-millisecond,
        # so its p99 is otherwise at the mercy of a single collector
        # pause or scheduler preemption on a loaded CI box.
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            for _attempt in range(2):
                near_lat, scan_lat = measure_pair()
                near_p50, near_p99 = _p50_p99(near_lat)
                scan_p50, scan_p99 = _p50_p99(scan_lat)
                speedup = scan_p99 / near_p99 if near_p99 > 0 \
                    else float("inf")
                if speedup >= 10:
                    break
        finally:
            if gc_was_enabled:
                gc.enable()
        if big.stats.disk_reads != before:
            raise ReproError(
                f"hot nearest() touched disk: "
                f"{big.stats.disk_reads - before} reads across the "
                f"hot query loops (expected 0)")

    get_p50, get_p99 = _p50_p99(get_lat)
    if speedup < 10:
        raise ReproError(
            f"indexed nearest lost its edge: p99 {near_p99}ms hot vs "
            f"{scan_p99}ms full-scan baseline on {n_entries} entries "
            f"({speedup:.1f}x, expected >= 10x)")
    return {"wall_time_s": hit_wall,
            "metrics": {"utility": analysis.utility,
                        "n_states": analysis.policy.mdp.n_states,
                        "atlas_hits": hits,
                        "hit_p50_ms": hit_p50,
                        "hit_p99_ms": hit_p99,
                        "burst_requests": burst,
                        "coalesce_hit_rate":
                            round(coalesced / burst, 4),
                        "atlas_entries": n_entries,
                        "cached_get_p50_ms": get_p50,
                        "cached_get_p99_ms": get_p99,
                        "nearest_hot_p50_ms": near_p50,
                        "nearest_hot_p99_ms": near_p99,
                        "nearest_scan_p50_ms": scan_p50,
                        "nearest_scan_p99_ms": scan_p99,
                        "nearest_speedup":
                            round(min(speedup, 1e6), 1)}}


def bench_ratio_methods(fast: bool) -> Dict:
    """Per-method cost of the relative-revenue ratio solve.

    Runs the setting-2 acceptance cell through each ratio-objective
    method (Dinkelbach, bisection, PTO) from a cold cache and records
    per-method wall time, transformed average-reward solve counts
    (``solver/ratio/transformed_solves``), PT evaluation counts
    (``solver/ratio/pto/transformed_solves``) and warm-start hits.

    Two correctness gates fail the benchmark outright, independent of
    timing: every method must agree on the utility within 1e-6, and
    PTO must answer as PTO (no silent fallback) while performing at
    least 5x fewer transformed average-reward solves than Dinkelbach
    -- the PTO reduction's entire point is replacing those solves with
    rho-independent terminated evaluations, so it performs zero.  The
    gated wall time and drift-gated ``utility`` are PTO's.
    """
    from repro.core.attack_mdp import build_attack_mdp, \
        clear_attack_mdp_cache
    from repro.core.solve import solve_relative_revenue

    config = _set2_config(fast)
    per_method: Dict[str, Dict] = {}
    for method in ("dinkelbach", "bisection", "pto"):
        clear_attack_mdp_cache()
        mdp = build_attack_mdp(config)

        def run(method=method, mdp=mdp):
            start = time.perf_counter()
            analysis = solve_relative_revenue(config, mdp,
                                              ratio_method=method)
            return analysis, time.perf_counter() - start

        (analysis, wall), counters = _counters_during(run)
        per_method[method] = {
            "wall_s": wall,
            "value": analysis.utility,
            "method_used": analysis.solver["method"],
            "avg_solves":
                counters.get("solver/ratio/transformed_solves", 0),
            "pt_solves":
                counters.get("solver/ratio/pto/transformed_solves", 0),
            "warm_start_hits":
                counters.get("solver/ratio/warm_start_hits", 0)
                + counters.get("solver/ratio/pto/warm_start_hits", 0),
            "factorizations": mdp.eval_cache().stats.factorizations,
        }

    dink, pto = per_method["dinkelbach"], per_method["pto"]
    if pto["method_used"] != "pto":
        raise ReproError(
            f"PTO fell back to {pto['method_used']!r} on the "
            "acceptance cell; the reduction is not earning its keep")
    for method, record in per_method.items():
        drift = abs(record["value"] - dink["value"])
        if drift > 1e-6 * max(1.0, abs(dink["value"])):
            raise ReproError(
                f"ratio methods disagree: {method} utility "
                f"{record['value']!r} vs dinkelbach {dink['value']!r}")
    if pto["avg_solves"] * 5 > dink["avg_solves"]:
        raise ReproError(
            f"PTO used {pto['avg_solves']} transformed average-reward "
            f"solves vs Dinkelbach's {dink['avg_solves']}; expected "
            ">= 5x fewer")
    return {"wall_time_s": pto["wall_s"],
            "metrics": {"n_states": mdp.n_states,
                        "utility": pto["value"],
                        "dinkelbach_avg_solves": dink["avg_solves"],
                        "dinkelbach_wall_s":
                            round(dink["wall_s"], 4),
                        "bisection_avg_solves":
                            per_method["bisection"]["avg_solves"],
                        "bisection_wall_s":
                            round(per_method["bisection"]["wall_s"], 4),
                        "pto_avg_solves": pto["avg_solves"],
                        "pto_pt_solves": pto["pt_solves"],
                        "pto_warm_start_hits": pto["warm_start_hits"],
                        "pto_wall_s": round(pto["wall_s"], 4)}}


def bench_approx_scale(fast: bool) -> Dict:
    """Approximate-engine relative-revenue solve past the exact scale.

    Builds the setting-2 cell at ``ad=12`` -- 435,580 states, more
    than 10x the 30,595-state acceptance cell -- and times a
    Dinkelbach solve whose inner average-reward solves all run on the
    approximate engine (:mod:`repro.mdp.approx`); ``fast`` shrinks the
    cap to ``ad=4`` so CI smoke finishes in seconds.

    Three correctness gates fail the benchmark outright, independent
    of timing: every inner solve must answer as the approximate engine
    with a certificate (no silent fallback); the certified truncation
    bound of the final inner solve must stay below 1e-6; and in fast
    mode (where the exact solver is cheap) the approx utility must
    agree with the exact Dinkelbach utility within 1e-6.
    """
    from repro.core.attack_mdp import build_attack_mdp, \
        clear_attack_mdp_cache
    from repro.core.config import AttackConfig
    from repro.core.incentives import IncentiveModel
    from repro.mdp.approx import ApproxSolution, approx_average_solver
    from repro.mdp.ratio import maximize_ratio

    config = AttackConfig.from_ratio(0.25, (1, 1), setting=2,
                                     ad=4 if fast else 12)
    clear_attack_mdp_cache()
    mdp = build_attack_mdp(config)
    num, den = IncentiveModel.COMPLIANT_PROFIT.utility_channels()

    inner: List = []
    base_solver = approx_average_solver()

    def solver(model, reward, warm=None):
        solution = base_solver(model, reward, warm)
        inner.append(solution)
        return solution

    def run():
        start = time.perf_counter()
        solution = maximize_ratio(mdp, num, den, lo=0.0, hi=1.0,
                                  tol=1e-7, method="dinkelbach",
                                  solver=solver)
        return solution, time.perf_counter() - start

    (solution, wall), counters = _counters_during(run)

    if not inner or not all(isinstance(sol, ApproxSolution)
                            and sol.certified for sol in inner):
        raise ReproError(
            "approx-scale inner solves did not all answer as the "
            "certified approximate engine; the benchmark is not "
            "measuring what it claims")
    bound = inner[-1].bound
    if not bound <= 1e-6:
        raise ReproError(
            f"approx-scale certified bound {bound!r} exceeds the 1e-6 "
            "target; the engine no longer solves this cell within its "
            "certificate")
    if fast:
        exact = maximize_ratio(mdp, num, den, lo=0.0, hi=1.0,
                               tol=1e-7, method="dinkelbach")
        drift = abs(solution.value - exact.value)
        if drift > 1e-6 * max(1.0, abs(exact.value)):
            raise ReproError(
                f"approx utility {solution.value!r} disagrees with the "
                f"exact Dinkelbach utility {exact.value!r}")
    return {"wall_time_s": wall,
            "metrics": {"n_states": mdp.n_states,
                        "utility": solution.value,
                        "bound": bound,
                        "inner_solves": len(inner),
                        "sweeps":
                            counters.get("solver/approx/sweeps", 0),
                        "queue_pops":
                            counters.get("solver/approx/queue_pops", 0),
                        "degraded":
                            counters.get("solver/approx/degraded", 0)}}


#: name -> benchmark callable; each returns {"wall_time_s", "metrics"}.
BENCHMARKS: Dict[str, Callable[[bool], Dict]] = {
    "attack-build": bench_attack_build,
    "attack-solve": bench_attack_solve,
    "attack-e2e": bench_attack_e2e,
    "reward-rebuild": bench_reward_rebuild,
    "ratio-methods": bench_ratio_methods,
    "approx-scale": bench_approx_scale,
    "sim-rollout": bench_sim_rollout,
    "sim-validate": bench_sim_validate,
    "serve-smoke": bench_serve_smoke,
}


def bench_filename(name: str, backend: str = "numpy") -> str:
    """The committed artifact name for one benchmark.

    Non-default compute backends get their own trajectory files
    (``BENCH_<name>@<backend>.json``) so an accelerated run never
    overwrites -- or gates against -- the committed numpy baseline.
    """
    if backend != "numpy":
        return f"BENCH_{name}@{backend}.json"
    return f"BENCH_{name}.json"


def environment_fingerprint() -> Dict:
    """Versions and machine facts that explain a wall-time delta.

    Recorded in every BENCH document so a regression can be told apart
    from an environment change (interpreter bump, BLAS swap, different
    core count) before anyone bisects code.
    """
    def _version(module_name: str) -> Optional[str]:
        try:
            module = __import__(module_name)
        except ImportError:
            return None
        return getattr(module, "__version__", None)

    from repro.mdp import backends
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "numpy": _version("numpy"),
        "scipy": _version("scipy"),
        "numba": _version("numba"),
        "machine": platform.machine(),
        "system": platform.system(),
        "cpu_count": os.cpu_count(),
        "backend": backends.current_backend_name(),
    }


def _counters_during(fn: Callable[[], Dict]):
    """Run ``fn`` and return ``(result, counter_delta)``.

    An active tracer is reused (the delta is its counter increase),
    so the run's telemetry still reaches ``--trace`` output; otherwise
    a private tracer is installed for the duration, keeping tracing
    globally disabled before and after.
    """
    active = telemetry.current_tracer()
    if active is not None:
        before = dict(active.counters)
        result = fn()
        return result, {key: value - before.get(key, 0)
                        for key, value in active.counters.items()
                        if value != before.get(key, 0)}
    with telemetry.use_tracer(telemetry.Tracer()) as tracer:
        result = fn()
        return result, dict(tracer.counters)


def run_benchmark(name: str, fast: bool = False,
                  repeat: int = 1) -> Dict:
    """Run one registered benchmark and return its BENCH document.

    With ``repeat > 1`` the benchmark runs that many times and the
    recorded wall time is the minimum -- the standard noise filter for
    a timing gate; metrics and counters come from the first run.

    The ``counters`` block snapshots the telemetry counters the
    benchmark incremented (solver iterations, cache hits/misses, ...);
    it is informational -- :func:`compare_to_baseline` gates only the
    wall time and the recorded utility.
    """
    if name not in BENCHMARKS:
        raise ReproError(
            f"unknown benchmark {name!r}; "
            f"available: {', '.join(sorted(BENCHMARKS))}")
    if repeat < 1:
        raise ReproError(f"repeat must be >= 1, got {repeat!r}")
    result, counters = _counters_during(lambda: BENCHMARKS[name](fast))
    wall = result["wall_time_s"]
    for _ in range(repeat - 1):
        wall = min(wall, BENCHMARKS[name](fast)["wall_time_s"])
    from repro.mdp import backends
    return {"schema": BENCH_SCHEMA, "name": name, "fast": fast,
            "machine": platform.machine(),
            "backend": backends.current_backend_name(),
            "environment": environment_fingerprint(),
            "wall_time_s": wall,
            "metrics": result["metrics"],
            "counters": counters}


def compare_to_baseline(doc: Dict, baseline: Dict,
                        max_regression: float) -> List[str]:
    """Failures of ``doc`` against its committed ``baseline``.

    Returns human-readable failure strings (empty = pass).  A baseline
    recorded in the other ``fast`` mode is skipped -- the two modes
    solve different state spaces and their wall times are not
    comparable.  So is a baseline recorded under a different compute
    backend (``backend`` defaults to ``"numpy"`` for documents that
    predate the field): each backend gates against its own trajectory.
    """
    if baseline.get("fast") != doc.get("fast"):
        return []
    if baseline.get("backend", "numpy") != doc.get("backend", "numpy"):
        return []
    failures = []
    limit = max_regression * max(baseline["wall_time_s"], WALL_FLOOR_S)
    if doc["wall_time_s"] > limit:
        failures.append(
            f"{doc['name']}: wall time {doc['wall_time_s']:.4f}s "
            f"exceeds {max_regression:g}x baseline "
            f"({baseline['wall_time_s']:.4f}s)")
    base_utility = baseline.get("metrics", {}).get("utility")
    utility = doc.get("metrics", {}).get("utility")
    if base_utility is not None and utility is not None:
        if abs(utility - base_utility) > UTILITY_TOL:
            failures.append(
                f"{doc['name']}: utility {utility!r} drifted from "
                f"baseline {base_utility!r}")
    return failures


def check_speedup(doc: Dict, numpy_doc: Dict,
                  min_speedup: float) -> List[str]:
    """Failures of an accelerated run against the numpy trajectory.

    Used with ``--min-speedup``: a compiled backend that fails to beat
    the committed numpy wall time by the required factor is a
    regression of the *accelerator* (stale JIT cache, fallback to
    object mode, ...), even when it passes its own trajectory gate.
    Sub-floor baselines are skipped -- there is nothing meaningful to
    speed up below scheduler noise.
    """
    if numpy_doc.get("fast") != doc.get("fast"):
        return []
    base_wall = numpy_doc["wall_time_s"]
    if base_wall < WALL_FLOOR_S:
        return []
    limit = base_wall / min_speedup
    if doc["wall_time_s"] > limit:
        return [f"{doc['name']}: backend {doc.get('backend')!r} wall "
                f"time {doc['wall_time_s']:.4f}s is not {min_speedup:g}x "
                f"faster than the numpy baseline ({base_wall:.4f}s)"]
    return []


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro bench`` entry point."""
    import argparse
    parser = argparse.ArgumentParser(prog="repro bench")
    parser.add_argument("names", nargs="*",
                        help="benchmarks to run (default: all)")
    parser.add_argument("--fast", action="store_true",
                        help="shrink the MDPs for a CI smoke run")
    parser.add_argument("--output-dir", default=".", metavar="DIR")
    parser.add_argument("--baseline", default=None, metavar="DIR",
                        help="directory of committed BENCH_*.json to "
                             "gate against")
    parser.add_argument("--max-regression", type=float, default=2.0,
                        metavar="X",
                        help="fail when wall time exceeds X times the "
                             "baseline (default 2.0)")
    parser.add_argument("--repeat", type=int, default=1, metavar="N",
                        help="run each benchmark N times, record the "
                             "minimum wall time")
    from repro.mdp import backends
    parser.add_argument("--backend", default=None,
                        choices=backends.BACKEND_NAMES,
                        help="compute backend to benchmark (results "
                             "land in BENCH_<name>@<backend>.json for "
                             "non-numpy backends)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        metavar="X",
                        help="with a non-numpy --backend: fail unless "
                             "each benchmark beats the committed numpy "
                             "baseline by at least a factor of X")
    args = parser.parse_args(argv)
    if args.backend is not None:
        os.environ[backends.BACKEND_ENV] = args.backend
        backends.set_backend(args.backend)
    backend = backends.current_backend_name()
    names = args.names or sorted(BENCHMARKS)
    out_dir = Path(args.output_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    failures: List[str] = []
    for name in names:
        doc = run_benchmark(name, fast=args.fast, repeat=args.repeat)
        path = out_dir / bench_filename(name, backend)
        atomic_write_text(path, json.dumps(doc, indent=2,
                                           sort_keys=True) + "\n")
        print(f"{name}: {doc['wall_time_s']:.4f}s "
              f"{doc['metrics']} -> {path}")
        if args.baseline is not None:
            base_path = Path(args.baseline) / bench_filename(name,
                                                             backend)
            if base_path.exists():
                baseline = json.loads(base_path.read_text())
                failures.extend(compare_to_baseline(
                    doc, baseline, args.max_regression))
            else:
                print(f"{name}: no baseline at {base_path}, skipping "
                      "comparison")
            if args.min_speedup is not None and backend != "numpy":
                numpy_path = Path(args.baseline) / bench_filename(name)
                if numpy_path.exists():
                    numpy_doc = json.loads(numpy_path.read_text())
                    failures.extend(check_speedup(
                        doc, numpy_doc, args.min_speedup))
                else:
                    print(f"{name}: no numpy baseline at "
                          f"{numpy_path}, skipping speedup check")
    for failure in failures:
        print(f"REGRESSION: {failure}")
    return 1 if failures else 0
