"""Checkpointed, resumable execution of sweep cells.

A sweep (a paper table, a sensitivity grid, a parameter scan) is a set
of independent cells, each costing seconds to minutes of solver time.
:class:`SweepRunner` wraps the per-cell solve so that every completed
cell is recorded in a :class:`~repro.runtime.journal.Journal` before
the next cell starts; after a crash, re-running the same sweep against
the same journal restores completed cells from disk and only solves
the remainder.  Restored cells are byte-identical to freshly solved
ones because the journal stores the exact JSON value that the sweep
would have produced.

The ``fault_hook`` parameter exists for tests: it is invoked before
every *fresh* solve with the number of cells solved so far, so a test
can deterministically kill a sweep mid-run and assert that the resumed
run skips the completed cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.runtime.journal import Journal
from repro.runtime.telemetry import counter_add, span


@dataclass
class SweepStats:
    """Counters for one sweep run.

    Attributes
    ----------
    solved:
        Cells computed fresh in this run.
    restored:
        Cells restored from the journal without solving.
    """

    solved: int = 0
    restored: int = 0


@dataclass
class SweepRunner:
    """Executes sweep cells with journal-backed resume.

    Attributes
    ----------
    journal:
        Checkpoint journal; ``None`` disables checkpointing (cells are
        always solved fresh).
    fault_hook:
        Test-only injection point called before each fresh solve with
        the running solved-cell count; raising from it simulates a
        crash mid-sweep.
    stats:
        Solved/restored counters for this run.
    """

    journal: Optional[Journal] = None
    fault_hook: Optional[Callable[[int], None]] = None
    stats: SweepStats = field(default_factory=SweepStats)

    def cell(self, key, solve: Callable[[], object],
             encode: Optional[Callable] = None,
             decode: Optional[Callable] = None):
        """Return the value of one sweep cell, solving it only if the
        journal has no record for ``key``.

        Parameters
        ----------
        key:
            JSON-serializable cell identity (stable across runs).
        solve:
            Zero-argument callable computing the cell.
        encode, decode:
            Optional converters between the solve result and its
            JSON-compatible journal form (identity by default; plain
            floats need no conversion).
        """
        if self.journal is not None and key in self.journal:
            self.stats.restored += 1
            counter_add("journal/restored")
            value = self.journal.get(key)
            return decode(value) if decode is not None else value
        if self.fault_hook is not None:
            self.fault_hook(self.stats.solved)
        with span("sweep/cell"):
            result = solve()
        if self.journal is not None:
            stored = encode(result) if encode is not None else result
            self.journal.record(key, stored)
        self.stats.solved += 1
        counter_add("journal/solved")
        return result
