"""Pluggable fault injection for the network simulator.

The paper's threat model assumes an ideal network: every block reaches
every node instantly and nodes never fail.  Real BU deployments do not
enjoy that, and the simulator's role as the cross-check for every MDP
number means we must know its metrics *degrade gracefully* -- and its
block tree stays consistent -- when the network misbehaves.

A :class:`FaultPlan` declares the misbehaviour:

- **message loss**: each block announcement is independently dropped
  with ``loss_rate``;
- **bounded random delay**: with ``delay_rate`` an announcement is
  deferred by 1..``max_delay`` simulation steps;
- **duplicated announcements**: with ``duplicate_rate`` a second copy
  of the announcement is delivered one step later (validating that
  node views are idempotent);
- **crashes**: nodes go down randomly (``crash_rate`` /
  ``recovery_rate`` per step) or on a schedule
  (:class:`CrashWindow`); a down node neither mines nor observes, and
  on recovery optionally re-syncs every block it missed;
- **partitions**: during a :class:`PartitionWindow`, announcements
  crossing the group boundary are withheld until the window ends
  (``resync=True``) or dropped (``resync=False``).

The plan is interpreted by a :class:`FaultInjector`, which owns its own
RNG (``plan.seed``) so that enabling faults never perturbs the mining
sequence drawn from the simulation's RNG -- a fault-free plan plus any
seed reproduces the fault-free run exactly.

A second plan/injector pair targets the *serving* layer rather than
the simulated network: a :class:`ServiceFaultPlan` declares solver
hangs, worker crashes, artifact corruption and clock skew, and a
:class:`ServiceFaultInjector` draws per-event decisions from its own
seeded RNG.  :mod:`repro.serve.chaos` wires the injector into a
running :class:`~repro.serve.service.SolverService` and checks the
service's resilience invariants under it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import FaultInjectionError

#: Rates are probabilities; windows are step intervals ``[start, stop)``.


@dataclass(frozen=True)
class CrashWindow:
    """Scheduled downtime of one node over steps ``[start, stop)``."""

    node: str
    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.start < 1 or self.stop <= self.start:
            raise FaultInjectionError(
                f"crash window [{self.start}, {self.stop}) is invalid")

    def active(self, step: int) -> bool:
        """Whether the node is down at ``step``."""
        return self.start <= step < self.stop


@dataclass(frozen=True)
class PartitionWindow:
    """Steps ``[start, stop)`` during which ``group`` is cut off from
    the rest of the network (announcements cross in neither
    direction)."""

    start: int
    stop: int
    group: FrozenSet[str]

    def __post_init__(self) -> None:
        if self.start < 1 or self.stop <= self.start:
            raise FaultInjectionError(
                f"partition window [{self.start}, {self.stop}) is invalid")
        if not self.group:
            raise FaultInjectionError("partition group must be non-empty")
        object.__setattr__(self, "group", frozenset(self.group))

    def active(self, step: int) -> bool:
        """Whether the partition is in force at ``step``."""
        return self.start <= step < self.stop

    def separates(self, a: str, b: str, step: int) -> bool:
        """Whether ``a`` and ``b`` are on opposite sides at ``step``."""
        return self.active(step) and ((a in self.group) != (b in self.group))


def _check_rate(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise FaultInjectionError(f"{name} must lie in [0, 1], got {value!r}")


@dataclass(frozen=True)
class FaultPlan:
    """Declarative description of network faults for one simulation run.

    All rates are per-announcement (loss, delay, duplication) or
    per-node-step (crash, recovery) probabilities.  ``seed`` feeds the
    injector's private RNG; two runs with the same plan and simulation
    seed are identical.
    """

    loss_rate: float = 0.0
    delay_rate: float = 0.0
    max_delay: int = 3
    duplicate_rate: float = 0.0
    crash_rate: float = 0.0
    recovery_rate: float = 0.5
    crash_windows: Tuple[CrashWindow, ...] = ()
    partitions: Tuple[PartitionWindow, ...] = ()
    resync: bool = True
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("loss_rate", "delay_rate", "duplicate_rate",
                     "crash_rate", "recovery_rate"):
            _check_rate(name, getattr(self, name))
        if self.delay_rate > 0 and self.max_delay < 1:
            raise FaultInjectionError(
                f"max_delay must be >= 1 when delay_rate > 0, "
                f"got {self.max_delay!r}")
        object.__setattr__(self, "crash_windows", tuple(self.crash_windows))
        object.__setattr__(self, "partitions", tuple(self.partitions))

    def validate_nodes(self, names: Sequence[str]) -> None:
        """Check that every node referenced by a window exists."""
        known = set(names)
        for window in self.crash_windows:
            if window.node not in known:
                raise FaultInjectionError(
                    f"crash window references unknown node "
                    f"{window.node!r}")
        for window in self.partitions:
            unknown = set(window.group) - known
            if unknown:
                raise FaultInjectionError(
                    f"partition group references unknown nodes "
                    f"{sorted(unknown)!r}")

    @property
    def any_faults(self) -> bool:
        """Whether this plan can produce any fault at all."""
        return bool(self.loss_rate or self.delay_rate
                    or self.duplicate_rate or self.crash_rate
                    or self.crash_windows or self.partitions)


@dataclass
class FaultStats:
    """Counters of injected faults over one simulation run."""

    lost: int = 0
    delayed: int = 0
    duplicated: int = 0
    withheld: int = 0
    dropped_down: int = 0
    mining_skipped: int = 0
    crashes: int = 0
    recoveries: int = 0

    def total_disruptions(self) -> int:
        """Total individual fault events injected."""
        return (self.lost + self.delayed + self.duplicated + self.withheld
                + self.dropped_down + self.mining_skipped + self.crashes)


class FaultInjector:
    """Stateful interpreter of a :class:`FaultPlan`.

    Owns the crash state of every node and a private RNG; the network
    simulation queries it per step and per announcement.
    """

    def __init__(self, plan: FaultPlan, names: Sequence[str],
                 rng: Optional[np.random.Generator] = None) -> None:
        plan.validate_nodes(names)
        self.plan = plan
        self.names = list(names)
        self.rng = rng if rng is not None else np.random.default_rng(
            plan.seed)
        self.stats = FaultStats()
        self._random_down: Set[str] = set()

    # -- crash state ---------------------------------------------------

    def begin_step(self, step: int) -> None:
        """Advance random crash/recovery state to ``step``."""
        if self.plan.recovery_rate and self._random_down:
            recovered = {name for name in self._random_down
                         if self.rng.random() < self.plan.recovery_rate}
            if recovered:
                self._random_down -= recovered
                self.stats.recoveries += len(recovered)
        if self.plan.crash_rate:
            for name in self.names:
                if name not in self._random_down and \
                        self.rng.random() < self.plan.crash_rate:
                    self._random_down.add(name)
                    self.stats.crashes += 1

    def is_down(self, name: str, step: int) -> bool:
        """Whether ``name`` is crashed at ``step`` (random or
        scheduled)."""
        if name in self._random_down:
            return True
        return any(w.node == name and w.active(step)
                   for w in self.plan.crash_windows)

    # -- message routing -----------------------------------------------

    def partition_release(self, origin: str, recipient: str,
                          step: int) -> Optional[int]:
        """If an active partition separates the pair, return the step
        at which the message may be released (the latest separating
        window's ``stop``); otherwise ``None``."""
        release: Optional[int] = None
        for window in self.plan.partitions:
            if window.separates(origin, recipient, step):
                release = window.stop if release is None else \
                    max(release, window.stop)
        return release

    def message_schedule(self, step: int) -> List[int]:
        """Due steps for one announcement sent at ``step``.

        An empty list means the message is lost; two entries mean it
        is duplicated.  Entries equal to ``step`` are delivered
        immediately.
        """
        plan = self.plan
        if plan.loss_rate and self.rng.random() < plan.loss_rate:
            self.stats.lost += 1
            return []
        due = step
        if plan.delay_rate and self.rng.random() < plan.delay_rate:
            due = step + 1 + int(self.rng.integers(plan.max_delay))
            self.stats.delayed += 1
        schedule = [due]
        if plan.duplicate_rate and self.rng.random() < plan.duplicate_rate:
            schedule.append(due + 1)
            self.stats.duplicated += 1
        return schedule


# -- service-level faults ----------------------------------------------

@dataclass(frozen=True)
class ServiceFaultPlan:
    """Declarative faults for the solver-as-a-service layer.

    All rates are per-solve-attempt (hang, crash) or per-artifact-write
    (corrupt) probabilities:

    - **hangs**: with ``hang_rate`` a solve attempt blocks for
      ``hang_seconds`` instead of computing -- the service must cancel
      it at the deadline, not leak it;
    - **crashes**: with ``crash_rate`` a solve attempt dies with a
      worker-crash error -- retryable, unlike an input error;
    - **corruption**: with ``corrupt_rate`` a freshly written atlas
      artifact is truncated or bit-flipped on disk -- the next load
      must quarantine it, never serve garbage;
    - **clock skew**: the service's deadline clock runs
      ``clock_skew_s`` ahead of (positive) or behind (negative) the
      true monotonic clock -- deadlines shift but every request must
      still terminate with a typed outcome.

    ``seed`` feeds the injector's private RNG so a chaos run is
    reproducible.
    """

    hang_rate: float = 0.0
    hang_seconds: float = 30.0
    crash_rate: float = 0.0
    corrupt_rate: float = 0.0
    clock_skew_s: float = 0.0
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("hang_rate", "crash_rate", "corrupt_rate"):
            _check_rate(name, getattr(self, name))
        if self.hang_rate > 0 and self.hang_seconds <= 0:
            raise FaultInjectionError(
                f"hang_seconds must be positive when hang_rate > 0, "
                f"got {self.hang_seconds!r}")

    @property
    def any_faults(self) -> bool:
        """Whether this plan can produce any fault at all."""
        return bool(self.hang_rate or self.crash_rate
                    or self.corrupt_rate or self.clock_skew_s)


@dataclass
class ServiceFaultStats:
    """Counters of injected service faults over one chaos run."""

    hangs: int = 0
    crashes: int = 0
    corruptions: int = 0

    def total_disruptions(self) -> int:
        """Total individual fault events injected."""
        return self.hangs + self.crashes + self.corruptions


class ServiceFaultInjector:
    """Stateful interpreter of a :class:`ServiceFaultPlan`.

    Owns a private RNG and the fault counters; the chaos harness
    queries it per solve attempt and per artifact write.  Decisions
    are drawn in a fixed order per query so a given plan + seed
    produces a reproducible fault sequence.
    """

    def __init__(self, plan: ServiceFaultPlan,
                 rng: Optional[np.random.Generator] = None) -> None:
        self.plan = plan
        self.rng = rng if rng is not None else np.random.default_rng(
            plan.seed)
        self.stats = ServiceFaultStats()

    def draw_hang(self) -> Optional[float]:
        """Seconds this solve attempt should hang, or ``None``."""
        if self.plan.hang_rate and self.rng.random() < self.plan.hang_rate:
            self.stats.hangs += 1
            return self.plan.hang_seconds
        return None

    def draw_crash(self) -> bool:
        """Whether this solve attempt dies with a worker crash."""
        if self.plan.crash_rate and self.rng.random() < self.plan.crash_rate:
            self.stats.crashes += 1
            return True
        return False

    def draw_corruption(self) -> bool:
        """Whether this artifact write gets corrupted on disk."""
        if self.plan.corrupt_rate and \
                self.rng.random() < self.plan.corrupt_rate:
            self.stats.corruptions += 1
            return True
        return False

    def skewed_clock(self, clock=None):
        """A monotonic clock shifted by the plan's ``clock_skew_s``."""
        import time as _time
        base = clock if clock is not None else _time.monotonic
        skew = self.plan.clock_skew_s
        return lambda: base() + skew
