"""Supervised runtime for long-running computations.

This package is the robustness layer between the mathematical toolkit
and production-scale sweeps:

- :mod:`repro.runtime.budget` -- wall-clock/iteration budgets enforced
  cooperatively through the solvers' ``on_iter`` hooks;
- :mod:`repro.runtime.fallbacks` -- declarative solver fallback chains
  (Dinkelbach -> bisection -> value iteration -> LP) with per-stage
  diagnostics;
- :mod:`repro.runtime.supervisor` -- :class:`SolverSupervisor`, tying
  budgets, input/output validation and fallback chains together;
- :mod:`repro.runtime.journal` -- atomic file writes and the
  append-only checkpoint journal;
- :mod:`repro.runtime.sweeprunner` -- :class:`SweepRunner`,
  checkpointed resumable execution of sweep cells;
- :mod:`repro.runtime.faults` -- fault plans (loss, delay,
  duplication, crashes, partitions) for the network simulator.

See ``docs/robustness.md`` for the full design.
"""

from repro.runtime.budget import Budget, BudgetClock
from repro.runtime.fallbacks import (
    AVERAGE_CHAIN,
    AverageRequest,
    ChainResult,
    RATIO_CHAIN,
    RatioRequest,
    StageDiagnostics,
    run_chain,
)
from repro.runtime.faults import (
    CrashWindow,
    FaultInjector,
    FaultPlan,
    FaultStats,
    PartitionWindow,
)
from repro.runtime.journal import JOURNAL_SCHEMA, Journal, atomic_write_text
from repro.runtime.supervisor import SolverSupervisor
from repro.runtime.sweeprunner import SweepRunner, SweepStats

__all__ = [
    "Budget",
    "BudgetClock",
    "RATIO_CHAIN",
    "AVERAGE_CHAIN",
    "RatioRequest",
    "AverageRequest",
    "ChainResult",
    "StageDiagnostics",
    "run_chain",
    "SolverSupervisor",
    "Journal",
    "JOURNAL_SCHEMA",
    "atomic_write_text",
    "SweepRunner",
    "SweepStats",
    "FaultPlan",
    "FaultInjector",
    "FaultStats",
    "CrashWindow",
    "PartitionWindow",
]
