"""Supervised runtime for long-running computations.

This package is the robustness layer between the mathematical toolkit
and production-scale sweeps:

- :mod:`repro.runtime.budget` -- wall-clock/iteration budgets enforced
  cooperatively through the solvers' ``on_iter`` hooks;
- :mod:`repro.runtime.fallbacks` -- declarative solver fallback chains
  (Dinkelbach -> bisection -> value iteration -> LP) with per-stage
  diagnostics;
- :mod:`repro.runtime.supervisor` -- :class:`SolverSupervisor`, tying
  budgets, input/output validation and fallback chains together;
- :mod:`repro.runtime.journal` -- atomic file writes and the
  append-only checkpoint journal;
- :mod:`repro.runtime.sweeprunner` -- :class:`SweepRunner`,
  checkpointed resumable execution of sweep cells;
- :mod:`repro.runtime.telemetry` -- structured tracing and metrics
  (spans, counters, gauges, JSONL trace files);
- :mod:`repro.runtime.faults` -- fault plans (loss, delay,
  duplication, crashes, partitions) for the network simulator.

Exports resolve lazily (PEP 562): instrumented low-level modules (e.g.
:mod:`repro.mdp.kernels`) import :mod:`repro.runtime.telemetry`, and an
eager ``__init__`` would close an import cycle back through
:mod:`repro.runtime.fallbacks` into :mod:`repro.mdp`.

See ``docs/robustness.md`` and ``docs/observability.md`` for the full
design.
"""

from importlib import import_module

#: Re-exported name -> defining submodule.
_EXPORTS = {
    "Budget": "repro.runtime.budget",
    "BudgetClock": "repro.runtime.budget",
    "RATIO_CHAIN": "repro.runtime.fallbacks",
    "AVERAGE_CHAIN": "repro.runtime.fallbacks",
    "RatioRequest": "repro.runtime.fallbacks",
    "AverageRequest": "repro.runtime.fallbacks",
    "ChainResult": "repro.runtime.fallbacks",
    "StageDiagnostics": "repro.runtime.fallbacks",
    "run_chain": "repro.runtime.fallbacks",
    "SolverSupervisor": "repro.runtime.supervisor",
    "Journal": "repro.runtime.journal",
    "JOURNAL_SCHEMA": "repro.runtime.journal",
    "atomic_write_text": "repro.runtime.journal",
    "SweepRunner": "repro.runtime.sweeprunner",
    "SweepStats": "repro.runtime.sweeprunner",
    "FaultPlan": "repro.runtime.faults",
    "FaultInjector": "repro.runtime.faults",
    "FaultStats": "repro.runtime.faults",
    "CrashWindow": "repro.runtime.faults",
    "PartitionWindow": "repro.runtime.faults",
    "ServiceFaultPlan": "repro.runtime.faults",
    "ServiceFaultInjector": "repro.runtime.faults",
    "ServiceFaultStats": "repro.runtime.faults",
    "Tracer": "repro.runtime.telemetry",
    "enable_tracing": "repro.runtime.telemetry",
    "disable_tracing": "repro.runtime.telemetry",
    "tracing_enabled": "repro.runtime.telemetry",
}

_SUBMODULES = frozenset({
    "bench", "budget", "fallbacks", "faults", "journal", "parallel",
    "supervisor", "sweeprunner", "telemetry",
})

__all__ = sorted(_EXPORTS)


def __getattr__(name):
    if name in _EXPORTS:
        return getattr(import_module(_EXPORTS[name]), name)
    if name in _SUBMODULES:
        return import_module(f"repro.runtime.{name}")
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(__all__) | set(globals()) | _SUBMODULES)
