"""Wall-clock and iteration budgets for supervised solves.

A :class:`Budget` is a declarative limit; a :class:`BudgetClock` is one
enforcement run of that limit.  Solvers cooperate by calling the
clock's :meth:`~BudgetClock.tick` from their inner loops (the MDP
solvers accept an ``on_iter`` hook for exactly this), so a stalled
Dinkelbach iteration or a pathological policy-iteration run is cut off
with a typed :class:`~repro.errors.SolverBudgetExceededError` instead
of hanging a sweep indefinitely.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.errors import SolverBudgetExceededError, SolverInputError


@dataclass(frozen=True)
class Budget:
    """Limits for one supervised computation.

    Attributes
    ----------
    wall_clock:
        Maximum elapsed seconds (``None`` = unlimited).
    max_ticks:
        Maximum number of solver iterations/inner solves counted via
        :meth:`BudgetClock.tick` (``None`` = unlimited).
    """

    wall_clock: Optional[float] = None
    max_ticks: Optional[int] = None

    def __post_init__(self) -> None:
        if self.wall_clock is not None and self.wall_clock <= 0:
            raise SolverInputError(
                f"wall_clock budget must be positive, got {self.wall_clock}")
        if self.max_ticks is not None and self.max_ticks < 1:
            raise SolverInputError(
                f"max_ticks budget must be >= 1, got {self.max_ticks}")

    def start(self) -> "BudgetClock":
        """Begin enforcing this budget now."""
        return BudgetClock(self)


class BudgetClock:
    """One enforcement run of a :class:`Budget`.

    The clock is deliberately cheap: a tick is one counter increment
    and (when a wall-clock limit exists) one monotonic-clock read.
    """

    def __init__(self, budget: Budget) -> None:
        self.budget = budget
        self.started = time.monotonic()
        self.ticks = 0

    @property
    def elapsed(self) -> float:
        """Seconds since the clock started."""
        return time.monotonic() - self.started

    def tick(self, count: int = 1) -> None:
        """Record ``count`` units of solver work; raise when over
        budget.

        Raises
        ------
        SolverBudgetExceededError
            When either the iteration or the wall-clock limit is
            exhausted.
        """
        self.ticks += count
        limit = self.budget.max_ticks
        if limit is not None and self.ticks > limit:
            raise SolverBudgetExceededError(
                f"iteration budget exhausted ({self.ticks} > {limit})")
        wall = self.budget.wall_clock
        if wall is not None:
            elapsed = self.elapsed
            if elapsed > wall:
                raise SolverBudgetExceededError(
                    f"wall-clock budget exhausted "
                    f"({elapsed:.3f}s > {wall:.3f}s)")


#: A clock that never expires, for unsupervised call sites.
UNLIMITED = Budget()
