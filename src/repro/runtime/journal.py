"""Crash-safe persistence primitives: atomic file writes and an
append-only checkpoint journal.

Two failure modes motivate this module:

- a process killed while *rewriting* a result file must never leave a
  truncated JSON document behind -- :func:`atomic_write_text` writes to
  a temporary file in the same directory and ``os.replace``\\ s it over
  the target, so readers observe either the old or the new content;
- a process killed while *appending* to a sweep journal may leave a
  partial final line -- :class:`Journal` tolerates exactly that (the
  torn tail is discarded on load) while treating corruption anywhere
  else as a hard :class:`~repro.errors.CheckpointError`.

The journal is JSON-lines: a schema-versioned header record followed by
one ``{"key": ..., "value": ...}`` record per completed sweep cell.
Keys are canonicalized (``sort_keys``) so lookups are stable across
runs.  See ``docs/robustness.md`` for the on-disk format.
"""

from __future__ import annotations

import json
import os
import tempfile
import warnings
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple, Union

from repro.errors import CheckpointError

PathLike = Union[str, Path]

#: Journal format version; bump on breaking layout changes.
JOURNAL_SCHEMA = 1


def _fsync_directory(directory: Path) -> None:
    """fsync a directory so a just-completed rename inside it survives
    a crash.  ``os.replace`` makes the rename atomic but not durable:
    until the directory entry itself is flushed, a power loss can roll
    the rename back.  Best-effort on platforms whose filesystems do
    not support directory file descriptors."""
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    except OSError:
        pass
    finally:
        os.close(dir_fd)


def atomic_write_text(path: PathLike, text: str) -> None:
    """Write ``text`` to ``path`` atomically and durably.

    The text is written to a temporary file in the same directory
    (same filesystem, so the final ``os.replace`` is atomic), flushed
    and fsynced, then renamed over the target; the parent directory is
    fsynced afterwards so the rename itself survives a crash.  A crash
    at any point leaves either the previous content or the new
    content, never a truncated mix.
    """
    target = Path(path)
    fd, tmp_name = tempfile.mkstemp(dir=target.parent,
                                    prefix=target.name + ".",
                                    suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, target)
        _fsync_directory(target.parent)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def canonical_key(key) -> str:
    """Serialize a JSON-compatible key to its canonical text form."""
    try:
        return json.dumps(key, sort_keys=True)
    except (TypeError, ValueError) as exc:
        raise CheckpointError(
            f"journal key {key!r} is not JSON-serializable") from exc


class Journal:
    """An append-only, schema-versioned checkpoint journal for sweeps.

    Parameters
    ----------
    path:
        Journal file location.  Created (with a header record) if
        missing; loaded and validated if present.
    sweep:
        Name of the sweep this journal belongs to.  Opening an existing
        journal with a different sweep name raises
        :class:`~repro.errors.CheckpointError` -- resuming the wrong
        sweep from a journal would silently mix results.
    meta:
        Optional JSON-compatible metadata stored in the header (e.g.
        the parameter grid), for human inspection only.
    """

    def __init__(self, path: PathLike, sweep: str,
                 meta: Optional[Dict] = None) -> None:
        self.path = Path(path)
        self.sweep = str(sweep)
        self._records: Dict[str, object] = {}
        if self.path.exists():
            self._load()
        else:
            header = {"schema": JOURNAL_SCHEMA, "kind": "journal",
                      "sweep": self.sweep, "meta": meta or {}}
            atomic_write_text(self.path, json.dumps(header) + "\n")

    # -- loading ------------------------------------------------------

    def _load(self) -> None:
        text = self.path.read_text()
        # A record append always ends with a newline, so a final line
        # without one can only be the torn tail of a crash mid-append;
        # a *newline-terminated* unparsable line is genuine corruption.
        torn_tail_possible = not text.endswith("\n")
        lines = text.split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        if not lines:
            raise CheckpointError(f"{self.path} is empty")
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise CheckpointError(
                f"{self.path} has a corrupt header") from exc
        if not isinstance(header, dict) or header.get("kind") != "journal":
            raise CheckpointError(f"{self.path} is not a sweep journal")
        if header.get("schema") != JOURNAL_SCHEMA:
            raise CheckpointError(
                f"{self.path} uses unsupported journal schema "
                f"{header.get('schema')!r} (expected {JOURNAL_SCHEMA})")
        if header.get("sweep") != self.sweep:
            raise CheckpointError(
                f"{self.path} belongs to sweep {header.get('sweep')!r}, "
                f"not {self.sweep!r}")
        for lineno, line in enumerate(lines[1:], start=2):
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if lineno == len(lines) and torn_tail_possible:
                    # Torn tail from a crash mid-append: discard the
                    # partial record, keep everything before it.
                    warnings.warn(
                        f"{self.path}:{lineno}: discarding truncated "
                        f"final journal line (crash mid-append); "
                        f"{len(self._records)} records recovered",
                        RuntimeWarning, stacklevel=2)
                    break
                raise CheckpointError(
                    f"{self.path}:{lineno} is corrupt (not a torn tail)")
            if (not isinstance(record, dict) or "key" not in record
                    or "value" not in record):
                raise CheckpointError(
                    f"{self.path}:{lineno} is not a cell record")
            self._records[canonical_key(record["key"])] = record["value"]

    # -- queries ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key) -> bool:
        return canonical_key(key) in self._records

    def get(self, key):
        """Return the recorded value for ``key``.

        Raises
        ------
        CheckpointError
            If the key has not been recorded.
        """
        text = canonical_key(key)
        if text not in self._records:
            raise CheckpointError(f"no journal record for key {key!r}")
        return self._records[text]

    def items(self) -> Iterator[Tuple[str, object]]:
        """Iterate ``(canonical_key, value)`` pairs in record order."""
        return iter(self._records.items())

    # -- recording ----------------------------------------------------

    def record(self, key, value) -> None:
        """Append one completed cell (idempotent per key).

        Re-recording a key with an identical value is a no-op (no
        duplicate line is appended, so resume loops that re-record
        restored cells cannot grow the journal without bound).
        Re-recording with a *different* value raises
        :class:`~repro.errors.CheckpointError` -- a sweep whose cells
        are not deterministic per key must not silently journal both.
        Values compare by canonical JSON form, matching what a reload
        would observe.  Files written before this rule keep their
        load-time last-write-wins semantics.
        """
        text = canonical_key(key)
        if text in self._records:
            existing = json.dumps(self._records[text], sort_keys=True)
            try:
                incoming = json.dumps(value, sort_keys=True)
            except (TypeError, ValueError) as exc:
                raise CheckpointError(
                    f"journal value for key {key!r} is not "
                    "JSON-serializable") from exc
            if existing == incoming:
                return
            raise CheckpointError(
                f"conflicting re-record for key {key!r}: journal holds "
                f"{existing}, got {incoming}")
        line = json.dumps({"key": key, "value": value})
        with open(self.path, "a") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        self._records[text] = value
