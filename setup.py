"""Setuptools shim enabling legacy editable installs offline."""

from setuptools import setup

setup()
