"""Bench: the N-node network simulation -- the Section 6.2 trade-off
(giant-block embedding vs perpetual forking) at network scale."""

import numpy as np

from benchmarks.conftest import run_once
from repro.protocol.params import BUParams
from repro.sim.network import NetworkMiner, NetworkSimulation, \
    SplitAttacker


def heterogeneous():
    return [
        NetworkMiner("small_eb", 0.45, BUParams(mg=1.0, eb=1.0, ad=6)),
        NetworkMiner("large_eb", 0.40, BUParams(mg=1.0, eb=16.0, ad=6)),
    ]


def test_gate_tradeoff(benchmark):
    def both_regimes():
        out = {}
        for sticky in (True, False):
            sim = NetworkSimulation(
                heterogeneous(), attacker=SplitAttacker(4.0),
                attacker_power=0.15, sticky=sticky,
                rng=np.random.default_rng(11))
            out[sticky] = sim.run(5000)
        return out

    results = run_once(benchmark, both_regimes)
    gated, ungated = results[True], results[False]
    # Gate on: giant blocks embedded, little forking.
    assert gated.giant_blocks_on_chain > ungated.giant_blocks_on_chain
    # Gate off: perpetual forking instead.
    assert ungated.orphans > 10 * max(gated.orphans, 1)
    assert ungated.disagreement_fraction > gated.disagreement_fraction
