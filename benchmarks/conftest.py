"""Shared helpers for the benchmark suite.

Every bench regenerates one of the paper's tables or figures (or an
ablation of them) and checks the result against the recorded paper
values where the reproduction is exact.  Heavy solves run with
``benchmark.pedantic(rounds=1)`` -- the timing of a single solve is the
interesting number, not a statistical distribution over repeats.
"""

from __future__ import annotations


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with a single round/iteration and return its
    result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
