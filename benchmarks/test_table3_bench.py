"""Bench E3: regenerate Table 3's BU block (absolute reward,
non-compliant Alice).

The setting-2 column reproduces the paper exactly; the setting-1 column
reproduces the paper's shape (see EXPERIMENTS.md for the recorded
deviation analysis).
"""

import pytest

from benchmarks.conftest import run_once
from repro.analysis.tables import PAPER_TABLE3_SET2, table3

RATIOS = ((4, 1), (2, 1), (1, 1), (1, 2), (1, 4))


def test_table3_setting1_alpha10_row(benchmark):
    result = run_once(benchmark, table3, setting=1, alphas=(0.10,),
                      ratios=RATIOS)
    values = {r: result.cells[(f"0.1", f"{r[0]}:{r[1]}")] for r in RATIOS}
    # Shape assertions (who wins, and by how much).
    assert values[(1, 1)] == max(values.values())
    assert values[(2, 1)] > values[(1, 2)]
    assert all(v > 0.10 for v in values.values())


def test_table3_setting1_one_percent_miner(benchmark):
    result = run_once(benchmark, table3, setting=1, alphas=(0.01,),
                      ratios=((1, 1),))
    value = result.cells[("0.01", "1:1")]
    assert value > 3 * 0.01  # triple the honest income


@pytest.mark.parametrize("alpha", [0.10, 0.25])
def test_table3_setting2_row(benchmark, alpha):
    ratios = RATIOS if alpha <= 0.2 else ((2, 1), (1, 1), (1, 2))
    result = run_once(benchmark, table3, setting=2, alphas=(alpha,),
                      ratios=ratios)
    for ratio in ratios:
        key = (f"{alpha:.4g}", f"{ratio[0]}:{ratio[1]}")
        assert result.cells[key] == pytest.approx(
            PAPER_TABLE3_SET2[(ratio, alpha)], abs=6e-3)
