"""Bench: per-race absorbing-chain analysis -- the quantities behind
the paper's narrative (win probabilities, race lengths, Table 4's
orphan counts re-derived per race)."""

import pytest

from benchmarks.conftest import run_once
from repro.core.config import AttackConfig
from repro.core.race_analysis import race_statistics, watch_only


def test_race_statistics_grid(benchmark):
    def sweep():
        out = {}
        for ratio in ((2, 1), (1, 1), (2, 3), (1, 2)):
            config = AttackConfig.from_ratio(0.10, ratio, setting=1)
            out[ratio] = race_statistics(config)
        return out

    stats = run_once(benchmark, sweep)
    assert stats[(1, 1)].chain2_win_probability > 0.5
    assert stats[(2, 1)].chain2_win_probability < 0.5
    assert stats[(1, 1)].expected_length > stats[(2, 1)].expected_length


def test_watch_only_rederives_table4(benchmark):
    config = AttackConfig.from_ratio(0.01, (2, 3), setting=1,
                                     include_wait=True)
    st = run_once(benchmark, race_statistics, config, watch_only)
    alice_spent = st.expected_alice_locked + (
        st.expected_orphans - st.expected_others_orphans)
    assert st.expected_others_orphans / alice_spent == pytest.approx(
        1.7746, abs=1e-3)
