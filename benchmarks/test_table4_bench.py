"""Bench E5: regenerate Table 4 (others' blocks orphaned per attacker
block, non-profit-driven Alice with the Wait action)."""

import pytest

from benchmarks.conftest import run_once
from repro.analysis.tables import PAPER_TABLE4, TABLE4_RATIOS, table4


def test_table4_setting1_full(benchmark):
    result = run_once(benchmark, table4, alpha=0.01, ratios=TABLE4_RATIOS,
                      settings=(1,))
    for ratio in TABLE4_RATIOS:
        key = (f"{ratio[0]}:{ratio[1]}", "setting1")
        assert result.cells[key] == pytest.approx(
            PAPER_TABLE4[(ratio, 1)], abs=1e-2)
    # The paper's headline: up to 1.77 orphans per attacker block.
    assert max(result.cells.values()) == pytest.approx(1.77, abs=1e-2)


def test_table4_setting2_subset(benchmark):
    ratios = ((2, 1), (1, 1), (2, 3))
    result = run_once(benchmark, table4, alpha=0.01, ratios=ratios,
                      settings=(2,))
    for ratio in ratios:
        key = (f"{ratio[0]}:{ratio[1]}", "setting2")
        assert result.cells[key] == pytest.approx(
            PAPER_TABLE4[(ratio, 2)], abs=1e-2)


def test_table4_alpha_independence(benchmark):
    """Section 4.4: the damage is nearly independent of alpha."""
    result = run_once(benchmark, table4, alpha=0.05, ratios=((2, 3),),
                      settings=(1,))
    assert result.cells[("2:3", "setting1")] == pytest.approx(1.77,
                                                              abs=2e-2)
