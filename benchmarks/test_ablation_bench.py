"""Bench A1: ablations of the design choices DESIGN.md calls out --
acceptance depth, phase-3 return, gate countdown, sticky gate on/off."""

import pytest

from benchmarks.conftest import run_once
from repro.analysis.sweeps import sweep_attack
from repro.core.config import AttackConfig
from repro.core.incentives import IncentiveModel
from repro.core.solve import solve_absolute_reward, solve_orphan_rate


def test_ad_sweep(benchmark):
    """Section 6.2: a larger AD lets the attacker keep the chain forked
    longer -- u_A3 grows monotonically with AD."""
    base = AttackConfig.from_ratio(0.01, (2, 3), setting=1)
    sweep = run_once(benchmark, sweep_attack, base, "ad", [2, 4, 6, 8, 10],
                     IncentiveModel.NON_PROFIT)
    utilities = sweep.utilities()
    assert utilities == sorted(utilities)
    assert utilities[-1] > 2 * utilities[1]


def test_phase3_return_ablation(benchmark):
    """The phase-3 interpretation knob barely moves setting-2 results."""
    def solve_both():
        out = {}
        for knob in ("phase1", "phase2_reset"):
            config = AttackConfig.from_ratio(0.10, (1, 1), setting=2,
                                             phase3_return=knob)
            out[knob] = solve_absolute_reward(config).utility
        return out

    values = run_once(benchmark, solve_both)
    assert values["phase1"] == pytest.approx(values["phase2_reset"],
                                             abs=5e-3)


def test_gate_countdown_ablation(benchmark):
    def solve_both():
        out = {}
        for knob in ("locked_blocks", "l1"):
            config = AttackConfig.from_ratio(0.10, (1, 2), setting=2,
                                             gate_countdown=knob)
            out[knob] = solve_absolute_reward(config).utility
        return out

    values = run_once(benchmark, solve_both)
    assert values["locked_blocks"] == pytest.approx(values["l1"], abs=5e-3)


def test_sticky_gate_removal_does_not_fix_bu(benchmark):
    """BUIP038 ablation: disabling the gate leaves u_A3 far above
    Bitcoin's bound of 1."""
    def solve():
        config = AttackConfig.from_ratio(0.01, (1, 1), setting=1)
        return solve_orphan_rate(config).utility

    value = run_once(benchmark, solve)
    assert value > 1.7
