"""Bench A7: double-spend parameter sensitivity and deadline pricing --
the mitigation levers merchants and time impose on the attacker."""

import pytest

from benchmarks.conftest import run_once
from repro.analysis.sensitivity import ds_sensitivity
from repro.core.config import AttackConfig
from repro.core.deadline import deadline_value


def test_confirmation_sweep(benchmark):
    base = AttackConfig.from_ratio(0.10, (1, 1), setting=1)
    grid = run_once(benchmark, ds_sensitivity, base,
                    confirmations=(3, 4, 6), rds_values=(5.0, 10.0))
    assert grid.monotone_in_rds()
    assert grid.monotone_in_confirmations()
    assert grid.values[(4, 10.0)] == pytest.approx(0.3123, abs=1e-3)
    assert grid.values[(6, 10.0)] < 0.6 * grid.values[(4, 10.0)]


def test_deadline_curve(benchmark):
    config = AttackConfig.from_ratio(0.25, (2, 3), setting=1)

    def sweep():
        return {h: deadline_value(config, h).deadline_efficiency
                for h in (10, 40, 144)}

    efficiencies = run_once(benchmark, sweep)
    assert efficiencies[10] < efficiencies[40] < efficiencies[144]
    assert efficiencies[144] > 0.9
