"""Bench E4: regenerate Table 3's Bitcoin block (selfish mining +
double-spending with tie-winning probabilities 50% and 100%)."""

import pytest

from benchmarks.conftest import run_once
from repro.analysis.tables import PAPER_TABLE3_BITCOIN, table3_bitcoin


def test_table3_bitcoin_block(benchmark):
    result = run_once(benchmark, table3_bitcoin, ties=(0.5, 1.0),
                      alphas=(0.10, 0.15, 0.20, 0.25))
    # Exact-ish cells (tight agreement with the paper).
    assert result.cells[("tie=50%", "10%")] == pytest.approx(0.10, abs=5e-3)
    assert result.cells[("tie=50%", "15%")] == pytest.approx(0.15, abs=5e-3)
    assert result.cells[("tie=100%", "10%")] == pytest.approx(0.11, abs=1e-2)
    assert result.cells[("tie=100%", "15%")] == pytest.approx(0.18, abs=1e-2)
    assert result.cells[("tie=100%", "20%")] == pytest.approx(0.30, abs=2e-2)
    assert result.cells[("tie=100%", "25%")] == pytest.approx(0.52, abs=4e-2)
    # Shape: winning all ties dominates winning half of them.
    for alpha in ("10%", "15%", "20%", "25%"):
        assert (result.cells[("tie=100%", alpha)]
                >= result.cells[("tie=50%", alpha)] - 1e-9)


def test_bitcoin_small_miner_cannot_profit(benchmark):
    """The comparison the paper draws against BU's 1% attacker."""
    result = run_once(benchmark, table3_bitcoin, ties=(1.0,),
                      alphas=(0.01, 0.05))
    assert result.cells[("tie=100%", "1%")] == pytest.approx(0.01, abs=1e-3)
    assert result.cells[("tie=100%", "5%")] == pytest.approx(0.05, abs=2e-3)


def test_paper_reference_values_recorded(benchmark):
    table = run_once(benchmark, dict, PAPER_TABLE3_BITCOIN)
    assert len(table) == 8
