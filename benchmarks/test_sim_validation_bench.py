"""Bench V1: Monte-Carlo cross-validation -- the substrate simulator
replaying an MDP-optimal policy reproduces the exact utilities."""

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.analysis.validation import validate_against_sim
from repro.core.config import AttackConfig
from repro.core.incentives import IncentiveModel


def test_absolute_reward_sim_agreement(benchmark):
    config = AttackConfig.from_ratio(0.10, (1, 1), setting=1)
    report = run_once(benchmark, validate_against_sim, config,
                      IncentiveModel.NONCOMPLIANT_PROFIT, steps=60_000,
                      rng=np.random.default_rng(7))
    assert report.utility_error < 0.02
    assert report.max_rate_error() < 0.01


def test_relative_revenue_sim_agreement(benchmark):
    config = AttackConfig.from_ratio(0.25, (2, 3), setting=1)
    report = run_once(benchmark, validate_against_sim, config,
                      IncentiveModel.COMPLIANT_PROFIT, steps=60_000,
                      rng=np.random.default_rng(8))
    assert report.analysis.utility == pytest.approx(0.2739, abs=5e-4)
    assert report.utility_error < 0.01
