"""Bench: natural fork rate under propagation delay (the Section 6.4
large-block cost model) over the event-driven substrate."""

import numpy as np

from benchmarks.conftest import run_once
from repro.baselines.honest import fork_rate_with_delay
from repro.sim.latency import LatencyMiner, LatencySimulation


def test_fork_rate_vs_delay_curve(benchmark):
    def sweep():
        out = {}
        miners = [LatencyMiner(f"m{i}", 0.2) for i in range(5)]
        for delay in (6.0, 30.0, 120.0):
            sim = LatencySimulation(miners, block_interval=600.0,
                                    delay=delay)
            out[delay] = sim.run(2500,
                                 rng=np.random.default_rng(1)).fork_rate
        return out

    rates = run_once(benchmark, sweep)
    assert rates[6.0] < rates[30.0] < rates[120.0]
    # Within the collision-probability envelope at every delay.
    for delay, rate in rates.items():
        assert rate <= fork_rate_with_delay(600.0, delay) * 1.2
