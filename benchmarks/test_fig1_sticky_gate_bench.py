"""Bench E6: Figure 1 -- the sticky gate's accept/reject life cycle
over the real validity engine."""

from benchmarks.conftest import run_once
from repro.sim.figures import figure1_sticky_gate


def test_figure1_default(benchmark):
    result = run_once(benchmark, figure1_sticky_gate)
    assert result.rejected_before_depth
    assert result.accepted_at_depth
    assert result.limit_before == 1.0
    assert result.limit_after == 32.0
    assert result.gate_closed_after_window


def test_figure1_paper_parameters(benchmark):
    """AD = 6 and the 144-block window used by 2017 BU miners."""
    result = run_once(benchmark, figure1_sticky_gate, eb=1.0, ad=6,
                      gate_window=144)
    assert result.rejected_before_depth and result.accepted_at_depth
    assert result.gate_closed_after_window
