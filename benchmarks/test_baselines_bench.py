"""Bench: Bitcoin baseline solvers -- optimal selfish mining against
the published Sapirshtein values, and the stubborn-strategy sweep."""

import pytest

from benchmarks.conftest import run_once
from repro.baselines.selfish import SelfishMiningConfig, \
    solve_selfish_mining
from repro.baselines.stubborn import sweep_profiles


def test_optimal_selfish_mining_published_value(benchmark):
    config = SelfishMiningConfig(alpha=1 / 3, tie_power=0.0, max_len=30)
    result = run_once(benchmark, solve_selfish_mining, config)
    assert result.relative_revenue == pytest.approx(0.33707, abs=2e-4)


def test_stubborn_sweep(benchmark):
    config = SelfishMiningConfig(alpha=0.35, tie_power=0.8)
    results = run_once(benchmark, sweep_profiles, config, max_trail=2)
    optimal = solve_selfish_mining(config).relative_revenue
    assert all(r.relative_revenue <= optimal + 1e-7
               for r in results.values())
    assert results["L,F"].relative_revenue \
        > results["SM1"].relative_revenue
