"""Bench E7: Figure 2 -- the phase-1 and phase-2 chain splits replayed
through the substrate simulator."""

from benchmarks.conftest import run_once
from repro.sim.figures import figure2_phase_forks


def test_figure2_phases(benchmark):
    result = run_once(benchmark, figure2_phase_forks)
    assert result.phase1_split
    assert result.phase2_entered
    assert result.phase2_split


def test_figure2_with_paper_ad(benchmark):
    result = run_once(benchmark, figure2_phase_forks, ad=6)
    assert result.phase1_split and result.phase2_split
