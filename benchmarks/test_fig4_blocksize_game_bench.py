"""Bench E9: Figure 4 -- the block size increasing game's worked
example, plus scaling of the stable-set recursion."""

from fractions import Fraction

from benchmarks.conftest import run_once
from repro.games.block_size import BlockSizeIncreasingGame, MinerGroup
from repro.games.stability import terminal_suffix_start


def figure4_game():
    return BlockSizeIncreasingGame([
        MinerGroup(mpb=1.0, power=0.1),
        MinerGroup(mpb=2.0, power=0.2),
        MinerGroup(mpb=4.0, power=0.3),
        MinerGroup(mpb=8.0, power=0.4),
    ])


def test_figure4_playout(benchmark):
    played = run_once(benchmark, lambda: figure4_game().play())
    assert played.survivors == (1, 2, 3)
    assert played.final_mg == 2.0
    assert played.rounds[0].passed
    assert not played.rounds[1].passed
    assert played.rounds[1].no_votes == (1, 2)


def test_stable_set_recursion_scales(benchmark):
    """The recursion stays exact (Fractions) on 60 groups."""
    powers = [Fraction(i + 1, sum(range(1, 61))) for i in range(60)]

    def solve():
        return terminal_suffix_start(powers)

    start = run_once(benchmark, solve)
    assert 0 <= start < 60
