"""Bench E11: the Section 6.3 countermeasure -- a year of 2016-block
voting periods with the paper's parameters, BVC preserved throughout."""

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.countermeasure import (
    PreferenceVoter,
    VoteParams,
    VotingSimulation,
    equilibrium_limit,
)


def miners():
    return [
        PreferenceVoter("small", power=0.2, preferred_size=1.0),
        PreferenceVoter("medium", power=0.3, preferred_size=2.0),
        PreferenceVoter("large", power=0.5, preferred_size=8.0),
    ]


def test_expected_mode_year(benchmark):
    params = VoteParams()  # paper defaults: 2016 blocks, 200 delay, 0.1 MB
    sim = VotingSimulation(miners(), params)
    trace = run_once(benchmark, sim.run, n_periods=26)  # ~ one year
    assert trace.bvc_holds()
    assert trace.final_limit == equilibrium_limit(miners(), params)
    # The 20% small miner stays below the 25% veto threshold, so the
    # limit climbs past 1 MB; past 2 MB the medium miner joins the
    # down-voters (0.5 power) and the climb stops.
    assert trace.final_limit == pytest.approx(2.0, abs=1e-9)


def test_stochastic_mode_year(benchmark):
    params = VoteParams(up_threshold=0.7, veto_threshold=0.25)
    sim = VotingSimulation(miners(), params)
    trace = run_once(benchmark, sim.run, n_periods=26,
                     rng=np.random.default_rng(99))
    assert trace.bvc_holds()
    assert 1.0 <= trace.final_limit <= 8.0
