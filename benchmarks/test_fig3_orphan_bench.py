"""Bench E8: Figure 3 -- one attacker block orphaning two compliant
blocks, the seed observation behind Table 4."""

from benchmarks.conftest import run_once
from repro.sim.figures import figure3_orphaning


def test_figure3_two_for_one(benchmark):
    result = run_once(benchmark, figure3_orphaning)
    assert result.alice_blocks_spent == 1
    assert result.others_orphaned == 2
    assert result.orphans_per_alice_block == 2.0
