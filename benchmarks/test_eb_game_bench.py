"""Bench E10: the EB choosing game -- Analytical Result 4's equilibria
verified exhaustively over a 12-miner game."""

from benchmarks.conftest import run_once
from repro.games.eb_choosing import EBChoosingGame


def test_consensus_equilibria_exhaustive(benchmark):
    powers = [1 / 12] * 12
    game = EBChoosingGame(powers)

    def all_nash():
        return game.nash_equilibria()

    equilibria = run_once(benchmark, all_nash)
    choices = {p.choices for p in equilibria}
    assert (0,) * 12 in choices
    assert (1,) * 12 in choices
    # Every equilibrium is a consensus: a 12-way uniform split means a
    # deviator always lands on the (weak) minority side.
    assert all(len(set(p.choices)) == 1 for p in equilibria)


def test_best_response_dynamics_converge(benchmark):
    game = EBChoosingGame([0.2, 0.15, 0.15, 0.2, 0.3])

    def converge():
        from repro.games.eb_choosing import EBProfile
        return game.best_response_dynamics(EBProfile((0, 1, 0, 1, 1)))

    trajectory = run_once(benchmark, converge)
    assert game.is_nash_equilibrium(trajectory[-1])
