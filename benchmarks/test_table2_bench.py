"""Bench E2: regenerate Table 2 (relative revenue, compliant Alice).

Setting 1 covers the full alpha = 25% row (where the paper reports the
strongest incentive-compatibility violations); setting 2 solves the
30,595-state sticky-gate MDP for one cell.
"""

import pytest

from benchmarks.conftest import run_once
from repro.analysis.tables import PAPER_TABLE2, PAPER_TABLE2_SET2, table2


def test_table2_setting1_alpha25_row(benchmark):
    result = run_once(benchmark, table2, setting=1, alphas=(0.25,),
                      ratios=((3, 2), (1, 1), (2, 3), (1, 2)))
    for ratio in ((3, 2), (1, 1), (2, 3), (1, 2)):
        key = (f"{ratio[0]}:{ratio[1]}", "25%")
        assert result.cells[key] == pytest.approx(
            PAPER_TABLE2[(ratio, 0.25)], abs=5e-4)


def test_table2_setting1_boundary_cells(benchmark):
    """Cells where the optimal strategy is honest (u_A1 = alpha)."""
    result = run_once(benchmark, table2, setting=1, alphas=(0.10, 0.15),
                      ratios=((3, 2), (1, 1)))
    for alpha in (0.10, 0.15):
        for ratio in ((3, 2), (1, 1)):
            key = (f"{ratio[0]}:{ratio[1]}", f"{alpha:.0%}")
            assert result.cells[key] == pytest.approx(alpha, abs=5e-4)


def test_table2_setting2_cell(benchmark):
    result = run_once(benchmark, table2, setting=2, alphas=(0.25,),
                      ratios=((1, 1),))
    key = ("1:1", "25%")
    assert result.cells[key] == pytest.approx(
        PAPER_TABLE2_SET2[((1, 1), 0.25)], abs=2e-3)
