"""Bench A6: profitability thresholds and the cost-benefit ledger --
the quantitative refutation of BU's security claims."""

import pytest

from benchmarks.conftest import run_once
from repro.analysis.cost_benefit import cost_benefit
from repro.analysis.thresholds import (
    bu_attack_threshold,
    selfish_mining_threshold,
)
from repro.core.config import AttackConfig
from repro.core.incentives import IncentiveModel
from repro.core.solve import solve_absolute_reward


def test_sapirshtein_threshold(benchmark):
    threshold = run_once(benchmark, selfish_mining_threshold, 0.5,
                         tol=2e-3)
    assert threshold == pytest.approx(0.2321, abs=4e-3)


def test_bu_threshold_curve(benchmark):
    def curve():
        return {ratio: bu_attack_threshold(
            ratio, IncentiveModel.COMPLIANT_PROFIT, tol=2e-3)
            for ratio in ((2, 3), (1, 1), (3, 2))}

    thresholds = run_once(benchmark, curve)
    assert 0.10 < thresholds[(2, 3)] < 0.15
    assert 0.20 < thresholds[(1, 1)] < 0.25
    assert thresholds[(3, 2)] > 0.25


def test_cost_benefit_refutes_homepage_claim(benchmark):
    def ledger():
        analysis = solve_absolute_reward(
            AttackConfig.from_ratio(0.10, (1, 1), setting=1))
        return cost_benefit(analysis)

    result = run_once(benchmark, ledger)
    assert not result.claim_holds
    assert result.attacker_net > 0.15
    assert result.victim_damage > 0.3
