"""Tests for result persistence."""

import dataclasses
import json

import pytest

from repro.analysis.store import (
    analysis_from_payload,
    analysis_to_payload,
    load_analysis_summary,
    load_table,
    policy_from_summary,
    save_analysis,
    save_table,
    validate_analysis_payload,
)
from repro.analysis.tables import TableResult
from repro.core.config import AttackConfig
from repro.core.solve import solve_relative_revenue, utility_of_policy
from repro.errors import ArtifactCorruptError, ReproError


@pytest.fixture(scope="module")
def analysis():
    return solve_relative_revenue(
        AttackConfig.from_ratio(0.25, (2, 3), setting=1))


def test_analysis_roundtrip(tmp_path, analysis):
    path = tmp_path / "analysis.json"
    save_analysis(analysis, path)
    summary = load_analysis_summary(path)
    assert summary["utility"] == pytest.approx(analysis.utility)
    assert summary["config"] == analysis.config
    assert summary["model"] is analysis.model
    assert summary["policy"][("base", 0)] == \
        analysis.policy.action_for(("base", 0))


def test_policy_reconstruction_preserves_utility(tmp_path, analysis):
    path = tmp_path / "analysis.json"
    save_analysis(analysis, path)
    summary = load_analysis_summary(path)
    policy = policy_from_summary(summary)
    value = utility_of_policy(policy.mdp, policy.action_indices,
                              summary["model"])
    assert value == pytest.approx(analysis.utility, abs=1e-9)


def test_table_roundtrip(tmp_path):
    table = TableResult(name="t", row_labels=["a"], col_labels=["b"],
                        cells={("a", "b"): 1.5}, paper={("a", "b"): 1.4})
    path = tmp_path / "table.json"
    save_table(table, path)
    loaded = load_table(path)
    assert loaded.cells == table.cells
    assert loaded.paper == table.paper
    assert loaded.render() == table.render()


def test_kind_mismatch_rejected(tmp_path, analysis):
    path = tmp_path / "analysis.json"
    save_analysis(analysis, path)
    with pytest.raises(ReproError):
        load_table(path)
    table = TableResult(name="t", row_labels=[], col_labels=[])
    tpath = tmp_path / "table.json"
    save_table(table, tpath)
    with pytest.raises(ReproError):
        load_analysis_summary(tpath)


def test_payload_roundtrip_rebuilds_full_analysis(analysis):
    payload = analysis_to_payload(analysis)
    rebuilt = analysis_from_payload(payload)
    assert rebuilt.utility == analysis.utility
    assert rebuilt.honest_utility == analysis.honest_utility
    assert rebuilt.rates == analysis.rates
    assert rebuilt.config == analysis.config
    assert rebuilt.policy.as_dict() == analysis.policy.as_dict()


def test_policy_from_summary_rejects_config_mismatch(tmp_path, analysis):
    """A stored policy replayed against a *different* configuration's
    MDP misses states and must fail loudly, not silently misbehave."""
    path = tmp_path / "analysis.json"
    save_analysis(analysis, path)
    summary = load_analysis_summary(path)
    # Pretend the summary belongs to a larger-AD config: its MDP has
    # states the stored policy never saw.
    summary["config"] = dataclasses.replace(summary["config"], ad=8)
    with pytest.raises(ReproError, match="config mismatch"):
        policy_from_summary(summary)


def test_malformed_json_raises_typed_error(tmp_path):
    """Load paths surface a half-written or hand-mangled file as the
    typed ArtifactCorruptError carrying path and reason -- not a raw
    json.JSONDecodeError."""
    path = tmp_path / "analysis.json"
    path.write_text('{"schema": 1, "kind": "attack-ana')
    with pytest.raises(ArtifactCorruptError, match="malformed JSON") \
            as info:
        load_analysis_summary(path)
    assert info.value.path == str(path)
    assert "malformed JSON" in info.value.reason

    path.write_text("[1, 2, 3]")
    with pytest.raises(ArtifactCorruptError, match="JSON object"):
        load_analysis_summary(path)
    with pytest.raises(ArtifactCorruptError, match="malformed JSON"):
        path.write_text("not json at all")
        load_table(path)


def test_missing_fields_raise_typed_error(tmp_path, analysis):
    """A schema-valid-looking payload with fields missing or of the
    wrong type fails with a typed error, not a KeyError."""
    path = tmp_path / "analysis.json"
    save_analysis(analysis, path)
    payload = json.loads(path.read_text())
    del payload["policy"]
    path.write_text(json.dumps(payload))
    with pytest.raises(ArtifactCorruptError, match="schema mismatch"):
        load_analysis_summary(path)

    save_analysis(analysis, path)
    payload = json.loads(path.read_text())
    payload["model"] = "no-such-model"
    path.write_text(json.dumps(payload))
    with pytest.raises(ArtifactCorruptError, match="schema mismatch"):
        load_analysis_summary(path)

    table_path = tmp_path / "table.json"
    save_table(TableResult(name="t", row_labels=[], col_labels=[]),
               table_path)
    payload = json.loads(table_path.read_text())
    del payload["cells"]
    table_path.write_text(json.dumps(payload))
    with pytest.raises(ArtifactCorruptError, match="schema mismatch"):
        load_table(table_path)


def test_validate_analysis_payload(analysis):
    payload = analysis_to_payload(analysis)
    decoded = validate_analysis_payload(payload)
    assert decoded["config"] == analysis.config
    assert decoded["model"] is analysis.model

    with pytest.raises(ArtifactCorruptError, match="JSON object"):
        validate_analysis_payload(["not", "a", "dict"])
    broken = dict(payload, config={"alpha": "NaN-ish"})
    with pytest.raises(ArtifactCorruptError, match="schema mismatch") \
            as info:
        validate_analysis_payload(broken, source="unit-test")
    assert info.value.path == "unit-test"


def test_saves_are_atomic(tmp_path, analysis):
    """Saving over an existing file leaves no temp litter and replaces
    the content in one step."""
    path = tmp_path / "analysis.json"
    save_analysis(analysis, path)
    before = path.read_bytes()
    save_analysis(analysis, path)
    assert path.read_bytes() == before
    assert [p.name for p in tmp_path.iterdir()] == ["analysis.json"]
