"""Tests for profitability thresholds."""

import pytest

from repro.analysis.thresholds import (
    _bisect_threshold,
    bu_attack_threshold,
    ds_value_threshold,
    relative_revenue_boundary,
    selfish_mining_threshold,
)
from repro.core.incentives import IncentiveModel
from repro.errors import ReproError


@pytest.mark.slow
def test_sapirshtein_threshold_at_tie_half():
    """The published 23.21% optimal-selfish-mining threshold (gamma =
    0.5), below SM1's closed-form 25%."""
    threshold = selfish_mining_threshold(0.5, tol=5e-4)
    assert threshold == pytest.approx(0.2321, abs=2e-3)
    assert threshold < 0.25


@pytest.mark.slow
def test_threshold_at_gamma_zero_below_sm1():
    """At gamma = 0 the optimal threshold sits just under SM1's 1/3."""
    threshold = selfish_mining_threshold(0.0, tol=1e-3)
    assert 0.32 < threshold < 1 / 3


@pytest.mark.slow
def test_threshold_decreases_with_tie_power():
    t0 = selfish_mining_threshold(0.0, tol=2e-3)
    t5 = selfish_mining_threshold(0.5, tol=2e-3)
    t10 = selfish_mining_threshold(1.0, tol=2e-3)
    assert t0 > t5 > t10
    assert t10 < 0.05  # essentially no threshold when winning all ties


def test_bu_has_no_threshold_for_double_spending():
    """Table 3's point: the smallest probed miner already profits."""
    threshold = bu_attack_threshold((1, 1),
                                    IncentiveModel.NONCOMPLIANT_PROFIT)
    assert threshold == pytest.approx(0.005)


def test_bu_relative_revenue_thresholds_bracket_table2():
    """Thresholds interleave exactly with Table 2's honest/unfair
    cells: 2:3 flips between 10% and 15%, 1:1 between 20% and 25%,
    and 3:2 just beyond the paper's 25% grid."""
    gamma_heavy = bu_attack_threshold((2, 3),
                                      IncentiveModel.COMPLIANT_PROFIT)
    balanced = bu_attack_threshold((1, 1),
                                   IncentiveModel.COMPLIANT_PROFIT)
    beta_heavy = bu_attack_threshold((3, 2),
                                     IncentiveModel.COMPLIANT_PROFIT)
    assert 0.10 < gamma_heavy < 0.15
    assert 0.20 < balanced < 0.25
    assert beta_heavy > 0.25
    assert gamma_heavy < balanced < beta_heavy


def test_relative_revenue_boundary_matches_theory():
    """Unfair revenue requires alpha + gamma > beta, i.e. beta below
    (1 + alpha') / 2 of the compliant power."""
    alpha = 0.25
    boundary = relative_revenue_boundary(alpha, steps=21)
    rest = 1 - alpha
    theory = (alpha + rest) / (2 * rest)  # beta share where beta = alpha+gamma
    assert boundary <= theory + 0.05
    assert boundary >= 0.5  # balanced splits are always vulnerable


def test_validation():
    with pytest.raises(ReproError):
        selfish_mining_threshold(1.5)
    with pytest.raises(ReproError):
        relative_revenue_boundary(0.7)
    with pytest.raises(ReproError):
        ds_value_threshold(0.7, (1, 1))
    with pytest.raises(ReproError):
        ds_value_threshold(0.1, (1, 1), lo=5.0, hi=5.0)


def test_bisect_tolerance_is_scale_relative():
    """Over a large-magnitude bracket the bisection must stop at the
    requested *relative* accuracy instead of grinding toward an
    absolute one: ~10 probes resolve 1e-3 relative on [0, 1000]."""
    probes = []

    def profitable(x):
        probes.append(x)
        return x >= 700.0

    result = _bisect_threshold(profitable, 0.0, 1000.0, tol=1e-3)
    assert result == pytest.approx(700.0, rel=2e-3)
    assert len(probes) <= 14  # absolute 1e-3 would need ~20 halvings


def test_ds_value_threshold_reuses_build_cache():
    """Every rds probe after the first must be a reward-only rebuild
    of the cached attack MDP, never a cold BFS + assembly."""
    from repro.core.attack_mdp import (
        attack_mdp_cache_stats,
        clear_attack_mdp_cache,
    )
    clear_attack_mdp_cache()
    threshold = ds_value_threshold(0.1, (1, 1), tol=5e-2)
    stats = attack_mdp_cache_stats()
    assert 0.0 <= threshold <= 40.0
    assert stats.misses == 1
    assert stats.reward_rebuilds >= 2


def test_bu_threshold_warm_start_matches_cold_probes():
    """The warm-started threshold bisection must land on the same
    threshold as independently solved (cold) probes -- the warm start
    only accelerates, never changes, each probe's optimum."""
    from repro.core.config import AttackConfig
    from repro.core.solve import analyze
    model = IncentiveModel.COMPLIANT_PROFIT
    threshold = bu_attack_threshold((1, 1), model, tol=5e-3)

    def cold_advantage(alpha):
        config = AttackConfig.from_ratio(alpha, (1, 1), setting=1)
        return analyze(config, model).advantage

    # Just below the threshold the attack must not profit; just above
    # it must (cold solves, no warm start involved).
    assert cold_advantage(threshold - 0.01) <= 1e-5
    assert cold_advantage(threshold + 0.01) > 1e-5
