"""Tests for the markdown report generator."""

import io

from repro.analysis.experiments import generate_report, main


def test_fast_report_structure():
    report = generate_report(fast=True)
    assert report.startswith("# Regenerated paper comparison")
    assert "table2-setting1" in report
    assert "table3-bitcoin" in report
    assert "Max |measured - paper|" in report


def test_report_streams_incrementally():
    buffer = io.StringIO()
    generate_report(fast=True, stream=buffer)
    assert "table4" in buffer.getvalue()


def test_main_writes_file(tmp_path):
    target = tmp_path / "report.md"
    code = main(["--fast", "--output", str(target)])
    assert code == 0
    assert "table2" in target.read_text()
