"""Tests for the double-spend sensitivity analysis."""

import pytest

from repro.analysis.sensitivity import ds_sensitivity
from repro.core.config import AttackConfig
from repro.errors import ReproError


@pytest.fixture(scope="module")
def grid():
    base = AttackConfig.from_ratio(0.10, (1, 1), setting=1)
    return ds_sensitivity(base, confirmations=(3, 4, 6),
                          rds_values=(5.0, 10.0))


def test_monotonicity_in_rds(grid):
    assert grid.monotone_in_rds()


def test_monotonicity_in_confirmations(grid):
    assert grid.monotone_in_confirmations()


def test_paper_cell_present(grid):
    """(4 confirmations, R_DS = 10) reproduces the known value."""
    assert grid.values[(4, 10.0)] == pytest.approx(0.3123, abs=1e-3)


def test_stricter_merchants_blunt_the_attack(grid):
    """Six confirmations cut the BU attacker's income sharply -- the
    practical mitigation merchants control."""
    assert grid.values[(6, 10.0)] < grid.values[(4, 10.0)] * 0.6


def test_best_fit_lookup(grid):
    key, value = grid.best_fit(0.3123)
    assert key == (4, 10.0)
    assert value == pytest.approx(0.3123, abs=1e-3)


def test_no_grid_point_matches_paper_setting1():
    """The EXPERIMENTS.md finding as a test: no swept DS accounting
    reaches the paper's setting-1 value 0.40 without breaking the
    setting-2 agreement (the closest overshoots via confirmations=3)."""
    base = AttackConfig.from_ratio(0.10, (1, 1), setting=1)
    grid = ds_sensitivity(base, confirmations=(3, 4), rds_values=(10.0,))
    assert grid.values[(4, 10.0)] < 0.40 - 0.05
    assert grid.values[(3, 10.0)] > 0.40 + 0.05


def test_empty_grid_rejected():
    base = AttackConfig.from_ratio(0.10, (1, 1))
    with pytest.raises(ReproError):
        ds_sensitivity(base, confirmations=())
