"""Tests for the attacker-cost vs victim-damage ledger."""

import pytest

from repro.analysis.cost_benefit import cost_benefit
from repro.core.config import AttackConfig
from repro.core.solve import (
    solve_absolute_reward,
    solve_orphan_rate,
    solve_relative_revenue,
)


def test_bu_homepage_claim_fails_for_double_spender():
    """The non-compliant attack is *profitable*, so it costs the
    attacker less than nothing while damaging the victims."""
    analysis = solve_absolute_reward(
        AttackConfig.from_ratio(0.10, (1, 1), setting=1))
    ledger = cost_benefit(analysis)
    assert ledger.attacker_net > 0
    assert ledger.victim_damage > 0.3
    assert not ledger.claim_holds
    assert ledger.damage_ratio > 1


def test_bu_homepage_claim_fails_for_vandal():
    """Even the non-profit vandal destroys more than it spends."""
    analysis = solve_orphan_rate(
        AttackConfig.from_ratio(0.01, (2, 3), setting=1))
    ledger = cost_benefit(analysis)
    assert ledger.victim_damage > ledger.attacker_cost
    assert not ledger.claim_holds
    assert ledger.damage_ratio > 1.5


def test_compliant_attacker_gains_with_collateral_damage():
    analysis = solve_relative_revenue(
        AttackConfig.from_ratio(0.25, (2, 3), setting=1))
    ledger = cost_benefit(analysis)
    assert ledger.victim_damage > 0
    # Relative-revenue optimality does not guarantee absolute profit;
    # the ledger just needs to be internally consistent.
    assert ledger.attacker_cost >= 0


def test_honest_baseline_is_all_zero():
    """A config where honesty is optimal yields an empty ledger."""
    analysis = solve_relative_revenue(
        AttackConfig.from_ratio(0.10, (3, 2), setting=1))
    ledger = cost_benefit(analysis)
    assert ledger.victim_damage == pytest.approx(0.0, abs=1e-9)
    assert ledger.attacker_cost == pytest.approx(0.0, abs=1e-9)
    assert ledger.damage_ratio == float("inf")
