"""Tests for the paper-table regeneration harness."""

import pytest

from repro.analysis.tables import (
    PAPER_TABLE4,
    TableResult,
    feasible,
    table2,
    table3_bitcoin,
    table4,
)
from repro.errors import ReproError


def test_feasibility_matches_paper_blanks():
    """Cells the paper leaves blank violate alpha <= min(beta, gamma)."""
    assert not feasible(0.25, (1, 3))   # blank in Table 2
    assert not feasible(0.20, (4, 1))   # blank in Table 3
    assert not feasible(0.25, (1, 4))
    assert feasible(0.25, (2, 1))       # present in Table 3
    assert feasible(0.10, (1, 4))


def test_table2_single_cell():
    result = table2(setting=1, alphas=(0.25,), ratios=((2, 3),))
    key = ("2:3", "25%")
    assert result.cells[key] == pytest.approx(0.2739, abs=5e-4)
    assert result.paper[key] == 0.2739
    assert result.max_paper_deviation() < 5e-4


def test_table2_skips_infeasible():
    result = table2(setting=1, alphas=(0.25,), ratios=((1, 3),))
    assert result.cells == {}
    with pytest.raises(ReproError):
        result.max_paper_deviation()


def test_table4_row(capsys):
    messages = []
    result = table4(ratios=((2, 3),), settings=(1,),
                    progress=messages.append)
    key = ("2:3", "setting1")
    assert result.cells[key] == pytest.approx(
        PAPER_TABLE4[((2, 3), 1)], abs=1e-2)
    assert messages  # progress callback invoked


def test_table3_bitcoin_small():
    result = table3_bitcoin(ties=(1.0,), alphas=(0.10,), max_len=16)
    key = ("tie=100%", "10%")
    assert result.cells[key] == pytest.approx(0.11, abs=1e-2)


def test_render_layout():
    result = TableResult(name="t", row_labels=["r1"], col_labels=["c1"],
                         cells={("r1", "c1"): 1.0})
    out = result.render(precision=2)
    assert "t" in out and "c1" in out and "1.00" in out
