"""Tests for the Table 1 renderer (executable spec)."""

import pytest

from repro.analysis.table1 import collect_rows, render_table1, \
    transitions_for
from repro.core.config import AttackConfig


def cfg():
    return AttackConfig(alpha=0.1, beta=0.45, gamma=0.45, setting=1)


def test_render_contains_base_rows():
    out = render_table1(cfg(), max_rows=10)
    assert "(0,0,0,0)" in out
    assert "OnChain1" in out
    assert "further rows" in out


def test_collect_rows_cover_state_space():
    rows = collect_rows(cfg())
    # 211 states x 2 actions, each with 2-3 outcome rows.
    assert len(rows) > 800
    assert all(len(r) == 5 for r in rows)


def test_transitions_lookup_matches_paper_row():
    """The (0,0,0,0) onChain2 row of Table 1."""
    trs = transitions_for(cfg(), ("base", 0), "OnChain2")
    by_next = {tr.next_state: tr for tr in trs}
    assert by_next[("fork1", 0, 1, 0, 1)].prob == pytest.approx(0.1)
    assert by_next[("base", 0)].prob == pytest.approx(0.9)
    assert by_next[("base", 0)].rewards["others"] == 1.0


def test_reward_column_format():
    rows = collect_rows(cfg())
    base_row = next(r for r in rows
                    if r[0] == "(0,0,0,0)" and r[1] == "OnChain1"
                    and "(1," in r[4])
    assert base_row[4] == "(1,0)"
