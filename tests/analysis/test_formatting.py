"""Tests for ASCII table rendering."""

import pytest

from repro.analysis.formatting import format_cell, format_table
from repro.errors import ReproError


def test_format_cell_variants():
    assert format_cell(None) == ""
    assert format_cell(1.23456, precision=2) == "1.23"
    assert format_cell("x") == "x"
    assert format_cell(7) == "7"


def test_format_table_alignment():
    out = format_table(["name", "value"], [["a", 1.5], ["bbbb", None]])
    lines = out.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("name")
    assert "1.5000" in lines[2]


def test_format_table_title():
    out = format_table(["x"], [[1]], title="T")
    assert out.splitlines()[0] == "T"


def test_format_table_validation():
    with pytest.raises(ReproError):
        format_table([], [])
    with pytest.raises(ReproError):
        format_table(["a"], [[1, 2]])
