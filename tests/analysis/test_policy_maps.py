"""Tests for policy maps."""

import pytest

from repro.analysis.policy_maps import action_census, policy_map, summarize
from repro.core.config import AttackConfig
from repro.core.solve import solve_orphan_rate, solve_relative_revenue
from repro.errors import ReproError


@pytest.fixture(scope="module")
def solved():
    return solve_relative_revenue(
        AttackConfig.from_ratio(0.25, (2, 3), setting=1))


def test_map_dimensions(solved):
    out = policy_map(solved.policy, phase=1)
    lines = out.splitlines()
    # Header + l1 rows 0..AD-1.
    assert len(lines) == 1 + 6
    assert lines[0].startswith("l1\\l2")


def test_map_symbols_valid(solved):
    out = policy_map(solved.policy, phase=1)
    body = "".join(out.splitlines()[1:])
    symbols = set(body.replace(" ", ""))
    assert symbols <= set("0123456789.12W*")


def test_infeasible_cells_dotted(solved):
    out = policy_map(solved.policy, phase=1)
    # l1 = 5, l2 < 5 are infeasible (l1 <= l2); the last row starts
    # with dots.
    last = out.splitlines()[-1].split()
    assert last[1] == "."


def test_wait_appears_for_non_profit_policy():
    analysis = solve_orphan_rate(
        AttackConfig.from_ratio(0.01, (2, 3), setting=1))
    census = action_census(analysis.policy)
    assert census.get("Wait", 0) > 0


def test_summarize_contains_base_action(solved):
    text = summarize(solved.policy)
    assert "base state plays" in text
    assert "OnChain2" in text


def test_phase2_map_requires_phase2_states(solved):
    with pytest.raises(ReproError):
        policy_map(solved.policy, phase=2)


def test_phase2_map_on_setting2_policy():
    analysis = solve_relative_revenue(
        AttackConfig.from_ratio(0.25, (1, 1), setting=2, gate_window=4))
    out = policy_map(analysis.policy, phase=2, r=4)
    assert out.splitlines()
