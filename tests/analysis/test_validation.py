"""Tests for multi-seed statistical validation of the exact solvers."""

import numpy as np
import pytest

from repro.analysis.validation import (
    CI_LEVEL,
    MultiSeedSummary,
    _normal_quantile,
    run_validation_seed,
    validate_against_sim,
)
from repro.core.config import AttackConfig
from repro.core.incentives import IncentiveModel
from repro.errors import SimulationError


def small_config(**kwargs) -> AttackConfig:
    defaults = dict(alpha=0.3, ratio=(1, 1), setting=1, ad=3)
    defaults.update(kwargs)
    ratio = defaults.pop("ratio")
    alpha = defaults.pop("alpha")
    return AttackConfig.from_ratio(alpha, ratio, **defaults)


def test_normal_quantile_matches_known_values():
    assert _normal_quantile(0.95) == pytest.approx(1.959964, abs=1e-5)
    assert _normal_quantile(0.99) == pytest.approx(2.575829, abs=1e-5)
    with pytest.raises(SimulationError):
        _normal_quantile(1.5)


def test_multi_seed_rollout_mean_within_own_ci():
    report = validate_against_sim(
        small_config(), IncentiveModel.COMPLIANT_PROFIT, steps=20_000,
        seeds=3, trajectories=8, engine="rollout")
    multi = report.multi
    assert isinstance(multi, MultiSeedSummary)
    assert multi.n == 24
    assert len(multi.per_seed) == 3
    assert multi.level == CI_LEVEL
    assert multi.lo <= multi.mean <= multi.hi
    # With 24 independent samples of a 20k-step chain the exact gain
    # must sit inside the sampled 99% interval.
    assert multi.contains_exact()
    assert report.sim_utility == multi.mean
    assert abs(multi.z_score) < _normal_quantile(CI_LEVEL)


def test_multi_seed_independent_of_worker_count():
    kwargs = dict(steps=5_000, seeds=3, trajectories=4,
                  engine="rollout")
    serial = validate_against_sim(
        small_config(), IncentiveModel.COMPLIANT_PROFIT, workers=1,
        **kwargs)
    parallel = validate_against_sim(
        small_config(), IncentiveModel.COMPLIANT_PROFIT, workers=2,
        **kwargs)
    assert serial.multi == parallel.multi  # float-exact, not approx
    assert serial.sim_rates == parallel.sim_rates
    assert serial.steps == parallel.steps


def test_multi_seed_substrate_engine():
    report = validate_against_sim(
        small_config(), IncentiveModel.COMPLIANT_PROFIT, steps=3_000,
        seeds=2, trajectories=2, engine="substrate")
    assert report.multi.n == 4
    assert report.steps == 12_000


def test_legacy_single_run_path_unchanged():
    report = validate_against_sim(
        small_config(), IncentiveModel.COMPLIANT_PROFIT, steps=4_000,
        rng=np.random.default_rng(7))
    assert report.multi is None
    again = validate_against_sim(
        small_config(), IncentiveModel.COMPLIANT_PROFIT, steps=4_000,
        rng=np.random.default_rng(7))
    assert report.sim_utility == again.sim_utility


def test_validate_rejects_bad_arguments():
    config = small_config()
    model = IncentiveModel.COMPLIANT_PROFIT
    with pytest.raises(SimulationError):
        validate_against_sim(config, model, seeds=0)
    with pytest.raises(SimulationError):
        validate_against_sim(config, model, trajectories=0)
    with pytest.raises(SimulationError):
        validate_against_sim(config, model, engine="magic")
    with pytest.raises(SimulationError):
        run_validation_seed(config, model, seed=0, steps=10,
                            trajectories=1, engine="magic", policy=())


def test_run_validation_seed_payload_is_json_style():
    from repro.core.solve import analyze
    config = small_config()
    analysis = analyze(config, IncentiveModel.COMPLIANT_PROFIT)
    policy = tuple(int(a) for a in analysis.policy.action_indices)
    payload = run_validation_seed(
        analysis.config, IncentiveModel.COMPLIANT_PROFIT, seed=0,
        steps=2_000, trajectories=3, engine="rollout", policy=policy)
    assert set(payload) == {"utilities", "rates", "steps"}
    assert len(payload["utilities"]) == 3
    assert payload["steps"] == 6_000
    import json
    json.dumps(payload)  # journal/worker payloads must be JSON-safe


def test_rollout_method_alias_report_is_sane():
    report = validate_against_sim(
        small_config(), IncentiveModel.COMPLIANT_PROFIT, steps=4000,
        seeds=2, trajectories=4, engine="rollout", seed=0,
        method="alias")
    assert report.multi is not None
    assert report.multi.n == 8
    assert report.multi.contains_exact()
    with pytest.raises(SimulationError):
        validate_against_sim(small_config(),
                             IncentiveModel.COMPLIANT_PROFIT,
                             engine="rollout", method="roulette")


def test_alias_validation_independent_of_worker_count():
    kwargs = dict(steps=3000, seeds=3, trajectories=2,
                  engine="rollout", seed=1, method="alias")
    model = IncentiveModel.COMPLIANT_PROFIT
    serial = validate_against_sim(small_config(), model, workers=1,
                                  **kwargs)
    parallel = validate_against_sim(small_config(), model, workers=2,
                                    **kwargs)
    assert parallel.multi.per_seed == serial.multi.per_seed
    assert parallel.sim_utility == serial.sim_utility


def test_shipped_tables_match_worker_rebuild():
    """A worker fed a prebuilt tables_state samples exactly what a
    worker that rebuilds the tables itself samples."""
    from repro.core.attack_mdp import build_attack_mdp
    from repro.core.solve import analyze
    from repro.mdp.simulate import PolicyTables

    config = small_config()
    model = IncentiveModel.COMPLIANT_PROFIT
    analysis = analyze(config, model)
    policy = tuple(int(a) for a in analysis.policy.action_indices)
    mdp = build_attack_mdp(config)
    tables = PolicyTables(mdp, np.asarray(policy, dtype=int))
    tables.alias_tables()
    common = dict(seed=0, steps=2000, trajectories=3,
                  engine="rollout", policy=policy, method="alias")
    rebuilt = run_validation_seed(config, model, **common)
    shipped = run_validation_seed(config, model,
                                  tables_state=tables.state_dict(),
                                  **common)
    assert shipped == rebuilt
