"""Tests for the sweep runner."""

import pytest

from repro.analysis.sweeps import sweep_alpha, sweep_attack
from repro.core.config import AttackConfig
from repro.core.incentives import IncentiveModel
from repro.errors import ReproError


def base():
    return AttackConfig.from_ratio(0.10, (1, 1), setting=1)


def test_sweep_over_ad():
    result = sweep_attack(base(), "ad", [3, 4, 6],
                          IncentiveModel.NON_PROFIT)
    assert result.parameter == "ad"
    assert len(result.analyses) == 3
    # A larger AD gives the attacker longer forks: u_A3 grows.
    utilities = result.utilities()
    assert utilities == sorted(utilities)


def test_sweep_rows():
    result = sweep_attack(base(), "ad", [3, 6], IncentiveModel.NON_PROFIT)
    rows = result.as_rows()
    assert len(rows) == 2
    assert rows[0][0] == 3


def test_sweep_validation():
    with pytest.raises(ReproError):
        sweep_attack(base(), "ad", [], IncentiveModel.NON_PROFIT)
    with pytest.raises(ReproError):
        sweep_attack(base(), "nonexistent", [1], IncentiveModel.NON_PROFIT)


def test_sweep_alpha_helper():
    out = sweep_alpha((1, 1), [0.05, 0.10],
                      IncentiveModel.COMPLIANT_PROFIT, setting=1)
    assert set(out) == {0.05, 0.10}
    assert all(a.utility >= alpha - 1e-9 for alpha, a in out.items())
