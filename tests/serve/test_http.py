"""Tests for the stdlib/asyncio HTTP front-end: round-trips, the
error-type -> status mapping, and request-size enforcement."""

import asyncio
import dataclasses
import json

import pytest

from repro.core.config import AttackConfig
from repro.core.incentives import IncentiveModel
from repro.serve.atlas import PolicyAtlas, atlas_key
from repro.serve.http import serve_http, status_for
from repro.serve.service import SolverService

MODEL = IncentiveModel.COMPLIANT_PROFIT


def config(alpha=0.25, **kwargs):
    return AttackConfig.from_ratio(alpha, (2, 3), setting=1, **kwargs)


def fake_payload(cfg, utility=0.5):
    return {"schema": 1, "kind": "attack-analysis",
            "config": dataclasses.asdict(cfg), "model": MODEL.value,
            "utility": utility, "honest_utility": cfg.alpha,
            "rates": {}, "policy": {}}


async def request(port, method, path, body=b"", extra_headers=""):
    """One raw HTTP/1.1 exchange; returns ``(status, json_payload)``."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    head = (f"{method} {path} HTTP/1.1\r\n"
            f"Host: test\r\nContent-Length: {len(body)}\r\n"
            f"{extra_headers}\r\n")
    writer.write(head.encode() + body)
    await writer.drain()
    status_line = await reader.readline()
    status = int(status_line.split()[1])
    length = None
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode().partition(":")
        if name.strip().lower() == "content-length":
            length = int(value.strip())
    payload = json.loads(await reader.readexactly(length))
    writer.close()
    return status, payload


def serve(tmp_path, solve_fn=None, prewarm=(), max_body=1 << 20,
          **service_kwargs):
    """Run ``scenario(service, port)`` against a live HTTP server."""

    def runner(scenario):
        async def run():
            atlas = PolicyAtlas(tmp_path / "atlas")
            for cfg, utility in prewarm:
                atlas.put(atlas_key(cfg, MODEL),
                          fake_payload(cfg, utility))
            service = SolverService(atlas, solve_fn=solve_fn)
            for name, value in service_kwargs.items():
                setattr(service, name, value)
            server = await serve_http(service, "127.0.0.1", 0,
                                      max_body=max_body)
            port = server.sockets[0].getsockname()[1]
            try:
                return await scenario(service, port)
            finally:
                server.close()
                await server.wait_closed()
                await service.close()

        return asyncio.run(run())

    return runner


def test_solve_and_health_round_trip(tmp_path):
    cfg = config(0.20)

    async def scenario(service, port):
        body = json.dumps({"alpha": 0.20, "ratio": "2:3"}).encode()
        solve = await request(port, "POST", "/solve", body)
        health = await request(port, "GET", "/health")
        return solve, health

    (st, answer), (hst, health) = serve(
        tmp_path, prewarm=[(cfg, 0.77)])(scenario)
    assert st == 200
    assert answer["ok"] and answer["source"] == "atlas"
    assert answer["utility"] == pytest.approx(0.77)
    assert hst == 200
    assert health["status"] == "serving"
    assert health["atlas_entries"] == 1
    assert health["service"]["atlas_hits"] == 1
    assert set(health["cache"]) == {"hits", "misses", "evictions",
                                    "hit_rate", "disk_reads"}


def test_malformed_json_is_400(tmp_path):
    async def scenario(service, port):
        return await request(port, "POST", "/solve", b"{not json")

    status, payload = serve(tmp_path)(scenario)
    assert status == 400
    assert payload["ok"] is False
    assert payload["error"] == "JSONDecodeError"


def test_unknown_path_404_and_wrong_method_405(tmp_path):
    async def scenario(service, port):
        missing = await request(port, "GET", "/nope")
        wrong = await request(port, "PUT", "/solve")
        return missing, wrong

    (mst, missing), (wst, wrong) = serve(tmp_path)(scenario)
    assert mst == 404 and missing["error"] == "NotFound"
    assert wst == 405 and wrong["error"] == "MethodNotAllowed"


def test_oversized_body_is_413_without_buffering(tmp_path):
    async def scenario(service, port):
        return await request(port, "POST", "/solve", b"x" * 4096)

    status, payload = serve(tmp_path, max_body=1024)(scenario)
    assert status == 413
    assert payload["error"] == "RequestTooLargeError"
    assert "1024" in payload["message"]


def test_overload_maps_to_429(tmp_path):
    release = asyncio.Event()

    async def solve(request_, deadline):
        await release.wait()
        return fake_payload(request_.config)

    async def scenario(service, port):
        service.max_pending = 1
        leader = asyncio.ensure_future(request(
            port, "POST", "/solve",
            json.dumps({"alpha": 0.20, "ratio": "2:3"}).encode()))
        await asyncio.sleep(0.05)  # leader occupies the only slot
        status, payload = await request(
            port, "POST", "/solve",
            json.dumps({"alpha": 0.25, "ratio": "2:3"}).encode())
        release.set()
        await leader
        return status, payload

    status, payload = serve(tmp_path, solve_fn=solve)(scenario)
    assert status == 429
    assert payload["error"] == "ServiceOverloadError"


def test_shutdown_maps_to_503(tmp_path):
    async def scenario(service, port):
        await service.close()
        return await request(
            port, "POST", "/solve",
            json.dumps({"alpha": 0.20, "ratio": "2:3"}).encode())

    status, payload = serve(tmp_path)(scenario)
    assert status == 503
    assert payload["error"] == "ServiceShutdownError"


async def raw_request(port, head, body=b""):
    """A fully hand-framed HTTP exchange for malformed-header tests
    (the ``request`` helper always sends its own valid
    ``Content-Length``)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(head.encode() + body)
    await writer.drain()
    status = int((await reader.readline()).split()[1])
    length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode().partition(":")
        if name.strip().lower() == "content-length":
            length = int(value.strip())
    payload = json.loads(await reader.readexactly(length))
    writer.close()
    return status, payload


def test_malformed_content_length_is_typed_400(tmp_path):
    """Regression: ``int()`` parsing accepted RFC-invalid framings
    ("+5", "1_0", unicode digits) that a proxy in front of the server
    may frame differently -- request-smuggling territory.  They must
    be rejected with a typed 400 before any body is read."""

    async def scenario(service, port):
        results = []
        for bad in ("+5", "-5", "1_0", "0x10", "5 5", "٥"):
            head = (f"POST /solve HTTP/1.1\r\nHost: t\r\n"
                    f"Content-Length: {bad}\r\n\r\n")
            results.append((bad, *await raw_request(port, head)))
        return results

    for bad, status, payload in serve(tmp_path)(scenario):
        assert status == 400, bad
        assert payload["error"] == "BadContentLength"
        assert "malformed Content-Length" in payload["message"]


def test_conflicting_duplicate_content_length_is_400(tmp_path):
    """Regression: last-wins duplicate handling silently picked one of
    two conflicting lengths (RFC 7230 3.3.2 requires rejection)."""
    body = json.dumps({"alpha": 0.20, "ratio": "2:3"}).encode()

    async def scenario(service, port):
        head = (f"POST /solve HTTP/1.1\r\nHost: t\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Content-Length: {len(body) + 2}\r\n\r\n")
        return await raw_request(port, head, body)

    status, payload = serve(tmp_path)(scenario)
    assert status == 400
    assert payload["error"] == "BadContentLength"
    assert "conflicting" in payload["message"]


def test_identical_duplicate_and_padded_content_length_accepted(
        tmp_path):
    """RFC 7230 allows collapsing *identical* duplicate values, and
    optional whitespace around the field value is trimmed before the
    digits-only check -- neither may be over-rejected."""
    cfg = config(0.20)
    body = json.dumps({"alpha": 0.20, "ratio": "2:3"}).encode()

    async def scenario(service, port):
        dup_head = (f"POST /solve HTTP/1.1\r\nHost: t\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    f"Content-Length: {len(body)}\r\n\r\n")
        pad_head = (f"POST /solve HTTP/1.1\r\nHost: t\r\n"
                    f"Content-Length:   {len(body)}  \r\n\r\n")
        return (await raw_request(port, dup_head, body),
                await raw_request(port, pad_head, body))

    dup, padded = serve(tmp_path, prewarm=[(cfg, 0.77)])(scenario)
    for status, payload in (dup, padded):
        assert status == 200
        assert payload["ok"] and payload["utility"] == pytest.approx(0.77)


def test_status_for_mapping_table():
    assert status_for({"ok": True}) == 200
    assert status_for({"ok": False,
                       "error": "ServiceOverloadError"}) == 429
    assert status_for({"ok": False,
                       "error": "ServiceShutdownError"}) == 503
    assert status_for({"ok": False,
                       "error": "SolveDeadlineError"}) == 504
    assert status_for({"ok": False, "error": "SolverError"}) == 500
    assert status_for({"ok": False, "error": "ReproError"}) == 400
