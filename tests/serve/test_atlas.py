"""Tests for the crash-safe content-addressed policy atlas."""

import dataclasses
import json

import pytest

from repro.analysis.store import analysis_to_payload
from repro.core.config import AttackConfig
from repro.core.incentives import IncentiveModel
from repro.core.solve import analyze
from repro.errors import ArtifactCorruptError, AtlasQuarantineError
from repro.serve.atlas import PolicyAtlas, atlas_key, key_digest


@pytest.fixture(scope="module")
def payload():
    config = AttackConfig.from_ratio(0.10, (1, 1), setting=1)
    return analysis_to_payload(
        analyze(config, IncentiveModel.COMPLIANT_PROFIT))


def make_key(alpha=0.10):
    config = AttackConfig.from_ratio(alpha, (1, 1), setting=1)
    return atlas_key(config, IncentiveModel.COMPLIANT_PROFIT)


def put_cell(atlas, payload, alpha):
    """Store ``payload`` re-keyed to ``alpha`` so the body answers its
    own key (passes full validation on load)."""
    config = AttackConfig.from_ratio(alpha, (1, 1), setting=1)
    key = atlas_key(config, IncentiveModel.COMPLIANT_PROFIT)
    body = dict(payload)
    body["config"] = dataclasses.asdict(config)
    atlas.put(key, body)
    return key, body


def test_put_get_roundtrip(tmp_path, payload):
    atlas = PolicyAtlas(tmp_path)
    key = make_key()
    assert atlas.get(key) is None
    atlas.put(key, payload)
    assert atlas.get(key) == payload
    assert key in atlas
    assert atlas.stats.hits == 1 and atlas.stats.misses == 1


def test_entries_are_content_addressed(tmp_path, payload):
    atlas = PolicyAtlas(tmp_path)
    key = make_key()
    path = atlas.put(key, payload)
    assert path.name == f"{key_digest(key)}.json"
    # Same key written twice converges on the same file.
    assert atlas.put(key, payload) == path
    assert len(atlas) == 1


def test_bitrot_is_quarantined_not_served(tmp_path, payload):
    atlas = PolicyAtlas(tmp_path)
    key = make_key()
    path = atlas.put(key, payload)
    data = path.read_bytes()
    path.write_bytes(data[:-20] + b"\xff" * 20)

    assert atlas.get(key) is None  # a miss, never garbage
    assert not path.exists()
    assert (atlas.quarantine_dir / path.name).exists()
    reason = (atlas.quarantine_dir / path.name) \
        .with_suffix(".reason").read_text()
    assert "UTF-8" in reason or "JSON" in reason
    # Resolve half of quarantine-and-resolve: backfill works again.
    atlas.put(key, payload)
    assert atlas.get(key) == payload


def test_checksum_mismatch_detected(tmp_path, payload):
    atlas = PolicyAtlas(tmp_path)
    key = make_key()
    path = atlas.put(key, payload)
    entry = json.loads(path.read_text())
    entry["body"]["utility"] = 999.0  # tampered, checksum stale
    path.write_text(json.dumps(entry))
    with pytest.raises(ArtifactCorruptError, match="checksum mismatch"):
        atlas._load_entry(path)
    assert atlas.get(key) is None


def test_content_address_mismatch_detected(tmp_path, payload):
    atlas = PolicyAtlas(tmp_path)
    path = atlas.put(make_key(), payload)
    moved = path.with_name(f"{'0' * 64}.json")
    path.rename(moved)
    with pytest.raises(ArtifactCorruptError, match="content address"):
        atlas._load_entry(moved)


def test_schema_invalid_body_quarantined(tmp_path):
    atlas = PolicyAtlas(tmp_path)
    key = make_key()
    # Valid checksum, valid JSON -- but not an analysis payload.
    atlas.put(key, {"nonsense": True})
    assert atlas.get(key) is None
    assert atlas.stats.quarantined == 1


def test_body_must_answer_its_own_key(tmp_path, payload):
    """An answer stored under the wrong cell (body config differs from
    the key's) is corruption -- served, it would be silent stale data."""
    atlas = PolicyAtlas(tmp_path)
    wrong_key = make_key(0.20)  # payload solved alpha = 0.10
    path = atlas.put(wrong_key, payload)
    with pytest.raises(ArtifactCorruptError, match="does not match"):
        atlas._load_entry(path)
    assert atlas.get(wrong_key) is None


def test_scan_loads_zero_corrupt_entries(tmp_path, payload):
    atlas = PolicyAtlas(tmp_path)
    good_key = make_key(0.10)
    atlas.put(good_key, payload)
    bad = atlas.put(make_key(0.15), payload)
    bad.write_text("{ not json")
    (atlas.entries_dir / "stray.json").write_text('"just a string"')

    index = PolicyAtlas(tmp_path).scan()  # the restart path
    assert list(index.values()) == [good_key]
    assert not (atlas.entries_dir / "stray.json").exists()
    # After the scan every surviving entry revalidates cleanly.
    fresh = PolicyAtlas(tmp_path)
    for path in fresh.entries_dir.glob("*.json"):
        fresh._load_entry(path)


def test_nearest_matches_power_split_distance(tmp_path, payload):
    atlas = PolicyAtlas(tmp_path, validate_bodies=False)
    near = make_key(0.12)
    far = make_key(0.30)
    atlas.put(near, dict(payload, utility=0.12))
    atlas.put(far, dict(payload, utility=0.30))

    key, _body, distance = atlas.nearest(make_key(0.10))
    assert key == near
    assert distance == pytest.approx(0.04, abs=1e-12)
    assert atlas.nearest(make_key(0.10), max_distance=0.01) is None


def test_nearest_requires_exact_discrete_match(tmp_path, payload):
    atlas = PolicyAtlas(tmp_path, validate_bodies=False)
    config = AttackConfig.from_ratio(0.12, (1, 1), setting=1, ad=3)
    atlas.put(atlas_key(config, IncentiveModel.COMPLIANT_PROFIT),
              payload)
    # Requested key has the default lookahead -> no candidate.
    assert atlas.nearest(make_key(0.10)) is None
    # Different incentive model -> no candidate either.
    other = atlas_key(AttackConfig.from_ratio(0.12, (1, 1), setting=1,
                                              ad=3),
                      IncentiveModel.NON_PROFIT)
    assert atlas.nearest(other) is None


# -- the in-memory index and LRU cache ---------------------------------


def test_hot_get_serves_from_cache_zero_disk_reads(tmp_path, payload):
    atlas = PolicyAtlas(tmp_path)
    key, body = put_cell(atlas, payload, 0.10)
    assert atlas.get(key) == body  # one validated disk load
    assert atlas.stats.disk_reads == 1
    for _ in range(50):
        assert atlas.get(key) == body
    assert atlas.stats.disk_reads == 1  # the hot path never hit disk
    assert atlas.stats.cache_hits == 50
    assert atlas.stats.cache_hit_rate() == pytest.approx(50 / 51)


def test_lru_cache_is_bounded_and_evicts_oldest(tmp_path, payload):
    atlas = PolicyAtlas(tmp_path, cache_entries=2)
    keys = [put_cell(atlas, payload, a)[0]
            for a in (0.10, 0.15, 0.20)]
    for key in keys:
        atlas.get(key)
    assert len(atlas._cache) == 2
    assert atlas.stats.cache_evictions == 1
    # The oldest entry was evicted: reading it again goes to disk.
    before = atlas.stats.disk_reads
    assert atlas.get(keys[0]) is not None
    assert atlas.stats.disk_reads == before + 1
    # The most-recent entry is still hot.
    before = atlas.stats.disk_reads
    assert atlas.get(keys[2]) is not None
    assert atlas.stats.disk_reads == before


def test_cache_disabled_still_indexes(tmp_path, payload):
    atlas = PolicyAtlas(tmp_path, cache_entries=0)
    key, _body = put_cell(atlas, payload, 0.10)
    assert atlas.get(key) is not None
    assert atlas.get(key) is not None
    assert atlas.stats.disk_reads == 2  # every get revalidates
    assert not atlas._cache


def test_put_invalidates_cached_body_not_replaces(tmp_path, payload):
    """put() must not seed the cache with an unvalidated body: the
    next read revalidates what actually landed on disk."""
    atlas = PolicyAtlas(tmp_path)
    key, body = put_cell(atlas, payload, 0.10)
    atlas.get(key)  # cached now
    updated = dict(body, utility=0.999)
    atlas.put(key, updated)
    assert key_digest(key) not in atlas._cache
    before = atlas.stats.disk_reads
    assert atlas.get(key)["utility"] == pytest.approx(0.999)
    assert atlas.stats.disk_reads == before + 1


def test_quarantine_invalidates_cache_no_stale_body(tmp_path, payload):
    """After an entry is quarantined its cached body must never be
    served again -- the cache-coherence half of quarantine."""
    atlas = PolicyAtlas(tmp_path)
    key, _body = put_cell(atlas, payload, 0.10)
    atlas.get(key)  # hot
    path = atlas.path_for(key_digest(key))
    atlas.quarantine(path, "operator pulled it")
    assert atlas.get(key) is None  # not the stale cached body
    assert key not in atlas


def test_index_rebuild_after_restart_matches_disk_exactly(tmp_path,
                                                          payload):
    """A fresh instance (the kill-and-restart path) rebuilds the index
    to exactly the on-disk survivor set."""
    atlas = PolicyAtlas(tmp_path)
    survivors = {key_digest(put_cell(atlas, payload, a)[0])
                 for a in (0.10, 0.15, 0.20)}
    bad_key, _ = put_cell(atlas, payload, 0.25)
    bad = atlas.path_for(key_digest(bad_key))
    bad.write_bytes(bad.read_bytes()[:-16] + b"\xff" * 16)

    fresh = PolicyAtlas(tmp_path)
    index = fresh.scan()
    on_disk = {p.stem for p in fresh.entries_dir.glob("*.json")}
    assert set(index) == on_disk == survivors
    assert set(fresh._index) == survivors


def test_multiwriter_index_miss_falls_through_to_disk(tmp_path,
                                                      payload):
    """Two instances sharing one root: a write through one must be
    visible through the other even though its index never saw it."""
    writer = PolicyAtlas(tmp_path)
    reader = PolicyAtlas(tmp_path)
    reader.scan()  # complete-but-now-stale index
    key, body = put_cell(writer, payload, 0.10)
    assert reader.get(key) == body  # fell through to disk
    assert key in reader
    # And the reverse: a quarantine by one is discovered by the other.
    digest = key_digest(key)
    writer.quarantine(writer.path_for(digest), "testing")
    reader._cache.pop(digest, None)  # simulate a cold body
    assert reader.get(key) is None
    assert digest not in reader._index


def test_nearest_hot_query_zero_disk_reads(tmp_path, payload):
    atlas = PolicyAtlas(tmp_path)
    for a in (0.10, 0.15, 0.20, 0.25):
        put_cell(atlas, payload, a)
    probe = make_key(0.17)
    first = atlas.nearest(probe)
    assert first is not None
    before = atlas.stats.disk_reads
    for _ in range(20):
        assert atlas.nearest(probe) == first
    assert atlas.stats.disk_reads == before


def test_nearest_retries_past_vanished_winner(tmp_path, payload):
    """If the winning candidate vanishes between index and fetch, the
    search drops it and falls back to the next-best entry."""
    atlas = PolicyAtlas(tmp_path)
    near_key, _ = put_cell(atlas, payload, 0.15)
    far_key, _ = put_cell(atlas, payload, 0.30)
    atlas.scan()
    digest = key_digest(near_key)
    atlas.path_for(digest).unlink()  # another process quarantined it
    atlas._cache.pop(digest, None)
    key, body, _distance = atlas.nearest(make_key(0.10))
    assert key == far_key
    assert digest not in atlas._index


# -- the __contains__ and quarantine satellites ------------------------


def test_contains_rejects_corrupt_entry(tmp_path, payload):
    """Pinned regression: a merely-existing corrupt file must not
    count as membership -- ``in`` answers like ``get()`` would."""
    atlas = PolicyAtlas(tmp_path)
    key, _body = put_cell(atlas, payload, 0.10)
    path = atlas.path_for(key_digest(key))
    path.write_bytes(path.read_bytes()[:-16] + b"\xff" * 16)

    fresh = PolicyAtlas(tmp_path)  # no index entry to shortcut through
    assert key not in fresh
    assert fresh.get(key) is None
    assert not path.exists()  # quarantined by the membership check
    assert (fresh.quarantine_dir / path.name).exists()


def test_contains_index_hit_answers_without_disk(tmp_path, payload):
    atlas = PolicyAtlas(tmp_path)
    key, _body = put_cell(atlas, payload, 0.10)
    before = atlas.stats.disk_reads
    assert key in atlas  # put() indexed it
    assert atlas.stats.disk_reads == before
    assert make_key(0.45) not in atlas


def test_quarantine_real_failure_raises_typed_error(tmp_path, payload,
                                                    monkeypatch):
    """Pinned regression: a quarantine that fails for a real reason
    (not a lost race) must raise, never silently leave the corrupt
    entry in place."""
    atlas = PolicyAtlas(tmp_path)
    key, _body = put_cell(atlas, payload, 0.10)
    path = atlas.path_for(key_digest(key))

    def deny(src, dst):
        raise PermissionError(13, "Permission denied", str(src))

    monkeypatch.setattr("repro.serve.atlas.os.replace", deny)
    with pytest.raises(AtlasQuarantineError, match="cannot quarantine"):
        atlas.quarantine(path, "checksum mismatch")
    assert atlas.stats.quarantined == 0
    assert atlas.stats.quarantine_races == 0


def test_quarantine_lost_race_is_counted_not_raised(tmp_path, payload):
    atlas = PolicyAtlas(tmp_path)
    key, _body = put_cell(atlas, payload, 0.10)
    path = atlas.path_for(key_digest(key))
    path.unlink()  # the other process already moved it
    atlas.quarantine(path, "checksum mismatch")
    assert atlas.stats.quarantine_races == 1
    assert atlas.stats.quarantined == 0
